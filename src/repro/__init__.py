"""repro — UAV data collection from IoT devices under an energy budget.

A from-scratch reproduction of Li, Liang, Xu & Jia, *"Data Collection of
IoT Devices Using an Energy-Constrained UAV"* (IPDPS 2020): the full/partial
data-collection maximisation problems, the paper's Algorithms 1–3 and its
benchmark baseline, plus every substrate they need (sensor networks, UAV
energy model, radio model, δ-grid geometry, Christofides TSP, orienteering
solvers, and an independent mission-execution simulator).

Quickstart
----------
>>> from repro import (paper_default_network, PAPER_ENERGY_MODEL,
...                    PAPER_RADIO_MODEL, plan_tour)
>>> net = paper_default_network(n=100, seed=42)
>>> tour = plan_tour(net, PAPER_ENERGY_MODEL, PAPER_RADIO_MODEL,
...                  method="algorithm2", delta=20.0)
>>> tour.collected_volume > 0
True

See ``examples/`` for richer scenarios and ``repro-experiments`` for the
paper's evaluation figures.
"""

from repro.core import (
    CollectionTour,
    FeasibilityReport,
    plan_algorithm1,
    plan_algorithm2,
    plan_algorithm3,
    plan_benchmark,
    plan_tour,
    PLANNERS,
    build_hovering_sites,
    build_auxiliary_graph,
    PlannerKernel,
    ENGINES,
    validate_tour_feasibility,
    collection_upper_bound,
    UpperBoundReport,
    FleetPlan,
    plan_fleet,
)
from repro.energy import EnergyModel, EnergyLedger, PAPER_ENERGY_MODEL
from repro.geometry import Region, GridPartition, CoverageIndex
from repro.network import (
    SensorNetwork,
    NetworkGenerator,
    paper_default_network,
    uniform_network,
    clustered_network,
    grid_network,
)
from repro.radio import RadioModel, DistanceRateModel, PAPER_RADIO_MODEL
from repro.sim import simulate_mission, cross_validate, MissionTrace
from repro.utils import ReproError, InfeasibleTourError, InvalidParameterError

__version__ = "1.0.0"

__all__ = [
    # planning
    "plan_tour", "PLANNERS",
    "plan_algorithm1", "plan_algorithm2", "plan_algorithm3", "plan_benchmark",
    "CollectionTour", "FeasibilityReport", "validate_tour_feasibility",
    "build_hovering_sites", "build_auxiliary_graph",
    "PlannerKernel", "ENGINES",
    "collection_upper_bound", "UpperBoundReport", "FleetPlan", "plan_fleet",
    # models
    "EnergyModel", "EnergyLedger", "PAPER_ENERGY_MODEL",
    "RadioModel", "DistanceRateModel", "PAPER_RADIO_MODEL",
    # networks & geometry
    "SensorNetwork", "NetworkGenerator", "paper_default_network",
    "uniform_network", "clustered_network", "grid_network",
    "Region", "GridPartition", "CoverageIndex",
    # simulation
    "simulate_mission", "cross_validate", "MissionTrace",
    # errors
    "ReproError", "InfeasibleTourError", "InvalidParameterError",
    "__version__",
]
