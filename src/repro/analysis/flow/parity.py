"""``flow-parity`` — engine dispatch surfaces must not drift apart.

Three invariants keep ``engine="dense"|"kernel"|"batch"`` (and the next
engine) interchangeable, and all three are checkable from the call
graph without running a planner:

1. **Signature parity** — every ``plan_X_batch`` must accept the same
   planner kwargs as its per-variant sibling ``plan_X``, modulo the
   *dispatch-only* kwargs (``engine``, ``tsp_mode`` — consumed by the
   dispatcher, never by the stacked formulation) and the structural
   ``energy`` → ``energies`` rename.  A kwarg accepted by one surface
   and silently swallowed (or rejected) by the other is exactly how a
   sweep config stops meaning the same thing across engines.
2. **perf key contract** — every ``perf()`` writer in an engine family
   must publish the same ``meta["perf"]`` key set: ``engine``,
   ``seconds``, and the family's registered work counters (read from
   the ``metrics.counter(name)`` registration loops).  Downstream
   consumers (``SweepRow.deterministic_dict``, the claims harness,
   benchmark reports) index those keys blind.
3. **engine literals** — an ``"engine"`` value written by a perf writer
   must be a member of the family's ``ENGINES`` registry tuple.

An *engine family* is a two-component module prefix (``repro.core``,
``repro.experiments``): engines that must interoperate live in the same
subpackage, and scoping the contract this way keeps unrelated packages
(and test fixtures) from polluting each other's key sets.

Where ``_COLUMN_KWARGS`` declares the batchable planner options, each
declared option must actually exist on both dispatch surfaces.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.engine import Finding, Project, SourceModule
from repro.analysis.flow.callgraph import CallGraph, FunctionInfo

#: Kwargs consumed by the dispatcher, legitimately absent from batch.
DISPATCH_ONLY = frozenset({"engine", "tsp_mode"})

#: The per-variant -> stacked structural parameter rename.
_STRUCTURAL_RENAME = ("energy", "energies")

#: perf keys every writer carries besides the registered counters.
_BASE_PERF_KEYS = frozenset({"engine", "seconds"})


def _family(info_or_mod) -> str:
    """Two-component dotted prefix (``repro.core``)."""
    mod = getattr(info_or_mod, "module", info_or_mod)
    return ".".join(mod.dotted_name.split(".")[:2])


def _module_tuple_const(mod: SourceModule, name: str) -> Optional[List[str]]:
    """A top-level ``NAME = ("a", "b", ...)`` string tuple, if present."""
    if mod.tree is None:
        return None
    for stmt in mod.tree.body:
        if isinstance(stmt, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == name
                for t in stmt.targets):
            if isinstance(stmt.value, (ast.Tuple, ast.List)):
                vals = [e.value for e in stmt.value.elts
                        if isinstance(e, ast.Constant)
                        and isinstance(e.value, str)]
                if len(vals) == len(stmt.value.elts):
                    return vals
    return None


class _PerfWriter:
    """One ``perf()`` method's statically visible key set."""

    def __init__(self, info: FunctionInfo) -> None:
        self.info = info
        self.keys: Set[str] = set()
        self.engine_literals: List[Tuple[int, str]] = []
        self.open = False          #: uses .update(...) — key set unbounded
        self.line = info.lineno
        self._scan()

    def _scan(self) -> None:
        returned: Set[str] = set()
        for node in ast.walk(self.info.node):
            if isinstance(node, ast.Return) and isinstance(node.value,
                                                           ast.Dict):
                self.line = node.lineno
                self._take_dict(node.value)
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                value = node.value
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                if isinstance(value, ast.Dict):
                    self._take_dict(value)
                for tgt in targets:
                    if isinstance(tgt, ast.Subscript) \
                            and isinstance(tgt.slice, ast.Constant) \
                            and isinstance(tgt.slice.value, str):
                        self.keys.add(tgt.slice.value)
            elif isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr == "update":
                self.open = True
            elif isinstance(node, ast.Return) \
                    and isinstance(node.value, ast.Name):
                returned.add(node.value.id)

    def _take_dict(self, node: ast.Dict) -> None:
        for key, value in zip(node.keys, node.values):
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                self.keys.add(key.value)
                if key.value == "engine" \
                        and isinstance(value, ast.Constant) \
                        and isinstance(value.value, str):
                    self.engine_literals.append((key.lineno, value.value))


def _registered_counters(graph: CallGraph) -> Dict[str, Set[str]]:
    """Counter names registered per family via ``counter(name)`` loops.

    Matches the pre-registration idiom::

        for name in ("insertions", "drains", ...):
            self.metrics.counter(name)

    (an ``Expr`` statement — chained usage like ``counter("x").inc()``
    is a write, not a registration, and is ignored).
    """
    out: Dict[str, Set[str]] = {}
    for info in graph.repro_functions():
        for node in ast.walk(info.node):
            if not isinstance(node, ast.For) \
                    or not isinstance(node.target, ast.Name) \
                    or not isinstance(node.iter, (ast.Tuple, ast.List)):
                continue
            names = [e.value for e in node.iter.elts
                     if isinstance(e, ast.Constant)
                     and isinstance(e.value, str)]
            if len(names) != len(node.iter.elts) or not names:
                continue
            registers = any(
                isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Call)
                and isinstance(stmt.value.func, ast.Attribute)
                and stmt.value.func.attr == "counter"
                and any(isinstance(a, ast.Name)
                        and a.id == node.target.id
                        for a in stmt.value.args)
                for stmt in node.body)
            if registers:
                out.setdefault(_family(info), set()).update(names)
    return out


class FlowParityRule:
    """Diff engine dispatch signatures and perf-key write sites."""

    rule_id = "flow-parity"
    description = ("plan_X/plan_X_batch signatures and perf() key sets "
                   "must agree within an engine family; engine literals "
                   "must come from ENGINES")

    def check(self, project: Project) -> Iterator[Finding]:
        from repro.analysis.flow import FlowContext
        graph = FlowContext.for_project(project).graph
        yield from self._check_signatures(graph)
        yield from self._check_perf(graph)
        yield from self._check_column_kwargs(graph)

    # -- 1. plan_X vs plan_X_batch -------------------------------------- #

    def _check_signatures(self, graph: CallGraph) -> Iterator[Finding]:
        by_name: Dict[Tuple[str, str], FunctionInfo] = {}
        for info in graph.repro_functions():
            if info.cls is None:
                by_name.setdefault((_family(info), info.name), info)
        for (family, name), base in sorted(by_name.items()):
            if name.endswith("_batch"):
                continue
            batch = by_name.get((family, name + "_batch"))
            if batch is None:
                continue
            base_params = set(base.params)
            batch_params = set(batch.params)
            energy, energies = _STRUCTURAL_RENAME
            missing = (base_params - batch_params) - DISPATCH_ONLY
            if energy in missing and energies in batch_params:
                missing.discard(energy)
            for param in sorted(missing):
                yield Finding(
                    rule=self.rule_id, path=batch.module.rel,
                    line=batch.lineno,
                    message=f"batch surface {batch.short}() does not "
                            f"accept planner kwarg {param!r} that "
                            f"{base.short}() accepts",
                    hint=f"add {param!r} to {batch.short}() (or make it "
                         "dispatch-only) so sweep configs mean the same "
                         f"thing under every engine; sibling at "
                         f"{base.module.rel}:{base.lineno}")
            extra = batch_params - base_params - {energies}
            for param in sorted(extra):
                yield Finding(
                    rule=self.rule_id, path=batch.module.rel,
                    line=batch.lineno,
                    message=f"batch surface {batch.short}() accepts "
                            f"kwarg {param!r} absent from "
                            f"{base.short}()",
                    hint="a batch-only option cannot be expressed by "
                         "dispatching configs; add it to the per-variant "
                         f"planner too (sibling at "
                         f"{base.module.rel}:{base.lineno})")

    # -- 2 + 3. perf key contract and engine literals ------------------- #

    def _check_perf(self, graph: CallGraph) -> Iterator[Finding]:
        writers: Dict[str, List[_PerfWriter]] = {}
        for info in graph.repro_functions():
            if info.name == "perf" and info.cls is not None:
                writers.setdefault(_family(info), []).append(
                    _PerfWriter(info))
        counters = _registered_counters(graph)
        engines = self._engines_by_family(graph)
        for family in sorted(writers):
            fam_writers = writers[family]
            contract: Set[str] = set(_BASE_PERF_KEYS)
            contract |= counters.get(family, set())
            for writer in fam_writers:
                contract |= writer.keys
            for writer in sorted(fam_writers,
                                 key=lambda w: w.info.qname):
                for line, literal in writer.engine_literals:
                    fam_engines = engines.get(family)
                    if fam_engines is not None \
                            and literal not in fam_engines:
                        yield Finding(
                            rule=self.rule_id,
                            path=writer.info.module.rel, line=line,
                            message=f"perf writer "
                                    f"{writer.info.short}() reports "
                                    f"engine {literal!r}, not a member "
                                    f"of ENGINES {tuple(fam_engines)}",
                            hint="register the engine in ENGINES or fix "
                                 "the literal")
                if writer.open:
                    continue       # key set unbounded; counters cover it
                missing = sorted(contract - writer.keys)
                if missing:
                    yield Finding(
                        rule=self.rule_id, path=writer.info.module.rel,
                        line=writer.line,
                        message=f"perf writer {writer.info.short}() "
                                f"omits key(s) {missing} from the "
                                f"{family} meta['perf'] contract",
                        hint="every engine's perf() must publish the "
                             "same key set (engine, seconds, and the "
                             "registered counters) so consumers can "
                             "index blind; emit the key (0 if unused) "
                             "or add '# repro: allow[flow-parity]' "
                             "stating why the key cannot exist here")

    @staticmethod
    def _engines_by_family(graph: CallGraph) -> Dict[str, List[str]]:
        out: Dict[str, List[str]] = {}
        for env in graph.envs.values():
            engines = _module_tuple_const(env.module, "ENGINES")
            if engines:
                out.setdefault(_family(env.module), []).extend(
                    e for e in engines
                    if e not in out.get(_family(env.module), []))
        return out

    # -- 4. _COLUMN_KWARGS declarations --------------------------------- #

    def _check_column_kwargs(self, graph: CallGraph) -> Iterator[Finding]:
        plan_funcs: Dict[str, FunctionInfo] = {}
        for info in graph.repro_functions():
            if info.cls is None:
                plan_funcs.setdefault(info.name, info)
        for env in sorted(graph.envs.values(),
                          key=lambda e: e.module.rel):
            mod = env.module
            if not mod.is_repro_module or mod.tree is None:
                continue
            for stmt in mod.tree.body:
                decl = self._column_kwargs_decl(stmt)
                if decl is None:
                    continue
                line, table = decl
                for method, allowed in sorted(table.items()):
                    base = plan_funcs.get(f"plan_{method}")
                    batch = plan_funcs.get(f"plan_{method}_batch")
                    if base is not None:
                        for kwarg in sorted(set(allowed)
                                            - set(base.params)):
                            yield Finding(
                                rule=self.rule_id, path=mod.rel,
                                line=line,
                                message=f"_COLUMN_KWARGS[{method!r}] "
                                        f"allows {kwarg!r}, which "
                                        f"plan_{method}() does not "
                                        "accept",
                                hint="the column executor would forward "
                                     "an unknown kwarg; fix the table "
                                     "or the planner signature")
                    if batch is not None:
                        for kwarg in sorted(set(allowed) - DISPATCH_ONLY
                                            - set(batch.params)):
                            yield Finding(
                                rule=self.rule_id, path=mod.rel,
                                line=line,
                                message=f"_COLUMN_KWARGS[{method!r}] "
                                        f"allows {kwarg!r}, which "
                                        f"plan_{method}_batch() does "
                                        "not accept",
                                hint="the stacked call would reject the "
                                     "kwarg at sweep time; fix the "
                                     "table or the batch signature")

    @staticmethod
    def _column_kwargs_decl(stmt: ast.stmt
                            ) -> Optional[Tuple[int, Dict[str, List[str]]]]:
        """Parse ``_COLUMN_KWARGS = {"m": frozenset({"a", ...}), ...}``."""
        targets: List[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        else:
            return None
        if not any(isinstance(t, ast.Name) and t.id == "_COLUMN_KWARGS"
                   for t in targets):
            return None
        if not isinstance(value, ast.Dict):
            return None
        table: Dict[str, List[str]] = {}
        for key, val in zip(value.keys, value.values):
            if not (isinstance(key, ast.Constant)
                    and isinstance(key.value, str)):
                continue
            names: List[str] = []
            elts: List[ast.expr] = []
            if isinstance(val, ast.Call) and val.args \
                    and isinstance(val.args[0], (ast.Set, ast.List,
                                                 ast.Tuple)):
                elts = val.args[0].elts
            elif isinstance(val, (ast.Set, ast.List, ast.Tuple)):
                elts = val.elts
            for e in elts:
                if isinstance(e, ast.Constant) and isinstance(e.value, str):
                    names.append(e.value)
            table[key.value] = names
        return stmt.lineno, table


__all__ = ["FlowParityRule", "DISPATCH_ONLY"]
