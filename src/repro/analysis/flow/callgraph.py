"""Call-graph construction for the interprocedural flow rules.

The graph is deliberately *name-based and conservative*: it resolves
what a lint pass can resolve without executing code —

* plain calls to functions defined in the same module,
* calls through ``import``/``from .. import`` aliases into other loaded
  modules (matched by dotted module name),
* ``self.method()`` calls inside a class,
* ``var.method()`` calls where ``var`` was locally assigned from a class
  constructor (one level of local type inference, the same inference the
  taint walker uses),

and records everything else as an *external* edge carrying the dotted
call chain (``numpy.random.default_rng``, ``time.perf_counter``).  The
flow rules treat unresolved calls conservatively; the external edges are
exactly where the determinism source tables match.

``CallGraph.to_json_dict`` / ``to_dot`` back the CLI's
``--callgraph-out`` export so CI can archive the graph per run.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.engine import Project, SourceModule

#: Qualified-name separator between module and in-module path
#: (``repro.core.kernel:PlannerKernel.perf``).
QSEP = ":"


def _param_names(node: ast.AST) -> List[str]:
    """Positional + keyword-only parameter names, minus self/cls."""
    args = node.args
    names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    if names and names[0] in ("self", "cls"):
        names = names[1:]
    return names


def ann_text(node: Optional[ast.expr]) -> str:
    """Source text of an annotation node ('' when absent)."""
    if node is None:
        return ""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on 3.9+
        return ""


@dataclass
class FunctionInfo:
    """One function or method known to the graph."""

    qname: str
    module: SourceModule
    node: ast.AST                  #: FunctionDef | AsyncFunctionDef
    cls: Optional[str] = None      #: owning class name, if a method
    lineno: int = 0

    @property
    def name(self) -> str:
        """Bare function name (last path segment)."""
        return self.qname.rsplit(".", 1)[-1].rsplit(QSEP, 1)[-1]

    @property
    def short(self) -> str:
        """In-module path (``PlannerKernel.perf``)."""
        return self.qname.split(QSEP, 1)[1]

    @property
    def params(self) -> List[str]:
        """Parameter names (positional + kw-only, minus self/cls)."""
        return _param_names(self.node)

    @property
    def return_annotation(self) -> str:
        """Return-annotation source text ('' when unannotated)."""
        return ann_text(self.node.returns)

    def param_annotation(self, name: str) -> str:
        """Annotation text of parameter *name* ('' when unannotated)."""
        args = self.node.args
        for a in args.posonlyargs + args.args + args.kwonlyargs:
            if a.arg == name:
                return ann_text(a.annotation)
        return ""


@dataclass
class ClassInfo:
    """One class known to the graph (constructor target + methods)."""

    qname: str
    module: SourceModule
    node: ast.ClassDef
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.qname.rsplit(".", 1)[-1].rsplit(QSEP, 1)[-1]


@dataclass(frozen=True)
class CallEdge:
    """One call site: caller qname -> callee qname or external dotted name."""

    caller: str
    callee: str
    line: int
    external: bool


@dataclass
class ModuleEnv:
    """Per-module name bindings used to resolve calls."""

    module: SourceModule
    import_alias: Dict[str, str] = field(default_factory=dict)
    from_names: Dict[str, str] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)


class CallGraph:
    """Functions, classes, and call edges of one analysed project."""

    def __init__(self) -> None:
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.edges: List[CallEdge] = []
        self.envs: Dict[str, ModuleEnv] = {}
        self._by_dotted: Dict[str, ModuleEnv] = {}
        self._adjacency: Optional[Dict[str, List[CallEdge]]] = None

    # -- lookups -------------------------------------------------------- #

    def env_for(self, mod: SourceModule) -> Optional[ModuleEnv]:
        return self.envs.get(mod.rel)

    def resolve_module(self, dotted: str) -> Optional[ModuleEnv]:
        """A loaded module by dotted name (exact, then suffix match)."""
        env = self._by_dotted.get(dotted)
        if env is not None:
            return env
        tail = "." + dotted
        for name, cand in self._by_dotted.items():
            if name.endswith(tail):
                return cand
        return None

    def resolve_dotted_value(self, dotted: str
                             ) -> Optional[Tuple[ModuleEnv, str]]:
        """Split ``pkg.mod.attr`` into (module env, attr) when loaded."""
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            env = self.resolve_module(".".join(parts[:cut]))
            if env is not None and cut < len(parts):
                return env, parts[cut]
        return None

    def callees(self, qname: str) -> List[CallEdge]:
        """Outgoing edges of one function (adjacency is cached)."""
        if self._adjacency is None:
            adj: Dict[str, List[CallEdge]] = {}
            for edge in self.edges:
                adj.setdefault(edge.caller, []).append(edge)
            self._adjacency = adj
        return self._adjacency.get(qname, [])

    def reachable_from(self, roots: Sequence[str]) -> Set[str]:
        """Internal functions reachable from *roots* (roots included)."""
        seen: Set[str] = set()
        stack = [r for r in roots if r in self.functions]
        while stack:
            cur = stack.pop()
            if cur in seen:
                continue
            seen.add(cur)
            for edge in self.callees(cur):
                if not edge.external and edge.callee not in seen:
                    if edge.callee in self.functions:
                        stack.append(edge.callee)
                    cls = self.classes.get(edge.callee)
                    if cls is not None:
                        stack.extend(m.qname for m in cls.methods.values())
        return seen

    def repro_functions(self) -> Iterator[FunctionInfo]:
        """Functions belonging to ``repro`` library modules."""
        for info in self.functions.values():
            if info.module.is_repro_module:
                yield info

    # -- export --------------------------------------------------------- #

    def to_json_dict(self) -> Dict[str, object]:
        """Stable JSON shape for the ``--callgraph-out`` artifact."""
        return {
            "version": 1,
            "functions": [
                {"qname": q, "path": f.module.rel, "line": f.lineno}
                for q, f in sorted(self.functions.items())],
            "edges": [
                {"caller": e.caller, "callee": e.callee, "line": e.line,
                 "external": e.external}
                for e in sorted(self.edges,
                                key=lambda e: (e.caller, e.line, e.callee))],
        }

    def to_dot(self) -> str:
        """GraphViz digraph of the internal edges (externals grouped)."""
        lines = ["digraph callgraph {", "  rankdir=LR;",
                 '  node [shape=box, fontsize=9];']
        internal = sorted({(e.caller, e.callee) for e in self.edges
                           if not e.external})
        for caller, callee in internal:
            lines.append(f'  "{caller}" -> "{callee}";')
        externals = sorted({(e.caller, e.callee) for e in self.edges
                            if e.external})
        for caller, callee in externals:
            lines.append(f'  "{caller}" -> "{callee}" [style=dashed, '
                         "color=gray];")
        lines.append("}")
        return "\n".join(lines) + "\n"


# --------------------------------------------------------------------- #
# Builders
# --------------------------------------------------------------------- #

def _scan_module(mod: SourceModule) -> ModuleEnv:
    """First pass: imports, top-level functions, classes and methods."""
    env = ModuleEnv(module=mod)
    assert mod.tree is not None
    for stmt in mod.tree.body:
        _scan_stmt(env, stmt)
    return env


def _scan_stmt(env: ModuleEnv, stmt: ast.stmt, prefix: str = "") -> None:
    mod = env.module
    if isinstance(stmt, ast.Import):
        for alias in stmt.names:
            env.import_alias[alias.asname or alias.name.split(".")[0]] = \
                alias.name if alias.asname else alias.name.split(".")[0]
            if alias.asname is None and "." in alias.name:
                # ``import repro.core.batch`` binds the root package but
                # resolves the full dotted chain at call sites.
                env.import_alias[alias.name.split(".")[0]] = \
                    alias.name.split(".")[0]
    elif isinstance(stmt, ast.ImportFrom):
        if stmt.module is not None and stmt.level == 0:
            for alias in stmt.names:
                if alias.name != "*":
                    env.from_names[alias.asname or alias.name] = \
                        f"{stmt.module}.{alias.name}"
    elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
        qname = f"{mod.dotted_name}{QSEP}{prefix}{stmt.name}"
        info = FunctionInfo(qname=qname, module=mod, node=stmt,
                            lineno=stmt.lineno)
        if not prefix:
            env.functions[stmt.name] = info
        else:
            env.functions.setdefault(f"{prefix}{stmt.name}", info)
        for inner in stmt.body:
            _scan_stmt(env, inner, prefix=f"{prefix}{stmt.name}.")
    elif isinstance(stmt, ast.ClassDef) and not prefix:
        cls = ClassInfo(qname=f"{mod.dotted_name}{QSEP}{stmt.name}",
                        module=mod, node=stmt)
        for inner in stmt.body:
            if isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef)):
                minfo = FunctionInfo(
                    qname=f"{cls.qname}.{inner.name}", module=mod,
                    node=inner, cls=stmt.name, lineno=inner.lineno)
                cls.methods[inner.name] = minfo
        env.classes[stmt.name] = cls
    elif isinstance(stmt, (ast.If, ast.Try)):
        for body in ([stmt.body, getattr(stmt, "orelse", [])]
                     + [h.body for h in getattr(stmt, "handlers", [])]
                     + [getattr(stmt, "finalbody", [])]):
            for inner in body:
                _scan_stmt(env, inner, prefix=prefix)


def dotted_chain(call: ast.Call) -> List[str]:
    """Name chain of a call target (like ``iter_call_name``)."""
    chain: List[str] = []
    cur: ast.expr = call.func
    while isinstance(cur, ast.Attribute):
        chain.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name):
        chain.append(cur.id)
        return list(reversed(chain))
    return []


class Resolver:
    """Resolves call targets inside one function body.

    ``local_types`` maps local variable names to :class:`ClassInfo` for
    variables assigned from a resolvable class constructor; the taint
    walker keeps it updated as it executes statements.
    """

    def __init__(self, graph: CallGraph, env: ModuleEnv,
                 info: FunctionInfo) -> None:
        self.graph = graph
        self.env = env
        self.info = info
        self.local_types: Dict[str, ClassInfo] = {}

    def note_assignment(self, target: str, value: ast.expr) -> None:
        """Record ``target = ClassName(...)`` style local types."""
        if isinstance(value, ast.Call):
            resolved = self.resolve(value)
            if isinstance(resolved, ClassInfo):
                self.local_types[target] = resolved
                return
        if isinstance(value, ast.Name) and value.id in self.local_types:
            self.local_types[target] = self.local_types[value.id]
            return
        self.local_types.pop(target, None)

    def lookup_class(self, name: str) -> Optional[ClassInfo]:
        """A class by local name: module-level or imported."""
        cls = self.env.classes.get(name)
        if cls is not None:
            return cls
        dotted = self.env.from_names.get(name)
        if dotted is not None:
            hit = self.graph.resolve_dotted_value(dotted)
            if hit is not None:
                env, attr = hit
                return env.classes.get(attr)
        return None

    def _lookup_function(self, name: str) -> Optional[FunctionInfo]:
        fn = self.env.functions.get(name)
        if fn is not None:
            return fn
        dotted = self.env.from_names.get(name)
        if dotted is not None:
            hit = self.graph.resolve_dotted_value(dotted)
            if hit is not None:
                env, attr = hit
                return env.functions.get(attr)
        return None

    def resolve_name(self, name: str):
        """Resolve a bare name to FunctionInfo | ClassInfo | dotted str."""
        fn = self._lookup_function(name)
        if fn is not None:
            return fn
        cls = self.lookup_class(name)
        if cls is not None:
            return cls
        dotted = self.env.from_names.get(name)
        if dotted is not None:
            return dotted
        alias = self.env.import_alias.get(name)
        if alias is not None:
            return alias
        return name

    def resolve(self, call: ast.Call):
        """Resolve a call target.

        Returns a :class:`FunctionInfo` or :class:`ClassInfo` for
        internal targets, or the dotted external name as a string.
        """
        func = call.func
        if isinstance(func, ast.Name):
            return self.resolve_name(func.id)
        chain = dotted_chain(call)
        if not chain:
            return ""
        base = chain[0]
        if base in ("self", "cls") and self.info.cls is not None:
            cls = self.env.classes.get(self.info.cls)
            if cls is not None and len(chain) == 2:
                meth = cls.methods.get(chain[1])
                if meth is not None:
                    return meth
            return ".".join(chain)
        cls = self.local_types.get(base)
        if cls is not None and len(chain) == 2:
            meth = cls.methods.get(chain[1])
            if meth is not None:
                return meth
        # Module attribute chains: np.random.default_rng, batch.plan_x
        mapped = self.env.import_alias.get(base)
        if mapped is not None:
            dotted = ".".join([mapped] + chain[1:])
            hit = self.graph.resolve_dotted_value(dotted)
            if hit is not None and len(chain) >= 2:
                env, attr = hit
                target = env.functions.get(attr) or env.classes.get(attr)
                if target is not None:
                    return target
            return dotted
        mapped = self.env.from_names.get(base)
        if mapped is not None:
            return ".".join([mapped] + chain[1:])
        return ".".join(chain)


def target_name(target: object) -> str:
    """Flatten a resolver result to a printable callee name."""
    if isinstance(target, (FunctionInfo, ClassInfo)):
        return target.qname
    return str(target)


def short_name(name: str) -> str:
    """Last path segment of a callee name (qname or dotted external)."""
    return name.rsplit(QSEP, 1)[-1].rsplit(".", 1)[-1]


def build_call_graph(project: Project) -> CallGraph:
    """Build the call graph of every parsed module in *project*."""
    graph = CallGraph()
    for mod in project.modules:
        if mod.tree is None:
            continue
        env = _scan_module(mod)
        graph.envs[mod.rel] = env
        graph._by_dotted[mod.dotted_name] = env
        for fn in env.functions.values():
            graph.functions[fn.qname] = fn
        for cls in env.classes.values():
            graph.classes[cls.qname] = cls
            for meth in cls.methods.values():
                graph.functions[meth.qname] = meth
    for env in graph.envs.values():
        for info in list(env.functions.values()):
            _collect_edges(graph, env, info)
        for cls in env.classes.values():
            for meth in cls.methods.values():
                _collect_edges(graph, env, meth)
    graph._adjacency = None
    return graph


def _collect_edges(graph: CallGraph, env: ModuleEnv,
                   info: FunctionInfo) -> None:
    """Record the call edges of one function body."""
    resolver = Resolver(graph, env, info)
    for node in ast.walk(info.node):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            for tgt in node.targets:
                if isinstance(tgt, ast.Name):
                    resolver.note_assignment(tgt.id, node.value)
        if isinstance(node, ast.withitem) and node.optional_vars is not None:
            if isinstance(node.optional_vars, ast.Name) \
                    and isinstance(node.context_expr, ast.Call):
                resolver.note_assignment(node.optional_vars.id,
                                         node.context_expr)
        if not isinstance(node, ast.Call):
            continue
        target = resolver.resolve(node)
        name = target_name(target)
        if not name:
            continue
        external = not isinstance(target, (FunctionInfo, ClassInfo))
        graph.edges.append(CallEdge(caller=info.qname, callee=name,
                                    line=node.lineno, external=external))


__all__ = ["CallGraph", "CallEdge", "FunctionInfo", "ClassInfo",
           "ModuleEnv", "Resolver", "build_call_graph", "dotted_chain",
           "target_name", "short_name", "ann_text", "QSEP"]
