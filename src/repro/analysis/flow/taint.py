"""Determinism-taint lattice and interprocedural summary computation.

The lattice has two concrete taint kinds plus a symbolic one:

* ``value`` — the *value* is nondeterministic: wall-clock reads
  (``time.*``), unseeded RNG draws (``np.random.uniform``, stdlib
  ``random.*``), ``id()``, ``hash()`` of objects/strings (PYTHONHASHSEED),
  ``os.urandom``/``uuid`` entropy;
* ``order`` — the value's *ordering* is nondeterministic: iteration over
  a ``set``/``frozenset``, ``as_completed``/``imap_unordered`` worker
  completion order, ``os.listdir``/``glob.glob`` filesystem order.
  ``sorted``/``min``/``max`` neutralise ``order`` taint (``len``
  neutralises everything);
* ``param`` — symbolic taint seeded on every parameter, used to compute
  the per-function summaries (*does parameter i reach the return value /
  a sink?*) that make the analysis interprocedural.

Propagation is a forward walk over each function body: assignments,
container literals, arithmetic, attribute/subscript reads of tainted
values, calls through summaries of resolved callees, and a conservative
"taint in, taint out" rule for unresolved externals.  Attribute *stores*
(``self.x = tainted``) deliberately drop taint — cross-method field
tracking would drown the rules in false positives from the perf-timer
plumbing, whose wall-clock fields are excluded from determinism
comparisons by design (see ``SweepRow.deterministic_dict``).

Summaries are iterated to a fixpoint over the call graph, so a taint can
cross any number of function boundaries before reaching a sink; every
hop is recorded and rendered in the finding
(``source -> hop -> ... -> sink``).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.analysis.flow.callgraph import (
    CallGraph,
    ClassInfo,
    FunctionInfo,
    Resolver,
    target_name,
)

ORDER = "order"
VALUE = "value"
PARAM = "param"

#: Hop cap — traces longer than this are elided in the middle.
MAX_TRACE = 12

#: Fixpoint iteration cap (cycles in the call graph converge long before).
MAX_PASSES = 10

#: ``time`` module attributes whose call is a wall-clock read.
_TIME_ATTRS = frozenset({
    "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
    "perf_counter_ns", "process_time", "process_time_ns", "clock",
    "clock_gettime", "thread_time",
})

#: Module-level numpy.random draws (mirrors the rng-discipline table).
_NP_RANDOM_DRAWS = frozenset({
    "seed", "rand", "randn", "randint", "random", "random_sample",
    "choice", "uniform", "normal", "standard_normal", "shuffle",
    "permutation", "exponential", "poisson", "beta", "gamma", "binomial",
    "integers", "bytes",
})

#: Exact external dotted names whose call result is value-tainted.
_VALUE_CALLS = frozenset({
    "id", "hash", "os.urandom", "os.getrandom", "uuid.uuid1", "uuid.uuid4",
    "secrets.token_bytes", "secrets.token_hex", "secrets.token_urlsafe",
    "secrets.randbits", "secrets.randbelow", "datetime.now",
    "datetime.utcnow", "datetime.today", "datetime.datetime.now",
    "datetime.datetime.utcnow", "datetime.date.today", "date.today",
})

#: Exact external dotted names whose call result is order-tainted.
_ORDER_CALLS = frozenset({
    "as_completed", "futures.as_completed",
    "concurrent.futures.as_completed", "os.listdir", "os.scandir",
    "glob.glob", "glob.iglob",
})

#: Unqualified call names that clear ``order`` taint from their result.
_ORDER_NEUTRAL = frozenset({"sorted", "min", "max"})

#: Unqualified call names that clear every taint (deterministic scalars).
_ALL_NEUTRAL = frozenset({"len", "isinstance", "issubclass", "type"})

#: Module suffix exempt from RNG sources (the sanctioned RNG plumbing).
_RNG_EXEMPT_SUFFIX = "repro/utils/rng.py"


@dataclass(frozen=True)
class Taint:
    """One taint fact: kind, human-readable source, and its hop trace."""

    kind: str
    source: str
    trace: Tuple[str, ...] = ()

    def hop(self, entry: str) -> "Taint":
        """This taint extended by one trace hop (middle-elided at cap)."""
        trace = self.trace + (entry,)
        if len(trace) > MAX_TRACE:
            trace = trace[:4] + ("...",) + trace[-(MAX_TRACE - 5):]
        return Taint(self.kind, self.source, trace)


TaintSet = FrozenSet[Taint]
EMPTY: TaintSet = frozenset()


def concrete(taints: TaintSet) -> TaintSet:
    """The non-symbolic subset."""
    return frozenset(t for t in taints if t.kind != PARAM)


def params_of(taints: TaintSet) -> Set[str]:
    """Names of parameters whose symbolic taint is present."""
    return {t.source for t in taints if t.kind == PARAM}


@dataclass(frozen=True)
class SinkHit:
    """A concrete taint observed at a sink."""

    path: str
    line: int
    sink: str
    func: str         #: short name of the function holding the sink
    taint: Taint


@dataclass(frozen=True)
class ParamSink:
    """A parameter flowing into a sink inside (or below) a function."""

    param: str
    sink: str
    hops: Tuple[str, ...]


@dataclass
class FunctionSummary:
    """What a function does with taint, as seen from its callers."""

    ret_taints: TaintSet = EMPTY
    #: param name -> trace hops showing how it reaches the return value
    ret_params: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    sink_hits: Tuple[SinkHit, ...] = ()
    param_sinks: Tuple[ParamSink, ...] = ()

    def key(self) -> Tuple:
        """Comparable fingerprint for fixpoint detection."""
        return (self.ret_taints, tuple(sorted(self.ret_params)),
                self.sink_hits, self.param_sinks)


class SinkSpec:
    """What counts as a determinism sink.  Subclassed by the rule."""

    def return_sink(self, info: FunctionInfo) -> Optional[str]:
        """Sink description when *info*'s return value is a sink."""
        return None

    def call_arg_sinks(self, info: FunctionInfo, call: ast.Call,
                       target: object
                       ) -> List[Tuple[str, ast.expr]]:
        """``(sink description, argument expression)`` pairs to check."""
        return []


class TaintAnalysis:
    """Fixpoint taint summaries for every function of a call graph."""

    def __init__(self, graph: CallGraph,
                 sinks: Optional[SinkSpec] = None) -> None:
        self.graph = graph
        self.sinks = sinks or SinkSpec()
        self.summaries: Dict[str, FunctionSummary] = {
            q: FunctionSummary() for q in graph.functions}
        self._run_fixpoint()

    def _run_fixpoint(self) -> None:
        order = sorted(self.graph.functions)
        for _ in range(MAX_PASSES):
            changed = False
            for qname in order:
                info = self.graph.functions[qname]
                new = _FunctionWalk(self, info).run()
                if new.key() != self.summaries[qname].key():
                    self.summaries[qname] = new
                    changed = True
            if not changed:
                break

    def all_sink_hits(self) -> List[SinkHit]:
        """Every concrete sink hit, in deterministic order."""
        hits: List[SinkHit] = []
        for qname in sorted(self.summaries):
            hits.extend(self.summaries[qname].sink_hits)
        return hits


class _FunctionWalk:
    """One forward taint pass over one function body."""

    def __init__(self, analysis: TaintAnalysis, info: FunctionInfo) -> None:
        self.analysis = analysis
        self.graph = analysis.graph
        self.sinks = analysis.sinks
        self.info = info
        env = self.graph.env_for(info.module)
        assert env is not None
        self.resolver = Resolver(self.graph, env, info)
        self.state: Dict[str, TaintSet] = {
            name: frozenset({Taint(PARAM, name)}) for name in info.params}
        self.set_typed: Set[str] = set()
        self.ret_taints: Set[Taint] = set()
        self.ret_params: Dict[str, Tuple[str, ...]] = {}
        self.sink_hits: List[SinkHit] = []
        self.param_sinks: List[ParamSink] = []

    # -- driver --------------------------------------------------------- #

    def run(self) -> FunctionSummary:
        self.exec_block(self.info.node.body)
        return FunctionSummary(
            ret_taints=frozenset(self.ret_taints),
            ret_params=dict(self.ret_params),
            sink_hits=tuple(dict.fromkeys(self.sink_hits)),
            param_sinks=tuple(dict.fromkeys(self.param_sinks)))

    def _site(self) -> str:
        return self.info.module.rel

    def _hop(self, line: int, what: str) -> str:
        return f"{self._site()}:{line} {what}"

    # -- statements ----------------------------------------------------- #

    def exec_block(self, stmts: Sequence[ast.stmt]) -> None:
        for stmt in stmts:
            self.exec_stmt(stmt)

    def exec_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            taints = self.eval(stmt.value)
            for target in stmt.targets:
                self.assign(target, taints, stmt.value)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self.assign(stmt.target, self.eval(stmt.value), stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            taints = self.eval(stmt.value) | self.eval(stmt.target)
            self.assign(stmt.target, taints, stmt.value)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                taints = self.eval(stmt.value)
                self._record_return(stmt, taints)
        elif isinstance(stmt, ast.Expr):
            self.eval(stmt.value)
        elif isinstance(stmt, ast.For):
            self._exec_for(stmt)
        elif isinstance(stmt, ast.While):
            self.eval(stmt.test)
            self.exec_block(stmt.body)
            self.exec_block(stmt.body)       # one extra pass for back-edges
            self.exec_block(stmt.orelse)
        elif isinstance(stmt, ast.If):
            self.eval(stmt.test)
            self.exec_block(stmt.body)
            self.exec_block(stmt.orelse)
        elif isinstance(stmt, ast.With) or isinstance(stmt, ast.AsyncWith):
            for item in stmt.items:
                taints = self.eval(item.context_expr)
                if item.optional_vars is not None:
                    self.assign(item.optional_vars, taints,
                                item.context_expr)
            self.exec_block(stmt.body)
        elif isinstance(stmt, ast.Try):
            self.exec_block(stmt.body)
            for handler in stmt.handlers:
                self.exec_block(handler.body)
            self.exec_block(stmt.orelse)
            self.exec_block(stmt.finalbody)
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self.eval(child)
        # Nested defs/classes are analysed as their own functions.

    def _exec_for(self, stmt) -> None:
        taints = self.eval(stmt.iter)
        taints |= self._iteration_order_taint(stmt.iter)
        self.assign(stmt.target, taints, stmt.iter)
        self.exec_block(stmt.body)
        self.exec_block(stmt.body)           # one extra pass for back-edges
        self.exec_block(stmt.orelse)

    def _iteration_order_taint(self, iter_expr: ast.expr) -> TaintSet:
        """Order taint when iterating a set-typed expression."""
        is_set = isinstance(iter_expr, (ast.Set, ast.SetComp))
        if isinstance(iter_expr, ast.Name) and iter_expr.id in self.set_typed:
            is_set = True
        if isinstance(iter_expr, ast.Call):
            fn = iter_expr.func
            if isinstance(fn, ast.Name) and fn.id in ("set", "frozenset"):
                is_set = True
        if not is_set:
            return EMPTY
        line = iter_expr.lineno
        return frozenset({Taint(
            ORDER, "set/frozenset iteration order",
            trace=(self._hop(line, "iterates a set (unordered)"),))})

    def _record_return(self, stmt: ast.Return, taints: TaintSet) -> None:
        hop = self._hop(stmt.lineno, f"returned by {self.info.short}()")
        for t in concrete(taints):
            self.ret_taints.add(t.hop(hop))
        for name in params_of(taints):
            self.ret_params.setdefault(name, (hop,))
        sink = self.sinks.return_sink(self.info)
        if sink is not None:
            self._check_sink(sink, stmt.lineno, taints, at_return=True)

    def _check_sink(self, sink: str, line: int, taints: TaintSet,
                    *, at_return: bool = False) -> None:
        hop = self._hop(line, f"reaches {sink}")
        for t in concrete(taints):
            self.sink_hits.append(SinkHit(
                path=self.info.module.rel, line=line, sink=sink,
                func=self.info.short, taint=t.hop(hop)))
        for name in params_of(taints):
            self.param_sinks.append(ParamSink(param=name, sink=sink,
                                              hops=(hop,)))

    # -- assignment targets --------------------------------------------- #

    def assign(self, target: ast.expr, taints: TaintSet,
               value: Optional[ast.expr]) -> None:
        if isinstance(target, ast.Name):
            self.state[target.id] = taints
            if value is not None:
                self.resolver.note_assignment(target.id, value)
                self._note_set_typed(target.id, value)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self.assign(elt, taints, None)
        elif isinstance(target, ast.Subscript):
            # Container write: the container accumulates the taint.
            base = target.value
            if isinstance(base, ast.Name):
                self.state[base.id] = self.state.get(base.id, EMPTY) | taints
        # Attribute stores drop taint by design (see module docstring).

    def _note_set_typed(self, name: str, value: ast.expr) -> None:
        is_set = isinstance(value, (ast.Set, ast.SetComp))
        if isinstance(value, ast.Call):
            fn = value.func
            if isinstance(fn, ast.Name) and fn.id in ("set", "frozenset"):
                is_set = True
            if isinstance(fn, ast.Attribute) and fn.attr in (
                    "union", "intersection", "difference",
                    "symmetric_difference", "copy") \
                    and isinstance(fn.value, ast.Name) \
                    and fn.value.id in self.set_typed:
                is_set = True
        if isinstance(value, ast.Name) and value.id in self.set_typed:
            is_set = True
        if is_set:
            self.set_typed.add(name)
        else:
            self.set_typed.discard(name)

    # -- expressions ---------------------------------------------------- #

    def eval(self, expr: Optional[ast.expr]) -> TaintSet:
        if expr is None:
            return EMPTY
        if isinstance(expr, ast.Constant):
            return EMPTY
        if isinstance(expr, ast.Name):
            return self.state.get(expr.id, EMPTY)
        if isinstance(expr, ast.Attribute):
            return self.eval(expr.value)
        if isinstance(expr, ast.Subscript):
            return self.eval(expr.value) | self.eval(expr.slice)
        if isinstance(expr, ast.Call):
            return self.eval_call(expr)
        if isinstance(expr, (ast.BinOp, ast.BoolOp, ast.Compare,
                             ast.UnaryOp, ast.IfExp, ast.JoinedStr,
                             ast.FormattedValue, ast.Starred, ast.Await,
                             ast.Yield, ast.YieldFrom, ast.Slice)):
            out: TaintSet = EMPTY
            for child in ast.iter_child_nodes(expr):
                if isinstance(child, ast.expr):
                    out |= self.eval(child)
            return out
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            out = EMPTY
            for elt in expr.elts:
                out |= self.eval(elt)
            return out
        if isinstance(expr, ast.Dict):
            out = EMPTY
            for key in expr.keys:
                if key is not None:
                    out |= self.eval(key)
            for val in expr.values:
                out |= self.eval(val)
            return out
        if isinstance(expr, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                             ast.DictComp)):
            return self._eval_comprehension(expr)
        if isinstance(expr, ast.Lambda):
            return EMPTY
        return EMPTY

    def _eval_comprehension(self, expr) -> TaintSet:
        saved: Dict[str, Optional[TaintSet]] = {}
        for gen in expr.generators:
            taints = self.eval(gen.iter) | self._iteration_order_taint(gen.iter)
            for name in _target_names(gen.target):
                saved.setdefault(name, self.state.get(name))
                self.state[name] = taints
            for cond in gen.ifs:
                self.eval(cond)
        if isinstance(expr, ast.DictComp):
            out = self.eval(expr.key) | self.eval(expr.value)
        else:
            out = self.eval(expr.elt)
        for name, old in saved.items():
            if old is None:
                self.state.pop(name, None)
            else:
                self.state[name] = old
        return out

    # -- calls ---------------------------------------------------------- #

    def eval_call(self, call: ast.Call) -> TaintSet:
        target = self.resolver.resolve(call)
        name = target_name(target)
        arg_taints = [self.eval(a) for a in call.args]
        kw_taints = {(kw.arg or "**"): self.eval(kw.value)
                     for kw in call.keywords}
        all_args: TaintSet = EMPTY
        for t in arg_taints:
            all_args |= t
        for t in kw_taints.values():
            all_args |= t
        if isinstance(call.func, ast.Attribute):
            # Method calls pass the receiver's taint through to the
            # result (``future.result()``, ``payload.get(...)``).
            all_args |= self.eval(call.func.value)

        # Rule-specific argument sinks (SweepRow fields, span attrs, ...).
        for sink, expr in self.sinks.call_arg_sinks(self.info, call, target):
            self._check_sink(sink, call.lineno, self.eval(expr))

        if isinstance(target, FunctionInfo):
            return self._eval_internal_call(call, target, arg_taints,
                                            kw_taints, all_args)
        if isinstance(target, ClassInfo):
            # Constructing an object from tainted inputs keeps the taint.
            return all_args

        # External / unresolved call: sources, neutralisers, passthrough.
        short = name.rsplit(".", 1)[-1]
        source = self._external_source(name, short, call)
        if source is not None:
            return all_args | frozenset({source})
        if short in _ALL_NEUTRAL:
            return EMPTY
        if short in _ORDER_NEUTRAL:
            return frozenset(t for t in all_args if t.kind != ORDER)
        return all_args

    def _external_source(self, name: str, short: str,
                         call: ast.Call) -> Optional[Taint]:
        """Match an external call against the source tables."""
        line = call.lineno
        parts = name.split(".")
        if name in _VALUE_CALLS or (len(parts) == 2
                                    and parts[0] == "datetime"
                                    and short in ("now", "utcnow", "today")):
            return Taint(VALUE, f"{name}()",
                         trace=(self._hop(line, f"{name}() source"),))
        if len(parts) >= 2 and parts[0] == "time" and short in _TIME_ATTRS:
            return Taint(VALUE, f"time.{short}() wall-clock read",
                         trace=(self._hop(line, f"time.{short}() source"),))
        if name in _ORDER_CALLS or short == "imap_unordered":
            return Taint(ORDER, f"{name}() completion/listing order",
                         trace=(self._hop(line, f"{name}() source"),))
        if self.info.module.rel.endswith(_RNG_EXEMPT_SUFFIX):
            return None
        if len(parts) >= 2 and parts[-2] == "random" \
                and short in _NP_RANDOM_DRAWS:
            return Taint(VALUE, f"unseeded module-level RNG draw {name}()",
                         trace=(self._hop(line, f"{name}() source"),))
        if len(parts) >= 2 and parts[-2] == "random" \
                and short == "default_rng" and not call.args:
            return Taint(VALUE, "np.random.default_rng() without a seed",
                         trace=(self._hop(line, f"{name}() source"),))
        if isinstance(call.func, ast.Attribute) and short == "pop" \
                and isinstance(call.func.value, ast.Name) \
                and call.func.value.id in self.set_typed and not call.args:
            return Taint(ORDER, "set.pop() picks an arbitrary element",
                         trace=(self._hop(line, "set.pop() source"),))
        return None

    def _eval_internal_call(self, call: ast.Call, callee: FunctionInfo,
                            arg_taints: List[TaintSet],
                            kw_taints: Dict[str, TaintSet],
                            all_args: TaintSet) -> TaintSet:
        summary = self.analysis.summaries.get(callee.qname)
        if summary is None:
            return all_args
        line = call.lineno
        result: Set[Taint] = set()
        call_hop = self._hop(line, f"call {callee.short}()"
                                   f" from {self.info.short}()")
        for t in summary.ret_taints:
            result.add(t.hop(call_hop))

        # Map argument taints onto callee parameter names.
        params = callee.params
        bound: Dict[str, TaintSet] = {}
        for i, taints in enumerate(arg_taints):
            if i < len(params):
                bound[params[i]] = taints
        for name, taints in kw_taints.items():
            if name == "**":
                for p in params:
                    bound[p] = bound.get(p, EMPTY) | taints
            elif name in params:
                bound[name] = bound.get(name, EMPTY) | taints

        for pname, hops in summary.ret_params.items():
            for t in bound.get(pname, EMPTY):
                passed = t.hop(self._hop(
                    line, f"passed to {callee.short}({pname})"))
                for hop in hops:
                    passed = passed.hop(hop)
                result.add(passed)
        for psink in summary.param_sinks:
            taints = bound.get(psink.param, EMPTY)
            into = self._hop(line, f"passed to {callee.short}"
                                   f"({psink.param})")
            for t in concrete(taints):
                hit = t.hop(into)
                for hop in psink.hops:
                    hit = hit.hop(hop)
                self.sink_hits.append(SinkHit(
                    path=self.info.module.rel, line=line, sink=psink.sink,
                    func=self.info.short, taint=hit))
            for name in params_of(taints):
                self.param_sinks.append(ParamSink(
                    param=name, sink=psink.sink,
                    hops=(into,) + psink.hops))
        return frozenset(result)


def _target_names(target: ast.expr) -> List[str]:
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List, ast.Starred)):
        out: List[str] = []
        for child in ast.iter_child_nodes(target):
            if isinstance(child, ast.expr):
                out.extend(_target_names(child))
        return out
    return []


def render_trace(taint: Taint) -> str:
    """``source -> hop -> ... -> sink`` rendering for finding hints."""
    return " -> ".join(taint.trace) if taint.trace else taint.source


__all__ = ["Taint", "TaintSet", "TaintAnalysis", "FunctionSummary",
           "SinkSpec", "SinkHit", "ParamSink", "render_trace", "concrete",
           "params_of", "ORDER", "VALUE", "PARAM", "EMPTY", "MAX_TRACE",
           "MAX_PASSES"]
