"""``flow-determinism`` — nondeterminism may not reach a reproducible sink.

The repo's core promise is bitwise-identical tours and sweep rows across
``engine="dense"|"kernel"|"batch"`` and any ``jobs=N``.  That promise
dies silently when a nondeterministic value (or ordering) flows — often
several calls deep — into one of the *reproducible sinks*:

* the return value of a planner (any ``repro`` function returning a
  ``CollectionTour``),
* a deterministic :class:`~repro.experiments.runner.SweepRow` field
  (everything except the measured ``mean_time_s``/``std_time_s``),
* a cache key (any ``repro`` function named ``*_key``/``cache_key`` —
  the :class:`~repro.experiments.artifacts.ArtifactCache` and
  ``SparseCoverage`` keying helpers),
* a traced span attribute (``span(..., attr=value)``) — span streams are
  diffed across runs by the observability tests.

This rule seeds the taint lattice of :mod:`repro.analysis.flow.taint`
at the nondeterminism sources (wall-clock reads, unseeded RNG draws,
``id()``/``hash()``/entropy, set iteration, worker completion order),
propagates it interprocedurally via per-function summaries, and reports
every concrete taint observed at a sink, with the full
``source -> hop -> ... -> sink`` trace rendered in the finding's hint.

Known limits (by design): attribute *stores* drop taint, so the
sanctioned wall-clock plumbing (``Timer``/``MetricsRegistry`` writing
``meta["perf"]["seconds"]``, excluded from determinism comparisons)
never fires; ``dict`` iteration is insertion-ordered in supported
Pythons and is not a source.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, List, Optional, Set, Tuple

from repro.analysis.engine import Finding, Project
from repro.analysis.flow.callgraph import FunctionInfo, short_name, target_name
from repro.analysis.flow.taint import SinkHit, SinkSpec, render_trace

#: SweepRow constructor fields, in declaration order.
SWEEPROW_FIELDS: Tuple[str, ...] = (
    "param_name", "param_value", "algorithm", "mean_volume_gb",
    "std_volume_gb", "mean_time_s", "std_time_s", "n_instances", "perf")

#: SweepRow fields excluded from ``deterministic_dict()`` — taint landing
#: only there is measured wall-clock, not a reproducibility bug.
_TIME_FIELDS = frozenset({"mean_time_s", "std_time_s"})

_TOUR_ANN_RE = re.compile(r"\bCollectionTour\b|\bTour\b")


class DeterminismSinks(SinkSpec):
    """The reproducible sinks listed in the module docstring."""

    def return_sink(self, info: FunctionInfo) -> Optional[str]:
        if not info.module.is_repro_module:
            return None
        if _TOUR_ANN_RE.search(info.return_annotation):
            return f"the planner return value of {info.short}()"
        if info.name.endswith("_key") or info.name == "cache_key":
            return f"the cache key built by {info.short}()"
        return None

    def call_arg_sinks(self, info: FunctionInfo, call: ast.Call,
                       target: object) -> List[Tuple[str, ast.expr]]:
        if not info.module.is_repro_module:
            return []
        short = short_name(target_name(target))
        out: List[Tuple[str, ast.expr]] = []
        if short == "SweepRow":
            for i, arg in enumerate(call.args):
                if i < len(SWEEPROW_FIELDS) \
                        and SWEEPROW_FIELDS[i] not in _TIME_FIELDS:
                    out.append((f"SweepRow deterministic field "
                                f"{SWEEPROW_FIELDS[i]!r}", arg))
            for kw in call.keywords:
                if kw.arg is None:
                    out.append(("SweepRow deterministic fields (**kwargs)",
                                kw.value))
                elif kw.arg not in _TIME_FIELDS:
                    out.append((f"SweepRow deterministic field {kw.arg!r}",
                                kw.value))
        elif short == "span":
            for kw in call.keywords:
                if kw.arg is not None:
                    out.append((f"traced span attribute {kw.arg!r}",
                                kw.value))
        return out


class FlowDeterminismRule:
    """Report nondeterministic taint reaching a reproducible sink."""

    rule_id = "flow-determinism"
    description = ("nondeterminism sources (clock, unseeded RNG, id(), "
                   "set/completion order) must not flow into planner "
                   "returns, SweepRow fields, cache keys, or span "
                   "attributes")

    def check(self, project: Project) -> Iterator[Finding]:
        from repro.analysis.flow import FlowContext
        ctx = FlowContext.for_project(project)
        analysis = ctx.taint_analysis(DeterminismSinks())
        seen: Set[Tuple[str, int, str, str, str]] = set()
        for hit in analysis.all_sink_hits():
            key = (hit.path, hit.line, hit.sink, hit.taint.kind,
                   hit.taint.source)
            if key in seen:
                continue
            seen.add(key)
            yield self._finding(hit)

    def _finding(self, hit: SinkHit) -> Finding:
        return Finding(
            rule=self.rule_id, path=hit.path, line=hit.line,
            message=f"{hit.taint.kind}-nondeterminism from "
                    f"{hit.taint.source} reaches {hit.sink} "
                    f"(in {hit.func}())",
            hint=f"trace: {render_trace(hit.taint)}; thread a seeded "
                 "Generator / sort before iterating / key on stable data, "
                 "or add '# repro: allow[flow-determinism]' with a reason "
                 "if the sink is insensitive to this value")


__all__ = ["FlowDeterminismRule", "DeterminismSinks", "SWEEPROW_FIELDS"]
