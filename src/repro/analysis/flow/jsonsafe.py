"""JSON-safety classification for the transport-purity rule.

Every value crossing the parallel executor's process boundary travels as
``json.dumps`` output, so the static question is: *can this expression
ever evaluate to something the default JSON encoder rejects?*  The
answer is a three-point lattice:

* ``SAFE`` — provably encodable: str/int/float/bool/None constants,
  containers of SAFE values, ``float()``/``str()``/``round()``-style
  coercions, ``.item()``/``.tolist()`` materialisations, ``json.dumps``
  output, internal functions whose returns classify SAFE;
* ``UNSAFE(reason)`` — provably rejected: ``bytes``, ``set`` literals,
  numpy calls (``np.mean`` returns ``np.float64``, which ``json`` raises
  on), instances of project classes (a ``SensorNetwork`` or ``Tracer``
  handle is an object, not data), parameters annotated with such types;
* ``UNKNOWN`` — everything in between (attribute reads, ``Any``
  annotations, unresolved calls).

The rule only *errors on UNSAFE*: flagging UNKNOWN would drown the
report in the executor's legitimately dynamic ``Dict[str, Any]`` kwargs
channel, which the runtime ``json.dumps`` try/except already guards.
That asymmetry — prove the bug, not the absence of bugs — is the
documented contract in ``docs/analysis.md``.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.flow.callgraph import (
    CallGraph,
    ClassInfo,
    FunctionInfo,
    Resolver,
    target_name,
)

SAFE = "safe"
UNKNOWN = "unknown"
UNSAFE = "unsafe"

#: Call names (unqualified) whose result is always JSON-encodable.
_SAFE_CALLS = frozenset({
    "float", "int", "str", "bool", "round", "len", "abs", "repr", "format",
    "ord", "chr",
})

#: Dotted call names whose result is always JSON-encodable.
_SAFE_DOTTED = frozenset({
    "json.dumps", "json.loads", "os.getpid", "os.cpu_count", "time.time",
    "math.floor", "math.ceil",
})

#: Method names that materialise numpy values into Python scalars/lists.
_SAFE_METHODS = frozenset({"item", "tolist", "isoformat", "hexdigest",
                           "strip", "lstrip", "rstrip", "join", "format",
                           "lower", "upper", "split"})

#: Annotation tokens that keep an annotated value JSON-safe.
_SAFE_ANN_TOKENS = frozenset({
    "str", "int", "float", "bool", "None", "Optional", "Union", "List",
    "Dict", "Tuple", "Sequence", "Mapping", "Iterable", "list", "dict",
    "tuple", "typing",
})

_ANN_WORD_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_.]*")


@dataclass(frozen=True)
class JsonVerdict:
    """Classification of one expression plus the chain of evidence."""

    level: str                     #: SAFE | UNKNOWN | UNSAFE
    reason: str = ""               #: set when UNSAFE
    hops: Tuple[str, ...] = ()     #: ``file:line what`` evidence trail

    def hop(self, entry: str) -> "JsonVerdict":
        return JsonVerdict(self.level, self.reason, self.hops + (entry,))


SAFE_V = JsonVerdict(SAFE)
UNKNOWN_V = JsonVerdict(UNKNOWN)


def merge(verdicts: Sequence[JsonVerdict]) -> JsonVerdict:
    """Container join: one UNSAFE element poisons, one UNKNOWN dilutes."""
    worst = SAFE_V
    for v in verdicts:
        if v.level == UNSAFE:
            return v
        if v.level == UNKNOWN:
            worst = v
    return worst


def classify_annotation(text: str, graph: CallGraph) -> JsonVerdict:
    """Classify a value by its annotation text alone."""
    if not text:
        return UNKNOWN_V
    words = _ANN_WORD_RE.findall(text)
    if not words:
        return UNKNOWN_V
    for word in words:
        base = word.split(".")[-1]
        if base in ("Any", "object", "bytes", "bytearray", "set",
                    "frozenset", "Set", "FrozenSet", "ndarray", "Callable"):
            if base in ("Any", "object", "Callable"):
                return UNKNOWN_V
            return JsonVerdict(UNSAFE,
                               f"annotated {text!r} is not JSON-encodable")
        if base in _SAFE_ANN_TOKENS:
            continue
        # A project class named in an annotation is an object handle.
        for cls in graph.classes.values():
            if cls.name == base:
                return JsonVerdict(
                    UNSAFE, f"annotated {text!r}: {base} instances cross "
                            "the process boundary as objects, not JSON")
        return UNKNOWN_V
    return SAFE_V


class JsonClassifier:
    """Classifies expressions inside one function body.

    Interprocedural via return types: a call to an internal function is
    classified by its return annotation when present, else by
    classifying its ``return`` expressions (memoised on the analysis,
    depth-capped so cycles terminate).
    """

    def __init__(self, graph: CallGraph, info: FunctionInfo,
                 ret_memo: Optional[Dict[str, JsonVerdict]] = None,
                 depth: int = 0) -> None:
        self.graph = graph
        self.info = info
        env = graph.env_for(info.module)
        assert env is not None
        self.resolver = Resolver(graph, env, info)
        self.ret_memo = ret_memo if ret_memo is not None else {}
        self.depth = depth
        self.state: Dict[str, JsonVerdict] = {}
        for name in info.params:
            ann = info.param_annotation(name)
            self.state[name] = classify_annotation(ann, graph)

    def _site(self, line: int, what: str) -> str:
        return f"{self.info.module.rel}:{line} {what}"

    # -- statement walk (assignments only; order approximates flow) ----- #

    def learn(self) -> None:
        """Record variable classifications from the body's assignments."""
        for stmt in ast.walk(self.info.node):
            if isinstance(stmt, ast.Assign):
                verdict = self.classify(stmt.value)
                for tgt in stmt.targets:
                    self._learn_target(tgt, verdict, stmt.value)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name):
                if stmt.value is not None:
                    verdict = self.classify(stmt.value)
                else:
                    verdict = classify_annotation(
                        (ast.unparse(stmt.annotation)
                         if stmt.annotation else ""), self.graph)
                self.state[stmt.target.id] = verdict
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                verdict = self.classify(stmt.iter)
                self._learn_target(stmt.target, verdict, None)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    if item.optional_vars is not None:
                        self._learn_target(item.optional_vars,
                                           self.classify(item.context_expr),
                                           item.context_expr)

    def _learn_target(self, target: ast.expr, verdict: JsonVerdict,
                      value: Optional[ast.expr]) -> None:
        if isinstance(target, ast.Name):
            self.state[target.id] = verdict
            if value is not None:
                self.resolver.note_assignment(target.id, value)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._learn_target(elt, verdict, None)

    # -- expression classification -------------------------------------- #

    def classify(self, expr: Optional[ast.expr]) -> JsonVerdict:
        if expr is None:
            return SAFE_V
        line = getattr(expr, "lineno", self.info.lineno)
        if isinstance(expr, ast.Constant):
            if isinstance(expr.value, (bytes, bytearray)):
                return JsonVerdict(
                    UNSAFE, "bytes are not JSON-encodable",
                    hops=(self._site(line, "bytes literal"),))
            return SAFE_V
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return JsonVerdict(
                UNSAFE, "set/frozenset is not JSON-encodable",
                hops=(self._site(line, "set literal"),))
        if isinstance(expr, ast.Name):
            return self.state.get(expr.id, UNKNOWN_V)
        if isinstance(expr, (ast.List, ast.Tuple)):
            return merge([self.classify(e) for e in expr.elts])
        if isinstance(expr, ast.Dict):
            parts = [self.classify(v) for v in expr.values]
            parts.extend(self.classify(k) for k in expr.keys
                         if k is not None)
            return merge(parts)
        if isinstance(expr, (ast.ListComp, ast.GeneratorExp)):
            return self._classify_comp(expr, [expr.elt])
        if isinstance(expr, ast.DictComp):
            return self._classify_comp(expr, [expr.key, expr.value])
        if isinstance(expr, ast.Call):
            return self._classify_call(expr)
        if isinstance(expr, ast.IfExp):
            return merge([self.classify(expr.body),
                          self.classify(expr.orelse)])
        if isinstance(expr, (ast.JoinedStr, ast.FormattedValue)):
            return SAFE_V
        if isinstance(expr, ast.BoolOp):
            return merge([self.classify(v) for v in expr.values])
        if isinstance(expr, ast.Compare):
            return SAFE_V                      # comparisons yield bools
        if isinstance(expr, ast.BinOp):
            return merge([self.classify(expr.left),
                          self.classify(expr.right)])
        if isinstance(expr, ast.UnaryOp):
            return self.classify(expr.operand)
        if isinstance(expr, ast.Starred):
            return self.classify(expr.value)
        return UNKNOWN_V                       # attributes, subscripts, ...

    def _classify_comp(self, expr, elts: List[ast.expr]) -> JsonVerdict:
        saved: Dict[str, Optional[JsonVerdict]] = {}
        for gen in expr.generators:
            iter_v = self.classify(gen.iter)
            for node in ast.walk(gen.target):
                if isinstance(node, ast.Name):
                    saved.setdefault(node.id, self.state.get(node.id))
                    # Elements of a SAFE iterable are SAFE.
                    self.state[node.id] = (iter_v if iter_v.level != UNSAFE
                                           else UNKNOWN_V)
        out = merge([self.classify(e) for e in elts])
        for name, old in saved.items():
            if old is None:
                self.state.pop(name, None)
            else:
                self.state[name] = old
        return out

    def _classify_call(self, call: ast.Call) -> JsonVerdict:
        line = call.lineno
        target = self.resolver.resolve(call)
        name = target_name(target)
        short = name.rsplit(".", 1)[-1]
        if isinstance(target, ClassInfo):
            if target.module.is_repro_module:
                return JsonVerdict(
                    UNSAFE, f"{target.name} instance is an object handle, "
                            "not JSON data",
                    hops=(self._site(line, f"{target.name}(...) "
                                           "constructed"),))
            return UNKNOWN_V
        if isinstance(target, FunctionInfo):
            return self._classify_internal_return(target).hop(
                self._site(line, f"returned by {target.short}()"))
        root = name.split(".")[0]
        if root in ("np", "numpy"):
            return JsonVerdict(
                UNSAFE, f"{name}() yields a numpy object "
                        "(np.float64/ndarray), which json.dumps rejects",
                hops=(self._site(line, f"{name}() call"),))
        if name in _SAFE_DOTTED or short in _SAFE_CALLS:
            return SAFE_V
        if isinstance(call.func, ast.Attribute) and short in _SAFE_METHODS:
            return SAFE_V
        if short in ("dict", "list", "tuple", "sorted"):
            parts = [self.classify(a) for a in call.args]
            parts.extend(self.classify(kw.value) for kw in call.keywords)
            return merge(parts) if parts else SAFE_V
        if short in ("set", "frozenset"):
            return JsonVerdict(
                UNSAFE, "set/frozenset is not JSON-encodable",
                hops=(self._site(line, f"{short}(...) call"),))
        return UNKNOWN_V

    def _classify_internal_return(self, callee: FunctionInfo) -> JsonVerdict:
        memo = self.ret_memo
        if callee.qname in memo:
            return memo[callee.qname]
        ann = callee.return_annotation
        if ann:
            verdict = classify_annotation(ann, self.graph)
            memo[callee.qname] = verdict
            return verdict
        if self.depth >= 3:
            return UNKNOWN_V
        memo[callee.qname] = UNKNOWN_V        # cycle breaker
        sub = JsonClassifier(self.graph, callee, ret_memo=memo,
                             depth=self.depth + 1)
        sub.learn()
        verdicts = [sub.classify(stmt.value)
                    for stmt in ast.walk(callee.node)
                    if isinstance(stmt, ast.Return)
                    and stmt.value is not None]
        verdict = merge(verdicts) if verdicts else SAFE_V
        memo[callee.qname] = verdict
        return verdict


def render_hops(verdict: JsonVerdict) -> str:
    """Evidence trail rendering for finding hints."""
    return " -> ".join(verdict.hops) if verdict.hops else verdict.reason


__all__ = ["JsonVerdict", "JsonClassifier", "classify_annotation", "merge",
           "render_hops", "SAFE", "UNKNOWN", "UNSAFE", "SAFE_V", "UNKNOWN_V"]
