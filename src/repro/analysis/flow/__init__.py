"""Interprocedural flow analysis for repro-lint (``--flow``).

This subpackage layers a call graph (:mod:`.callgraph`), a determinism
taint lattice (:mod:`.taint`), and a JSON-safety lattice
(:mod:`.jsonsafe`) on top of the per-file engine, and ships three rules
that consume them:

* ``flow-determinism`` (:mod:`.determinism`) — nondeterminism sources
  must not reach planner returns, SweepRow fields, cache keys, or span
  attributes;
* ``flow-transport`` (:mod:`.transport`) — the parallel worker boundary
  only carries provably JSON-safe data;
* ``flow-parity`` (:mod:`.parity`) — engine dispatch signatures and
  ``meta["perf"]`` key contracts must agree.

The expensive shared artifacts (call graph, taint fixpoint) are computed
once per :class:`~repro.analysis.engine.Project` through
:class:`FlowContext` and reused by every flow rule in the run.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.engine import Project, Rule
from repro.analysis.flow.callgraph import CallGraph, build_call_graph
from repro.analysis.flow.determinism import FlowDeterminismRule
from repro.analysis.flow.parity import FlowParityRule
from repro.analysis.flow.taint import SinkSpec, TaintAnalysis
from repro.analysis.flow.transport import FlowTransportRule

_CONTEXT_ATTR = "_repro_flow_context"


class FlowContext:
    """Per-project cache of the call graph and taint fixpoints."""

    def __init__(self, graph: CallGraph) -> None:
        self.graph = graph
        self._taint: Dict[type, TaintAnalysis] = {}

    @classmethod
    def for_project(cls, project: Project) -> "FlowContext":
        """The project's cached context, building it on first use."""
        ctx: Optional[FlowContext] = getattr(project, _CONTEXT_ATTR, None)
        if ctx is None:
            ctx = cls(build_call_graph(project))
            setattr(project, _CONTEXT_ATTR, ctx)
        return ctx

    def taint_analysis(self, sinks: SinkSpec) -> TaintAnalysis:
        """A taint fixpoint for *sinks*, cached by sink-spec type."""
        key = type(sinks)
        if key not in self._taint:
            self._taint[key] = TaintAnalysis(self.graph, sinks)
        return self._taint[key]


def flow_rules() -> List[Rule]:
    """The interprocedural rules, in deterministic order."""
    return [FlowDeterminismRule(), FlowTransportRule(), FlowParityRule()]


__all__ = ["FlowContext", "flow_rules", "FlowDeterminismRule",
           "FlowTransportRule", "FlowParityRule", "CallGraph",
           "build_call_graph"]
