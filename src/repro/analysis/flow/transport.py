"""``flow-transport`` — the worker boundary only carries JSON-safe data.

PR 5's parallel executor ships work as *data, not objects*: work units,
the config, and the instance set cross the process boundary as
``json.dumps`` output, and worker results come back the same way.  The
runtime guard is a try/except around one dump site; everything else —
a numpy scalar in a kwargs dict, a ``Tracer`` handle in ``initargs``, a
``set`` in a worker's return payload — surfaces only when a sweep
actually exercises that path.

This rule finds the transport surface from the call graph and proves
what it can statically:

* **submission sites** — ``pool.submit(worker, *args)`` and
  ``Executor(initializer=..., initargs=(...))``: the extra ``submit``
  arguments and every ``initargs`` element are classified with the
  JSON-safety lattice (:mod:`repro.analysis.flow.jsonsafe`);
* **worker entries** — the functions named at those sites: every
  ``return`` expression is classified (that value is the boundary
  crossing back);
* **dump sites** — every ``json.dumps(x)`` argument in the submitting
  module and in all functions reachable from a worker entry;
* **boundary producers** — returns of ``*.as_dict`` methods and
  ``*_to_json`` functions referenced from a transport module.

Only *provably unsafe* values are reported (see the lattice docs);
``Dict[str, Any]`` kwargs channels stay UNKNOWN and silent — the rule
catches the class of bug, not the absence of proof.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.engine import Finding, Project
from repro.analysis.flow.callgraph import (
    CallGraph,
    FunctionInfo,
    Resolver,
    target_name,
)
from repro.analysis.flow.jsonsafe import (
    UNSAFE,
    JsonClassifier,
    JsonVerdict,
    render_hops,
)


class _Surface:
    """The discovered transport surface of one project."""

    def __init__(self) -> None:
        #: worker-entry / initializer functions, keyed by qname
        self.entries: Dict[str, FunctionInfo] = {}
        #: (owning function, description, expr) values crossing at a site
        self.shipped: List[Tuple[FunctionInfo, str, ast.expr]] = []
        #: modules (by rel path) containing a submission site
        self.transport_modules: Set[str] = set()


def _discover(graph: CallGraph) -> _Surface:
    """Scan every repro function for submission sites."""
    surface = _Surface()
    for info in sorted(graph.repro_functions(), key=lambda f: f.qname):
        env = graph.env_for(info.module)
        if env is None:
            continue
        resolver = Resolver(graph, env, info)
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr == "submit" \
                    and node.args:
                entry = _entry_function(resolver, node.args[0])
                if entry is not None:
                    surface.entries[entry.qname] = entry
                    surface.transport_modules.add(info.module.rel)
                    for arg in node.args[1:]:
                        surface.shipped.append(
                            (info, f"argument submitted to "
                                   f"{entry.short}()", arg))
            for kw in node.keywords:
                if kw.arg == "initializer":
                    entry = _entry_function(resolver, kw.value)
                    if entry is not None:
                        surface.entries[entry.qname] = entry
                        surface.transport_modules.add(info.module.rel)
                elif kw.arg == "initargs" and isinstance(
                        kw.value, (ast.Tuple, ast.List)):
                    surface.transport_modules.add(info.module.rel)
                    for i, elt in enumerate(kw.value.elts):
                        surface.shipped.append(
                            (info, f"initargs[{i}]", elt))
    return surface


def _entry_function(resolver: Resolver,
                    expr: ast.expr) -> Optional[FunctionInfo]:
    """Resolve a callable reference passed to submit/initializer."""
    if isinstance(expr, ast.Name):
        target = resolver.resolve_name(expr.id)
        if isinstance(target, FunctionInfo):
            return target
    return None


class FlowTransportRule:
    """Prove JSON-safety violations on the worker transport surface."""

    rule_id = "flow-transport"
    description = ("values crossing the parallel worker boundary (submit "
                   "args, initargs, worker returns, json.dumps payloads) "
                   "must be provably JSON-safe")

    def check(self, project: Project) -> Iterator[Finding]:
        from repro.analysis.flow import FlowContext
        ctx = FlowContext.for_project(project)
        graph = ctx.graph
        surface = _discover(graph)
        ret_memo: Dict[str, JsonVerdict] = {}
        seen: Set[Tuple[str, int, str]] = set()

        def emit(info: FunctionInfo, line: int, what: str,
                 verdict: JsonVerdict) -> Optional[Finding]:
            message = (f"non-JSON-safe value crosses the worker boundary "
                       f"via {what}: {verdict.reason}")
            key = (info.module.rel, line, message)
            if key in seen:
                return None
            seen.add(key)
            return Finding(
                rule=self.rule_id, path=info.module.rel, line=line,
                message=message,
                hint=f"evidence: {render_hops(verdict)}; coerce to "
                     "plain str/int/float/bool/list/dict (e.g. float(x), "
                     "x.tolist()) before shipping, or add "
                     "'# repro: allow[flow-transport]' with a reason")

        # Values shipped at the submission sites.
        for info, what, expr in surface.shipped:
            clf = JsonClassifier(graph, info, ret_memo=ret_memo)
            clf.learn()
            verdict = clf.classify(expr)
            if verdict.level == UNSAFE:
                finding = emit(info, expr.lineno, what, verdict)
                if finding is not None:
                    yield finding

        # Worker-entry returns: the value travelling back to the parent.
        for qname in sorted(surface.entries):
            info = surface.entries[qname]
            clf = JsonClassifier(graph, info, ret_memo=ret_memo)
            clf.learn()
            for stmt in ast.walk(info.node):
                if isinstance(stmt, ast.Return) and stmt.value is not None:
                    verdict = clf.classify(stmt.value)
                    if verdict.level == UNSAFE:
                        finding = emit(
                            info, stmt.lineno,
                            f"the return value of worker entry "
                            f"{info.short}()", verdict)
                        if finding is not None:
                            yield finding

        # json.dumps payloads in transport modules and worker-reachable
        # code, plus returns of boundary producers referenced there.
        reachable = graph.reachable_from(sorted(surface.entries))
        for info in sorted(graph.repro_functions(), key=lambda f: f.qname):
            in_scope = (info.qname in reachable
                        or info.module.rel in surface.transport_modules)
            if not in_scope:
                continue
            clf = JsonClassifier(graph, info, ret_memo=ret_memo)
            clf.learn()
            for node in ast.walk(info.node):
                if isinstance(node, ast.Call) and node.args:
                    name = target_name(clf.resolver.resolve(node))
                    if name == "json.dumps" or name.endswith(".json.dumps"):
                        verdict = clf.classify(node.args[0])
                        if verdict.level == UNSAFE:
                            finding = emit(
                                info, node.lineno,
                                f"a json.dumps payload in {info.short}()",
                                verdict)
                            if finding is not None:
                                yield finding
            if self._is_boundary_producer(info, surface):
                for stmt in ast.walk(info.node):
                    if isinstance(stmt, ast.Return) \
                            and stmt.value is not None:
                        verdict = clf.classify(stmt.value)
                        if verdict.level == UNSAFE:
                            finding = emit(
                                info, stmt.lineno,
                                f"the transport payload built by "
                                f"{info.short}()", verdict)
                            if finding is not None:
                                yield finding

    @staticmethod
    def _is_boundary_producer(info: FunctionInfo,
                              surface: _Surface) -> bool:
        """as_dict / *_to_json helpers referenced from transport code."""
        if not surface.transport_modules:
            return False
        return info.name == "as_dict" or info.name.endswith("_to_json")


__all__ = ["FlowTransportRule"]
