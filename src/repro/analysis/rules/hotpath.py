"""``hot-path-purity`` — no dense ``(m, n)`` temporaries in marked code.

PR 1's planner kernel exists because the greedy loops must never
materialise an ``(m, n)`` candidates-by-sensors (or candidates-by-tour)
array per iteration; `docs/architecture.md` pins that contract.  This
rule makes the contract machine-checked: inside code marked
``# repro: hot-path`` it flags

* ``np.zeros`` / ``np.ones`` / ``np.empty`` / ``np.full`` with a
  multi-dimensional shape,
* ``np.outer`` (always a dense 2-D product),
* calls to ``pairwise_distances`` (an ``(n, n)`` matrix by definition),
* broadcasted 2-D temporaries of the form ``a[:, None] <op> b[None, :]``,
* their batched 3-D cousins, e.g. ``a[:, :, None] <op> b[:, None, :]`` —
  the ``(B, m, n)`` temporaries ``repro.core.batch`` must avoid (its
  column-stacked kernel carries a leading variant axis, so the old
  two-axis pattern alone would miss a dense rescore),
* gram-matrix matmuls ``x @ y.T`` / ``x.T @ y`` — the dense
  ``(m, m)`` intersection-count products the site-reduction pre-pass
  (``repro.core.reduce``) must build chunked and sparse instead,
* per-iteration reallocating calls — ``np.insert`` / ``np.delete`` /
  ``np.append`` / ``np.concatenate`` — lexically inside a ``for`` /
  ``while`` loop: each call copies its whole operand, so an
  insertion-construction loop built on them is quadratic.  The
  vectorized GRASP engine (``repro.orienteering``) keeps these out of
  its per-restart loops; the one deliberate exception (the scalar
  reference constructor) carries an allow comment.

Scope markers nest: a ``# repro: hot-path`` comment at module top level
marks the whole file; a function containing ``# repro: cold-path``
opts back out (the legacy dense-engine branches); a single function in an
otherwise cold module can be marked hot on its own.  Intentional dense
allocations (small, once-per-run) carry
``# repro: allow[hot-path-purity] -- reason``.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from repro.analysis.engine import Finding, Project, SourceModule, iter_call_name

_ALLOC_FUNCS = frozenset({"zeros", "ones", "empty", "full"})

#: numpy calls that reallocate (copy) their whole operand — quadratic
#: when issued once per loop iteration in hot code.
_LOOP_ALLOC_FUNCS = frozenset({"insert", "delete", "append", "concatenate"})


def _marker_scopes(mod: SourceModule
                   ) -> Tuple[bool, List[Tuple[int, int, bool]]]:
    """Resolve markers to ``(module_hot, [(start, end, hot), ...])``.

    Each marker attaches to the innermost function/class span containing
    it (module scope when none does).  Spans are returned unsorted; the
    *innermost* span containing a line decides its state.
    """
    spans = mod.scope_spans()
    module_hot = False
    marked: List[Tuple[int, int, bool]] = []
    for line, kind in mod.markers:
        hot = kind == "hot-path"
        enclosing = [s for s in spans if s[0] <= line <= s[1]]
        if not enclosing:
            module_hot = module_hot or hot
            continue
        start, end = min(enclosing, key=lambda s: s[1] - s[0])
        marked.append((start, end, hot))
    return module_hot, marked


def _is_hot(line: int, module_hot: bool,
            marked: List[Tuple[int, int, bool]]) -> bool:
    enclosing = [s for s in marked if s[0] <= line <= s[1]]
    if not enclosing:
        return module_hot
    innermost = min(enclosing, key=lambda s: s[1] - s[0])
    return innermost[2]


def _broadcast_axes(node: ast.expr) -> Optional[str]:
    """Classify axis-inserting subscripts on 2-D and 3-D operands.

    A trailing new axis (``x[:, None]``, ``x[:, :, None]``) is ``"col"``;
    a new axis inserted *before* a kept one (``x[None, :]``,
    ``x[:, None, :]``) is ``"row"``.  A col/row pair inside one binary
    op is the outer-product broadcast — the ``(m, n)`` or batched
    ``(B, m, n)`` temporary this rule exists to ban.
    """
    if not isinstance(node, ast.Subscript):
        return None
    sl = node.slice
    if not (isinstance(sl, ast.Tuple) and len(sl.elts) in (2, 3)):
        return None
    kinds = []
    for elt in sl.elts:
        if isinstance(elt, ast.Constant) and elt.value is None:
            kinds.append("none")
        elif isinstance(elt, ast.Slice):
            kinds.append("slice")
        else:
            return None
    if "none" not in kinds or "slice" not in kinds:
        return None
    last_slice = max(i for i, k in enumerate(kinds) if k == "slice")
    if any(k == "none" and i < last_slice for i, k in enumerate(kinds)):
        return "row"
    return "col"


class HotPathPurityRule:
    """Flag dense 2-D allocations inside ``# repro: hot-path`` scopes."""

    rule_id = "hot-path-purity"
    description = ("no dense (m, n) temporaries inside '# repro: hot-path' "
                   "code — use the kernel's sparse/incremental state")

    def check(self, project: Project) -> Iterator[Finding]:
        for mod in project.modules:
            if mod.tree is None or not mod.markers:
                continue
            module_hot, marked = _marker_scopes(mod)
            if not module_hot and not any(hot for _, _, hot in marked):
                continue
            loop_spans = [
                (n.lineno, n.end_lineno) for n in ast.walk(mod.tree)
                if isinstance(n, (ast.For, ast.While))
                and n.end_lineno is not None]
            for node in ast.walk(mod.tree):
                found = self._classify(node)
                if found is None:
                    found = self._classify_loop_alloc(node, loop_spans)
                if found is None:
                    continue
                if not _is_hot(node.lineno, module_hot, marked):
                    continue
                yield Finding(
                    rule=self.rule_id, path=mod.rel, line=node.lineno,
                    message=f"{found} in hot-path code",
                    hint="serve this from PlannerKernel's incremental "
                         "state, move it behind a '# repro: cold-path' "
                         "function, or justify it with "
                         "'# repro: allow[hot-path-purity] -- reason'")

    @staticmethod
    def _classify(node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Call):
            chain = iter_call_name(node)
            tail = chain[-1] if chain else ""
            if tail in _ALLOC_FUNCS and len(chain) >= 2:
                shape = node.args[0] if node.args else None
                for kw in node.keywords:
                    if kw.arg == "shape":
                        shape = kw.value
                if isinstance(shape, (ast.Tuple, ast.List)) \
                        and len(shape.elts) >= 2:
                    dims = len(shape.elts)
                    return (f"dense {dims}-D allocation "
                            f"{'.'.join(chain)}(...)")
            if tail == "outer" and len(chain) >= 2:
                return f"dense outer product {'.'.join(chain)}(...)"
            if tail == "pairwise_distances":
                return "full pairwise-distance matrix pairwise_distances(...)"
        if isinstance(node, ast.BinOp):
            axes = {_broadcast_axes(node.left), _broadcast_axes(node.right)}
            if axes == {"col", "row"}:
                return ("broadcasted dense temporary "
                        "(a[..., None] op b[..., None, :])")
            if isinstance(node.op, ast.MatMult) \
                    and (_is_transpose(node.left)
                         or _is_transpose(node.right)):
                return "dense gram-matrix matmul (x @ y.T)"
        return None

    @staticmethod
    def _classify_loop_alloc(node: ast.AST,
                             loop_spans: List[Tuple[int, int]]
                             ) -> Optional[str]:
        """Flag whole-array reallocations issued once per loop iteration.

        Only unambiguous numpy calls (``np.…`` / ``numpy.…``) count —
        a method call like ``samples.append(x)`` is an O(1) list append,
        not a copy.
        """
        if not isinstance(node, ast.Call):
            return None
        chain = iter_call_name(node)
        if len(chain) != 2 or chain[0] not in ("np", "numpy"):
            return None
        if chain[-1] not in _LOOP_ALLOC_FUNCS:
            return None
        if not any(start <= node.lineno <= end
                   for start, end in loop_spans):
            return None
        return (f"per-iteration reallocation {'.'.join(chain)}(...) "
                f"inside a loop")


def _is_transpose(node: ast.expr) -> bool:
    """True for a ``<expr>.T`` operand (ndarray transpose attribute)."""
    return isinstance(node, ast.Attribute) and node.attr == "T"


__all__ = ["HotPathPurityRule"]
