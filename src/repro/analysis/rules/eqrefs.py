"""``paper-eq-refs`` — every cited equation exists in the paper digest.

Docstrings throughout ``repro.core`` anchor code to the paper with
``Eq. (N)`` / ``Eqs. 11–12`` citations; reviewers trust those anchors
when judging whether a change is faithful to the source.  This rule keeps
them honest in both directions:

* every equation number cited in a ``repro.*`` docstring must be a key of
  :data:`repro.analysis.equations.EQUATIONS` (so a citation of a
  nonexistent equation number — a typo, or the one equation the
  reproduction deliberately never cites — fails the build);
* the registry entry's *anchor* string must appear in ``PAPER.md``, so
  the registry itself cannot drift from the digest it points into.
"""

from __future__ import annotations

import re
from typing import Iterator, Set

from repro.analysis.engine import Finding, Project
from repro.analysis.equations import EQUATIONS, PAPER_DOC

#: ``Eq. 13`` / ``Eq. (4)`` / ``Eqs. 11-12`` / ``Eqs. 6–9`` …
_EQ_REF_RE = re.compile(
    r"\bEqs?\.?\s*\(?\s*(\d+)\s*(?:[)\s]*[–—-]\s*\(?\s*(\d+))?")

#: Widest plausible paper equation-range citation.
_MAX_RANGE = 30


class PaperEquationRule:
    """Validate ``Eq. (N)`` docstring citations against the registry."""

    rule_id = "paper-eq-refs"
    description = ("docstring Eq./Eqs. citations must be registered in "
                   "repro.analysis.equations and anchored in PAPER.md")

    def check(self, project: Project) -> Iterator[Finding]:
        paper = project.read_root_file(PAPER_DOC)
        checked_anchors: Set[int] = set()
        for mod in project.repro_modules():
            if mod.tree is None:
                continue
            for start_line, text in mod.docstrings():
                for match in _EQ_REF_RE.finditer(text):
                    line = start_line + text[: match.start()].count("\n")
                    lo = int(match.group(1))
                    hi = int(match.group(2)) if match.group(2) else lo
                    if not lo <= hi <= lo + _MAX_RANGE:
                        hi = lo  # "Eq. 9) - 3" style false ranges
                    for num in range(lo, hi + 1):
                        entry = EQUATIONS.get(num)
                        if entry is None:
                            yield Finding(
                                rule=self.rule_id, path=mod.rel, line=line,
                                message=f"docstring cites Eq. ({num}) which "
                                        "is not in the equation registry",
                                hint="fix the citation or register the "
                                     "equation in repro.analysis.equations "
                                     "with its PAPER.md anchor")
                            continue
                        if paper is not None \
                                and num not in checked_anchors:
                            checked_anchors.add(num)
                            if entry.anchor not in paper:
                                yield Finding(
                                    rule=self.rule_id, path=mod.rel,
                                    line=line,
                                    message=f"Eq. ({num}) registry anchor "
                                            f"{entry.anchor!r} not found in "
                                            f"{PAPER_DOC}",
                                    hint="update the anchor in "
                                         "repro.analysis.equations to match "
                                         "the paper digest")


__all__ = ["PaperEquationRule"]
