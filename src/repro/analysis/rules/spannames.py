"""``obs-span-naming`` — dotted lowercase span names at every trace site.

The :mod:`repro.obs` profiling report and Chrome-trace export aggregate by
span *name*; a free-form name ("Rescore!", "kernelRescore") fragments the
aggregation and breaks grepping a trace back to its module.  This rule
checks every ``span("...")`` call site in the ``repro`` package: the first
argument, when it is a string literal, must be a dotted lowercase path

    <module>.<operation>            e.g. ``kernel.rescore``, ``alg2.round``

— at least two dot-separated segments, each ``[a-z][a-z0-9_]*``.  Call
sites passing a non-literal name (a variable, an f-string) are skipped:
the rule is a spelling check, not a data-flow analysis.

Recognised call shapes are the bare helper ``span(...)`` (the idiom used
by ``from repro.obs.tracer import span``) and method calls whose receiver
looks like a tracer (``tracer.span(...)``, ``trace.span(...)``,
``obs.span(...)``, ``self.tracer.span(...)``, …).  Unrelated ``.span``
attributes (e.g. a regex match span) do not fit those shapes.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.analysis.engine import Finding, Project, iter_call_name

#: Valid span names: two-plus dotted lowercase segments.
SPAN_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+$")

#: Receiver names (last link before ``.span``) treated as tracers.
TRACER_RECEIVERS = frozenset({
    "obs", "trace", "tracer", "_trace", "_tracer", "_active",
})


def _span_call_name(call: ast.Call) -> bool:
    """True when *call* is a recognised span-creation site."""
    chain = iter_call_name(call)
    if not chain or chain[-1] != "span":
        return False
    if len(chain) == 1:                      # bare span("...") helper
        return True
    return chain[-2] in TRACER_RECEIVERS     # tracer.span("..."), etc.


class ObsSpanNamingRule:
    """Require ``<module>.<operation>`` dotted lowercase span names."""

    rule_id = "obs-span-naming"
    description = ("span() names must be dotted lowercase paths "
                   "(<module>.<operation>, e.g. 'kernel.rescore')")

    def check(self, project: Project) -> Iterator[Finding]:
        for mod in project.repro_modules():
            if mod.tree is None:
                continue
            for node in ast.walk(mod.tree):
                if not isinstance(node, ast.Call) or not _span_call_name(node):
                    continue
                if not node.args:
                    continue
                first = node.args[0]
                if not (isinstance(first, ast.Constant)
                        and isinstance(first.value, str)):
                    continue          # dynamic name: nothing to spell-check
                name = first.value
                if SPAN_NAME_RE.match(name):
                    continue
                yield Finding(
                    rule=self.rule_id, path=mod.rel, line=node.lineno,
                    message=f"span name {name!r} is not a dotted lowercase "
                            "path (<module>.<operation>)",
                    hint="rename it like 'kernel.rescore' / 'alg2.round' so "
                         "report aggregation and trace grepping stay stable")


__all__ = ["ObsSpanNamingRule", "SPAN_NAME_RE", "TRACER_RECEIVERS"]
