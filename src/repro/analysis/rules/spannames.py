"""``obs-span-naming`` — dotted lowercase span names at every trace site.

The :mod:`repro.obs` profiling report and Chrome-trace export aggregate by
span *name*; a free-form name ("Rescore!", "kernelRescore") fragments the
aggregation and breaks grepping a trace back to its module.  This rule
checks every ``span("...")`` call site in the ``repro`` package: the first
argument, when it is a string literal, must be a dotted lowercase path

    <module>.<operation>            e.g. ``kernel.rescore``, ``alg2.round``

— at least two dot-separated segments, each ``[a-z][a-z0-9_]*``.  Call
sites passing a non-literal name (a variable, an f-string) are skipped:
the rule is a spelling check, not a data-flow analysis.

Recognised call shapes are the bare helper ``span(...)`` (the idiom used
by ``from repro.obs.tracer import span``) and method calls whose receiver
looks like a tracer (``tracer.span(...)``, ``trace.span(...)``,
``obs.span(...)``, ``self.tracer.span(...)``, …).  Unrelated ``.span``
attributes (e.g. a regex match span) do not fit those shapes.

The same namespace covers the run ledger: ``record_event("...")`` event
names, ``RunRecord(event="...")`` literals, and metric names registered
on the *ambient* registry (``get_metrics().counter("...")`` and friends)
must all be dotted ``family.verb`` paths — the regression observatory
aggregates by these strings exactly as the trace report aggregates by
span name.  Kernel-local registries (``self.metrics.counter("drains")``)
are exempt: their short names are namespaced later by the perf fold
(``kernel.*``) and are pinned by the ``meta["perf"]`` contract.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Optional

from repro.analysis.engine import Finding, Project, iter_call_name

#: Valid span names: two-plus dotted lowercase segments.
SPAN_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+$")

#: Receiver names (last link before ``.span``) treated as tracers.
TRACER_RECEIVERS = frozenset({
    "obs", "trace", "tracer", "_trace", "_tracer", "_active",
})


#: Get-or-create methods of a :class:`~repro.obs.metrics.MetricsRegistry`.
METRIC_METHODS = frozenset({"counter", "gauge", "histogram", "timer"})


def _span_call_name(call: ast.Call) -> bool:
    """True when *call* is a recognised span-creation site."""
    chain = iter_call_name(call)
    if not chain or chain[-1] != "span":
        return False
    if len(chain) == 1:                      # bare span("...") helper
        return True
    return chain[-2] in TRACER_RECEIVERS     # tracer.span("..."), etc.


def _first_arg_literal(call: ast.Call) -> Optional[str]:
    """The call's first positional argument when it is a string literal."""
    if call.args and isinstance(call.args[0], ast.Constant) \
            and isinstance(call.args[0].value, str):
        return call.args[0].value
    return None


def _named_literal(call: ast.Call) -> Optional[tuple]:
    """``(name, what)`` for any recognised naming site of *call*.

    Covers ledger event emission (``record_event("...")``, direct
    ``RunRecord(event="...")`` construction) and ambient-registry metric
    registration (``get_metrics().counter("...")`` etc. — the receiver
    must literally be a ``get_metrics()`` call, which is what exempts
    kernel-local registries).  Returns ``None`` when *call* is none of
    those or the name is not a literal.
    """
    chain = iter_call_name(call)
    if chain and chain[-1] == "record_event":
        name = _first_arg_literal(call)
        return (name, "ledger event") if name is not None else None
    if chain and chain[-1] == "RunRecord":
        for kw in call.keywords:
            if kw.arg == "event" and isinstance(kw.value, ast.Constant) \
                    and isinstance(kw.value.value, str):
                return (kw.value.value, "ledger event")
        return None
    func = call.func
    if isinstance(func, ast.Attribute) and func.attr in METRIC_METHODS \
            and isinstance(func.value, ast.Call):
        receiver = iter_call_name(func.value)
        if receiver and receiver[-1] == "get_metrics":
            name = _first_arg_literal(call)
            if name is not None:
                return (name, f"ambient {func.attr} metric")
    return None


class ObsSpanNamingRule:
    """Require ``<module>.<operation>`` dotted lowercase span names."""

    rule_id = "obs-span-naming"
    description = ("span()/ledger-event/ambient-metric names must be dotted "
                   "lowercase paths (<family>.<verb>, e.g. 'kernel.rescore')")

    def check(self, project: Project) -> Iterator[Finding]:
        for mod in project.repro_modules():
            if mod.tree is None:
                continue
            for node in ast.walk(mod.tree):
                if not isinstance(node, ast.Call):
                    continue
                if _span_call_name(node):
                    name = _first_arg_literal(node)
                    if name is None:  # dynamic name: nothing to spell-check
                        continue
                    if SPAN_NAME_RE.match(name):
                        continue
                    yield Finding(
                        rule=self.rule_id, path=mod.rel, line=node.lineno,
                        message=f"span name {name!r} is not a dotted "
                                "lowercase path (<module>.<operation>)",
                        hint="rename it like 'kernel.rescore' / 'alg2.round' "
                             "so report aggregation and trace grepping stay "
                             "stable")
                    continue
                named = _named_literal(node)
                if named is None:
                    continue
                name, what = named
                if SPAN_NAME_RE.match(name):
                    continue
                yield Finding(
                    rule=self.rule_id, path=mod.rel, line=node.lineno,
                    message=f"{what} name {name!r} is not a dotted "
                            "lowercase path (<family>.<verb>)",
                    hint="name it like 'planner.call' / 'sweep.cell' so "
                         "ledger aggregation and regression matching stay "
                         "stable")


__all__ = ["ObsSpanNamingRule", "SPAN_NAME_RE", "TRACER_RECEIVERS",
           "METRIC_METHODS"]
