"""``export-drift`` — ``__all__`` matches what a module actually defines.

``tests/test_public_api.py`` already checks that every ``__all__`` entry
resolves at runtime for the top-level packages; this rule closes the
remaining gaps statically and for every ``repro.*`` module:

* an ``__all__`` entry that names nothing defined or imported in the
  module (a rename that forgot the export list),
* a public top-level function, class, or ALL_CAPS constant missing from
  ``__all__`` (new API that downstream ``from repro.x import *`` users
  and the docs never see),
* a public module with no ``__all__`` at all.

Private modules (``_vector.py``), ``__main__`` entry points, and names
starting with ``_`` are out of scope.  Imported names are *allowed* in
``__all__`` (re-export) but never required.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from repro.analysis.engine import Finding, Project


def _bindings(tree: ast.Module) -> Tuple[Set[str], Set[str], Set[str]]:
    """``(defined, imported, public_required)`` names at module top level.

    ``public_required`` is the subset that must appear in ``__all__``:
    public defs/classes plus ALL_CAPS constants.  Top-level ``if``/``try``
    bodies count (version/fallback idioms).
    """
    defined: Set[str] = set()
    imported: Set[str] = set()
    required: Set[str] = set()

    def visit(stmts: List[ast.stmt]) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                defined.add(stmt.name)
                if not stmt.name.startswith("_"):
                    required.add(stmt.name)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    for name in _target_names(target):
                        defined.add(name)
                        if not name.startswith("_") and name.isupper() \
                                and name != "TYPE_CHECKING":
                            required.add(name)
            elif isinstance(stmt, ast.AnnAssign):
                for name in _target_names(stmt.target):
                    defined.add(name)
                    if not name.startswith("_") and name.isupper():
                        required.add(name)
            elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
                for alias in stmt.names:
                    if alias.name == "*":
                        continue
                    imported.add((alias.asname
                                  or alias.name).split(".")[0])
            elif isinstance(stmt, (ast.If, ast.Try)):
                visit(stmt.body)
                visit(getattr(stmt, "orelse", []))
                for handler in getattr(stmt, "handlers", []):
                    visit(handler.body)
                visit(getattr(stmt, "finalbody", []))

    visit(tree.body)
    return defined, imported, required


def _target_names(target: ast.expr) -> List[str]:
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        out: List[str] = []
        for elt in target.elts:
            out.extend(_target_names(elt))
        return out
    return []


def _read_all(tree: ast.Module) -> Optional[Tuple[int, List[str]]]:
    """``(line, entries)`` of a literal ``__all__``, else None."""
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == "__all__"
                for t in stmt.targets):
            if isinstance(stmt.value, (ast.List, ast.Tuple)):
                entries = [e.value for e in stmt.value.elts
                           if isinstance(e, ast.Constant)
                           and isinstance(e.value, str)]
                return stmt.lineno, entries
    return None


class ExportDriftRule:
    """Flag ``__all__`` drifting from a module's real public surface."""

    rule_id = "export-drift"
    description = ("__all__ must list exactly the public defs/classes/"
                   "constants a repro.* module defines")

    def check(self, project: Project) -> Iterator[Finding]:
        for mod in project.repro_modules():
            if mod.tree is None:
                continue
            stem = mod.path.stem
            if stem == "__main__" or (stem.startswith("_")
                                      and stem != "__init__"):
                continue
            defined, imported, required = _bindings(mod.tree)
            found = _read_all(mod.tree)
            if found is None:
                if required or (stem == "__init__" and imported):
                    yield Finding(
                        rule=self.rule_id, path=mod.rel, line=1,
                        message="module defines public names but has no "
                                "__all__",
                        hint="add __all__ naming the intended public "
                             "surface")
                continue
            line, entries = found
            known = defined | imported
            for name in entries:
                if name not in known:
                    yield Finding(
                        rule=self.rule_id, path=mod.rel, line=line,
                        message=f"__all__ exports {name!r} which is neither "
                                "defined nor imported here",
                        hint="remove the stale entry or restore the name")
            exported = set(entries)
            for name in sorted(required - exported):
                yield Finding(
                    rule=self.rule_id, path=mod.rel, line=line,
                    message=f"public name {name!r} is defined but missing "
                            "from __all__",
                    hint="export it, rename it with a leading underscore, "
                         "or suppress with '# repro: allow[export-drift]' "
                         "on the __all__ line")


__all__ = ["ExportDriftRule"]
