"""``rng-discipline`` — all randomness routes through ``repro.utils.rng``.

The paper's evaluation averages "15 instances per point"; bitwise
reproducibility of those sweeps rests on one convention: library code
never constructs generators or draws from module-level RNG state
directly.  Entry points accept a ``seed``/``rng`` argument, normalise it
with :func:`repro.utils.rng.as_rng`, and derive per-trial children with
:func:`repro.utils.rng.spawn_rngs`.  A stray ``np.random.default_rng()``
(or a legacy ``np.random.uniform`` / stdlib ``random`` call) silently
forks the seeding scheme and is exactly the kind of drift no review
catches twice.

Scope: modules inside the ``repro`` package, except ``repro/utils/rng.py``
itself (the one place allowed to touch numpy's constructors).  Tests are
exempt — pinning ``np.random.default_rng(seed)`` in a test is the
discipline working, not a violation.

Threaded generators are the *point* of the discipline, so they are never
flagged: a parameter annotated ``numpy.random.Generator`` (any annotation
containing the word ``Generator``) may be drawn from freely — including
when the parameter is named ``random`` — and importing ``Generator``
from ``numpy.random`` for annotations is not a direct-use violation.
"""

from __future__ import annotations

import ast
import re
from typing import FrozenSet, Iterator

from repro.analysis.engine import Finding, Project, iter_call_name

#: Callables under ``*.random.`` whose direct use forks RNG state.
_NUMPY_RANDOM_BANNED = frozenset({
    "default_rng", "seed", "RandomState", "rand", "randn", "randint",
    "random", "random_sample", "choice", "uniform", "normal",
    "standard_normal", "shuffle", "permutation", "exponential", "poisson",
    "beta", "gamma", "binomial", "integers",
})

#: Stdlib ``random`` module functions (module-level global state).
_STDLIB_RANDOM_BANNED = frozenset({
    "random", "seed", "randint", "randrange", "choice", "choices",
    "uniform", "shuffle", "sample", "gauss", "normalvariate", "betavariate",
    "expovariate", "triangular",
})

_EXEMPT_SUFFIX = "repro/utils/rng.py"

#: ``numpy.random`` names that are types used in annotations, not draws.
_TYPE_ONLY_IMPORTS = frozenset({"Generator", "BitGenerator"})

_GENERATOR_ANN_RE = re.compile(r"\bGenerator\b")


def _annotation_text(node: "ast.expr | None") -> str:
    if node is None:
        return ""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on 3.9+
        return ""


def _generator_params(node: ast.AST) -> FrozenSet[str]:
    """Parameters of *node* annotated as a numpy ``Generator``."""
    args = node.args
    return frozenset(
        a.arg for a in args.posonlyargs + args.args + args.kwonlyargs
        if _GENERATOR_ANN_RE.search(_annotation_text(a.annotation)))


class RngDisciplineRule:
    """Flag direct RNG construction/draws outside ``repro.utils.rng``."""

    rule_id = "rng-discipline"
    description = ("library randomness must route through "
                   "repro.utils.rng.as_rng / spawn_rngs")

    def check(self, project: Project) -> Iterator[Finding]:
        for mod in project.repro_modules():
            if mod.tree is None or mod.rel.endswith(_EXEMPT_SUFFIX):
                continue
            # Names imported straight out of numpy.random / random count
            # as direct use no matter how they are later called.
            direct_names = set()
            for node in ast.walk(mod.tree):
                if isinstance(node, ast.ImportFrom) and node.module in (
                        "numpy.random", "random"):
                    for alias in node.names:
                        if node.module == "numpy.random" \
                                and alias.name in _TYPE_ONLY_IMPORTS:
                            continue  # imported for annotations, not draws
                        direct_names.add(alias.asname or alias.name)
            yield from self._visit(mod, mod.tree, direct_names, frozenset())

    def _visit(self, mod, node: ast.AST, direct_names: "set[str]",
               rng_params: FrozenSet[str]) -> Iterator[Finding]:
        """Walk *node*, tracking Generator-annotated params in scope."""
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            rng_params = rng_params | _generator_params(node)
        if isinstance(node, ast.Call):
            chain = iter_call_name(node)
            # Draws off a threaded Generator parameter are the sanctioned
            # pattern, whatever the parameter is called.
            if not (chain and chain[0] in rng_params):
                offender = self._offender(chain, direct_names)
                if offender:
                    yield Finding(
                        rule=self.rule_id, path=mod.rel, line=node.lineno,
                        message=f"direct RNG call {offender!r}; library code "
                                "must not construct or draw from numpy/stdlib "
                                "RNG state itself",
                        hint="accept a SeedLike argument and call "
                             "repro.utils.rng.as_rng(seed) (or spawn_rngs "
                             "for per-trial children); or add "
                             "'# repro: allow[rng-discipline]' with a reason")
        for child in ast.iter_child_nodes(node):
            yield from self._visit(mod, child, direct_names, rng_params)

    @staticmethod
    def _offender(chain: "list[str]", direct_names: "set[str]") -> str:
        if not chain:
            return ""
        dotted = ".".join(chain)
        if len(chain) >= 2 and chain[-2] == "random" \
                and chain[-1] in _NUMPY_RANDOM_BANNED:
            # np.random.default_rng, numpy.random.uniform, ...
            # but not rng.integers on a Generator: that requires the
            # receiver to be literally named ``random``, which Generator
            # variables in this codebase never are.
            return dotted
        if len(chain) == 2 and chain[0] == "random" \
                and chain[1] in _STDLIB_RANDOM_BANNED:
            return dotted
        if len(chain) == 1 and chain[0] in direct_names:
            return dotted
        return ""


__all__ = ["RngDisciplineRule"]
