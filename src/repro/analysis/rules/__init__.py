"""The seven repro-lint rules.

Each rule is a small, independently-testable object satisfying
:class:`repro.analysis.engine.Rule`; :func:`default_rules` is the set the
CLI runs.  See ``docs/analysis.md`` for each rule's rationale and its
suppression story.
"""

from __future__ import annotations

from typing import List

from repro.analysis.engine import Rule
from repro.analysis.rules.eqrefs import PaperEquationRule
from repro.analysis.rules.export_drift import ExportDriftRule
from repro.analysis.rules.hotpath import HotPathPurityRule
from repro.analysis.rules.registry_sync import RegistrySyncRule
from repro.analysis.rules.rng import RngDisciplineRule
from repro.analysis.rules.spannames import ObsSpanNamingRule
from repro.analysis.rules.units import UnitsSuffixRule


def default_rules() -> List[Rule]:
    """Fresh instances of every shipped rule, in reporting order."""
    return [
        RngDisciplineRule(),
        HotPathPurityRule(),
        RegistrySyncRule(),
        ExportDriftRule(),
        UnitsSuffixRule(),
        PaperEquationRule(),
        ObsSpanNamingRule(),
    ]


__all__ = ["default_rules", "RngDisciplineRule", "HotPathPurityRule",
           "RegistrySyncRule", "ExportDriftRule", "UnitsSuffixRule",
           "PaperEquationRule", "ObsSpanNamingRule"]
