"""``registry-sync`` — registries, dispatchers, and docs stay in step.

Three registries gate how users reach the planners:

* ``repro.core.planner.PLANNERS`` (method name -> description) must match
  the ``method == "..."`` dispatch branches inside the facade (the
  ``plan_tour`` entry point or its ``_dispatch`` helper) exactly, in both
  directions;
* the engine registries — ``repro.core.kernel.ENGINES`` (the kernel
  planners) unioned with ``repro.core.algorithm1.ENGINES`` (Algorithm 1's
  GRASP engines) — must together contain every ``engine=`` string
  default in the library (function defaults and ``kwargs.pop("engine",
  ...)`` fallbacks alike);
* ``docs/architecture.md`` must mention every planner method and every
  engine, so the architecture document cannot silently fall behind a new
  registry entry.

The rule reads the registry modules from the project root even when the
checked paths do not include them (``check tests`` still sees ``src``).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from repro.analysis.engine import Finding, Project, SourceModule, iter_call_name

_PLANNER_MODULE = "src/repro/core/planner.py"
_KERNEL_MODULE = "src/repro/core/kernel.py"
#: Further modules contributing their own ``ENGINES`` literal to the
#: union the ``engine=`` defaults are checked against.
_EXTRA_ENGINE_MODULES = ("src/repro/core/algorithm1.py",)
_ARCH_DOC = "docs/architecture.md"


def _string_elements(node: ast.expr) -> Optional[List[str]]:
    """Constant string elements of a list/tuple literal, else None."""
    if not isinstance(node, (ast.List, ast.Tuple)):
        return None
    out = []
    for elt in node.elts:
        if not (isinstance(elt, ast.Constant) and isinstance(elt.value, str)):
            return None
        out.append(elt.value)
    return out


def _top_level_assign(mod: SourceModule, name: str) -> Optional[ast.expr]:
    """Value of a top-level ``name = ...`` assignment, else None."""
    if mod.tree is None:
        return None
    for stmt in mod.tree.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    return stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            if isinstance(stmt.target, ast.Name) and stmt.target.id == name:
                return stmt.value
    return None


class RegistrySyncRule:
    """Cross-check PLANNERS/ENGINES against dispatch code and docs."""

    rule_id = "registry-sync"
    description = ("PLANNERS/ENGINES registries must match plan_tour "
                   "dispatch, engine= defaults, and docs/architecture.md")

    def check(self, project: Project) -> Iterator[Finding]:
        yield from self._check_planners(project)
        yield from self._check_engines(project)

    # -- PLANNERS <-> plan_tour <-> docs -------------------------------- #

    def _check_planners(self, project: Project) -> Iterator[Finding]:
        mod = project.ensure_module(_PLANNER_MODULE)
        if mod is None or mod.tree is None:
            return
        value = _top_level_assign(mod, "PLANNERS")
        keys: List[str] = []
        if isinstance(value, ast.Dict):
            for k in value.keys:
                if isinstance(k, ast.Constant) and isinstance(k.value, str):
                    keys.append(k.value)
        if not keys:
            yield Finding(rule=self.rule_id, path=mod.rel, line=1,
                          message="PLANNERS registry not found as a literal "
                                  "dict of string keys",
                          hint="keep PLANNERS a flat {name: description} "
                               "literal so tools can read it")
            return
        dispatched = self._dispatch_strings(mod)
        for key in keys:
            if key not in dispatched:
                yield Finding(
                    rule=self.rule_id, path=mod.rel, line=1,
                    message=f"PLANNERS key {key!r} has no "
                            "'method == ...' dispatch branch in plan_tour",
                    hint="add the dispatch branch or drop the registry entry")
        for name in sorted(dispatched - set(keys)):
            yield Finding(
                rule=self.rule_id, path=mod.rel, line=1,
                message=f"plan_tour dispatches on {name!r} which is missing "
                        "from the PLANNERS registry",
                hint="register the method in PLANNERS (CLIs and experiment "
                     "configs enumerate it)")
        arch = project.read_root_file(_ARCH_DOC)
        if arch is not None:
            for key in keys:
                if key not in arch:
                    yield Finding(
                        rule=self.rule_id, path=mod.rel, line=1,
                        message=f"planner method {key!r} is not mentioned "
                                f"in {_ARCH_DOC}",
                        hint="document the planner in the architecture notes")

    @staticmethod
    def _dispatch_strings(mod: SourceModule) -> Set[str]:
        out: Set[str] = set()
        if mod.tree is None:
            return out
        for node in ast.walk(mod.tree):
            if not (isinstance(node, ast.FunctionDef)
                    and node.name in ("plan_tour", "_dispatch")):
                continue
            for cmp_node in ast.walk(node):
                if not isinstance(cmp_node, ast.Compare):
                    continue
                if not (isinstance(cmp_node.left, ast.Name)
                        and cmp_node.left.id == "method"):
                    continue
                if len(cmp_node.ops) == 1 \
                        and isinstance(cmp_node.ops[0], (ast.Eq, ast.In)):
                    for comp in cmp_node.comparators:
                        if isinstance(comp, ast.Constant) \
                                and isinstance(comp.value, str):
                            out.add(comp.value)
        return out

    # -- ENGINES <-> engine= defaults <-> docs -------------------------- #

    def _check_engines(self, project: Project) -> Iterator[Finding]:
        kernel = project.ensure_module(_KERNEL_MODULE)
        if kernel is None or kernel.tree is None:
            return
        value = _top_level_assign(kernel, "ENGINES")
        engines = _string_elements(value) if value is not None else None
        if not engines:
            yield Finding(rule=self.rule_id, path=kernel.rel, line=1,
                          message="ENGINES registry not found as a literal "
                                  "tuple/list of strings",
                          hint="keep ENGINES a flat literal so tools can "
                               "read it")
            return
        known = set(engines)
        for extra_rel in _EXTRA_ENGINE_MODULES:
            extra = project.ensure_module(extra_rel)
            if extra is None or extra.tree is None:
                continue
            extra_value = _top_level_assign(extra, "ENGINES")
            extra_engines = (_string_elements(extra_value)
                             if extra_value is not None else None)
            if extra_engines:
                known |= set(extra_engines)
                engines = engines + [e for e in extra_engines
                                     if e not in engines]
        for mod in project.repro_modules():
            if mod.tree is None:
                continue
            for node in ast.walk(mod.tree):
                for line, default in self._engine_defaults(node):
                    if default not in known:
                        yield Finding(
                            rule=self.rule_id, path=mod.rel, line=line,
                            message=f"engine default {default!r} is not in "
                                    f"the ENGINES registries "
                                    f"{tuple(engines)}",
                            hint="register the engine in ENGINES or fix the "
                                 "default")
        arch = project.read_root_file(_ARCH_DOC)
        if arch is not None:
            for engine in engines:
                if f'"{engine}"' not in arch:
                    yield Finding(
                        rule=self.rule_id, path=kernel.rel, line=1,
                        message=f"engine {engine!r} is not mentioned in "
                                f"{_ARCH_DOC}",
                        hint="document the engine in the architecture notes")

    @staticmethod
    def _engine_defaults(node: ast.AST) -> Iterator[Tuple[int, str]]:
        """Yield ``(line, default)`` for engine= parameter/pop defaults."""
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = node.args
            params = args.posonlyargs + args.args + args.kwonlyargs
            defaults = ([None] * (len(args.posonlyargs) + len(args.args)
                                  - len(args.defaults))
                        + list(args.defaults) + list(args.kw_defaults))
            for arg, default in zip(params, defaults):
                if arg.arg == "engine" and isinstance(default, ast.Constant) \
                        and isinstance(default.value, str):
                    yield arg.lineno, default.value
        if isinstance(node, ast.Call):
            chain = iter_call_name(node)
            if chain and chain[-1] in ("pop", "get") and len(node.args) == 2:
                key, default = node.args
                if (isinstance(key, ast.Constant) and key.value == "engine"
                        and isinstance(default, ast.Constant)
                        and isinstance(default.value, str)):
                    yield node.lineno, default.value


__all__ = ["RegistrySyncRule"]
