"""``units-suffix`` — unit discipline in :mod:`repro.energy`.

The whole system is metres / seconds / joules / MB (README "Units"); the
energy package is where a stray kilojoule or minute would corrupt every
planner decision downstream.  Inside ``repro/energy/`` this rule checks
every bound name (functions, parameters, assignment targets, ``self.``
attributes, dataclass fields):

* names advertising a **non-canonical unit** (``_kj``, ``_kwh``, ``_km``,
  ``_min``, ``_ms``, ``_gb``, …) are always errors — the codebase has no
  business holding such a quantity;
* names containing a **quantity keyword** (energy/power/distance/time/
  duration/speed/capacity) must either end in an approved canonical
  suffix (``_j``, ``_w``, ``_m``, ``_s``, ``_mps``, ``_mb``, ``_mbps``,
  or a ``_per_*`` rate spelling) or be one of the grandfathered
  :data:`ESTABLISHED_NAMES` that predate this rule (the public
  ``EnergyModel`` / ``EnergyLedger`` API, frozen by
  ``tests/test_public_api.py``).

New quantity-carrying names therefore must self-document their unit.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Tuple

from repro.analysis.engine import Finding, Project

#: Suffixes naming units this codebase must never hold a value in.
BANNED_SUFFIXES: Tuple[str, ...] = (
    "_kwh", "_wh", "_kj", "_mj", "_kw", "_mw", "_km", "_cm", "_mm", "_ft",
    "_mi", "_yd", "_min", "_mins", "_hr", "_hrs", "_ms", "_us", "_ns",
    "_kmh", "_mph", "_kb", "_gb", "_tb", "_kbps", "_gbps",
)

#: Canonical suffixes: joules, watts (J/s), metres, seconds, m/s, MB, MB/s.
APPROVED_SUFFIXES: Tuple[str, ...] = (
    "_j", "_w", "_m", "_s", "_mps", "_mb", "_mbps",
)

#: Quantity keywords that oblige a name to carry a unit suffix.
_QUANTITY_RE = re.compile(
    r"(energy|joule|power|watt|dist|time|duration|elapsed|speed|velocity|"
    r"capacity)", re.IGNORECASE)

#: Pre-rule public API of repro.energy, frozen by tests/test_public_api.py.
#: Additions belong in the suffix scheme, not here.
ESTABLISHED_NAMES = frozenset({
    "capacity", "hover_power", "travel_power", "speed",
    "distance_based_travel", "travel_cost_per_meter", "travel_time",
    "hover_time", "travel_energy", "hover_energy", "tour_energy", "energy",
    "duration", "distance", "max_travel_distance", "max_hover_duration",
    "remaining_hover_time", "travel_distance", "hover_duration",
    "with_capacity", "EnergyModel", "EnergyLedger",
    "PAPER_ENERGY_MODEL", "PAPER_LITERAL_ENERGY_MODEL",
})

_SCOPE_FRAGMENT = "repro/energy/"


def _has_suffix(name: str, suffixes: Tuple[str, ...]) -> bool:
    low = name.lower()
    return any(low.endswith(s) for s in suffixes)


def _is_rate_spelling(name: str) -> bool:
    """``*_per_meter`` / ``*_per_s`` style compound rates are canonical."""
    return "_per_" in name.lower()


def _bound_names(tree: ast.Module) -> Iterator[Tuple[int, str]]:
    """Every ``(line, name)`` the module binds that the rule inspects."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node.lineno, node.name
            args = node.args
            for arg in (args.posonlyargs + args.args + args.kwonlyargs
                        + ([args.vararg] if args.vararg else [])
                        + ([args.kwarg] if args.kwarg else [])):
                if arg.arg not in ("self", "cls"):
                    yield arg.lineno, arg.arg
        elif isinstance(node, ast.ClassDef):
            yield node.lineno, node.name
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                yield from _target_names(target)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            yield from _target_names(node.target)


def _target_names(target: ast.expr) -> Iterator[Tuple[int, str]]:
    if isinstance(target, ast.Name):
        yield target.lineno, target.id
    elif isinstance(target, ast.Attribute):
        if isinstance(target.value, ast.Name) and target.value.id == "self":
            yield target.lineno, target.attr
    elif isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            yield from _target_names(elt)


class UnitsSuffixRule:
    """Enforce canonical unit suffixes on quantity names in repro.energy."""

    rule_id = "units-suffix"
    description = ("quantity names in repro/energy/ must carry _j/_w/_m/_s "
                   "style unit suffixes (or be grandfathered API)")

    def check(self, project: Project) -> Iterator[Finding]:
        for mod in project.repro_modules():
            if mod.tree is None or _SCOPE_FRAGMENT not in mod.rel:
                continue
            seen = set()
            for line, name in _bound_names(mod.tree):
                if (line, name) in seen:
                    continue
                seen.add((line, name))
                if name.startswith("__"):
                    continue
                bare = name.lstrip("_")
                if _has_suffix(name, BANNED_SUFFIXES):
                    yield Finding(
                        rule=self.rule_id, path=mod.rel, line=line,
                        message=f"{name!r} advertises a non-canonical unit; "
                                "this codebase is metres/seconds/joules/MB "
                                "end to end",
                        hint="convert at the boundary and store the "
                             "canonical unit (_j/_w/_m/_s/_mps/_mb)")
                    continue
                if not _QUANTITY_RE.search(bare):
                    continue
                if _has_suffix(name, APPROVED_SUFFIXES) \
                        or _is_rate_spelling(name) \
                        or bare in ESTABLISHED_NAMES:
                    continue
                yield Finding(
                    rule=self.rule_id, path=mod.rel, line=line,
                    message=f"quantity name {name!r} carries no unit "
                            "suffix",
                    hint="suffix it with _j/_w/_m/_s/_mps/_mb(ps), or — "
                         "for pre-existing public API only — add it to "
                         "ESTABLISHED_NAMES in repro.analysis.rules.units")


__all__ = ["UnitsSuffixRule", "APPROVED_SUFFIXES", "BANNED_SUFFIXES",
           "ESTABLISHED_NAMES"]
