"""Command-line interface: ``python -m repro.analysis check [paths]``.

Exit codes: 0 — clean (or everything baselined); 1 — non-baselined
findings; 2 — usage error.  ``--update-baseline`` rewrites
``analysis-baseline.json`` with the current findings so a tree with known
debt can adopt the gate immediately and burn the baseline down over time.

``--flow`` additionally runs the interprocedural rules
(:mod:`repro.analysis.flow`): the invocation ``python -m repro.analysis
--flow`` is shorthand for ``check --flow`` (leading-option arguments
imply the ``check`` subcommand).  ``--callgraph-out FILE`` exports the
run's call graph (``.dot`` for GraphViz, anything else as JSON) and
``--stats`` appends a one-line run summary (files, functions, edges,
findings by rule).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.engine import Baseline, Finding, Project, render_json, render_text, run_rules
from repro.analysis.rules import default_rules

#: Default baseline file, relative to the project root.
BASELINE_NAME = "analysis-baseline.json"


def check_paths(root: Path, paths: Sequence[Path], *,
                flow: bool = False) -> List[Finding]:
    """Run every default rule over *paths*; returns unfiltered findings.

    Library entry point used by the test-suite and pre-commit hooks; the
    CLI adds baseline handling on top.  ``flow=True`` adds the
    interprocedural rules (call graph + dataflow).
    """
    project = Project.load(root, paths)
    return run_rules(project, _selected_rules(flow))


def _selected_rules(flow: bool):
    rules = default_rules()
    if flow:
        from repro.analysis.flow import flow_rules
        rules = rules + flow_rules()
    return rules


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="repro-lint: project-specific static analysis "
                    "(planner invariants, RNG discipline, hot-path purity, "
                    "interprocedural flow rules)")
    sub = parser.add_subparsers(dest="command")

    check = sub.add_parser(
        "check", help="run all rules over the given paths (default: src)")
    check.add_argument("paths", nargs="*", default=["src"],
                       help="files or directories to analyse")
    check.add_argument("--format", choices=("text", "json"), default="text",
                       help="report format (default: text)")
    check.add_argument("--root", default=".",
                       help="project root holding PAPER.md, docs/ and the "
                            "baseline (default: cwd)")
    check.add_argument("--baseline", default=None,
                       help=f"baseline file (default: <root>/{BASELINE_NAME})")
    check.add_argument("--update-baseline", action="store_true",
                       help="rewrite the baseline with the current findings "
                            "and exit 0")
    check.add_argument("--flow", action="store_true",
                       help="also run the interprocedural flow rules "
                            "(determinism taint, transport purity, "
                            "engine parity)")
    check.add_argument("--callgraph-out", default=None, metavar="FILE",
                       help="export the call graph (.dot -> GraphViz, "
                            "else JSON); implies building it")
    check.add_argument("--stats", action="store_true",
                       help="print a run summary line (files, functions, "
                            "call-graph edges, findings by rule)")

    sub.add_parser("rules", help="list the shipped rules")
    return parser


def _cmd_rules() -> int:
    from repro.analysis.flow import flow_rules
    for rule in default_rules():
        print(f"{rule.rule_id:18} {rule.description}")
    for rule in flow_rules():
        print(f"{rule.rule_id:18} [flow] {rule.description}")
    return 0


def _export_callgraph(project: Project, out: str) -> None:
    from repro.analysis.flow import FlowContext
    graph = FlowContext.for_project(project).graph
    path = Path(out)
    if path.suffix == ".dot":
        path.write_text(graph.to_dot(), encoding="utf-8")
    else:
        path.write_text(json.dumps(graph.to_json_dict(), indent=2) + "\n",
                        encoding="utf-8")


def _stats_line(project: Project, findings: Sequence[Finding]) -> str:
    from repro.analysis.flow import FlowContext
    graph = FlowContext.for_project(project).graph
    by_rule: dict = {}
    for f in findings:
        by_rule[f.rule] = by_rule.get(f.rule, 0) + 1
    per_rule = " ".join(f"{rule}={n}" for rule, n in sorted(by_rule.items()))
    return (f"stats: files={len(project.modules)} "
            f"functions={len(graph.functions)} "
            f"edges={len(graph.edges)} "
            f"findings={len(findings)}"
            + (f" [{per_rule}]" if per_rule else ""))


def _cmd_check(args: argparse.Namespace) -> int:
    root = Path(args.root).resolve()
    if not root.is_dir():
        print(f"error: root {args.root!r} is not a directory",
              file=sys.stderr)
        return 2
    baseline_path = (Path(args.baseline) if args.baseline
                     else root / BASELINE_NAME)
    project = Project.load(root, [Path(p) for p in args.paths])
    findings = run_rules(project, _selected_rules(args.flow))

    if args.callgraph_out:
        _export_callgraph(project, args.callgraph_out)

    if args.update_baseline:
        Baseline.write(baseline_path, findings)
        print(f"baseline updated: {len(findings)} finding(s) recorded in "
              f"{baseline_path}")
        return 0

    baseline = Baseline.load(baseline_path)
    new, baselined = baseline.split(findings)
    renderer = render_json if args.format == "json" else render_text
    print(renderer(new, baselined=len(baselined),
                   checked=len(project.modules)))
    if args.stats:
        print(_stats_line(project, new))
    return 1 if new else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    argv = list(argv)
    if argv and argv[0].startswith("-") and argv[0] not in ("-h", "--help"):
        # ``python -m repro.analysis --flow`` == ``check --flow``.
        argv = ["check"] + argv
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command == "rules":
        return _cmd_rules()
    if args.command == "check":
        return _cmd_check(args)
    parser.print_help()
    return 2


__all__ = ["main", "check_paths", "BASELINE_NAME"]
