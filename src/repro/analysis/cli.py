"""Command-line interface: ``python -m repro.analysis check [paths]``.

Exit codes: 0 — clean (or everything baselined); 1 — non-baselined
findings; 2 — usage error.  ``--update-baseline`` rewrites
``analysis-baseline.json`` with the current findings so a tree with known
debt can adopt the gate immediately and burn the baseline down over time.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.engine import Baseline, Finding, Project, render_json, render_text, run_rules
from repro.analysis.rules import default_rules

#: Default baseline file, relative to the project root.
BASELINE_NAME = "analysis-baseline.json"


def check_paths(root: Path, paths: Sequence[Path]) -> List[Finding]:
    """Run every default rule over *paths*; returns unfiltered findings.

    Library entry point used by the test-suite and pre-commit hooks; the
    CLI adds baseline handling on top.
    """
    project = Project.load(root, paths)
    return run_rules(project, default_rules())


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="repro-lint: project-specific static analysis "
                    "(planner invariants, RNG discipline, hot-path purity)")
    sub = parser.add_subparsers(dest="command")

    check = sub.add_parser(
        "check", help="run all rules over the given paths (default: src)")
    check.add_argument("paths", nargs="*", default=["src"],
                       help="files or directories to analyse")
    check.add_argument("--format", choices=("text", "json"), default="text",
                       help="report format (default: text)")
    check.add_argument("--root", default=".",
                       help="project root holding PAPER.md, docs/ and the "
                            "baseline (default: cwd)")
    check.add_argument("--baseline", default=None,
                       help=f"baseline file (default: <root>/{BASELINE_NAME})")
    check.add_argument("--update-baseline", action="store_true",
                       help="rewrite the baseline with the current findings "
                            "and exit 0")

    sub.add_parser("rules", help="list the shipped rules")
    return parser


def _cmd_rules() -> int:
    for rule in default_rules():
        print(f"{rule.rule_id:18} {rule.description}")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    root = Path(args.root).resolve()
    if not root.is_dir():
        print(f"error: root {args.root!r} is not a directory",
              file=sys.stderr)
        return 2
    baseline_path = (Path(args.baseline) if args.baseline
                     else root / BASELINE_NAME)
    project = Project.load(root, [Path(p) for p in args.paths])
    findings = run_rules(project, default_rules())

    if args.update_baseline:
        Baseline.write(baseline_path, findings)
        print(f"baseline updated: {len(findings)} finding(s) recorded in "
              f"{baseline_path}")
        return 0

    baseline = Baseline.load(baseline_path)
    new, baselined = baseline.split(findings)
    renderer = render_json if args.format == "json" else render_text
    print(renderer(new, baselined=len(baselined),
                   checked=len(project.modules)))
    return 1 if new else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command == "rules":
        return _cmd_rules()
    if args.command == "check":
        return _cmd_check(args)
    parser.print_help()
    return 2


__all__ = ["main", "check_paths", "BASELINE_NAME"]
