"""The repro-lint engine: findings, source model, rule running, baseline.

This module is deliberately free of rule knowledge.  It provides

* :class:`Finding` — one diagnostic with ``file:line``, severity, rule id,
  and a fix hint;
* :class:`SourceModule` — a parsed Python file plus the ``# repro:``
  directives (``hot-path`` / ``cold-path`` scope markers and
  ``allow[rule-id]`` line suppressions) the rules interpret;
* :class:`Project` — the set of modules under analysis rooted at the repo
  top (where ``PAPER.md``, ``docs/`` and ``analysis-baseline.json`` live);
* :class:`Baseline` — pre-existing findings that do not fail the check
  (so the tool can be adopted on a tree with known debt);
* :func:`run_rules` plus the text / JSON reporters.

Rules implement the :class:`Rule` protocol: a ``rule_id``, a one-line
``description``, and ``check(project)`` yielding findings.  Suppression is
applied by the engine, not by each rule: a finding on line ``L`` is
dropped when line ``L`` (or the comment line directly above it) carries
``# repro: allow[<rule-id>]``.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

try:  # pragma: no cover - trivial either way
    from typing import Protocol
except ImportError:  # pragma: no cover - Python < 3.8 has no Protocol
    Protocol = object  # type: ignore[assignment]

#: Finding severities, most severe first.
SEVERITIES: Tuple[str, ...] = ("error", "warning")

#: Directive comments understood by the engine/rules, e.g.
#: ``# repro: hot-path`` or ``# repro: allow[rng-discipline] -- reason``.
_DIRECTIVE_RE = re.compile(
    r"#\s*repro:\s*(?P<kind>hot-path|cold-path|allow\[(?P<rules>[a-z0-9*,\s-]+)\])")


@dataclass(frozen=True)
class Finding:
    """One diagnostic emitted by a rule."""

    rule: str
    path: str            #: repo-relative posix path
    line: int            #: 1-based line number
    message: str
    severity: str = "error"
    hint: str = ""       #: how to fix or suppress

    @property
    def location(self) -> str:
        """``file:line`` anchor for editors and CI logs."""
        return f"{self.path}:{self.line}"

    def key(self) -> Tuple[str, str, str]:
        """Baseline identity: stable across line-number drift."""
        return (self.rule, self.path, self.message)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation."""
        return {"rule": self.rule, "path": self.path, "line": self.line,
                "severity": self.severity, "message": self.message,
                "hint": self.hint}


class Rule(Protocol):
    """Protocol every repro-lint rule satisfies."""

    rule_id: str
    description: str

    def check(self, project: "Project") -> Iterator[Finding]:
        """Yield findings for *project*."""
        ...  # pragma: no cover


@dataclass
class SourceModule:
    """A parsed source file plus its ``# repro:`` directives."""

    path: Path
    rel: str
    text: str
    tree: Optional[ast.Module]
    syntax_error: Optional[Finding]
    #: line -> rule ids allowed on that line ("*" allows every rule)
    allows: Dict[int, Set[str]] = field(default_factory=dict)
    #: (line, "hot-path" | "cold-path") scope markers, in file order
    markers: List[Tuple[int, str]] = field(default_factory=list)
    #: lazily-built map of decorated def/class lineno -> first decorator
    #: lineno (see :meth:`is_suppressed`)
    _decorated: Optional[Dict[int, int]] = field(default=None, repr=False)

    @classmethod
    def parse(cls, path: Path, root: Path) -> "SourceModule":
        """Read and parse *path*; a syntax error becomes a finding."""
        rel = path.resolve().relative_to(root.resolve()).as_posix()
        text = path.read_text(encoding="utf-8")
        tree: Optional[ast.Module] = None
        err: Optional[Finding] = None
        try:
            tree = ast.parse(text, filename=rel)
        except SyntaxError as exc:
            err = Finding(rule="parse-error", path=rel,
                          line=exc.lineno or 1,
                          message=f"syntax error: {exc.msg}")
        mod = cls(path=path, rel=rel, text=text, tree=tree, syntax_error=err)
        mod._scan_directives()
        return mod

    def _scan_directives(self) -> None:
        for lineno, line in enumerate(self.text.splitlines(), start=1):
            match = _DIRECTIVE_RE.search(line)
            if match is None:
                continue
            kind = match.group("kind")
            if kind.startswith("allow["):
                rules = {r.strip() for r in match.group("rules").split(",")}
                self.allows.setdefault(lineno, set()).update(r for r in rules if r)
            else:
                self.markers.append((lineno, kind))

    # -- convenience views used by several rules ----------------------- #

    @property
    def is_repro_module(self) -> bool:
        """True when the file belongs to the ``repro`` library package."""
        return "repro" in Path(self.rel).parts

    @property
    def dotted_name(self) -> str:
        """Best-effort dotted module name (``repro.core.kernel``)."""
        parts = list(Path(self.rel).parts)
        if "repro" in parts:
            parts = parts[parts.index("repro"):]
        name = ".".join(parts)
        for suffix in (".py",):
            if name.endswith(suffix):
                name = name[: -len(suffix)]
        if name.endswith(".__init__"):
            name = name[: -len(".__init__")]
        return name

    def docstrings(self) -> Iterator[Tuple[int, str]]:
        """Yield ``(start_line, text)`` for module/class/function docstrings."""
        if self.tree is None:
            return
        nodes: List[ast.AST] = [self.tree]
        nodes.extend(n for n in ast.walk(self.tree)
                     if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef,
                                       ast.ClassDef)))
        for node in nodes:
            body = getattr(node, "body", [])
            if (body and isinstance(body[0], ast.Expr)
                    and isinstance(body[0].value, ast.Constant)
                    and isinstance(body[0].value.value, str)):
                yield body[0].value.lineno, body[0].value.value

    def scope_spans(self) -> List[Tuple[int, int]]:
        """``(start, end)`` line spans of every function/class, innermost last
        when sorted by size — used to resolve hot/cold scope markers."""
        if self.tree is None:
            return []
        spans = []
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                end = getattr(node, "end_lineno", node.lineno)
                spans.append((node.lineno, int(end)))
        return spans

    def is_suppressed(self, finding: Finding) -> bool:
        """True when an ``allow`` directive covers *finding*.

        A directive counts on the finding's own line, on a comment line
        immediately above it, or — when the finding anchors on a
        decorated ``def``/``class`` line — on any decorator line of that
        definition or a comment line immediately above the first
        decorator (the natural place to write the directive).
        """
        candidates: List[Tuple[int, bool]] = [
            (finding.line, True), (finding.line - 1, False)]
        first_dec = self._decorator_start(finding.line)
        if first_dec is not None:
            candidates.extend(
                (line, True) for line in range(first_dec, finding.line))
            candidates.append((first_dec - 1, False))
        for line, inline_ok in candidates:
            allowed = self.allows.get(line)
            if allowed and (finding.rule in allowed or "*" in allowed):
                # A directive one line above a site only counts on a
                # comment line; on the site itself (or a decorator line
                # of the decorated def) a trailing comment is fine.
                if inline_ok or self._is_comment_line(line):
                    return True
        return False

    def _decorator_start(self, lineno: int) -> Optional[int]:
        """First decorator line of a def/class at *lineno*, if decorated."""
        if self.tree is None:
            return None
        if self._decorated is None:
            decorated: Dict[int, int] = {}
            for node in ast.walk(self.tree):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.ClassDef)) and node.decorator_list:
                    decorated[node.lineno] = min(
                        d.lineno for d in node.decorator_list)
            self._decorated = decorated
        return self._decorated.get(lineno)

    def _is_comment_line(self, lineno: int) -> bool:
        lines = self.text.splitlines()
        if not 1 <= lineno <= len(lines):
            return False
        return lines[lineno - 1].lstrip().startswith("#")


class Project:
    """The file set under analysis plus cached root-level documents."""

    def __init__(self, root: Path, modules: Sequence[SourceModule]) -> None:
        self.root = root.resolve()
        self.modules: List[SourceModule] = list(modules)
        self._by_rel: Dict[str, SourceModule] = {m.rel: m for m in self.modules}
        self._docs: Dict[str, Optional[str]] = {}

    @classmethod
    def load(cls, root: Path, paths: Sequence[Path]) -> "Project":
        """Collect ``*.py`` files under *paths* (files or directories)."""
        root = root.resolve()
        files: List[Path] = []
        for p in paths:
            p = p if p.is_absolute() else root / p
            if p.is_dir():
                files.extend(sorted(q for q in p.rglob("*.py")
                                    if "__pycache__" not in q.parts
                                    and not any(part.startswith(".")
                                                for part in q.parts)))
            elif p.suffix == ".py" and p.exists():
                files.append(p)
        seen: Set[Path] = set()
        modules = []
        for f in files:
            rf = f.resolve()
            if rf not in seen:
                seen.add(rf)
                modules.append(SourceModule.parse(rf, root))
        return cls(root, modules)

    def repro_modules(self) -> Iterator[SourceModule]:
        """Modules belonging to the ``repro`` library package."""
        return (m for m in self.modules if m.is_repro_module)

    def module_by_suffix(self, suffix: str) -> Optional[SourceModule]:
        """Find a loaded module whose path ends with *suffix*."""
        for m in self.modules:
            if m.rel.endswith(suffix):
                return m
        return None

    def ensure_module(self, rel: str) -> Optional[SourceModule]:
        """A module by repo-relative path, parsing it on demand.

        Project-level rules (registry-sync) use this so that running the
        checker on ``tests/`` alone still sees the registries under
        ``src/``.
        """
        found = self.module_by_suffix(rel)
        if found is not None:
            return found
        path = self.root / rel
        if not path.exists():
            return None
        mod = SourceModule.parse(path, self.root)
        return mod

    def read_root_file(self, name: str) -> Optional[str]:
        """Cached text of a repo-root document (``PAPER.md``, docs/…)."""
        if name not in self._docs:
            path = self.root / name
            self._docs[name] = (path.read_text(encoding="utf-8")
                                if path.exists() else None)
        return self._docs[name]


@dataclass
class Baseline:
    """Known pre-existing findings that do not fail the check."""

    entries: Set[Tuple[str, str, str]] = field(default_factory=set)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read ``analysis-baseline.json`` (missing file = empty baseline)."""
        if not path.exists():
            return cls()
        data = json.loads(path.read_text(encoding="utf-8"))
        entries = {(str(e["rule"]), str(e["path"]), str(e["message"]))
                   for e in data.get("findings", [])}
        return cls(entries)

    def split(self, findings: Sequence[Finding]
              ) -> Tuple[List[Finding], List[Finding]]:
        """Partition into ``(new, baselined)``."""
        new = [f for f in findings if f.key() not in self.entries]
        old = [f for f in findings if f.key() in self.entries]
        return new, old

    @staticmethod
    def write(path: Path, findings: Sequence[Finding]) -> None:
        """Persist *findings* as the new baseline."""
        payload = {
            "version": 1,
            "comment": "Pre-existing repro-lint findings tolerated by CI; "
                       "regenerate with: python -m repro.analysis check "
                       "--update-baseline",
            "findings": [{"rule": f.rule, "path": f.path,
                          "message": f.message} for f in findings],
        }
        path.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n",
                        encoding="utf-8")


def run_rules(project: Project, rules: Sequence[Rule]) -> List[Finding]:
    """Run *rules* over *project*; apply suppressions; sort diagnostics."""
    findings: List[Finding] = [m.syntax_error for m in project.modules
                               if m.syntax_error is not None]
    for rule in rules:
        findings.extend(rule.check(project))
    kept = []
    for f in findings:
        mod = project._by_rel.get(f.path)
        if mod is not None and mod.is_suppressed(f):
            continue
        kept.append(f)
    kept.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    return kept


def render_text(findings: Sequence[Finding], *, baselined: int = 0,
                checked: int = 0) -> str:
    """Human-readable report, one ``file:line`` anchored line per finding."""
    out = []
    for f in findings:
        out.append(f"{f.location}: {f.severity}[{f.rule}] {f.message}")
        if f.hint:
            out.append(f"    hint: {f.hint}")
    summary = (f"{len(findings)} finding(s) in {checked} file(s)"
               if findings else f"OK: 0 findings in {checked} file(s)")
    if baselined:
        summary += f" ({baselined} baselined)"
    out.append(summary)
    return "\n".join(out)


def render_json(findings: Sequence[Finding], *, baselined: int = 0,
                checked: int = 0) -> str:
    """Machine-readable report (stable schema, version 1).

    Findings are ordered worst-first — by severity rank (errors before
    warnings), then location — so machine consumers can truncate the
    list without losing the errors.
    """
    rank = {sev: i for i, sev in enumerate(SEVERITIES)}
    ordered = sorted(findings, key=lambda f: (
        rank.get(f.severity, len(SEVERITIES)),
        f.path, f.line, f.rule, f.message))
    payload = {"version": 1, "checked_files": checked,
               "baselined": baselined,
               "findings": [f.to_dict() for f in ordered]}
    return json.dumps(payload, indent=2)


def iter_call_name(node: ast.Call) -> List[str]:
    """Dotted-name chain of a call target, e.g. ``np.random.default_rng``
    -> ``["np", "random", "default_rng"]`` (empty when not a plain chain)."""
    chain: List[str] = []
    cur: ast.expr = node.func
    while isinstance(cur, ast.Attribute):
        chain.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name):
        chain.append(cur.id)
        return list(reversed(chain))
    return []


__all__ = ["Finding", "Rule", "SourceModule", "Project", "Baseline",
           "run_rules", "render_text", "render_json", "iter_call_name",
           "SEVERITIES"]
