"""Registry of paper equations the code is allowed to cite.

The ``paper-eq-refs`` rule requires every ``Eq. (N)`` reference in a
``repro.*`` docstring to be a key here, and requires each key's *anchor*
string to actually appear in ``PAPER.md`` — so a docstring can never cite
an equation the reproduction's paper digest does not document, and the
digest can never silently drop an equation the code still leans on.

Keys are the paper's equation numbers (IPDPS 2020, Li/Liang/Xu/Jia).
Equation 10 is the orienteering objective the paper states but the
reproduction never cites directly, hence its absence.
"""

from __future__ import annotations

from typing import Dict

#: The repo-root document the anchors must appear in.
PAPER_DOC = "PAPER.md"

#: equation number -> (PAPER.md anchor substring, what the equation is).
EQUATIONS: Dict[int, "EquationEntry"] = {}


class EquationEntry:
    """One citable equation: its PAPER.md anchor and a short gloss."""

    def __init__(self, anchor: str, gloss: str) -> None:
        self.anchor = anchor
        self.gloss = gloss

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"EquationEntry({self.anchor!r}, {self.gloss!r})"


def _register(numbers: range, anchor: str, glosses: Dict[int, str]) -> None:
    for n in numbers:
        EQUATIONS[n] = EquationEntry(anchor, glosses.get(n, anchor))


_register(range(1, 6), "Eqs. 1–5", {
    1: "hover time t(s_j) = max_v D_v / B over covered sensors",
    2: "award P(s_j) = sum of covered D_v",
    3: "virtual-location sojourn k·t(s_j)/K",
    4: "partial award: sum of min(D_v, B·tau)",
    5: "PDCM objective over virtual locations",
})
_register(range(6, 10), "Eqs. 6–9", {
    6: "candidate award p on the auxiliary graph",
    7: "hover energy w1 = t · eta_h",
    8: "edge weight w2 = (w1_i + w1_j)/2 + l · eta_t / speed",
    9: "travel energy term l · eta_t",
})
_register(range(11, 14), "Eqs. 11–13", {
    11: "residual award P'(s_j) over not-yet-collected sensors",
    12: "residual hover time t'(s_j)",
    13: "greedy selection ratio rho(s_j)",
})


__all__ = ["EQUATIONS", "EquationEntry", "PAPER_DOC"]
