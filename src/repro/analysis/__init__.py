"""repro-lint: project-specific static analysis for this reproduction.

Generic linters cannot know that ``np.random.default_rng`` outside
``repro.utils.rng`` forks the paper's seeding scheme, that a dense
``(m, n)`` temporary inside the planner kernel undoes PR 1's complexity
guarantee, or that a new ``PLANNERS`` entry without a ``plan_tour``
dispatch branch ships a registry lie.  This package makes those
repo-specific invariants machine-checked on every change:

* :mod:`repro.analysis.engine` — AST-walking lint engine: findings with
  ``file:line``/severity/fix-hint, ``# repro:`` directives
  (``hot-path`` / ``cold-path`` / ``allow[rule-id]``), a JSON baseline,
  text and JSON reporters;
* :mod:`repro.analysis.rules` — the six rules: ``rng-discipline``,
  ``hot-path-purity``, ``registry-sync``, ``export-drift``,
  ``units-suffix``, ``paper-eq-refs``;
* :mod:`repro.analysis.equations` — the citable-equation registry
  anchoring docstring references into ``PAPER.md``;
* :mod:`repro.analysis.cli` — ``python -m repro.analysis check [paths]
  [--format=json] [--update-baseline]``, the command CI gates on.

See ``docs/analysis.md`` for the rule-by-rule rationale.
"""

from repro.analysis.cli import check_paths, main
from repro.analysis.engine import Baseline, Finding, Project, Rule, run_rules
from repro.analysis.rules import default_rules

__all__ = ["Finding", "Rule", "Project", "Baseline", "run_rules",
           "default_rules", "check_paths", "main"]
