"""Fig. 5 — DCM with overlapping, battery-capacity sweep at fixed δ.

Sweeps the battery capacity (δ fixed, 10 m in the paper) and plots, for
Algorithm 2, Algorithm 3 (each K), and the benchmark baseline:

* (a) mean collected data volume (GB),
* (b) mean planning wall-clock time (s).

Paper claims reproduced (shape):

* collected volume grows with capacity for every algorithm (the paper
  reports +82 % for Algorithm 3, K=4, from 3e5 J to 9e5 J);
* Algorithm 2/3 planning time grows with capacity while the benchmark's
  shrinks.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.config import ExperimentConfig
from repro.experiments.fig4 import fig4_algorithms
from repro.experiments.instances import make_instances
from repro.experiments.runner import AlgoSpec, SweepResult, run_sweep
from repro.network.sensor_network import SensorNetwork


def run_fig5(config: ExperimentConfig,
             instances: Optional[Sequence[SensorNetwork]] = None,
             *, validate: bool = True, progress=None,
             jobs: int = 1, cache: bool = True,
             batch_columns: bool = False,
             site_reduction=None) -> SweepResult:
    """Run the Fig. 5 capacity sweep and return the aggregated rows.

    ``jobs``/``cache`` select the execution engine and the per-instance
    artifact cache (see :func:`repro.experiments.runner.run_sweep`); δ is
    fixed here, so the cache builds each instance's grid exactly once
    for the whole sweep.  This sweep is the batch-column showcase: with
    ``batch_columns=True`` every Algorithm 2/3 spec plans its whole
    capacity column per instance in one ``engine="batch"`` call
    (identical tours, one stacked numpy program instead of one greedy
    loop per capacity; the benchmark keeps the per-cell path).
    ``site_reduction`` applies the candidate-site reduction pre-pass to
    the Algorithm 2/3 cells; capacity-dependent stages bound a batch
    column by its largest capacity, so columns stay plan-preserving at
    the ``safe`` level.
    """
    if instances is None:
        instances = make_instances(config)

    def make_kwargs(cfg: ExperimentConfig, value: float, spec: AlgoSpec):
        kwargs = dict(spec.kwargs)
        if spec.method != "benchmark":
            kwargs["delta"] = cfg.delta
        return kwargs

    return run_sweep(
        config, instances, fig4_algorithms(config),
        param_name="capacity",
        param_values=config.capacity_sweep,
        make_energy=lambda cfg, value: cfg.energy_model(capacity=value),
        make_kwargs=make_kwargs,
        validate=validate,
        progress=progress,
        jobs=jobs,
        cache=cache,
        batch_columns=batch_columns,
        site_reduction=site_reduction)


__all__ = ["run_fig5"]
