"""Statistical treatment of sweep measurements.

The paper reports bare means over 15 instances; this module adds the
machinery a careful reproduction wants on top:

* :func:`mean_confidence_interval` — t-based CI for a sample mean,
* :func:`row_confidence_interval` — the same for a
  :class:`~repro.experiments.runner.SweepRow` (reconstructing the standard
  error from the stored std and instance count),
* :func:`paired_comparison` — per-instance paired test between two
  algorithms (the runner evaluates all algorithms on the *same* instance
  set precisely to enable this): mean difference, its CI, a sign-test
  p-value, and a verdict string.

Only scipy.stats is used (already a dependency).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np
from scipy import stats

from repro.experiments.runner import SweepRow
from repro.utils.errors import InvalidParameterError


def mean_confidence_interval(samples: Sequence[float],
                             confidence: float = 0.95
                             ) -> Tuple[float, float, float]:
    """``(mean, lo, hi)`` t-interval for the mean of *samples*.

    A single sample yields a degenerate interval at its value.
    """
    x = np.asarray(list(samples), dtype=float)
    if x.size == 0:
        raise InvalidParameterError("samples must be non-empty")
    if not (0.0 < confidence < 1.0):
        raise InvalidParameterError(
            f"confidence must be in (0, 1), got {confidence}")
    mean = float(x.mean())
    if x.size == 1:
        return mean, mean, mean
    sem = float(x.std(ddof=1) / np.sqrt(x.size))
    half = float(stats.t.ppf(0.5 + confidence / 2.0, df=x.size - 1) * sem)
    return mean, mean - half, mean + half


def row_confidence_interval(row: SweepRow, *, metric: str = "volume",
                            confidence: float = 0.95
                            ) -> Tuple[float, float, float]:
    """t-interval reconstructed from a sweep row's (mean, std, n).

    The runner stores the *population* std (``np.std`` default); the
    ddof-1 correction is applied here.
    """
    if metric == "volume":
        mean, std = row.mean_volume_gb, row.std_volume_gb
    elif metric == "time":
        mean, std = row.mean_time_s, row.std_time_s
    else:
        raise InvalidParameterError(
            f"metric must be 'volume' or 'time', got {metric!r}")
    n = row.n_instances
    if n <= 1:
        return mean, mean, mean
    sample_std = std * np.sqrt(n / (n - 1))
    sem = sample_std / np.sqrt(n)
    half = float(stats.t.ppf(0.5 + confidence / 2.0, df=n - 1) * sem)
    return mean, mean - half, mean + half


@dataclass(frozen=True)
class PairedComparison:
    """Outcome of a per-instance paired comparison ``a`` vs ``b``.

    Attributes
    ----------
    mean_diff:
        Mean of ``a_i - b_i``.
    ci:
        ``(lo, hi)`` t-interval for the mean difference.
    wins, losses, ties:
        Per-instance tallies of ``a_i > b_i`` etc.
    p_sign:
        Two-sided sign-test p-value (ties dropped).
    """

    mean_diff: float
    ci: Tuple[float, float]
    wins: int
    losses: int
    ties: int
    p_sign: float

    @property
    def significant(self) -> bool:
        """Zero lies outside the CI (the usual 95 % reading)."""
        lo, hi = self.ci
        return lo > 0.0 or hi < 0.0

    def verdict(self, a: str = "A", b: str = "B") -> str:
        """Human-readable one-liner."""
        direction = a if self.mean_diff > 0 else b
        strength = "significantly" if self.significant else "not significantly"
        return (f"{direction} ahead by {abs(self.mean_diff):.3f} on average "
                f"({strength}; wins {self.wins}-{self.losses}-{self.ties}, "
                f"sign-test p={self.p_sign:.3f})")


def paired_comparison(a: Sequence[float], b: Sequence[float], *,
                      confidence: float = 0.95,
                      tie_tol: float = 1e-9) -> PairedComparison:
    """Paired comparison of two per-instance measurement vectors.

    Parameters
    ----------
    a, b:
        Same-length vectors, measured on the *same* instances in the same
        order (the sweep runner guarantees this).
    confidence:
        CI level for the mean difference.
    tie_tol:
        Absolute differences below this count as ties.
    """
    xa = np.asarray(list(a), dtype=float)
    xb = np.asarray(list(b), dtype=float)
    if xa.shape != xb.shape or xa.size == 0:
        raise InvalidParameterError(
            "a and b must be equal-length non-empty vectors")
    diff = xa - xb
    mean, lo, hi = mean_confidence_interval(diff, confidence)
    wins = int((diff > tie_tol).sum())
    losses = int((diff < -tie_tol).sum())
    ties = int(diff.size - wins - losses)
    n_eff = wins + losses
    if n_eff == 0:
        p = 1.0
    else:
        p = float(stats.binomtest(min(wins, losses), n_eff, 0.5).pvalue)
    return PairedComparison(mean_diff=mean, ci=(lo, hi), wins=wins,
                            losses=losses, ties=ties, p_sign=p)


__all__ = [
    "mean_confidence_interval",
    "row_confidence_interval",
    "PairedComparison",
    "paired_comparison",
]
