"""Terminal rendering of sweep results — no matplotlib required.

The offline environments this library targets often lack plotting stacks,
so the figure runners can render their two panels (collected volume and
planning time) as Unicode line charts directly in the terminal:

>>> result = run_fig5(reduced_settings())          # doctest: +SKIP
>>> print(render_sweep(result, panel="volume"))    # doctest: +SKIP
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.experiments.runner import SweepResult
from repro.utils.errors import InvalidParameterError

#: Marker characters assigned to algorithms in plot order.
MARKERS = "ox+*#@%&"


def _scale(value: float, lo: float, hi: float, size: int) -> int:
    if hi <= lo:
        return 0
    t = (value - lo) / (hi - lo)
    return min(size - 1, max(0, int(round(t * (size - 1)))))


def render_series(xs: Sequence[float], series: Dict[str, Sequence[float]],
                  *, width: int = 64, height: int = 16,
                  ylabel: str = "", xlabel: str = "") -> str:
    """Render named y-series over shared x-values as a Unicode chart.

    Parameters
    ----------
    xs:
        Shared x coordinates (sorted ascending).
    series:
        Mapping name -> y values (same length as *xs*).
    width, height:
        Canvas size in characters (excluding axes/labels).
    ylabel, xlabel:
        Axis captions.
    """
    if not series:
        raise InvalidParameterError("series must be non-empty")
    for name, ys in series.items():
        if len(ys) != len(xs):
            raise InvalidParameterError(
                f"series {name!r} has {len(ys)} points, expected {len(xs)}")
    if len(xs) == 0:
        raise InvalidParameterError("xs must be non-empty")

    all_y = [y for ys in series.values() for y in ys]
    ylo, yhi = min(all_y), max(all_y)
    if yhi == ylo:
        yhi = ylo + 1.0
    xlo, xhi = min(xs), max(xs)

    canvas = [[" "] * width for _ in range(height)]
    legend = []
    for idx, (name, ys) in enumerate(series.items()):
        marker = MARKERS[idx % len(MARKERS)]
        legend.append(f"{marker} {name}")
        cols = [_scale(x, xlo, xhi, width) for x in xs]
        rows = [height - 1 - _scale(y, ylo, yhi, height) for y in ys]
        # Connect consecutive points with interpolated dots.
        for (c1, r1), (c2, r2) in zip(zip(cols, rows), zip(cols[1:], rows[1:])):
            steps = max(abs(c2 - c1), abs(r2 - r1), 1)
            for s in range(steps + 1):
                c = c1 + (c2 - c1) * s // steps
                r = r1 + (r2 - r1) * s // steps
                if canvas[r][c] == " ":
                    canvas[r][c] = "·"
        for c, r in zip(cols, rows):
            canvas[r][c] = marker

    lines: List[str] = []
    if ylabel:
        lines.append(ylabel)
    for i, row in enumerate(canvas):
        # y-axis tick on the first, middle, and last rows.
        if i == 0:
            tick = f"{yhi:>10.2f} "
        elif i == height - 1:
            tick = f"{ylo:>10.2f} "
        elif i == height // 2:
            tick = f"{(ylo + yhi) / 2:>10.2f} "
        else:
            tick = " " * 11
        lines.append(tick + "|" + "".join(row))
    lines.append(" " * 11 + "+" + "-" * width)
    lines.append(" " * 12 + f"{xlo:<10g}" + " " * max(0, width - 20)
                 + f"{xhi:>10g}")
    if xlabel:
        lines.append(" " * 12 + xlabel)
    lines.append("  " + "   ".join(legend))
    return "\n".join(lines)


def render_sweep(result: SweepResult, *, panel: str = "volume",
                 width: int = 64, height: int = 16) -> str:
    """Render one panel of a figure sweep.

    Parameters
    ----------
    result:
        A :class:`~repro.experiments.runner.SweepResult`.
    panel:
        ``"volume"`` (collected GB — the paper's panel (a)) or ``"time"``
        (planning seconds — panel (b)).
    """
    if panel not in ("volume", "time"):
        raise InvalidParameterError(
            f"panel must be 'volume' or 'time', got {panel!r}")
    attr = "mean_volume_gb" if panel == "volume" else "mean_time_s"
    if not result.rows:
        raise InvalidParameterError("empty sweep result")
    xs = sorted({r.param_value for r in result.rows})
    series: Dict[str, List[float]] = {}
    for algo in result.algorithms():
        rows = result.series(algo)
        by_x = {r.param_value: getattr(r, attr) for r in rows}
        series[algo] = [by_x[x] for x in xs]
    ylabel = ("collected data volume (GB)" if panel == "volume"
              else "planning time (s)")
    return render_series(xs, series, width=width, height=height,
                         ylabel=ylabel,
                         xlabel=result.rows[0].param_name)


__all__ = ["render_series", "render_sweep", "MARKERS"]
