"""Process-pool sweep executor.

Fans the (algorithm, parameter value) cells of one sweep out to ``jobs``
worker processes and merges the per-cell :class:`~repro.experiments.runner.SweepRow`
results back **deterministically**: rows come back in canonical cell
order (parameter values outer, algorithms inner — identical to the
sequential runner's loop nesting) no matter how many workers ran or in
which order they finished.

Transport is data, not objects:

* the :class:`~repro.experiments.config.ExperimentConfig` crosses as its
  :meth:`~repro.experiments.config.ExperimentConfig.as_dict` JSON,
* the instance set crosses once per worker via
  :func:`repro.network.serialization.networks_to_json` — the JSON round
  trip is bitwise-exact (property-tested), which is what makes worker
  tours identical to in-process tours,
* each work unit is a JSON object carrying the cell index, the planner
  kwargs (``make_kwargs`` output), and the cell's
  :class:`~repro.energy.model.EnergyModel` fields (``make_energy`` runs
  in the parent; workers rebuild the model from its fields).

Each worker keeps its own per-process
:class:`~repro.experiments.artifacts.ArtifactCache`, so geometry is
built once per (instance, δ) *per worker*, and — when tracing is active
in the parent — its own :class:`~repro.obs.tracer.Tracer`, flushed to a
JSONL shard after every cell and merged into the parent tracer at the
end (:mod:`repro.obs.shards`).  Per-cell planning time is measured
inside the worker around the planning call only — queue wait and
transport never pollute the paper's Figs. 3(b)/4(b)/5(b) quantity.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.energy.model import EnergyModel
from repro.experiments.artifacts import ArtifactCache
from repro.experiments.config import ExperimentConfig
from repro.experiments.continuation import chainable_spec
from repro.experiments.runner import (
    AlgoSpec,
    SweepResult,
    SweepRow,
    _aggregate_samples,
    _plan_chain_instance,
    _plan_column_instance,
    _run_cell,
    batchable_column,
    format_progress,
    sweep_cells,
)
from repro.experiments.runner import _emit_sweep_records
from repro.network.sensor_network import SensorNetwork
from repro.network.serialization import networks_from_json, networks_to_json
from repro.obs.ledger import Ledger, get_ledger, set_ledger
from repro.obs.metrics import MetricsRegistry, get_metrics, metrics_scope
from repro.obs.record import RunRecord
from repro.obs.shards import (
    append_shard,
    merge_ledger_shards,
    merge_trace_shards,
    shard_path,
)
from repro.obs.tracer import Tracer, TracerLike, activated, span

#: Worker-process state installed by :func:`_init_worker` (one per worker).
_WORKER: Dict[str, Any] = {}


def _energy_fields(energy: EnergyModel) -> Dict[str, Any]:
    """The constructor fields an :class:`EnergyModel` rebuilds from."""
    return {
        "capacity": energy.capacity,
        "hover_power": energy.hover_power,
        "travel_power": energy.travel_power,
        "speed": energy.speed,
        "distance_based_travel": energy.distance_based_travel,
    }


def _encode_unit(index: int, param_name: str, value: float, spec: AlgoSpec,
                 energy: EnergyModel, kwargs: Dict[str, Any],
                 validate: bool) -> str:
    """One cell as a JSON work unit; raises if kwargs are not data."""
    unit = {
        "cell": index,
        "param_name": param_name,
        "value": float(value),
        "algorithm": spec.name,
        "method": spec.method,
        "kwargs": kwargs,
        "energy": _energy_fields(energy),
        "validate": validate,
    }
    try:
        return json.dumps(unit)
    except TypeError as exc:
        raise TypeError(
            f"parallel sweeps ship planner kwargs to workers as JSON; "
            f"make_kwargs returned non-serialisable options for cell "
            f"{spec.name!r} at {param_name}={value:g}: {exc}") from exc


def _encode_column_unit(s_idx: int, instance: int, param_name: str,
                        values: Sequence[float], spec: AlgoSpec,
                        energies: Sequence[EnergyModel],
                        kwargs: Dict[str, Any], validate: bool) -> str:
    """One (column, instance) pair as a JSON work unit.

    ``batchable_column`` already vetted the kwargs as JSON data, so the
    dump cannot fail on them.
    """
    return json.dumps({
        "column": s_idx,
        "instance": instance,
        "param_name": param_name,
        "values": [float(v) for v in values],
        "algorithm": spec.name,
        "method": spec.method,
        "kwargs": kwargs,
        "energies": [_energy_fields(e) for e in energies],
        "validate": validate,
    })


def _init_worker(config_json: str, instances_json: str, cache_enabled: bool,
                 tracing: bool, shard_dir: Optional[str],
                 ledgering: bool = False, ledger_mem: bool = False,
                 collect_metrics: bool = False) -> None:
    """Per-worker setup: decode instances once, build cache/tracer/ledger.

    When the parent has an active run ledger (``ledgering``), the worker
    installs its own :class:`~repro.obs.ledger.Ledger` streaming to a
    ``ledger-shard-<pid>.jsonl`` file — the facade's ``planner.call``
    records land there and are merged back by the parent.  When the
    parent has an ambient metrics registry (``collect_metrics``), each
    work unit scopes a fresh registry and ships its snapshot home.
    """
    config = ExperimentConfig.from_dict(json.loads(config_json))
    _WORKER["radio"] = config.radio_model()
    _WORKER["instances"] = networks_from_json(instances_json)
    _WORKER["cache"] = ArtifactCache() if cache_enabled else None
    _WORKER["tracer"] = Tracer() if tracing else None
    _WORKER["shard_dir"] = shard_dir
    _WORKER["collect_metrics"] = collect_metrics
    if ledgering and shard_dir is not None:
        set_ledger(Ledger(shard_path(shard_dir, os.getpid(), kind="ledger"),
                          track_memory=ledger_mem))
    else:
        set_ledger(None)        # never inherit a forked parent ledger


def _plan_cell(unit_json: str) -> str:
    """Worker entry: plan one cell, return its row (and stats) as JSON."""
    unit = json.loads(unit_json)
    spec = AlgoSpec(unit["algorithm"], unit["method"], unit["kwargs"])
    energy = EnergyModel(**unit["energy"])
    cache: Optional[ArtifactCache] = _WORKER["cache"]
    tracer: Optional[Tracer] = _WORKER["tracer"]
    registry = (MetricsRegistry() if _WORKER.get("collect_metrics")
                else None)
    with activated(tracer), metrics_scope(registry):
        with span("runner.cell", cell=unit["cell"],
                  param=unit["param_name"], value=unit["value"],
                  algorithm=spec.name, worker=os.getpid()):
            row = _run_cell(_WORKER["instances"], spec, unit["param_name"],
                            unit["value"], energy, _WORKER["radio"],
                            kwargs=unit["kwargs"],
                            validate=unit["validate"], cache=cache)
    _flush_worker_shard(tracer)
    return json.dumps({
        "cell": unit["cell"],
        "worker": os.getpid(),
        "metrics": registry.snapshot() if registry is not None else None,
        "row": {
            "param_name": row.param_name,
            "param_value": row.param_value,
            "algorithm": row.algorithm,
            "mean_volume_gb": row.mean_volume_gb,
            "std_volume_gb": row.std_volume_gb,
            "mean_time_s": row.mean_time_s,
            "std_time_s": row.std_time_s,
            "n_instances": row.n_instances,
            "perf": row.perf,
        },
        "cache": cache.stats() if cache is not None else None,
    })


def _flush_worker_shard(tracer: Optional[Tracer]) -> None:
    """Append this worker's trace records to its JSONL shard, if tracing."""
    if tracer is not None and _WORKER["shard_dir"] is not None:
        append_shard(tracer.records(),
                     shard_path(_WORKER["shard_dir"], os.getpid()))
        tracer.clear()


def _encode_chain_unit(s_idx: int, instance: int, param_name: str,
                       values: Sequence[float], spec: AlgoSpec,
                       energies: Sequence[EnergyModel],
                       kwargs_by_value: Sequence[Dict[str, Any]],
                       validate: bool) -> str:
    """One δ-continuation (chain, instance) pair as a JSON work unit.

    ``chainable_spec`` already vetted every cell's kwargs as JSON data.
    The payload mirrors the column units — the parent merges both
    through the same per-value sample buckets.
    """
    return json.dumps({
        "chain": s_idx,
        "instance": instance,
        "param_name": param_name,
        "values": [float(v) for v in values],
        "algorithm": spec.name,
        "method": spec.method,
        "kwargs_by_value": list(kwargs_by_value),
        "energies": [_energy_fields(e) for e in energies],
        "validate": validate,
    })


def _plan_chain(unit_json: str) -> str:
    """Worker entry: plan one δ-continuation chain, return its samples.

    The whole chain runs inside one worker — the warm payloads never
    cross a process boundary mid-chain — through the same
    :func:`~repro.experiments.runner._plan_chain_instance` the
    sequential runner calls, so the samples are bitwise-identical to
    the ``jobs=1`` chain.
    """
    unit = json.loads(unit_json)
    spec = AlgoSpec(unit["algorithm"], unit["method"], {})
    energies = [EnergyModel(**fields) for fields in unit["energies"]]
    net = _WORKER["instances"][unit["instance"]]
    cache: Optional[ArtifactCache] = _WORKER["cache"]
    tracer: Optional[Tracer] = _WORKER["tracer"]
    registry = (MetricsRegistry() if _WORKER.get("collect_metrics")
                else None)
    assert cache is not None   # run_sweep refuses continuation without it
    with activated(tracer), metrics_scope(registry):
        with span("runner.chain", chain=unit["chain"],
                  instance=unit["instance"], param=unit["param_name"],
                  algorithm=spec.name, width=len(energies),
                  worker=os.getpid()):
            samples = _plan_chain_instance(
                net, spec, unit["values"], energies, _WORKER["radio"],
                kwargs_by_value=unit["kwargs_by_value"],
                validate=unit["validate"], cache=cache)
    _flush_worker_shard(tracer)
    return json.dumps({
        "column": unit["chain"],
        "instance": unit["instance"],
        "worker": os.getpid(),
        "metrics": registry.snapshot() if registry is not None else None,
        "samples": samples,
        "cache": cache.stats(),
    })


def _plan_column(unit_json: str) -> str:
    """Worker entry: plan one (column, instance) unit, return its samples.

    The samples cross back as JSON ``[volume_gb, time_s, perf]`` triples
    in parameter-value order; the parent aggregates them per cell in
    instance order, so the float reductions are identical to the
    sequential column executor (the JSON float round trip is exact).
    """
    unit = json.loads(unit_json)
    spec = AlgoSpec(unit["algorithm"], unit["method"], unit["kwargs"])
    energies = [EnergyModel(**fields) for fields in unit["energies"]]
    net = _WORKER["instances"][unit["instance"]]
    cache: Optional[ArtifactCache] = _WORKER["cache"]
    tracer: Optional[Tracer] = _WORKER["tracer"]
    registry = (MetricsRegistry() if _WORKER.get("collect_metrics")
                else None)
    with activated(tracer), metrics_scope(registry):
        with span("runner.column", column=unit["column"],
                  instance=unit["instance"], param=unit["param_name"],
                  algorithm=spec.name, width=len(energies),
                  worker=os.getpid()):
            samples = _plan_column_instance(
                net, spec, energies, _WORKER["radio"],
                kwargs=unit["kwargs"], validate=unit["validate"],
                cache=cache)
    _flush_worker_shard(tracer)
    return json.dumps({
        "column": unit["column"],
        "instance": unit["instance"],
        "worker": os.getpid(),
        "metrics": registry.snapshot() if registry is not None else None,
        "samples": samples,
        "cache": cache.stats() if cache is not None else None,
    })


def run_sweep_parallel(
        config: ExperimentConfig,
        instances: Sequence[SensorNetwork],
        algorithms: Sequence[AlgoSpec],
        param_name: str,
        param_values: Sequence[float],
        *,
        make_energy: Callable[[ExperimentConfig, float], EnergyModel],
        make_kwargs: Callable[[ExperimentConfig, float, AlgoSpec], Dict[str, Any]],
        validate: bool = True,
        progress: Optional[Callable[[str], None]] = None,
        trace: Optional[TracerLike] = None,
        jobs: int = 2,
        cache: bool = True,
        batch_columns: bool = False,
        delta_continuation: bool = False,
        shard_dir: Optional[str] = None) -> SweepResult:
    """Run one sweep on a process pool; same contract as ``run_sweep``.

    Callers normally reach this through ``run_sweep(..., jobs=N)``.
    With ``batch_columns=True`` each eligible algorithm ships one
    (column, instance) unit per instance — the whole value column plans
    as one stacked batch call inside the worker, and the parent
    aggregates the returned samples per cell in instance order (batch
    within a worker, processes across instances).  With
    ``delta_continuation=True`` each chainable Algorithm 1 spec ships
    one (chain, instance) unit per instance instead: the worker plans
    that instance's whole δ column coarse→fine with warm starts (see
    :mod:`repro.experiments.continuation`), so the chain's warm payloads
    never cross a process boundary and the samples match the sequential
    chains bitwise.  ``shard_dir`` names a directory to keep the
    per-worker trace shards in (default: a temporary directory deleted
    after the merge).
    """
    if jobs < 2:
        raise ValueError(
            f"run_sweep_parallel needs jobs >= 2, got {jobs} "
            f"(use run_sweep for the in-process path)")
    if delta_continuation and not cache:
        raise ValueError(
            "delta_continuation needs the artifact cache (cache=True): "
            "warm payloads for the finer grids flow through it")

    cells = sweep_cells(algorithms, param_values)
    if not cells:
        return SweepResult(config=config, rows=[], meta={"jobs": jobs})
    n_specs = len(algorithms)
    chain_specs = [
        s_idx for s_idx, spec in enumerate(algorithms)
        if delta_continuation and chainable_spec(config, spec, param_values,
                                                 make_kwargs)]
    column_specs = [
        s_idx for s_idx, spec in enumerate(algorithms)
        if s_idx not in chain_specs
        and batch_columns and batchable_column(config, spec, param_values,
                                               make_energy, make_kwargs)]
    column_energies = {
        s_idx: [make_energy(config, v) for v in param_values]
        for s_idx in column_specs + chain_specs}
    cell_units = [
        _encode_unit(index, param_name, value, spec,
                     make_energy(config, value),
                     make_kwargs(config, value, spec), validate)
        for index, value, spec in cells
        if index % n_specs not in column_specs
        and index % n_specs not in chain_specs
    ]
    column_units = [
        _encode_column_unit(s_idx, instance, param_name, param_values,
                            algorithms[s_idx], column_energies[s_idx],
                            make_kwargs(config, param_values[0],
                                        algorithms[s_idx]), validate)
        for s_idx in column_specs
        for instance in range(len(instances))
    ]
    chain_units = [
        _encode_chain_unit(s_idx, instance, param_name, param_values,
                           algorithms[s_idx], column_energies[s_idx],
                           [make_kwargs(config, v, algorithms[s_idx])
                            for v in param_values], validate)
        for s_idx in chain_specs
        for instance in range(len(instances))
    ]

    with activated(trace) as active:
        tracing = bool(getattr(active, "enabled", False))
        parent_ledger = get_ledger()
        ledgering = parent_ledger is not None
        ambient_metrics = get_metrics()
        own_shard_dir = shard_dir is None
        resolved_shard_dir: Optional[str] = None
        if tracing or ledgering:
            resolved_shard_dir = (tempfile.mkdtemp(prefix="repro-shards-")
                                  if own_shard_dir else str(shard_dir))

        results: Dict[int, SweepRow] = {}
        worker_cache_stats: Dict[int, Dict[str, int]] = {}
        column_samples: Dict[int, Dict[int, list]] = {
            s_idx: {} for s_idx in column_specs + chain_specs}
        next_to_report = 0
        n_units = (len(cell_units) + len(column_units) + len(chain_units))
        with span("parallel.sweep", cells=len(cells), jobs=jobs,
                  columns=len(column_specs), chains=len(chain_specs)):
            with ProcessPoolExecutor(
                    max_workers=min(jobs, n_units),
                    initializer=_init_worker,
                    initargs=(json.dumps(config.as_dict()),
                              networks_to_json(instances),
                              cache, tracing, resolved_shard_dir,
                              ledgering,
                              bool(parent_ledger is not None
                                   and parent_ledger.track_memory),
                              ambient_metrics is not None)) as pool:
                futures = [pool.submit(_plan_cell, unit)
                           for unit in cell_units]
                futures += [pool.submit(_plan_column, unit)
                            for unit in column_units]
                futures += [pool.submit(_plan_chain, unit)
                            for unit in chain_units]
                for future in as_completed(futures):
                    payload = json.loads(future.result())
                    if "cell" in payload:
                        # Each row is computed whole inside one worker and
                        # indexed by its cell, so completion order only
                        # affects *when* a slot fills, never its value.
                        # repro: allow[flow-determinism] -- order-insensitive
                        results[payload["cell"]] = SweepRow(**payload["row"])
                    else:
                        s_idx = payload["column"]
                        pending = column_samples[s_idx]
                        pending[payload["instance"]] = payload["samples"]
                        if len(pending) == len(instances):
                            # Column complete: aggregate each cell over
                            # its samples in instance order — identical
                            # float reductions to the sequential path.
                            for v_idx, value in enumerate(param_values):
                                samples = [pending[i][v_idx]
                                           for i in range(len(instances))]
                                results[v_idx * n_specs + s_idx] = \
                                    _aggregate_samples(  # repro: allow[flow-determinism] -- samples re-sorted into instance order above
                                        param_name, value,
                                        algorithms[s_idx], samples)
                    if payload["cache"] is not None:
                        worker_cache_stats[payload["worker"]] = \
                            payload["cache"]
                    if (ambient_metrics is not None
                            and payload.get("metrics")):
                        # Snapshot merging is commutative (counters and
                        # bucket counts add), so folding in completion
                        # order still yields the jobs-independent totals.
                        ambient_metrics.merge_snapshot(payload["metrics"])
                    # Report finished cells in canonical order only — the
                    # contiguous prefix — so the progress stream is
                    # deterministic no matter the completion order.
                    while progress is not None and next_to_report in results:
                        index, value, spec = cells[next_to_report]
                        progress(format_progress(
                            index, len(cells), param_name, value,
                            results[index]))
                        next_to_report += 1

        rows = [results[index] for index in range(len(cells))]
        meta: Dict[str, Any] = {"jobs": jobs,
                                "batch_columns":
                                    len(column_specs) * len(param_values),
                                "continuation_chains":
                                    len(chain_specs) * len(instances)}
        if cache:
            meta["cache"] = {
                "hits": sum(s["hits"] for s in worker_cache_stats.values()),
                "misses": sum(s["misses"]
                              for s in worker_cache_stats.values()),
            }
        if resolved_shard_dir is not None:
            if tracing:
                merged = merge_trace_shards(resolved_shard_dir)
                if isinstance(active, Tracer):
                    active.ingest(merged)
                meta["trace_records"] = len(merged)
            if ledgering and parent_ledger is not None:
                # Worker records (the facade's planner.call entries) come
                # home in canonical cell order, then the parent emits the
                # per-cell aggregates itself — same rebase discipline as
                # the trace shards, minus the id remapping records don't
                # need.
                shard_records = merge_ledger_shards(resolved_shard_dir)
                parent_ledger.extend(
                    RunRecord.from_dict(rec) for rec in shard_records)
                meta["ledger_records"] = len(shard_records)
            if own_shard_dir:
                shutil.rmtree(resolved_shard_dir, ignore_errors=True)
        _emit_sweep_records(config, algorithms, param_name, param_values,
                            rows, jobs=jobs, column_specs=column_specs)
    return SweepResult(config=config, rows=rows, meta=meta)


__all__ = ["run_sweep_parallel"]
