"""Persisting and reloading sweep results; full-report generation.

``repro-experiments ... --out results/`` writes one CSV per figure; this
module is the other half of that loop:

* :func:`load_sweep_csv` — parse a results CSV back into a
  :class:`~repro.experiments.runner.SweepResult`,
* :func:`generate_report` — assemble the EXPERIMENTS-style markdown
  document (tables + executable claim checks + optional ASCII charts)
  from a results directory, so the committed document can always be
  regenerated from the committed data.
"""

from __future__ import annotations

import csv
import pathlib
from typing import Dict, Optional

from repro.experiments.claims import (
    check_fig3_claims,
    check_fig4_claims,
    check_fig5_claims,
    claims_to_markdown,
)
from repro.experiments.config import ExperimentConfig, reduced_settings
from repro.experiments.runner import SweepResult, SweepRow
from repro.experiments.tables import rows_to_markdown
from repro.utils.errors import InvalidParameterError

_CHECKERS = {
    "fig3": check_fig3_claims,
    "fig4": check_fig4_claims,
    "fig5": check_fig5_claims,
}


def load_sweep_csv(path, *, config: Optional[ExperimentConfig] = None
                   ) -> SweepResult:
    """Parse a CSV written by :func:`repro.experiments.tables.rows_to_csv`.

    Parameters
    ----------
    path:
        CSV file path.
    config:
        Configuration to attach (cosmetic; defaults to the reduced preset).
    """
    path = pathlib.Path(path)
    if not path.exists():
        raise InvalidParameterError(f"no such results file: {path}")
    rows = []
    with path.open() as f:
        reader = csv.DictReader(f)
        expected = {"param_name", "param_value", "algorithm",
                    "mean_volume_gb", "std_volume_gb", "mean_time_s",
                    "std_time_s", "n_instances"}
        if reader.fieldnames is None or not expected <= set(reader.fieldnames):
            raise InvalidParameterError(
                f"{path} is not a sweep-results CSV "
                f"(columns: {reader.fieldnames})")
        try:
            for r in reader:
                rows.append(SweepRow(
                    param_name=r["param_name"],
                    param_value=float(r["param_value"]),
                    algorithm=r["algorithm"],
                    mean_volume_gb=float(r["mean_volume_gb"]),
                    std_volume_gb=float(r["std_volume_gb"]),
                    mean_time_s=float(r["mean_time_s"]),
                    std_time_s=float(r["std_time_s"]),
                    n_instances=int(r["n_instances"])))
        except (ValueError, KeyError) as exc:
            raise InvalidParameterError(
                f"malformed sweep CSV {path}: {exc}") from exc
    if not rows:
        raise InvalidParameterError(f"{path} contains no data rows")
    return SweepResult(config=config or reduced_settings(), rows=rows)


def load_results_dir(directory, *, label: str = "reduced"
                     ) -> Dict[str, SweepResult]:
    """Load every ``fig*_<label>.csv`` in *directory* (keyed ``fig3``...)."""
    directory = pathlib.Path(directory)
    out: Dict[str, SweepResult] = {}
    for fig in ("fig3", "fig4", "fig5"):
        path = directory / f"{fig}_{label}.csv"
        if path.exists():
            out[fig] = load_sweep_csv(path)
    if not out:
        raise InvalidParameterError(
            f"no fig*_{label}.csv files found in {directory}")
    return out


def generate_report(directory, *, label: str = "reduced",
                    ascii_charts: bool = False) -> str:
    """Markdown report (tables + claim checks) from a results directory."""
    results = load_results_dir(directory, label=label)
    parts = [f"# Reproduction report ({label} scale)\n"]
    all_claims = []
    for fig, result in sorted(results.items()):
        parts.append(rows_to_markdown(result, title=fig))
        if fig in _CHECKERS:
            claims = _CHECKERS[fig](result)
            all_claims.extend(claims)
        if ascii_charts:
            from repro.experiments.ascii_plot import render_sweep
            parts.append("```")
            parts.append(render_sweep(result, panel="volume"))
            parts.append("```")
    parts.append("## Claim checks\n")
    parts.append(claims_to_markdown(all_claims))
    failed = [c for c in all_claims if not c.passed]
    parts.append(f"\n**{len(all_claims) - len(failed)}/{len(all_claims)} "
                 "claims pass.**")
    return "\n".join(parts) + "\n"


__all__ = ["load_sweep_csv", "load_results_dir", "generate_report"]
