"""Per-instance artifact cache for sweep campaigns.

A sweep grid re-plans the *same* network instances cell after cell, yet
most of the planners' per-instance inputs depend only on (instance, δ)
and the energy *rates* — never on the swept battery capacity:

* the δ-grid hovering sites (coverage matrix, awards, hover times),
* Algorithm 1's conflict-neighbor lists (coverage-overlap groups),
* Algorithm 1's auxiliary graph ``G_s`` (edge weights use η_h and the
  J/m travel rate; the capacity only enters as the orienteering budget).

:class:`ArtifactCache` memoizes exactly those artifacts so a capacity
sweep builds each instance's geometry once instead of once per cell.
The cache is *per process*: the sequential runner keeps one for the
whole sweep, and every worker of the parallel executor keeps its own
(instances are not shared across processes).  Cached artifacts are the
byte-identical outputs of the same pure constructors the planners call
themselves, so cached and uncached sweeps produce bitwise-identical
tours — ``tests/test_experiments_parallel.py`` pins that.

Keys use ``id(network)``; the cache pins a reference to every keyed
network so an id can never be recycled while the cache lives.  Do not
feed a cache networks you intend to mutate.

Hit/miss/size accounting lives in a per-cache
:class:`repro.obs.metrics.MetricsRegistry` (counters ``hits`` and
``misses``, gauge ``artifacts``); the legacy ``cache.hits`` /
``cache.misses`` attributes and the :meth:`ArtifactCache.stats` shape
are served from it unchanged, and ``benchmarks/bench_sweep.py`` records
the full :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` per mode.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.core.auxgraph import AuxiliaryGraph, build_auxiliary_graph
from repro.core.hovering import HoveringSites, build_hovering_sites
from repro.core.reduce import (ReducedSites, SiteReduction, reduce_sites,
                               resolve_reduction)
from repro.energy.model import EnergyModel
from repro.network.sensor_network import SensorNetwork
from repro.obs.metrics import MetricsRegistry
from repro.radio.link import RadioModel

#: Planner methods whose kwargs the cache knows how to augment.
CACHEABLE_METHODS = ("algorithm1", "algorithm2", "algorithm3")

#: Per-cell planner options that select *different* cached geometry.
#: Every kwarg that changes what ``sites()`` / ``graph()`` /
#: ``conflict_neighbors()`` should return for the same (instance, δ)
#: MUST be listed here: its token joins every cache key, so two cells
#: differing only in such an option can never share artifacts (the
#: regression test in tests/test_experiments_artifacts_keys.py pins it).
#: ``corridor_seed`` (the δ-continuation warm start) is consumed by
#: :meth:`ArtifactCache.augment_kwargs` — it seeds the reduction's
#: corridor stage and never reaches the planner itself.
ARTIFACT_OPTIONS = ("site_reduction", "corridor_seed")

_SiteKey = Tuple[int, float, float, float, str]
_GraphKey = Tuple[int, float, float, float, str, float, float]


class ArtifactCache:
    """Memoized per-(instance, δ) planner geometry (see module docstring)."""

    def __init__(self) -> None:
        self._sites: Dict[_SiteKey, HoveringSites] = {}
        self._graphs: Dict[_GraphKey, AuxiliaryGraph] = {}
        self._conflicts: Dict[_SiteKey, List[np.ndarray]] = {}
        self._pins: Dict[int, SensorNetwork] = {}
        self.metrics = MetricsRegistry()

    def __len__(self) -> int:
        return len(self._sites) + len(self._graphs) + len(self._conflicts)

    @property
    def hits(self) -> int:
        """Lookups served from the cache (counter ``hits``)."""
        return int(self.metrics.counter("hits").value)

    @property
    def misses(self) -> int:
        """Lookups that had to build the artifact (counter ``misses``)."""
        return int(self.metrics.counter("misses").value)

    def _hit(self) -> None:
        self.metrics.counter("hits").inc()

    def _miss(self) -> None:
        self.metrics.counter("misses").inc()

    def _stored(self) -> None:
        self.metrics.gauge("artifacts").set(len(self))

    def _site_key(self, network: SensorNetwork, radio: RadioModel,
                  delta: float, options: str = "") -> _SiteKey:
        self._pins[id(network)] = network
        # _pins keeps the network alive, so id() is stable for the cache
        # lifetime and the key never leaves this process.
        # repro: allow[flow-determinism] -- process-local cache key
        return (id(network), float(delta), float(radio.bandwidth),
                float(radio.coverage_radius), options)

    @staticmethod
    def _reduction_token(reduction: SiteReduction, energy: EnergyModel,
                         corridor_seed: Optional[Any] = None) -> str:
        """The cache-key fragment of one reduction config.

        Canonical-JSON config plus, for capacity-dependent stages, the
        exact reachability bound (capacity and travel rate): two cells
        whose survivor sets could legally differ never share a key.  A
        ``corridor_seed`` (δ-continuation) joins the token — hashed over
        its exact float bytes — whenever the corridor stage would
        consume it, so seeded and cold reductions never share survivors.
        """
        token = reduction.key()
        if reduction.capacity_dependent:
            token += (f"|cap={float(energy.capacity)!r}"
                      f"|rate={float(energy.travel_cost_per_meter)!r}")
        if reduction.corridor and corridor_seed is not None:
            seed = np.ascontiguousarray(
                np.asarray(corridor_seed, dtype=float))
            if seed.size:
                token += "|seed=" + hashlib.sha256(
                    seed.tobytes()).hexdigest()[:24]
        return token

    def sites(self, network: SensorNetwork, radio: RadioModel,
              delta: float) -> HoveringSites:
        """The memoized :func:`build_hovering_sites` output for a cell."""
        key = self._site_key(network, radio, delta)
        cached = self._sites.get(key)
        if cached is not None:
            self._hit()
            return cached
        self._miss()
        built = build_hovering_sites(network, radio, delta)
        self._sites[key] = built
        self._stored()
        return built

    def reduced_sites(self, network: SensorNetwork, radio: RadioModel,
                      delta: float, reduction: SiteReduction,
                      energy: EnergyModel, *,
                      corridor_seed: Optional[Any] = None) -> ReducedSites:
        """Memoized site-reduction pre-pass over the cached base sites.

        For a batch column pass the largest-capacity variant as *energy*
        (the same convention as
        :func:`repro.core.batch.plan_algorithm2_batch`).
        ``corridor_seed`` (a coarser δ-grid's tour points, δ-continuation)
        warm-starts the corridor stage and joins the cache key.
        """
        token = self._reduction_token(reduction, energy, corridor_seed)
        key = self._site_key(network, radio, delta, token)
        cached = self._sites.get(key)
        if cached is not None:
            self._hit()
            assert isinstance(cached, ReducedSites)
            return cached
        self._miss()
        seed = (np.asarray(corridor_seed, dtype=float)
                if corridor_seed is not None else None)
        # The id() lives only in the cache key; the HoveringSites value
        # reaching reduce_sites (and its span attributes) is
        # deterministic builder output.
        # repro: allow[flow-determinism] -- id() taint is key-only
        built = reduce_sites(self.sites(network, radio, delta), reduction,
                             energy=energy, corridor_seed=seed)
        self._sites[key] = built
        self._stored()
        return built

    def conflict_neighbors(self, network: SensorNetwork, radio: RadioModel,
                           delta: float, *,
                           sites: Optional[HoveringSites] = None,
                           options: str = "") -> List[np.ndarray]:
        """Memoized Algorithm 1 conflict lists (depot entry included).

        *sites*/*options* select a non-default geometry (e.g. reduced
        sites with their reduction token); the defaults serve the plain
        per-(instance, δ) lists.
        """
        key = self._site_key(network, radio, delta, options)
        cached = self._conflicts.get(key)
        if cached is not None:
            self._hit()
            return cached
        self._miss()
        if sites is None:
            sites = self.sites(network, radio, delta)
        lists: List[np.ndarray] = [np.empty(0, dtype=int)]
        for row in sites.overlap_matrix():
            lists.append(np.flatnonzero(row) + 1)
        self._conflicts[key] = lists
        self._stored()
        return lists

    def graph(self, network: SensorNetwork, radio: RadioModel, delta: float,
              energy: EnergyModel, *,
              sites: Optional[HoveringSites] = None,
              options: str = "") -> AuxiliaryGraph:
        """Memoized auxiliary graph, keyed on energy *rates* not capacity."""
        key = self._site_key(network, radio, delta, options) + (
            float(energy.hover_power), float(energy.travel_cost_per_meter))
        cached = self._graphs.get(key)
        if cached is not None:
            self._hit()
            return cached
        self._miss()
        if sites is None:
            sites = self.sites(network, radio, delta)
        built = build_auxiliary_graph(sites, energy)
        self._graphs[key] = built
        self._stored()
        return built

    def augment_kwargs(self, network: SensorNetwork, energy: EnergyModel,
                       radio: RadioModel, method: str,
                       kwargs: Dict[str, Any]) -> Dict[str, Any]:
        """Planner kwargs for one cell with cached geometry injected.

        Methods outside :data:`CACHEABLE_METHODS` (the benchmark hovers
        directly over sensors — no δ-grid) and cells without a ``delta``
        kwarg pass through unchanged.  The injected objects are the same
        values the planner would otherwise build internally, so the tour
        is unchanged bitwise.

        Options listed in :data:`ARTIFACT_OPTIONS` (currently
        ``site_reduction``) are honoured: the injected sites/graph/
        conflict lists are built over the *reduced* geometry and keyed by
        the reduction token, so cells differing only in reduction level
        never share artifacts.  For capacity-dependent reductions the
        caller's *energy* is the reachability bound — batch columns pass
        their largest-capacity variant (see
        :func:`repro.experiments.runner.run_sweep`).
        """
        if method not in CACHEABLE_METHODS or "delta" not in kwargs:
            return kwargs
        delta = float(kwargs["delta"])
        reduction = resolve_reduction(kwargs.get("site_reduction"))
        augmented = dict(kwargs)
        # The δ-continuation warm seed is an artifact option, not a
        # planner kwarg: it steers the reduction built here and is
        # consumed in the process.
        corridor_seed = augmented.pop("corridor_seed", None)
        if reduction.enabled:
            options = self._reduction_token(reduction, energy,
                                            corridor_seed)
            sites: HoveringSites = self.reduced_sites(
                network, radio, delta, reduction, energy,
                corridor_seed=corridor_seed)
        else:
            options = ""
            sites = self.sites(network, radio, delta)
        augmented["sites"] = sites
        if method == "algorithm1":
            augmented["graph"] = self.graph(network, radio, delta, energy,
                                            sites=sites, options=options)
            if kwargs.get("overlap", "conflict") == "conflict":
                augmented["conflict_neighbors"] = self.conflict_neighbors(
                    network, radio, delta, sites=sites, options=options)
        return augmented

    def stats(self) -> Dict[str, int]:
        """Hit/miss counters plus the number of cached artifacts."""
        return {"hits": self.hits, "misses": self.misses,
                "artifacts": len(self)}


def resolve_cache(cache: Any) -> Optional[ArtifactCache]:
    """Normalise a ``cache=`` argument: True → fresh cache, False → None.

    ``run_sweep`` and the figure runners accept either a bool (own the
    cache for the duration of the sweep) or an :class:`ArtifactCache`
    instance (caller-owned, e.g. shared across figures at equal δ).
    """
    if cache is None or cache is False:
        return None
    if cache is True:
        return ArtifactCache()
    if isinstance(cache, ArtifactCache):
        return cache
    raise TypeError(f"cache must be a bool or ArtifactCache, got {cache!r}")


__all__ = ["ArtifactCache", "ARTIFACT_OPTIONS", "CACHEABLE_METHODS",
           "resolve_cache"]
