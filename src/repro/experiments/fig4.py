"""Fig. 4 — DCM *with* hovering-coverage overlapping, δ sweep.

Sweeps the grid edge length δ at fixed battery capacity and plots, for
Algorithm 2, Algorithm 3 (each K in ``config.k_values``), and the
benchmark baseline:

* (a) mean collected data volume (GB),
* (b) mean planning wall-clock time (s).

Paper claims reproduced (shape):

* Algorithm 3(K) >= Algorithm 2 >= benchmark at every δ;
* collected volume decreases as δ grows (coarser hovering grid);
* larger K collects more data and costs more planning time;
* the benchmark is flat in δ (it ignores the grid).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.config import ExperimentConfig
from repro.experiments.instances import make_instances
from repro.experiments.runner import AlgoSpec, SweepResult, run_sweep
from repro.network.sensor_network import SensorNetwork


def fig4_algorithms(config: ExperimentConfig, *,
                    algorithm1: bool = False,
                    n_restarts: int = 3,
                    engine: str = "scalar") -> list:
    """Algorithm 2, Algorithm 3 per K, and the benchmark.

    With ``algorithm1=True`` an Algorithm 1 series (GRASP with
    *n_restarts* restarts on the given orienteering *engine*) is
    prepended — the paper's Fig. 4 omits it, but it is the series the
    δ-continuation mode chains, so the CLI adds it alongside
    ``--delta-continuation``.
    """
    algos = []
    if algorithm1:
        algos.append(AlgoSpec("Algorithm 1", "algorithm1",
                              {"solver": "grasp", "n_restarts": n_restarts,
                               "seed": 0, "engine": engine}))
    algos.append(AlgoSpec("Algorithm 2", "algorithm2", {}))
    for k in config.k_values:
        algos.append(AlgoSpec(f"Algorithm 3 (K={k})", "algorithm3", {"K": k}))
    algos.append(AlgoSpec("Benchmark", "benchmark", {}))
    return algos


def run_fig4(config: ExperimentConfig,
             instances: Optional[Sequence[SensorNetwork]] = None,
             *, validate: bool = True, progress=None,
             jobs: int = 1, cache: bool = True,
             batch_columns: bool = False,
             site_reduction=None,
             algorithm1: bool = False,
             engine: str = "scalar",
             delta_continuation: bool = False) -> SweepResult:
    """Run the Fig. 4 δ sweep and return the aggregated rows.

    ``jobs``/``cache`` select the execution engine and the per-instance
    artifact cache (see :func:`repro.experiments.runner.run_sweep`).
    Each δ builds its own grid, so the cache pays off here across the
    Algorithm 2/3 cells that share a δ, not along the swept axis.
    ``batch_columns`` is accepted for interface uniformity but is a
    no-op here: the swept δ changes every cell's kwargs, so no spec
    forms a batchable column (the runner detects this and keeps the
    per-cell path).  ``site_reduction`` applies the candidate-site
    reduction pre-pass to every Algorithm 2/3 cell — the dense-δ end of
    this sweep is where it pays the most (see ``DESIGN.md``).

    ``algorithm1`` adds an Algorithm 1 series on the given orienteering
    *engine* (see :func:`fig4_algorithms`); ``delta_continuation``
    implies it and chains its δ cells coarse→fine with warm starts
    (:mod:`repro.experiments.continuation`).
    """
    if instances is None:
        instances = make_instances(config)
    algorithm1 = algorithm1 or delta_continuation

    def make_kwargs(cfg: ExperimentConfig, value: float, spec: AlgoSpec):
        kwargs = dict(spec.kwargs)
        if spec.method != "benchmark":
            kwargs["delta"] = value
        return kwargs

    return run_sweep(
        config, instances,
        fig4_algorithms(config, algorithm1=algorithm1, engine=engine),
        param_name="delta",
        param_values=config.delta_sweep,
        make_energy=lambda cfg, value: cfg.energy_model(),
        make_kwargs=make_kwargs,
        validate=validate,
        progress=progress,
        jobs=jobs,
        cache=cache,
        batch_columns=batch_columns,
        site_reduction=site_reduction,
        delta_continuation=delta_continuation)


__all__ = ["run_fig4", "fig4_algorithms"]
