"""Dependency-free SVG rendering of sweep results.

Produces standalone ``.svg`` line charts for the paper's figure panels —
no matplotlib required.  The visual design follows a validated categorical
palette (worst adjacent colour-vision-deficiency ΔE 24.2, all slots inside
the lightness band for the light surface) with the standard mark rules:

* 2 px series lines, 8 px circular markers with native ``<title>``
  tooltips (value shown on hover in any SVG viewer),
* recessive grid (hairline, low-contrast) and a single y-axis,
* a legend plus a *direct label* at each series' last point — the two
  lower-contrast palette slots (aqua, yellow) require visible labels, and
  direct labels also keep identity legible for colour-blind readers,
* text in ink colours, never in series colours.

Series are assigned palette slots in fixed order (never cycled); more
than 8 series is rejected rather than inventing hues.
"""

from __future__ import annotations

import html
from typing import Dict, List, Sequence

import numpy as np

from repro.experiments.runner import SweepResult
from repro.utils.errors import InvalidParameterError

#: Validated categorical palette, light mode, fixed assignment order.
PALETTE = ("#2a78d6", "#1baf7a", "#eda100", "#008300",
           "#4a3aa7", "#e34948", "#e87ba4", "#eb6834")
SURFACE = "#fcfcfb"
INK_PRIMARY = "#0b0b0b"
INK_SECONDARY = "#52514e"
GRID = "#e4e3df"


def _nice_ticks(lo: float, hi: float, n: int = 5) -> List[float]:
    """Round tick positions covering [lo, hi] (simple 1-2-5 ladder)."""
    if hi <= lo:
        hi = lo + 1.0
    raw = (hi - lo) / max(n - 1, 1)
    mag = 10 ** int(f"{raw:e}".split("e")[1])
    for mult in (1, 2, 2.5, 5, 10):
        step = mult * mag
        if step >= raw:
            break
    # Integer stepping avoids accumulated float error dropping the final
    # tick (e.g. 0.008 + 0.002 > 0.009 + half-step by 2e-18).
    k_start = int(np.floor(lo / step + 1e-9))
    k_end = int(np.ceil(hi / step - 1e-9))
    return [round(k * step, 10) for k in range(k_start, k_end + 1)]


def _fmt(v: float) -> str:
    if v == 0:
        return "0"
    if abs(v) >= 10000 or abs(v) < 0.01:
        return f"{v:.3g}"
    return f"{v:g}"


def render_series_svg(xs: Sequence[float], series: Dict[str, Sequence[float]],
                      *, title: str = "", ylabel: str = "", xlabel: str = "",
                      width: int = 640, height: int = 400) -> str:
    """Render named y-series over shared x-values as a standalone SVG.

    Parameters
    ----------
    xs:
        Shared x coordinates, ascending.
    series:
        Mapping name -> y values (same length as *xs*); at most 8 series
        (palette slots are never cycled).
    title, ylabel, xlabel:
        Captions.
    width, height:
        Canvas size in px.
    """
    if not series:
        raise InvalidParameterError("series must be non-empty")
    if len(series) > len(PALETTE):
        raise InvalidParameterError(
            f"at most {len(PALETTE)} series supported (palette slots are "
            "assigned in fixed order, never cycled); fold extras into "
            "'Other' or use small multiples")
    for name, ys in series.items():
        if len(ys) != len(xs):
            raise InvalidParameterError(
                f"series {name!r} has {len(ys)} points, expected {len(xs)}")
    if len(xs) == 0:
        raise InvalidParameterError("xs must be non-empty")

    margin_l, margin_r, margin_t, margin_b = 64, 150, 48, 56
    plot_w = width - margin_l - margin_r
    plot_h = height - margin_t - margin_b

    all_y = [y for ys in series.values() for y in ys]
    y_ticks = _nice_ticks(min(min(all_y), 0.0) if min(all_y) >= 0 else min(all_y),
                          max(all_y))
    ylo, yhi = y_ticks[0], y_ticks[-1]
    xlo, xhi = min(xs), max(xs)
    if xhi == xlo:
        xhi = xlo + 1.0

    def sx(x: float) -> float:
        return margin_l + (x - xlo) / (xhi - xlo) * plot_w

    def sy(y: float) -> float:
        return margin_t + (1.0 - (y - ylo) / (yhi - ylo)) * plot_h

    parts: List[str] = []
    parts.append(
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" '
        f'font-family="system-ui, sans-serif">')
    parts.append(f'<rect width="{width}" height="{height}" fill="{SURFACE}"/>')
    if title:
        parts.append(
            f'<text x="{margin_l}" y="24" font-size="15" font-weight="600" '
            f'fill="{INK_PRIMARY}">{html.escape(title)}</text>')

    # Recessive grid + y ticks (one axis only).
    for t in y_ticks:
        y = sy(t)
        parts.append(f'<line x1="{margin_l}" y1="{y:.1f}" '
                     f'x2="{margin_l + plot_w}" y2="{y:.1f}" '
                     f'stroke="{GRID}" stroke-width="1"/>')
        parts.append(f'<text x="{margin_l - 8}" y="{y + 4:.1f}" '
                     f'font-size="11" text-anchor="end" '
                     f'fill="{INK_SECONDARY}">{_fmt(t)}</text>')
    # x ticks at the data points (sweeps have few values).
    for x in xs:
        px = sx(x)
        parts.append(f'<text x="{px:.1f}" y="{margin_t + plot_h + 18}" '
                     f'font-size="11" text-anchor="middle" '
                     f'fill="{INK_SECONDARY}">{_fmt(x)}</text>')
    if ylabel:
        parts.append(
            f'<text x="16" y="{margin_t + plot_h / 2:.1f}" font-size="12" '
            f'fill="{INK_SECONDARY}" text-anchor="middle" '
            f'transform="rotate(-90 16 {margin_t + plot_h / 2:.1f})">'
            f'{html.escape(ylabel)}</text>')
    if xlabel:
        parts.append(
            f'<text x="{margin_l + plot_w / 2:.1f}" '
            f'y="{margin_t + plot_h + 40}" font-size="12" '
            f'text-anchor="middle" fill="{INK_SECONDARY}">'
            f'{html.escape(xlabel)}</text>')

    # Series: 2px lines, 8px markers with native tooltips.
    for idx, (name, ys) in enumerate(series.items()):
        color = PALETTE[idx]
        pts = " ".join(f"{sx(x):.1f},{sy(y):.1f}" for x, y in zip(xs, ys))
        parts.append(f'<polyline points="{pts}" fill="none" '
                     f'stroke="{color}" stroke-width="2" '
                     f'stroke-linejoin="round"/>')
        for x, y in zip(xs, ys):
            parts.append(
                f'<circle cx="{sx(x):.1f}" cy="{sy(y):.1f}" r="4" '
                f'fill="{color}" stroke="{SURFACE}" stroke-width="2">'
                f'<title>{html.escape(name)}: x={_fmt(x)}, y={_fmt(y)}'
                f'</title></circle>')

    # Direct labels at each series' last point, de-overlapped vertically
    # (series that converge would otherwise collide) and set in ink.
    label_gap = 13.0
    targets = sorted(
        ((sy(list(ys)[-1]) + 4, name) for name, ys in series.items()))
    placed: List[float] = []
    for y, _name in targets:
        if placed and y - placed[-1] < label_gap:
            y = placed[-1] + label_gap
        placed.append(min(y, margin_t + plot_h))
    # A downward clamp can re-collide at the bottom; sweep once upward too.
    for i in range(len(placed) - 2, -1, -1):
        if placed[i + 1] - placed[i] < label_gap:
            placed[i] = placed[i + 1] - label_gap
    lx = sx(xs[-1]) + 10
    for (orig_y, name), y in zip(targets, placed):
        parts.append(f'<text x="{lx:.1f}" y="{y:.1f}" font-size="11" '
                     f'fill="{INK_PRIMARY}">{html.escape(name)}</text>')

    # Legend (always present for >= 2 series).
    if len(series) >= 2:
        ly0 = margin_t
        for idx, name in enumerate(series):
            y = ly0 + idx * 18
            x0 = margin_l + plot_w + 14
            parts.append(f'<line x1="{x0}" y1="{y}" x2="{x0 + 16}" y2="{y}" '
                         f'stroke="{PALETTE[idx]}" stroke-width="2"/>')
            parts.append(f'<circle cx="{x0 + 8}" cy="{y}" r="3.5" '
                         f'fill="{PALETTE[idx]}"/>')
            parts.append(f'<text x="{x0 + 22}" y="{y + 4}" font-size="11" '
                         f'fill="{INK_PRIMARY}">{html.escape(name)}</text>')

    parts.append("</svg>")
    return "\n".join(parts)


def render_sweep_svg(result: SweepResult, *, panel: str = "volume",
                     title: str = "", width: int = 640,
                     height: int = 400) -> str:
    """Render one panel of a figure sweep as SVG.

    Parameters
    ----------
    result:
        A :class:`~repro.experiments.runner.SweepResult`.
    panel:
        ``"volume"`` (panel (a)) or ``"time"`` (panel (b)).
    title:
        Chart title (defaults to the panel description).
    """
    if panel not in ("volume", "time"):
        raise InvalidParameterError(
            f"panel must be 'volume' or 'time', got {panel!r}")
    if not result.rows:
        raise InvalidParameterError("empty sweep result")
    attr = "mean_volume_gb" if panel == "volume" else "mean_time_s"
    xs = sorted({r.param_value for r in result.rows})
    series: Dict[str, List[float]] = {}
    for algo in result.algorithms():
        by_x = {r.param_value: getattr(r, attr) for r in result.series(algo)}
        series[algo] = [by_x[x] for x in xs]
    ylabel = ("collected data volume (GB)" if panel == "volume"
              else "planning time (s)")
    return render_series_svg(
        xs, series, width=width, height=height,
        title=title or f"{ylabel} vs {result.rows[0].param_name}",
        ylabel=ylabel, xlabel=result.rows[0].param_name)


__all__ = ["render_series_svg", "render_sweep_svg", "PALETTE",
           "GRID", "INK_PRIMARY", "INK_SECONDARY", "SURFACE"]
