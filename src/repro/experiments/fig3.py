"""Fig. 3 — DCM *without* hovering-coverage overlapping.

Sweeps the UAV battery capacity and plots, for Algorithm 1 vs the
benchmark baseline:

* (a) mean collected data volume (GB),
* (b) mean planning wall-clock time (s).

Paper claims reproduced (shape):

* Algorithm 1 collects ~2x the benchmark at the smallest capacity and the
  gap widens with more energy;
* Algorithm 1's running time grows with capacity while the benchmark's
  *shrinks* (fewer prune iterations).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.config import ExperimentConfig
from repro.experiments.instances import make_instances
from repro.experiments.runner import AlgoSpec, SweepResult, run_sweep
from repro.network.sensor_network import SensorNetwork


def fig3_algorithms(config: ExperimentConfig, *,
                    solver: str = "grasp",
                    n_restarts: int = 3,
                    seed: int = 0,
                    engine: str = "scalar") -> list:
    """The two algorithms plotted in Fig. 3.

    ``engine`` selects Algorithm 1's orienteering engine — ``"fast"``
    runs the stacked GRASP of :mod:`repro.orienteering.fast` with
    bitwise-identical tours (``benchmarks/bench_alg1.py`` pins the
    speedup and the row equality at paper scale).
    """
    return [
        AlgoSpec("Algorithm 1", "algorithm1",
                 {"delta": config.delta, "solver": solver,
                  "n_restarts": n_restarts, "seed": seed,
                  "engine": engine}),
        AlgoSpec("Benchmark", "benchmark", {}),
    ]


def run_fig3(config: ExperimentConfig,
             instances: Optional[Sequence[SensorNetwork]] = None,
             *, n_restarts: int = 3, validate: bool = True,
             progress=None, jobs: int = 1, cache: bool = True,
             batch_columns: bool = False,
             site_reduction=None,
             engine: str = "scalar") -> SweepResult:
    """Run the Fig. 3 capacity sweep and return the aggregated rows.

    ``jobs``/``cache`` select the execution engine and the per-instance
    artifact cache (see :func:`repro.experiments.runner.run_sweep`); the
    aggregated volumes are bitwise-identical across all settings.
    ``batch_columns`` is accepted for interface uniformity but is a
    no-op here: Algorithm 1 and the benchmark have no stacked
    formulation, so no Fig. 3 spec forms a batchable column.
    ``site_reduction`` applies the candidate-site reduction pre-pass to
    the Algorithm 1 cells (the benchmark has no δ-grid); GRASP seeding
    is reduction-aware, so ``safe`` leaves the rows bitwise-identical.
    ``engine`` selects Algorithm 1's orienteering engine (``"scalar"`` /
    ``"fast"``; identical tours, see :func:`fig3_algorithms`).
    """
    if instances is None:
        instances = make_instances(config)
    algorithms = fig3_algorithms(config, n_restarts=n_restarts,
                                 engine=engine)
    return run_sweep(
        config, instances, algorithms,
        param_name="capacity",
        param_values=config.capacity_sweep,
        make_energy=lambda cfg, value: cfg.energy_model(capacity=value),
        make_kwargs=lambda cfg, value, spec: dict(spec.kwargs),
        validate=validate,
        progress=progress,
        jobs=jobs,
        cache=cache,
        batch_columns=batch_columns,
        site_reduction=site_reduction)


__all__ = ["run_fig3", "fig3_algorithms"]
