"""Generic sweep engine.

One *sweep* = (algorithms x parameter values x instances).  For every cell
the runner plans a tour, measures wall-clock planning time (the quantity in
the paper's Figs. 3(b)/4(b)/5(b)), optionally cross-validates the tour
against the execution simulator, and aggregates means/standard deviations
across instances.

Execution engines
-----------------
``jobs=1`` (default) plans every cell sequentially in-process; ``jobs=N``
fans the cells out to a process pool (:mod:`repro.experiments.parallel`)
and merges the per-cell rows back in deterministic cell order.  Both
paths run the *same* per-cell function (:func:`_run_cell`), so every
deterministic field of every :class:`SweepRow` — volumes, instance
counts, the kernel work counters in ``perf`` — is bitwise-identical
regardless of ``jobs``; only the measured wall-clock fields vary run to
run.  See ``docs/experiments.md``.

``batch_columns=True`` additionally groups each algorithm's cells into
*columns*: when a spec's kwargs are identical at every parameter value
and only the energy model varies (Fig. 5's capacity sweep), all of its
values are planned per instance in one ``engine="batch"`` call
(:mod:`repro.core.batch`) — batch within a process, processes across
instances under ``jobs > 1``.  Batch plans are bitwise-identical to
``engine="kernel"`` plans, so every deterministic row field except the
perf engine/counters (which reflect the batch engine) is unchanged;
per-cell ``mean_time_s`` becomes the column wall-clock divided by the
column width.  Ineligible specs (the benchmark, swept-δ kwargs,
non-insertion TSP modes) silently keep the per-cell path.

``delta_continuation=True`` (δ sweeps only) chains each Algorithm 1
spec's cells per instance in descending δ order, warm-starting every
finer grid's reduction corridor and first GRASP construction from the
coarser grid's finished tour (:mod:`repro.experiments.continuation`);
warm tours are accepted only on strict improvement.

Both paths also share the per-process
:class:`~repro.experiments.artifacts.ArtifactCache` (``cache=True``,
default): δ-grid sites, conflict lists, and auxiliary graphs are built
once per (instance, δ) and reused across cells, so e.g. a capacity sweep
pays for its geometry once.  Cache lookups happen *outside* the per-cell
timer — with the cache on, ``mean_time_s`` is pure planning time over
prebuilt geometry; run ``cache=False`` to measure the paper-literal
geometry-included time.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.batch import plan_algorithm2_batch, plan_algorithm3_batch
from repro.core.planner import plan_tour
from repro.core.reduce import resolve_reduction
from repro.energy.model import EnergyModel
from repro.experiments.artifacts import (CACHEABLE_METHODS, ArtifactCache,
                                         resolve_cache)
from repro.experiments.continuation import (chainable_spec,
                                            continuation_order,
                                            project_warm_nodes,
                                            tour_seed_points)
from repro.experiments.config import ExperimentConfig
from repro.network.sensor_network import SensorNetwork
from repro.obs.ledger import get_ledger, record_event
from repro.obs.metrics import get_metrics
from repro.obs.record import (
    config_hash,
    flatten_perf,
    perf_counter_metrics,
    sanitize_config,
)
from repro.obs.record import PERF_SECONDS_PREFIX  # re-export, shared def
from repro.obs.tracer import TracerLike, activated, span
from repro.sim.validate import cross_validate
from repro.utils.timing import Timer

#: MB per GB — figure axes in the paper are GB.
MB_PER_GB = 1000.0


@dataclass(frozen=True)
class AlgoSpec:
    """One plotted algorithm: display name, planner method, fixed options."""

    name: str
    method: str
    kwargs: Dict[str, Any] = field(default_factory=dict)


@dataclass
class SweepRow:
    """One aggregated data point (one algorithm at one parameter value)."""

    param_name: str
    param_value: float
    algorithm: str
    mean_volume_gb: float
    std_volume_gb: float
    mean_time_s: float
    std_time_s: float
    n_instances: int
    #: Mean planner-kernel work counters across instances (engine,
    #: sites_rescored, deltas_recomputed, ... — see
    #: ``CollectionTour.meta["perf"]``).  Diagnostic only: deliberately
    #: excluded from :meth:`as_dict` so committed CSV schemas stay stable.
    perf: Optional[Dict[str, Any]] = None

    def as_dict(self) -> Dict[str, Any]:
        """Flat dict for CSV writers."""
        return {
            "param_name": self.param_name,
            "param_value": self.param_value,
            "algorithm": self.algorithm,
            "mean_volume_gb": self.mean_volume_gb,
            "std_volume_gb": self.std_volume_gb,
            "mean_time_s": self.mean_time_s,
            "std_time_s": self.std_time_s,
            "n_instances": self.n_instances,
        }

    def deterministic_dict(self) -> Dict[str, Any]:
        """The run-to-run reproducible view of the row.

        Drops the measured wall-clock fields (``mean_time_s``,
        ``std_time_s``) and the ``seconds.*`` perf means, keeping
        everything the planners compute deterministically: volumes,
        instance counts, engine name, and the kernel work counters.
        Two sweeps of the same campaign — any ``jobs``, any worker
        completion order, cache on or off — must agree *bitwise* on this
        view; the parallel-equality tests and the CI job compare it.
        """
        det = self.as_dict()
        del det["mean_time_s"], det["std_time_s"]
        if self.perf is not None:
            det["perf"] = {
                k: v for k, v in self.perf.items()
                if not k.startswith(PERF_SECONDS_PREFIX)}
        return det


@dataclass
class SweepResult:
    """All rows of one sweep plus the configuration that produced them."""

    config: ExperimentConfig
    rows: List[SweepRow]
    #: Execution metadata (jobs, artifact-cache hit/miss counters, trace
    #: shard count) — diagnostic only, never serialised into the CSVs.
    meta: Dict[str, Any] = field(default_factory=dict)

    def series(self, algorithm: str) -> List[SweepRow]:
        """The rows of one algorithm, ordered by parameter value."""
        return sorted((r for r in self.rows if r.algorithm == algorithm),
                      key=lambda r: r.param_value)

    def algorithms(self) -> List[str]:
        """Distinct algorithm names in plot order of first appearance."""
        seen: List[str] = []
        for r in self.rows:
            if r.algorithm not in seen:
                seen.append(r.algorithm)
        return seen


def _flatten_perf(perf: Dict[str, Any], prefix: str = "") -> Dict[str, float]:
    """Flatten a (possibly nested) ``meta["perf"]`` dict into dotted keys.

    ``{"sites_rescored": 3, "seconds": {"rescore": 0.1}}`` becomes
    ``{"sites_rescored": 3.0, "seconds.rescore": 0.1}``.  Non-numeric
    leaves (e.g. the ``"engine"`` string) are skipped — the caller keeps
    those out of the per-instance averages.  (Thin alias over the shared
    :func:`repro.obs.record.flatten_perf`.)
    """
    return flatten_perf(perf, prefix=prefix)


def _fold_perf_ambient(perf: Optional[Dict[str, Any]]) -> None:
    """Fold one tour's perf snapshot into the ambient metrics registry.

    A no-op unless a :class:`~repro.obs.metrics.metrics_scope` is active.
    Work counts become ``kernel.*`` counters (deterministic), the
    measured ``seconds.*`` phases become ``kernel.*`` timers — so a whole
    sweep's kernel work accumulates in one registry regardless of the
    execution engine (the parallel executor scopes a fresh registry per
    worker cell and merges the snapshots back,
    :meth:`~repro.obs.metrics.MetricsRegistry.merge_snapshot`).
    """
    registry = get_metrics()
    if registry is None or not perf:
        return
    for key, value in flatten_perf(perf).items():
        if key.startswith(PERF_SECONDS_PREFIX):
            timer = registry.timer(
                f"kernel.{key[len(PERF_SECONDS_PREFIX):]}")
            timer.value += value
        else:
            registry.counter(f"kernel.{key}").inc(value)


def sweep_cells(algorithms: Sequence[AlgoSpec],
                param_values: Sequence[float]) -> List[tuple]:
    """The sweep's cell list in canonical order: ``(index, value, spec)``.

    Canonical order is the sequential runner's loop nesting — parameter
    values outer, algorithms inner — and defines both the row order of
    :class:`SweepResult` and the progress-callback order under every
    execution engine.
    """
    cells = []
    for value in param_values:
        for spec in algorithms:
            cells.append((len(cells), value, spec))
    return cells


def format_progress(cell_index: int, total: int, param_name: str,
                    value: float, row: SweepRow) -> str:
    """One ``[k/total]``-prefixed status line for a finished cell."""
    return (f"[{cell_index + 1}/{total}] "
            f"{param_name}={value:g} {row.algorithm}: "
            f"{row.mean_volume_gb:.2f} GB, "
            f"{row.mean_time_s:.2f} s")


def _emit_sweep_records(config: ExperimentConfig,
                        algorithms: Sequence[AlgoSpec],
                        param_name: str,
                        param_values: Sequence[float],
                        rows: Sequence[SweepRow],
                        *,
                        jobs: int,
                        column_specs: Sequence[int] = ()) -> None:
    """Emit one ``sweep.cell`` ledger record per finished cell (plus one
    ``sweep.column`` per batched column); a no-op when no ledger is active.

    Called *after* every row exists — the parent emits these in canonical
    cell order under every execution engine, and nothing here touches the
    rows, so sweep outputs stay bitwise-identical with the ledger on or
    off.  Cell wall-clock is the aggregate planning time
    (``mean_time_s * n_instances``); the counters are the deterministic
    per-instance means from ``row.perf``.
    """
    if get_ledger() is None:
        return
    campaign = config.as_dict()
    n_specs = len(algorithms)
    for index, value, spec in sweep_cells(algorithms, param_values):
        row = rows[index]
        perf = row.perf or {}
        payload = sanitize_config({
            "campaign": campaign, "param_name": param_name,
            "param_value": float(value), "algorithm": spec.name,
            "method": spec.method, "kwargs": spec.kwargs})
        record_event(
            "sweep.cell",
            label=spec.name,
            config_hash=config_hash(payload),
            engine=perf.get("engine"),
            jobs=jobs,
            wall_s=row.mean_time_s * row.n_instances,
            metrics={"counters": perf_counter_metrics(perf)},
            extra={"cell": index, "param_name": param_name,
                   "param_value": float(value),
                   "mean_volume_gb": row.mean_volume_gb,
                   "n_instances": row.n_instances})
    for s_idx in sorted(column_specs):
        spec = algorithms[s_idx]
        col_rows = [rows[v_idx * n_specs + s_idx]
                    for v_idx in range(len(param_values))]
        payload = sanitize_config({
            "campaign": campaign, "param_name": param_name,
            "algorithm": spec.name, "method": spec.method,
            "kwargs": spec.kwargs, "column": True})
        record_event(
            "sweep.column",
            label=spec.name,
            config_hash=config_hash(payload),
            engine=(col_rows[0].perf or {}).get("engine"),
            jobs=jobs,
            wall_s=sum(r.mean_time_s * r.n_instances for r in col_rows),
            extra={"column": s_idx, "width": len(param_values)})


def _with_site_reduction(make_kwargs: Callable[[ExperimentConfig, float,
                                                AlgoSpec], Dict[str, Any]],
                         transport: Any
                         ) -> Callable[[ExperimentConfig, float, AlgoSpec],
                                       Dict[str, Any]]:
    """Wrap *make_kwargs* to inject a ``site_reduction`` planner kwarg.

    Injection targets only the δ-grid planners (the benchmark hovers over
    sensors directly — nothing to reduce) and never overrides a
    reduction a spec sets explicitly.  *transport* is the JSON-safe form
    from :meth:`~repro.core.reduce.SiteReduction.transport` (a level
    string or a plain dict), so the wrapped kwargs remain shippable to
    parallel worker processes as data.
    """
    def wrapped(config: ExperimentConfig, value: float,
                spec: AlgoSpec) -> Dict[str, Any]:
        kwargs = make_kwargs(config, value, spec)
        if spec.method not in CACHEABLE_METHODS or "site_reduction" in kwargs:
            return kwargs
        augmented = dict(kwargs)
        augmented["site_reduction"] = transport
        return augmented
    return wrapped


def run_sweep(config: ExperimentConfig,
              instances: Sequence[SensorNetwork],
              algorithms: Sequence[AlgoSpec],
              param_name: str,
              param_values: Sequence[float],
              *,
              make_energy: Callable[[ExperimentConfig, float], EnergyModel],
              make_kwargs: Callable[[ExperimentConfig, float, AlgoSpec], Dict[str, Any]],
              validate: bool = True,
              progress: Optional[Callable[[str], None]] = None,
              trace: Optional[TracerLike] = None,
              jobs: int = 1,
              cache: Any = True,
              batch_columns: bool = False,
              site_reduction: Any = None,
              delta_continuation: bool = False) -> SweepResult:
    """Run a full sweep and aggregate per-cell statistics.

    Parameters
    ----------
    config:
        The campaign configuration.
    instances:
        The shared network instance set (see
        :func:`repro.experiments.instances.make_instances`).
    algorithms:
        Plotted algorithms.
    param_name, param_values:
        The swept axis (``"capacity"`` or ``"delta"``).
    make_energy:
        Maps (config, param value) to the :class:`EnergyModel` for a cell.
    make_kwargs:
        Maps (config, param value, spec) to planner kwargs for a cell.
        Under ``jobs > 1`` the returned kwargs must be JSON-serialisable
        (they are shipped to worker processes as data, not pickled).
    validate:
        Cross-validate every planned tour against the simulator (cheap
        relative to planning; catches planner regressions during sweeps).
    progress:
        Optional callback receiving one ``[k/total]``-prefixed status
        line per cell, always in canonical cell order (the parallel
        executor buffers out-of-order completions).
    trace:
        Optional :class:`repro.obs.Tracer` activated for the whole sweep;
        every cell gets a ``runner.cell`` span wrapping its instance loop,
        with the planner's own spans nested underneath.  Under
        ``jobs > 1`` workers record spans into JSONL shards which are
        merged into this tracer after the sweep
        (:mod:`repro.obs.shards`).
    jobs:
        Worker process count; ``1`` runs in-process.
    cache:
        ``True`` (default) — memoize per-(instance, δ) geometry across
        cells in an :class:`~repro.experiments.artifacts.ArtifactCache`
        (one per process); ``False`` — rebuild per cell, paper-literal;
        or a caller-owned cache instance (sequential path only).
    batch_columns:
        Plan each eligible algorithm's whole value column per instance
        in one stacked ``engine="batch"`` call (see the module
        docstring).  Deterministic row fields other than the perf
        engine/counters are unchanged; ineligible specs keep the
        per-cell path.
    site_reduction:
        Candidate-site reduction pre-pass applied to every δ-grid cell
        (``None``/``"off"``, ``"safe"``, ``"aggressive"``, a
        :class:`~repro.core.reduce.SiteReduction`, or its dict form).
        Implemented by wrapping *make_kwargs* with a JSON-safe
        ``site_reduction`` planner kwarg, so it reaches every execution
        engine — sequential, parallel workers, and batch columns — the
        same way; benchmark specs and specs that already set their own
        ``site_reduction`` are left alone.  Capacity-dependent stages
        bound a batch column by its largest capacity (see
        :mod:`repro.core.batch`).
    delta_continuation:
        Plan each Algorithm 1 spec's δ column per instance in descending
        δ order (coarse grids first), warm-starting every finer cell's
        reduction corridor and first GRASP construction from the coarser
        cell's finished tour (:mod:`repro.experiments.continuation`).
        Requires a δ sweep (``param_name == "delta"``) and the artifact
        cache (the warm payloads flow through it); warm tours are kept
        only on strict improvement, so with the reduction off or
        ``safe`` a continuation cell never collects less than its
        cold-start value.  Other specs keep the per-cell path.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if delta_continuation:
        if param_name != "delta":
            raise ValueError(
                f"delta_continuation chains along the swept δ axis; this "
                f"sweep's param_name is {param_name!r}")
        if not cache:
            raise ValueError(
                "delta_continuation needs the artifact cache (cache=True): "
                "warm payloads for the finer grids flow through it")
    reduction = resolve_reduction(site_reduction)
    if reduction.enabled:
        make_kwargs = _with_site_reduction(make_kwargs,
                                           reduction.transport())
    if jobs > 1:
        from repro.experiments.parallel import run_sweep_parallel
        return run_sweep_parallel(
            config, instances, algorithms, param_name, param_values,
            make_energy=make_energy, make_kwargs=make_kwargs,
            validate=validate, progress=progress, trace=trace, jobs=jobs,
            cache=bool(cache), batch_columns=batch_columns,
            delta_continuation=delta_continuation)

    radio = config.radio_model()
    artifact_cache = resolve_cache(cache)
    cells = sweep_cells(algorithms, param_values)
    rows: List[SweepRow] = []
    column_rows: Dict[int, SweepRow] = {}
    batch_specs: List[int] = []
    chain_specs: List[int] = []
    n_specs = len(algorithms)
    with activated(trace):
        if delta_continuation:
            for s_idx, spec in enumerate(algorithms):
                if not chainable_spec(config, spec, param_values,
                                      make_kwargs):
                    continue
                chain_specs.append(s_idx)
                energies = [make_energy(config, v) for v in param_values]
                kwargs_by_value = [make_kwargs(config, v, spec)
                                   for v in param_values]
                samples_by_value: List[List[Sample]] = \
                    [[] for _ in param_values]
                with span("runner.chain", algorithm=spec.name,
                          param=param_name, width=len(param_values)):
                    for net in instances:
                        samples = _plan_chain_instance(
                            net, spec, param_values, energies, radio,
                            kwargs_by_value=kwargs_by_value,
                            validate=validate, cache=artifact_cache)
                        for v_idx, sample in enumerate(samples):
                            samples_by_value[v_idx].append(sample)
                for v_idx, value in enumerate(param_values):
                    column_rows[v_idx * n_specs + s_idx] = \
                        _aggregate_samples(param_name, value, spec,
                                           samples_by_value[v_idx])
        if batch_columns:
            for s_idx, spec in enumerate(algorithms):
                if s_idx in chain_specs or not batchable_column(
                        config, spec, param_values, make_energy,
                        make_kwargs):
                    continue
                batch_specs.append(s_idx)
                energies = [make_energy(config, v) for v in param_values]
                kwargs = make_kwargs(config, param_values[0], spec)
                samples_by_value = [[] for _ in param_values]
                with span("runner.column", algorithm=spec.name,
                          param=param_name, width=len(param_values)):
                    for net in instances:
                        samples = _plan_column_instance(
                            net, spec, energies, radio, kwargs=kwargs,
                            validate=validate, cache=artifact_cache)
                        for v_idx, sample in enumerate(samples):
                            samples_by_value[v_idx].append(sample)
                for v_idx, value in enumerate(param_values):
                    column_rows[v_idx * n_specs + s_idx] = \
                        _aggregate_samples(param_name, value, spec,
                                           samples_by_value[v_idx])
        for index, value, spec in cells:
            if index in column_rows:
                row = column_rows[index]
            else:
                energy = make_energy(config, value)
                kwargs = make_kwargs(config, value, spec)
                with span("runner.cell", cell=index, param=param_name,
                          value=float(value), algorithm=spec.name):
                    row = _run_cell(instances, spec, param_name, value,
                                    energy, radio, kwargs=kwargs,
                                    validate=validate,
                                    cache=artifact_cache)
            rows.append(row)
            if progress is not None:
                progress(format_progress(index, len(cells), param_name,
                                         value, row))
        _emit_sweep_records(
            config, algorithms, param_name, param_values, rows, jobs=1,
            column_specs=batch_specs)
    meta: Dict[str, Any] = {
        "jobs": 1,
        "batch_columns": len(batch_specs) * len(param_values),
        "continuation_chains": len(chain_specs) * len(instances)}
    if artifact_cache is not None:
        meta["cache"] = artifact_cache.stats()
    return SweepResult(config=config, rows=rows, meta=meta)


def _run_cell(instances: Sequence[SensorNetwork],
              spec: AlgoSpec,
              param_name: str,
              value: float,
              energy: EnergyModel,
              radio: Any,
              *,
              kwargs: Dict[str, Any],
              validate: bool,
              cache: Optional[ArtifactCache] = None) -> SweepRow:
    """Plan every instance of one (algorithm, parameter value) cell.

    This is the unit of work both execution engines share: the
    sequential runner calls it inline, the parallel executor calls it
    inside each worker — which is what keeps the timing semantics
    identical (the :class:`Timer` wraps only the planning call, never
    queueing or transport) and the deterministic row fields bitwise-equal
    across ``jobs`` settings.
    """
    samples = [_instance_sample(net, spec, energy, radio, kwargs=kwargs,
                                validate=validate, cache=cache)
               for net in instances]
    return _aggregate_samples(param_name, value, spec, samples)


#: One per-instance measurement: (volume_gb, planning_time_s, perf dict).
Sample = Tuple[float, float, Optional[Dict[str, Any]]]


def _instance_sample(net: SensorNetwork,
                     spec: AlgoSpec,
                     energy: EnergyModel,
                     radio: Any,
                     *,
                     kwargs: Dict[str, Any],
                     validate: bool,
                     cache: Optional[ArtifactCache] = None) -> Sample:
    """Plan one instance of one cell; the timer wraps only the planning."""
    call_kwargs = kwargs
    if cache is not None:
        # Outside the timer: cached sweeps report pure planning time
        # over prebuilt geometry (see the module docstring).
        call_kwargs = cache.augment_kwargs(net, energy, radio,
                                           spec.method, kwargs)
    with Timer() as t:
        tour = plan_tour(net, energy, radio,
                         method=spec.method, **call_kwargs)
    if validate:
        cross_validate(tour, radio)
    _fold_perf_ambient(tour.meta.get("perf"))
    return (tour.collected_volume / MB_PER_GB, t.elapsed,
            tour.meta.get("perf"))


def _aggregate_samples(param_name: str, value: float, spec: AlgoSpec,
                       samples: Sequence[Sample]) -> SweepRow:
    """Aggregate one cell's per-instance samples into its sweep row.

    Shared verbatim by the per-cell, column, and parallel executors —
    aggregation order is the instance order, so every executor produces
    the identical float reductions.
    """
    volumes = [s[0] for s in samples]
    times = [s[1] for s in samples]
    perf_acc: Dict[str, List[float]] = {}
    perf_engine = None
    for _, _, perf in samples:
        if perf:
            perf_engine = perf.get("engine", perf_engine)
            for key, val in _flatten_perf(perf).items():
                perf_acc.setdefault(key, []).append(val)
    perf_mean: Optional[Dict[str, Any]] = None
    if perf_acc:
        perf_mean = {k: float(np.mean(v)) for k, v in perf_acc.items()}
        perf_mean["engine"] = perf_engine
    return SweepRow(
        param_name=param_name,
        param_value=float(value),
        algorithm=spec.name,
        mean_volume_gb=float(np.mean(volumes)),
        std_volume_gb=_population_std(volumes),
        mean_time_s=float(np.mean(times)),
        std_time_s=_population_std(times),
        n_instances=len(samples),
        perf=perf_mean)


#: Planner kwargs the batch column executor understands, per method.
#: A spec using any other option falls back to the per-cell path.
_COLUMN_KWARGS: Dict[str, frozenset] = {
    "algorithm2": frozenset({"delta", "polish", "scoring", "max_iterations",
                             "engine", "tsp_mode", "site_reduction"}),
    "algorithm3": frozenset({"delta", "K", "polish", "max_iterations",
                             "engine", "site_reduction"}),
}


def batchable_column(config: ExperimentConfig,
                     spec: AlgoSpec,
                     param_values: Sequence[float],
                     make_energy: Callable[[ExperimentConfig, float],
                                           EnergyModel],
                     make_kwargs: Callable[[ExperimentConfig, float,
                                            AlgoSpec], Dict[str, Any]],
                     ) -> bool:
    """True if *spec*'s cells form one batchable column.

    Batchable means the stacked planner can replay every cell exactly:
    the method has a batch formulation (Algorithms 2/3 with the default
    insertion construction and the kernel-family engine), the planner
    kwargs are identical JSON at every parameter value (so geometry and
    policy are shared), and the energy models differ only in capacity-like
    fields — :class:`~repro.core.batch.BatchPlannerKernel` requires equal
    hover/travel rates across the column.
    """
    allowed = _COLUMN_KWARGS.get(spec.method)
    if allowed is None or not len(param_values):
        return False
    try:
        kwargs0 = make_kwargs(config, param_values[0], spec)
        key0 = json.dumps(kwargs0, sort_keys=True)
        keys_equal = all(
            json.dumps(make_kwargs(config, v, spec), sort_keys=True) == key0
            for v in param_values[1:])
    except TypeError:
        return False             # non-JSON kwargs (e.g. prebuilt sites)
    if not keys_equal or not set(kwargs0) <= allowed:
        return False
    if "delta" not in kwargs0:
        return False
    if kwargs0.get("engine", "kernel") not in ("kernel", "batch"):
        return False
    if kwargs0.get("tsp_mode", "insertion") != "insertion":
        return False
    if spec.method == "algorithm3" and "K" not in kwargs0:
        return False
    energies = [make_energy(config, v) for v in param_values]
    e0 = energies[0]
    return all(e.hover_power == e0.hover_power
               and e.travel_cost_per_meter == e0.travel_cost_per_meter
               for e in energies)


def _plan_column_instance(net: SensorNetwork,
                          spec: AlgoSpec,
                          energies: Sequence[EnergyModel],
                          radio: Any,
                          *,
                          kwargs: Dict[str, Any],
                          validate: bool,
                          cache: Optional[ArtifactCache] = None
                          ) -> List[Sample]:
    """Plan one instance's whole column in one batch call.

    Returns one sample per parameter value, in value order.  The timer
    wraps the single stacked planning call; each cell's time share is
    the column wall-clock divided by the column width (the work counters
    in ``perf`` stay per-variant and grouping-invariant).
    """
    call_kwargs = dict(kwargs)
    if cache is not None:
        # Outside the timer, like the per-cell path.  The largest
        # capacity is the column's reachability bound for capacity-
        # dependent site reductions (matching _reduce_column_sites in
        # repro.core.batch); plain geometry keys ignore the capacity, so
        # the choice is free for unreduced columns.
        cap_energy = max(energies, key=lambda e: e.capacity)
        call_kwargs = cache.augment_kwargs(net, cap_energy, radio,
                                           spec.method, call_kwargs)
    delta = call_kwargs.pop("delta")
    call_kwargs.pop("engine", None)
    call_kwargs.pop("tsp_mode", None)
    if spec.method == "algorithm3":
        K = call_kwargs.pop("K")
        with Timer() as t:
            tours = plan_algorithm3_batch(net, list(energies), radio, delta,
                                          K, **call_kwargs)
    else:
        with Timer() as t:
            tours = plan_algorithm2_batch(net, list(energies), radio, delta,
                                          **call_kwargs)
    share = t.elapsed / len(tours)
    samples: List[Sample] = []
    for tour in tours:
        if validate:
            cross_validate(tour, radio)
        _fold_perf_ambient(tour.meta.get("perf"))
        samples.append((tour.collected_volume / MB_PER_GB, share,
                        tour.meta.get("perf")))
    return samples


def _plan_chain_instance(net: SensorNetwork,
                         spec: AlgoSpec,
                         param_values: Sequence[float],
                         energies: Sequence[EnergyModel],
                         radio: Any,
                         *,
                         kwargs_by_value: Sequence[Dict[str, Any]],
                         validate: bool,
                         cache: ArtifactCache) -> List[Sample]:
    """Plan one instance's δ column coarse→fine with warm continuation.

    Cells run in descending δ order; each finer cell's kwargs gain the
    coarser cell's ``corridor_seed`` (consumed by the artifact cache's
    reduction pre-pass) and ``warm_nodes`` (the projected warm-start
    hint for Algorithm 1).  Returns one sample per parameter value, in
    *value* order; the timer wraps each cell's planning call exactly
    like the per-cell path, so ``mean_time_s`` keeps its semantics.

    Both execution engines share this function verbatim — sequential
    chains run it inline, parallel chains inside a worker — which is
    what keeps continuation rows bitwise-identical across ``jobs``.
    """
    samples: List[Optional[Sample]] = [None] * len(param_values)
    seed_points: Optional[List[List[float]]] = None
    for i in continuation_order(param_values):
        kwargs = dict(kwargs_by_value[i])
        if seed_points:
            kwargs["corridor_seed"] = seed_points
        call_kwargs = cache.augment_kwargs(net, energies[i], radio,
                                           spec.method, kwargs)
        if seed_points:
            warm = project_warm_nodes(seed_points, call_kwargs["sites"])
            if warm is not None:
                call_kwargs["warm_nodes"] = warm
        with Timer() as t:
            tour = plan_tour(net, energies[i], radio,
                             method=spec.method, **call_kwargs)
        if validate:
            cross_validate(tour, radio)
        _fold_perf_ambient(tour.meta.get("perf"))
        samples[i] = (tour.collected_volume / MB_PER_GB, t.elapsed,
                      tour.meta.get("perf"))
        seed_points = tour_seed_points(tour) or seed_points
    return [s for s in samples if s is not None]


def _population_std(values: Sequence[float]) -> float:
    """Population standard deviation (``np.std`` with ``ddof=0``).

    The paper averages each data point over its instance set and reports
    dispersion over that *full population* of instances, so ``ddof=0``
    (divide by n) is the right estimator — not the sample ``ddof=1``.
    A single-instance cell has no dispersion by definition: return an
    exact ``0.0`` instead of trusting the float arithmetic to cancel.
    """
    if len(values) == 1:
        return 0.0
    return float(np.std(np.asarray(values, dtype=float), ddof=0))


__all__ = ["AlgoSpec", "SweepRow", "SweepResult", "run_sweep", "MB_PER_GB",
           "PERF_SECONDS_PREFIX", "sweep_cells", "format_progress",
           "batchable_column", "_with_site_reduction",
           "_flatten_perf", "_fold_perf_ambient",
           "_emit_sweep_records", "_run_cell", "_instance_sample",
           "_aggregate_samples", "_plan_column_instance",
           "_plan_chain_instance", "_population_std"]
