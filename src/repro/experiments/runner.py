"""Generic sweep engine.

One *sweep* = (algorithms x parameter values x instances).  For every cell
the runner plans a tour, measures wall-clock planning time (the quantity in
the paper's Figs. 3(b)/4(b)/5(b)), optionally cross-validates the tour
against the execution simulator, and aggregates means/standard deviations
across instances.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.core.planner import plan_tour
from repro.energy.model import EnergyModel
from repro.experiments.config import ExperimentConfig
from repro.network.sensor_network import SensorNetwork
from repro.obs.tracer import TracerLike, activated, span
from repro.sim.validate import cross_validate
from repro.utils.timing import Timer

#: MB per GB — figure axes in the paper are GB.
MB_PER_GB = 1000.0


@dataclass(frozen=True)
class AlgoSpec:
    """One plotted algorithm: display name, planner method, fixed options."""

    name: str
    method: str
    kwargs: Dict[str, Any] = field(default_factory=dict)


@dataclass
class SweepRow:
    """One aggregated data point (one algorithm at one parameter value)."""

    param_name: str
    param_value: float
    algorithm: str
    mean_volume_gb: float
    std_volume_gb: float
    mean_time_s: float
    std_time_s: float
    n_instances: int
    #: Mean planner-kernel work counters across instances (engine,
    #: sites_rescored, deltas_recomputed, ... — see
    #: ``CollectionTour.meta["perf"]``).  Diagnostic only: deliberately
    #: excluded from :meth:`as_dict` so committed CSV schemas stay stable.
    perf: Optional[Dict[str, Any]] = None

    def as_dict(self) -> Dict[str, Any]:
        """Flat dict for CSV writers."""
        return {
            "param_name": self.param_name,
            "param_value": self.param_value,
            "algorithm": self.algorithm,
            "mean_volume_gb": self.mean_volume_gb,
            "std_volume_gb": self.std_volume_gb,
            "mean_time_s": self.mean_time_s,
            "std_time_s": self.std_time_s,
            "n_instances": self.n_instances,
        }


@dataclass
class SweepResult:
    """All rows of one sweep plus the configuration that produced them."""

    config: ExperimentConfig
    rows: List[SweepRow]

    def series(self, algorithm: str) -> List[SweepRow]:
        """The rows of one algorithm, ordered by parameter value."""
        return sorted((r for r in self.rows if r.algorithm == algorithm),
                      key=lambda r: r.param_value)

    def algorithms(self) -> List[str]:
        """Distinct algorithm names in plot order of first appearance."""
        seen: List[str] = []
        for r in self.rows:
            if r.algorithm not in seen:
                seen.append(r.algorithm)
        return seen


def _flatten_perf(perf: Dict[str, Any], prefix: str = "") -> Dict[str, float]:
    """Flatten a (possibly nested) ``meta["perf"]`` dict into dotted keys.

    ``{"sites_rescored": 3, "seconds": {"rescore": 0.1}}`` becomes
    ``{"sites_rescored": 3.0, "seconds.rescore": 0.1}``.  Non-numeric
    leaves (e.g. the ``"engine"`` string) are skipped — the caller keeps
    those out of the per-instance averages.
    """
    flat: Dict[str, float] = {}
    for key, val in perf.items():
        dotted = f"{prefix}{key}"
        if isinstance(val, dict):
            flat.update(_flatten_perf(val, prefix=f"{dotted}."))
        elif isinstance(val, bool):
            continue
        elif isinstance(val, (int, float)):
            flat[dotted] = float(val)
    return flat


def run_sweep(config: ExperimentConfig,
              instances: Sequence[SensorNetwork],
              algorithms: Sequence[AlgoSpec],
              param_name: str,
              param_values: Sequence[float],
              *,
              make_energy: Callable[[ExperimentConfig, float], EnergyModel],
              make_kwargs: Callable[[ExperimentConfig, float, AlgoSpec], Dict[str, Any]],
              validate: bool = True,
              progress: Optional[Callable[[str], None]] = None,
              trace: Optional[TracerLike] = None) -> SweepResult:
    """Run a full sweep and aggregate per-cell statistics.

    Parameters
    ----------
    config:
        The campaign configuration.
    instances:
        The shared network instance set (see
        :func:`repro.experiments.instances.make_instances`).
    algorithms:
        Plotted algorithms.
    param_name, param_values:
        The swept axis (``"capacity"`` or ``"delta"``).
    make_energy:
        Maps (config, param value) to the :class:`EnergyModel` for a cell.
    make_kwargs:
        Maps (config, param value, spec) to planner kwargs for a cell.
    validate:
        Cross-validate every planned tour against the simulator (cheap
        relative to planning; catches planner regressions during sweeps).
    progress:
        Optional callback receiving one status line per cell.
    trace:
        Optional :class:`repro.obs.Tracer` activated for the whole sweep;
        every cell gets a ``runner.cell`` span wrapping its instance loop,
        with the planner's own spans nested underneath.
    """
    radio = config.radio_model()
    rows: List[SweepRow] = []
    with activated(trace):
        for value in param_values:
            energy = make_energy(config, value)
            for spec in algorithms:
                with span("runner.cell", param=param_name,
                          value=float(value), algorithm=spec.name):
                    row = _run_cell(config, instances, spec, param_name,
                                    value, energy, radio,
                                    make_kwargs=make_kwargs,
                                    validate=validate)
                rows.append(row)
                if progress is not None:
                    progress(
                        f"{param_name}={value:g} {spec.name}: "
                        f"{row.mean_volume_gb:.2f} GB, "
                        f"{row.mean_time_s:.2f} s")
    return SweepResult(config=config, rows=rows)


def _run_cell(config: ExperimentConfig,
              instances: Sequence[SensorNetwork],
              spec: AlgoSpec,
              param_name: str,
              value: float,
              energy: EnergyModel,
              radio: Any,
              *,
              make_kwargs: Callable[[ExperimentConfig, float, AlgoSpec], Dict[str, Any]],
              validate: bool) -> SweepRow:
    """Plan every instance of one (algorithm, parameter value) cell."""
    volumes, times = [], []
    perf_acc: Dict[str, List[float]] = {}
    perf_engine = None
    kwargs = make_kwargs(config, value, spec)
    for net in instances:
        with Timer() as t:
            tour = plan_tour(net, energy, radio,
                             method=spec.method, **kwargs)
        if validate:
            cross_validate(tour, radio)
        volumes.append(tour.collected_volume / MB_PER_GB)
        times.append(t.elapsed)
        perf = tour.meta.get("perf")
        if perf:
            perf_engine = perf.get("engine", perf_engine)
            for key, val in _flatten_perf(perf).items():
                perf_acc.setdefault(key, []).append(val)
    perf_mean: Optional[Dict[str, Any]] = None
    if perf_acc:
        perf_mean = {k: float(np.mean(v)) for k, v in perf_acc.items()}
        perf_mean["engine"] = perf_engine
    return SweepRow(
        param_name=param_name,
        param_value=float(value),
        algorithm=spec.name,
        mean_volume_gb=float(np.mean(volumes)),
        std_volume_gb=float(np.std(volumes)),
        mean_time_s=float(np.mean(times)),
        std_time_s=float(np.std(times)),
        n_instances=len(instances),
        perf=perf_mean)


__all__ = ["AlgoSpec", "SweepRow", "SweepResult", "run_sweep", "MB_PER_GB",
           "_flatten_perf"]
