"""Seeded experiment instance sets.

The paper averages every data point over 15 random networks of the same
size; :func:`make_instances` materialises exactly that — ``n_instances``
networks derived from one master seed via independent spawned generators,
so every figure runner sees the *same* instance set for every algorithm
and parameter value (paired comparisons, lower variance).
"""

from __future__ import annotations

from typing import List

from repro.experiments.config import ExperimentConfig
from repro.network.generator import NetworkGenerator
from repro.network.sensor_network import SensorNetwork
from repro.utils.rng import spawn_rngs


def make_instances(config: ExperimentConfig,
                   n_instances: int | None = None) -> List[SensorNetwork]:
    """Generate the campaign's network instances.

    Parameters
    ----------
    config:
        The experiment configuration (node count, region, volumes, seed).
    n_instances:
        Override for ``config.n_instances``.
    """
    n = n_instances if n_instances is not None else config.n_instances
    gen = NetworkGenerator(config.region, volume_range=config.volume_range)
    rngs = spawn_rngs(config.seed, n)
    return [gen.uniform(config.n_nodes, seed=rng,
                        name=f"{config.label}-inst{i}")
            for i, rng in enumerate(rngs)]


__all__ = ["make_instances"]
