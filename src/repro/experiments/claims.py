"""Automated checking of the paper's headline claims.

EXPERIMENTS.md reports paper-vs-measured for every figure; this module
makes those comparisons *executable*: each claim from §VII is encoded as
a predicate over the corresponding :class:`SweepResult`, and
:func:`check_all_claims` returns a PASS/FAIL table.  The tests run the
checker on small sweeps, and the EXPERIMENTS.md tables are generated from
the same code — so the document can never silently drift from what the
code actually produces.

Claims encoded (paper §VII-B/C/D):

* **C1** (Fig. 3a): Algorithm 1 collects at least ``min_ratio``x the
  benchmark at the smallest budget (paper reports ~2x).
* **C2** (Fig. 3a): the absolute gap does not shrink as energy grows.
* **C3** (Fig. 3b): the benchmark's running time is non-increasing in the
  budget while Algorithm 1's is non-decreasing (trend via least squares).
* **C4** (Fig. 4a): Algorithm 2/3 beat the benchmark at every δ.
* **C5** (Fig. 4a): collected volume is non-increasing in δ for Alg. 2/3.
* **C6** (Fig. 4b): Algorithm 3's planning time grows with K and exceeds
  Algorithm 2's.
* **C7** (Fig. 5a): every algorithm's volume is non-decreasing in the
  budget, and Algorithm 3 (largest K) gains at least ``min_growth`` over
  the sweep (paper: +82 %).

Site-reduction claims (:func:`check_reduction_claims`) compare a sweep
re-run under ``site_reduction=`` against its baseline:

* **R1** (``level="safe"``): collected volumes are *bitwise identical*
  in every cell — the safe stages are plan-preserving by construction
  (DESIGN.md §9) and this is the executable form of that proof.
* **R2** (``level="aggressive"``): per-cell relative volume loss stays
  within ``max_loss`` (default 5 %) — the lossy stages trade a bounded
  data delta for a 5–10x smaller candidate set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.experiments.runner import SweepResult
from repro.utils.errors import InvalidParameterError


@dataclass(frozen=True)
class ClaimResult:
    """Outcome of one claim check."""

    claim_id: str
    description: str
    passed: bool
    detail: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        status = "PASS" if self.passed else "FAIL"
        return f"[{status}] {self.claim_id}: {self.description} — {self.detail}"


def _series_values(result: SweepResult, algorithm: str,
                   attr: str) -> np.ndarray:
    rows = result.series(algorithm)
    if not rows:
        raise InvalidParameterError(
            f"algorithm {algorithm!r} not in sweep "
            f"(have {result.algorithms()})")
    return np.array([getattr(r, attr) for r in rows])


def _trend_slope(xs: np.ndarray, ys: np.ndarray) -> float:
    """Least-squares slope; sign captures the monotone *trend*."""
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    xc = xs - xs.mean()
    denom = (xc ** 2).sum()
    return float((xc * (ys - ys.mean())).sum() / denom) if denom else 0.0


def _mostly_monotone(values: np.ndarray, *, increasing: bool,
                     rel_tol: float = 0.02) -> bool:
    """Monotone up to a small relative tolerance per step (sweep noise)."""
    v = np.asarray(values, dtype=float)
    scale = max(abs(v).max(), 1e-12)
    diffs = np.diff(v)
    if not increasing:
        diffs = -diffs
    return bool((diffs >= -rel_tol * scale).all())


# --------------------------------------------------------------------- #
# Fig. 3 claims
# --------------------------------------------------------------------- #
def check_fig3_claims(result: SweepResult, *, alg1: str = "Algorithm 1",
                      bench: str = "Benchmark",
                      min_ratio: float = 1.3) -> List[ClaimResult]:
    """C1–C3 against a Fig. 3 capacity sweep."""
    a1_vol = _series_values(result, alg1, "mean_volume_gb")
    b_vol = _series_values(result, bench, "mean_volume_gb")
    a1_time = _series_values(result, alg1, "mean_time_s")
    b_time = _series_values(result, bench, "mean_time_s")
    xs = np.array([r.param_value for r in result.series(alg1)])

    ratio0 = a1_vol[0] / max(b_vol[0], 1e-12)
    c1 = ClaimResult(
        "C1", f"Alg.1 >= {min_ratio:.1f}x benchmark at smallest budget",
        ratio0 >= min_ratio,
        f"measured ratio {ratio0:.2f}x (paper ~2x)")

    gaps = a1_vol - b_vol
    c2 = ClaimResult(
        "C2", "Alg.1-vs-benchmark gap does not shrink with energy",
        _mostly_monotone(gaps, increasing=True, rel_tol=0.10),
        f"gaps (GB): {np.round(gaps, 2).tolist()}")

    # The paper's benchmark-time-falls half is structural (fewer prune
    # iterations) and must reproduce exactly.  The Alg.1-time-rises half
    # is an artefact of the authors' orienteering solver; our GRASP's
    # runtime is dominated by local-search convergence rather than budget,
    # so we only require it not to *fall materially* (>20 % over the sweep).
    b_slope = _trend_slope(xs, b_time)
    a1_slope = _trend_slope(xs, a1_time)
    a1_rel_change = a1_slope * (xs[-1] - xs[0]) / max(a1_time.mean(), 1e-12)
    c3 = ClaimResult(
        "C3", "benchmark time falls with budget; Alg.1 time does not",
        b_slope <= 0 and a1_rel_change >= -0.20,
        f"slopes: benchmark {b_slope:.2e} s/J, Alg.1 {a1_slope:.2e} s/J "
        f"({a1_rel_change:+.0%} over the sweep)")
    return [c1, c2, c3]


# --------------------------------------------------------------------- #
# Fig. 4 claims
# --------------------------------------------------------------------- #
def check_fig4_claims(result: SweepResult, *, alg2: str = "Algorithm 2",
                      bench: str = "Benchmark",
                      min_ratio: float = 1.2) -> List[ClaimResult]:
    """C4–C6 against a Fig. 4 δ sweep."""
    algos = result.algorithms()
    alg3_names = sorted(a for a in algos if a.startswith("Algorithm 3"))
    a2_vol = _series_values(result, alg2, "mean_volume_gb")
    b_vol = _series_values(result, bench, "mean_volume_gb")

    dominated = (a2_vol >= min_ratio * b_vol - 1e-9).all()
    for name in alg3_names:
        v = _series_values(result, name, "mean_volume_gb")
        dominated &= (v >= min_ratio * b_vol - 1e-9).all()
    c4 = ClaimResult(
        "C4", f"Alg.2/3 >= {min_ratio:.1f}x benchmark at every delta",
        bool(dominated),
        f"Alg.2/benchmark ratios: {np.round(a2_vol / b_vol, 2).tolist()}")

    mono = _mostly_monotone(a2_vol, increasing=False)
    for name in alg3_names:
        mono &= _mostly_monotone(
            _series_values(result, name, "mean_volume_gb"), increasing=False)
    c5 = ClaimResult(
        "C5", "collected volume non-increasing in delta",
        bool(mono),
        f"Alg.2 volumes (GB): {np.round(a2_vol, 2).tolist()}")

    a2_time = _series_values(result, alg2, "mean_time_s").mean()
    times = [(_series_values(result, n, "mean_time_s").mean(), n)
             for n in alg3_names]
    ordered = all(t >= a2_time - 1e-9 for t, _ in times) and \
        all(b >= a - 1e-9 for (a, _), (b, _) in zip(times, times[1:]))
    c6 = ClaimResult(
        "C6", "planning time: Alg.3 grows with K and exceeds Alg.2",
        bool(ordered),
        f"mean times: Alg.2 {a2_time:.2f}s, "
        + ", ".join(f"{n} {t:.2f}s" for t, n in times))
    return [c4, c5, c6]


# --------------------------------------------------------------------- #
# Fig. 5 claims
# --------------------------------------------------------------------- #
def check_fig5_claims(result: SweepResult, *, bench: str = "Benchmark",
                      min_growth: float = 0.4) -> List[ClaimResult]:
    """C7 against a Fig. 5 capacity sweep."""
    algos = result.algorithms()
    grow_ok = True
    details = []
    for name in algos:
        v = _series_values(result, name, "mean_volume_gb")
        grow_ok &= _mostly_monotone(v, increasing=True)
        details.append(f"{name}: {v[0]:.1f}->{v[-1]:.1f} GB")
    alg3_names = sorted(a for a in algos if a.startswith("Algorithm 3"))
    target = alg3_names[-1] if alg3_names else algos[0]
    tv = _series_values(result, target, "mean_volume_gb")
    growth = tv[-1] / max(tv[0], 1e-12) - 1.0
    c7 = ClaimResult(
        "C7", f"volume grows with budget; {target} gains >= "
              f"{min_growth:.0%} over the sweep (paper +82%)",
        bool(grow_ok) and growth >= min_growth,
        f"{target} growth {growth:+.0%}; " + "; ".join(details))
    return [c7]


# --------------------------------------------------------------------- #
# Site-reduction claims (off-vs-reduced sweep deltas)
# --------------------------------------------------------------------- #
def _paired_rows(baseline: SweepResult, reduced: SweepResult):
    """Align two sweeps' rows by (algorithm, parameter value)."""
    base_map = {(r.algorithm, r.param_value): r for r in baseline.rows}
    if len(base_map) != len(baseline.rows):
        raise InvalidParameterError("baseline sweep has duplicate cells")
    pairs = []
    for row in reduced.rows:
        key = (row.algorithm, row.param_value)
        if key not in base_map:
            raise InvalidParameterError(
                f"reduced sweep cell {key!r} missing from baseline "
                f"(are these the same campaign?)")
        pairs.append((base_map[key], row))
    if len(pairs) != len(base_map):
        raise InvalidParameterError(
            "baseline and reduced sweeps cover different cells")
    return pairs


def check_reduction_claims(baseline: SweepResult, reduced: SweepResult, *,
                           level: str = "safe",
                           max_loss: float = 0.05) -> List[ClaimResult]:
    """R1/R2 — collected-data deltas of a reduced sweep vs its baseline.

    *baseline* is the sweep with ``site_reduction=None``; *reduced* is
    the same campaign re-run with ``site_reduction=level``.  Benchmark
    cells have no δ-grid and are expected to match exactly at every
    level.  Note R1 covers Algorithms 2/3; an Algorithm 1 GRASP cell may
    differ even at the safe level (seeded-RNG renumbering — see
    :func:`repro.core.algorithm1.plan_algorithm1`), so pass Fig. 3
    sweeps through R2 instead.
    """
    if level not in ("safe", "aggressive"):
        raise InvalidParameterError(
            f"level must be 'safe' or 'aggressive', got {level!r}")
    pairs = _paired_rows(baseline, reduced)
    losses = []
    for base, red in pairs:
        rel = ((base.mean_volume_gb - red.mean_volume_gb)
               / max(base.mean_volume_gb, 1e-12))
        losses.append((rel, base))
    worst_rel, worst_row = max(losses, key=lambda p: p[0])
    worst_cell = (f"{worst_row.algorithm} @ "
                  f"{worst_row.param_name}={worst_row.param_value:g}")
    if level == "safe":
        exact = all(b.mean_volume_gb == r.mean_volume_gb for b, r in pairs)
        return [ClaimResult(
            "R1", "safe reduction: collected volumes bitwise-identical",
            exact,
            f"{len(pairs)} cells; worst delta {worst_rel:+.2e} rel "
            f"({worst_cell})")]
    within = all(rel <= max_loss for rel, _ in losses)
    mean_rel = float(np.mean([rel for rel, _ in losses]))
    return [ClaimResult(
        "R2", f"aggressive reduction: per-cell volume loss <= "
              f"{max_loss:.0%}",
        within,
        f"{len(pairs)} cells; mean loss {mean_rel:+.2%}, worst "
        f"{worst_rel:+.2%} ({worst_cell})")]


def reduction_delta_table(baseline: SweepResult,
                          reduced: SweepResult) -> str:
    """Markdown per-algorithm collected-data deltas (for EXPERIMENTS.md).

    One row per algorithm: mean and worst relative volume change of the
    reduced sweep against its baseline, plus the cell where the worst
    change occurs.  Negative percentages are losses.
    """
    pairs = _paired_rows(baseline, reduced)
    per_algo: dict = {}
    for base, red in pairs:
        rel = ((red.mean_volume_gb - base.mean_volume_gb)
               / max(base.mean_volume_gb, 1e-12))
        per_algo.setdefault(base.algorithm, []).append((rel, base))
    lines = ["| algorithm | mean Δvolume | worst Δvolume | worst cell |",
             "|---|---|---|---|"]
    for algo in reduced.algorithms():
        entries = per_algo[algo]
        rels = [r for r, _ in entries]
        worst_rel, worst_row = min(entries, key=lambda p: p[0])
        lines.append(
            f"| {algo} | {float(np.mean(rels)):+.2%} | {worst_rel:+.2%} "
            f"| {worst_row.param_name}={worst_row.param_value:g} |")
    return "\n".join(lines)


def check_all_claims(fig3: Optional[SweepResult] = None,
                     fig4: Optional[SweepResult] = None,
                     fig5: Optional[SweepResult] = None) -> List[ClaimResult]:
    """Check every claim for which a sweep was supplied."""
    out: List[ClaimResult] = []
    if fig3 is not None:
        out.extend(check_fig3_claims(fig3))
    if fig4 is not None:
        out.extend(check_fig4_claims(fig4))
    if fig5 is not None:
        out.extend(check_fig5_claims(fig5))
    if not out:
        raise InvalidParameterError("no sweep results supplied")
    return out


def claims_to_markdown(claims: Sequence[ClaimResult]) -> str:
    """Render a claims table for EXPERIMENTS.md."""
    lines = ["| claim | paper statement | status | measured |",
             "|---|---|---|---|"]
    for c in claims:
        status = "✅ PASS" if c.passed else "❌ FAIL"
        lines.append(f"| {c.claim_id} | {c.description} | {status} "
                     f"| {c.detail} |")
    return "\n".join(lines)


__all__ = [
    "ClaimResult",
    "check_fig3_claims",
    "check_fig4_claims",
    "check_fig5_claims",
    "check_reduction_claims",
    "reduction_delta_table",
    "check_all_claims",
    "claims_to_markdown",
]
