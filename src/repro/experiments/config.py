"""Experiment configuration and presets.

``paper_settings()`` is §VII-A verbatim: 500 nodes in 1000 m x 1000 m,
``D_v ~ U[100, 1000] MB``, R0 = 50 m, B = 150 MB/s, E = 3e5 J, speed
10 m/s, eta_t = 100 J/s, eta_h = 150 J/s, 15 instances per point.

``reduced_settings()`` scales the instance down so the full figure suite
runs in minutes of pure Python (DESIGN.md substitution S3): 120 nodes and
an energy sweep rescaled to keep the budget *binding* across the sweep,
which is what produces the paper's relative shapes.  The scaling rule is
proportional: total data and tour lengths shrink ~4x, so the energy axis
shrinks ~4-10x.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields, replace
from typing import Any, Dict, Tuple

from repro.energy.model import EnergyModel
from repro.geometry.region import Region
from repro.radio.link import RadioModel
from repro.utils.errors import InvalidParameterError
from repro.utils.validation import check_integer, check_positive


@dataclass(frozen=True)
class ExperimentConfig:
    """All knobs of one evaluation campaign.

    Attributes
    ----------
    n_nodes:
        Aggregate sensor count ``|V|``.
    region_side:
        Monitoring square side (metres).
    volume_range:
        Uniform ``D_v`` bounds (MB).
    bandwidth:
        Upload rate ``B`` (MB/s).
    coverage_radius:
        ``R0`` (metres).
    capacity:
        Default battery capacity ``E`` (J).
    hover_power, travel_power, speed:
        UAV energy parameters.
    delta:
        Default grid edge length (metres).
    capacity_sweep:
        Battery values for the Fig. 3 / Fig. 5 sweeps.
    delta_sweep:
        Grid edge lengths for the Fig. 4 sweep.
    k_values:
        Algorithm 3 partition counts plotted in Figs. 4–5.
    n_instances:
        Random network instances averaged per data point.
    seed:
        Master seed for the instance set.
    label:
        Preset name (``"paper"`` / ``"reduced"`` / custom).
    """

    n_nodes: int = 500
    region_side: float = 1000.0
    volume_range: Tuple[float, float] = (100.0, 1000.0)
    bandwidth: float = 150.0
    coverage_radius: float = 50.0
    capacity: float = 3e5
    hover_power: float = 150.0
    travel_power: float = 100.0
    speed: float = 10.0
    delta: float = 10.0
    capacity_sweep: Tuple[float, ...] = (3e5, 5e5, 7e5, 9e5)
    delta_sweep: Tuple[float, ...] = (5.0, 10.0, 15.0, 20.0, 25.0, 30.0)
    k_values: Tuple[int, ...] = (2, 4)
    n_instances: int = 15
    seed: int = 20200518
    label: str = "paper"
    #: Travel-energy reading: True = the paper's literal Eq. 9 (eta_t J/m),
    #: False = the physical eta_t/speed J/m (see repro.energy.model docs).
    distance_based_travel: bool = False

    def __post_init__(self) -> None:
        check_integer(self.n_nodes, "n_nodes", minimum=1)
        check_positive(self.region_side, "region_side")
        check_positive(self.bandwidth, "bandwidth")
        check_positive(self.coverage_radius, "coverage_radius")
        check_positive(self.capacity, "capacity")
        check_positive(self.delta, "delta")
        check_integer(self.n_instances, "n_instances", minimum=1)
        if not self.capacity_sweep or not self.delta_sweep:
            raise InvalidParameterError("sweeps must be non-empty")
        for k in self.k_values:
            check_integer(k, "k_values entry", minimum=1)

    @property
    def region(self) -> Region:
        """The monitoring region."""
        return Region.square(self.region_side)

    def energy_model(self, capacity: float | None = None) -> EnergyModel:
        """The UAV energy model, optionally at a swept capacity."""
        return EnergyModel(capacity=capacity or self.capacity,
                           hover_power=self.hover_power,
                           travel_power=self.travel_power,
                           speed=self.speed,
                           distance_based_travel=self.distance_based_travel)

    def radio_model(self) -> RadioModel:
        """The uplink model (R0 expressed as range at zero altitude)."""
        return RadioModel(bandwidth=self.bandwidth,
                          transmission_range=self.coverage_radius,
                          altitude=0.0)

    def scaled(self, **overrides) -> "ExperimentConfig":
        """A copy with the given fields replaced."""
        return replace(self, **overrides)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-compatible dict of every field (tuples become lists).

        This is the configuration transport of the parallel sweep
        executor: workers rebuild their energy/radio models from this
        payload instead of unpickling live objects.
        """
        payload = asdict(self)
        for key, value in payload.items():
            if isinstance(value, tuple):
                payload[key] = list(value)
        return payload

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ExperimentConfig":
        """Inverse of :meth:`as_dict` (rejects unknown keys)."""
        if not isinstance(data, dict):
            raise InvalidParameterError("config payload must be a dict")
        known = {f.name: f for f in fields(cls)}
        unknown = sorted(set(data) - set(known))
        if unknown:
            raise InvalidParameterError(
                f"unknown ExperimentConfig fields: {unknown}")
        kwargs: Dict[str, Any] = {}
        for key, value in data.items():
            if isinstance(value, list):
                value = tuple(value)
            kwargs[key] = value
        return cls(**kwargs)


def paper_settings() -> ExperimentConfig:
    """The paper's §VII-A configuration, verbatim.

    Uses the paper-literal travel-energy reading (Eq. 9's ``l * eta_t``
    with eta_t in J/m) — the only reading under which the paper's
    absolute collected volumes are reachable at its stated battery sizes;
    see :mod:`repro.energy.model` and EXPERIMENTS.md.
    """
    return ExperimentConfig(distance_based_travel=True)


def reduced_settings() -> ExperimentConfig:
    """Laptop-scale configuration preserving the paper's trends.

    120 nodes hold ~66 GB total (vs the paper's ~275 GB), so the energy
    axis is rescaled to keep the budget binding: the sweep spans "collects
    roughly a third of the data" to "collects most of it", mirroring where
    the paper's sweep sits relative to its instance.
    """
    return ExperimentConfig(
        n_nodes=120,
        capacity=6e4,
        capacity_sweep=(3e4, 5e4, 7e4, 9e4),
        delta=15.0,
        delta_sweep=(10.0, 15.0, 20.0, 25.0, 30.0),
        k_values=(2, 4),
        n_instances=5,
        label="reduced",
    )


__all__ = ["ExperimentConfig", "paper_settings", "reduced_settings"]
