"""Experiment harness reproducing the paper's evaluation (§VII).

* :mod:`repro.experiments.config` — experiment settings with ``paper`` and
  ``reduced`` presets (see DESIGN.md substitution S3 for the scaling),
* :mod:`repro.experiments.instances` — seeded network-instance sets (the
  paper averages 15 instances per data point),
* :mod:`repro.experiments.runner` — the generic sweep engine measuring
  collected volume and wall-clock running time per algorithm,
* :mod:`repro.experiments.parallel` — the process-pool sweep executor
  behind ``run_sweep(..., jobs=N)`` (deterministic merge, trace shards),
* :mod:`repro.experiments.artifacts` — the per-instance geometry cache
  shared by both execution engines,
* :mod:`repro.experiments.fig3` / ``fig4`` / ``fig5`` — one runner per
  paper figure,
* :mod:`repro.experiments.tables` — CSV / markdown rendering,
* :mod:`repro.experiments.cli` — ``repro-experiments`` command-line entry.
"""

from repro.experiments.config import ExperimentConfig, paper_settings, reduced_settings
from repro.experiments.instances import make_instances
from repro.experiments.runner import AlgoSpec, SweepResult, run_sweep
from repro.experiments.parallel import run_sweep_parallel
from repro.experiments.artifacts import ArtifactCache
from repro.experiments.fig3 import run_fig3
from repro.experiments.fig4 import run_fig4
from repro.experiments.fig5 import run_fig5
from repro.experiments.tables import rows_to_csv, rows_to_markdown
from repro.experiments.ascii_plot import render_sweep, render_series
from repro.experiments.svg_plot import render_sweep_svg, render_series_svg
from repro.experiments.tour_map import render_tour_svg
from repro.experiments.claims import (
    check_all_claims,
    check_fig3_claims,
    check_fig4_claims,
    check_fig5_claims,
    claims_to_markdown,
)
from repro.experiments.report import load_sweep_csv, load_results_dir, generate_report
from repro.experiments.stats import (
    mean_confidence_interval,
    row_confidence_interval,
    paired_comparison,
    PairedComparison,
)

__all__ = [
    "render_sweep",
    "render_series",
    "render_sweep_svg",
    "render_series_svg",
    "render_tour_svg",
    "check_all_claims",
    "check_fig3_claims",
    "check_fig4_claims",
    "check_fig5_claims",
    "claims_to_markdown",
    "load_sweep_csv",
    "load_results_dir",
    "generate_report",
    "mean_confidence_interval",
    "row_confidence_interval",
    "paired_comparison",
    "PairedComparison",
    "ExperimentConfig",
    "paper_settings",
    "reduced_settings",
    "make_instances",
    "AlgoSpec",
    "SweepResult",
    "run_sweep",
    "run_sweep_parallel",
    "ArtifactCache",
    "run_fig3",
    "run_fig4",
    "run_fig5",
    "rows_to_csv",
    "rows_to_markdown",
]
