"""Standalone SVG maps of a planned mission.

Renders a :class:`~repro.core.tour.CollectionTour` over its network:
sensors sized by stored volume and tinted by collection status, hovering
coverage discs, the flight path with direction arrows, and the depot.
Useful in READMEs, reports, and debugging sessions — no matplotlib needed.

Colour roles (same validated palette as :mod:`repro.experiments.svg_plot`):
the flight path takes categorical slot 1, fully-collected sensors slot 2,
partially-collected slot 3 (with the collected fraction in the tooltip),
and uncollected sensors neutral grey.  Every element carries a native
``<title>`` tooltip; a small legend names the states (identity never rides
on colour alone).
"""

from __future__ import annotations

import html
from typing import List

import numpy as np

from repro.core.tour import CollectionTour
from repro.experiments.svg_plot import INK_PRIMARY, INK_SECONDARY, SURFACE
from repro.radio.link import RadioModel
from repro.utils.errors import InvalidParameterError

PATH_COLOR = "#2a78d6"       # slot 1 — flight path & hover rings
FULL_COLOR = "#1baf7a"       # slot 2 — fully collected sensors
PARTIAL_COLOR = "#eda100"    # slot 3 — partially collected sensors
EMPTY_COLOR = "#b9b8b3"      # neutral — uncollected sensors


def render_tour_svg(tour: CollectionTour, radio: RadioModel, *,
                    size: int = 560, show_coverage: bool = True) -> str:
    """Render the mission map as a standalone SVG string.

    Parameters
    ----------
    tour:
        The planned mission.
    radio:
        Radio model (for the coverage-disc radius).
    size:
        Canvas edge in px (the region is fitted preserving aspect).
    show_coverage:
        Draw the ground-projected coverage disc at each hover.
    """
    net = tour.network
    region = net.region
    assert region is not None
    margin, legend_h = 24, 54
    span = max(region.width, region.height)
    if span <= 0:
        raise InvalidParameterError("degenerate region")
    scale = (size - 2 * margin) / span

    def sx(x: float) -> float:
        return margin + (x - region.xmin) * scale

    def sy(y: float) -> float:
        # Flip y so north is up.
        return margin + (region.ymax - y) * scale

    width = size
    height = int(2 * margin + region.height * scale) + legend_h
    parts: List[str] = []
    parts.append(
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" '
        f'font-family="system-ui, sans-serif">')
    parts.append(f'<rect width="{width}" height="{height}" fill="{SURFACE}"/>')
    parts.append(
        f'<rect x="{sx(region.xmin):.1f}" y="{sy(region.ymax):.1f}" '
        f'width="{region.width * scale:.1f}" '
        f'height="{region.height * scale:.1f}" fill="none" '
        f'stroke="{INK_SECONDARY}" stroke-width="1" stroke-dasharray="4 4"/>')

    # Coverage discs under everything else.
    if show_coverage:
        r_px = radio.coverage_radius * scale
        for p, s in zip(tour.points, tour.sojourns):
            if s <= 0:
                continue
            parts.append(
                f'<circle cx="{sx(p[0]):.1f}" cy="{sy(p[1]):.1f}" '
                f'r="{r_px:.1f}" fill="{PATH_COLOR}" fill-opacity="0.08" '
                f'stroke="{PATH_COLOR}" stroke-opacity="0.35" '
                f'stroke-width="1"/>')

    # Flight path (closed) with a mid-leg direction arrow.
    pts = tour.points
    path = " ".join(f"{sx(p[0]):.1f},{sy(p[1]):.1f}" for p in pts)
    closing = f"{sx(pts[0][0]):.1f},{sy(pts[0][1]):.1f}"
    parts.append(f'<polyline points="{path} {closing}" fill="none" '
                 f'stroke="{PATH_COLOR}" stroke-width="2" '
                 f'stroke-linejoin="round"/>')
    if len(pts) >= 2:
        a, b = pts[0], pts[1]
        mx, my = sx((a[0] + b[0]) / 2), sy((a[1] + b[1]) / 2)
        dx, dy = sx(b[0]) - sx(a[0]), sy(b[1]) - sy(a[1])
        norm = max(np.hypot(dx, dy), 1e-9)
        ux, uy = dx / norm, dy / norm
        left = (mx - 6 * ux + 3 * uy, my - 6 * uy - 3 * ux)
        right = (mx - 6 * ux - 3 * uy, my - 6 * uy + 3 * ux)
        parts.append(f'<polygon points="{mx:.1f},{my:.1f} '
                     f'{left[0]:.1f},{left[1]:.1f} '
                     f'{right[0]:.1f},{right[1]:.1f}" fill="{PATH_COLOR}"/>')

    # Sensors: area ~ stored volume, colour by collection state.
    vmax = max(float(net.volumes.max()), 1e-9) if net.n_nodes else 1.0
    for v in range(net.n_nodes):
        frac = (tour.collected[v] / net.volumes[v]
                if net.volumes[v] > 0 else 0.0)
        if frac >= 1.0 - 1e-9:
            color, state = FULL_COLOR, "fully collected"
        elif frac > 1e-9:
            color, state = PARTIAL_COLOR, f"{frac:.0%} collected"
        else:
            color, state = EMPTY_COLOR, "not collected"
        r = 2.5 + 4.5 * np.sqrt(net.volumes[v] / vmax)
        x, y = sx(net.positions[v][0]), sy(net.positions[v][1])
        parts.append(
            f'<circle cx="{x:.1f}" cy="{y:.1f}" r="{r:.1f}" fill="{color}" '
            f'stroke="{SURFACE}" stroke-width="1">'
            f'<title>sensor {v}: {net.volumes[v]:.0f} MB, {state}</title>'
            f'</circle>')

    # Hover points + depot on top.
    for i, (p, s) in enumerate(zip(tour.points, tour.sojourns)):
        if s > 0:
            parts.append(
                f'<circle cx="{sx(p[0]):.1f}" cy="{sy(p[1]):.1f}" r="3.5" '
                f'fill="{SURFACE}" stroke="{PATH_COLOR}" stroke-width="2">'
                f'<title>hover {i}: {s:.1f} s</title></circle>')
    dx, dy = sx(net.depot[0]), sy(net.depot[1])
    parts.append(f'<rect x="{dx - 5:.1f}" y="{dy - 5:.1f}" width="10" '
                 f'height="10" fill="{INK_PRIMARY}">'
                 f'<title>depot</title></rect>')

    # Legend + caption.
    ly = height - legend_h + 16
    entries = [(PATH_COLOR, "flight path / hover"),
               (FULL_COLOR, "collected"),
               (PARTIAL_COLOR, "partial"),
               (EMPTY_COLOR, "uncollected")]
    x = margin
    for color, label in entries:
        parts.append(f'<circle cx="{x + 5}" cy="{ly - 4}" r="5" '
                     f'fill="{color}"/>')
        parts.append(f'<text x="{x + 14}" y="{ly}" font-size="11" '
                     f'fill="{INK_PRIMARY}">{html.escape(label)}</text>')
        x += 14 + 8 * len(label) + 18
    caption = (f"{tour.method}: {tour.collected_volume / 1000:.1f} GB, "
               f"{tour.n_hovers} hovers, "
               f"{tour.total_energy:.0f}/{tour.energy.capacity:.0f} J")
    parts.append(f'<text x="{margin}" y="{ly + 20}" font-size="11" '
                 f'fill="{INK_SECONDARY}">{html.escape(caption)}</text>')
    parts.append("</svg>")
    return "\n".join(parts)


__all__ = ["render_tour_svg", "PATH_COLOR", "FULL_COLOR", "PARTIAL_COLOR",
           "EMPTY_COLOR"]
