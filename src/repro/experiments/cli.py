"""Command-line entry point: ``repro-experiments`` / ``python -m repro.experiments``.

Examples
--------
Run the reduced-scale Fig. 4 sweep and print markdown tables::

    repro-experiments fig4 --scale reduced

Run all figures at reduced scale, writing CSVs into ``results/``::

    repro-experiments all --scale reduced --out results/

Full paper scale (slow — hours, exactly like the paper's own runs)::

    repro-experiments fig3 --scale paper
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import Callable, Dict

from repro.experiments.ascii_plot import render_sweep
from repro.experiments.claims import (
    check_fig3_claims,
    check_fig4_claims,
    check_fig5_claims,
    claims_to_markdown,
)
from repro.experiments.config import ExperimentConfig, paper_settings, reduced_settings
from repro.experiments.fig3 import run_fig3
from repro.experiments.fig4 import run_fig4
from repro.experiments.fig5 import run_fig5
from repro.experiments.runner import SweepResult
from repro.experiments.tables import rows_to_csv, rows_to_markdown
from repro.obs.tracer import activated

RUNNERS: Dict[str, Callable[..., SweepResult]] = {
    "fig3": run_fig3,
    "fig4": run_fig4,
    "fig5": run_fig5,
}

CLAIM_CHECKERS = {
    "fig3": check_fig3_claims,
    "fig4": check_fig4_claims,
    "fig5": check_fig5_claims,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the paper's evaluation figures.")
    parser.add_argument("figure", choices=[*RUNNERS, "all", "report"],
                        help="which figure to reproduce, or 'report' to "
                             "regenerate the markdown report from the CSVs "
                             "in --out")
    parser.add_argument("--ascii", action="store_true",
                        help="also render the two panels as terminal charts")
    parser.add_argument("--svg", type=pathlib.Path, default=None,
                        help="directory to write per-panel SVG charts into")
    parser.add_argument("--claims", action="store_true",
                        help="check the paper's headline claims against "
                             "the measured results and print a PASS/FAIL table")
    parser.add_argument("--scale", choices=["paper", "reduced"],
                        default="reduced",
                        help="paper-exact or laptop-scale settings")
    parser.add_argument("--instances", type=int, default=None,
                        help="override the number of random instances")
    parser.add_argument("--nodes", type=int, default=None,
                        help="override the sensor count |V|")
    parser.add_argument("--seed", type=int, default=None,
                        help="override the master seed")
    parser.add_argument("--out", type=pathlib.Path, default=None,
                        help="directory for CSV output (default: print only)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-cell progress lines")
    parser.add_argument("--trace", type=pathlib.Path, default=None,
                        help="record a structured span trace of the runs "
                             "and write it as JSONL to this path (inspect "
                             "with 'python -m repro.obs report'); with "
                             "--jobs N worker shards are merged in")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes per sweep (default 1: "
                             "in-process); results are identical to "
                             "--jobs 1 up to measured wall-clock")
    parser.add_argument("--no-cache", action="store_true",
                        help="rebuild per-instance geometry every cell "
                             "instead of memoizing it across the sweep "
                             "(paper-literal per-cell timings)")
    parser.add_argument("--batch-columns", action="store_true",
                        help="plan each eligible algorithm's whole "
                             "parameter column per instance as one "
                             "engine='batch' call (Fig. 5's capacity "
                             "sweep; identical results, stacked numpy "
                             "execution)")
    parser.add_argument("--delta-continuation", action="store_true",
                        help="fig4 only: add an Algorithm 1 series and "
                             "chain its δ cells per instance coarse→fine, "
                             "warm-starting each finer grid's reduction "
                             "corridor and first GRASP construction from "
                             "the coarser grid's tour (strict-improvement "
                             "acceptance; requires the artifact cache)")
    parser.add_argument("--engine", choices=["scalar", "fast"],
                        default="scalar",
                        help="orienteering engine for the Algorithm 1 "
                             "series (fig3, and the series added by "
                             "--delta-continuation): 'fast' = vectorized "
                             "GRASP, bitwise-identical tours)")
    parser.add_argument("--site-reduction",
                        choices=["off", "safe", "aggressive"],
                        default="off",
                        help="candidate-site reduction pre-pass ahead of "
                             "Algorithms 1-3: 'safe' drops only provably "
                             "plan-preserving sites (identical tours, "
                             "less work), 'aggressive' adds dominated-"
                             "coverage, cluster-representative, and TSP-"
                             "corridor filtering (near-identical volumes, "
                             "much less work; see DESIGN.md)")
    return parser


def _config_from_args(args: argparse.Namespace) -> ExperimentConfig:
    config = paper_settings() if args.scale == "paper" else reduced_settings()
    overrides = {}
    if args.instances is not None:
        overrides["n_instances"] = args.instances
    if args.nodes is not None:
        overrides["n_nodes"] = args.nodes
    if args.seed is not None:
        overrides["seed"] = args.seed
    return config.scaled(**overrides) if overrides else config


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.jobs < 1:
        print(f"error: --jobs must be >= 1, got {args.jobs}",
              file=sys.stderr)
        return 2
    if args.delta_continuation and args.figure != "fig4":
        print("error: --delta-continuation chains the fig4 δ sweep; "
              f"got figure {args.figure!r}", file=sys.stderr)
        return 2
    if args.delta_continuation and args.no_cache:
        print("error: --delta-continuation needs the artifact cache; "
              "drop --no-cache", file=sys.stderr)
        return 2
    config = _config_from_args(args)
    if args.figure == "report":
        from repro.experiments.report import generate_report
        directory = args.out if args.out is not None else pathlib.Path("results")
        print(generate_report(directory, label=config.label,
                              ascii_charts=args.ascii))
        return 0
    progress = None if args.quiet else (lambda line: print("  " + line,
                                                           file=sys.stderr))
    tracer = None
    if args.trace is not None:
        from repro.obs.tracer import Tracer
        tracer = Tracer()
    figures = list(RUNNERS) if args.figure == "all" else [args.figure]
    for fig in figures:
        print(f"== {fig} ({config.label} scale, |V|={config.n_nodes}, "
              f"{config.n_instances} instances, jobs={args.jobs}) ==",
              file=sys.stderr)
        reduction = (None if args.site_reduction == "off"
                     else args.site_reduction)
        extra = {}
        if args.delta_continuation and fig == "fig4":
            extra = {"delta_continuation": True, "engine": args.engine}
        elif fig == "fig3" and args.engine != "scalar":
            extra = {"engine": args.engine}
        with activated(tracer):
            result = RUNNERS[fig](config, progress=progress,
                                  jobs=args.jobs, cache=not args.no_cache,
                                  batch_columns=args.batch_columns,
                                  site_reduction=reduction, **extra)
        print(rows_to_markdown(result, title=f"{fig} — {config.label} scale"))
        if args.ascii:
            print(render_sweep(result, panel="volume"))
            print()
            print(render_sweep(result, panel="time"))
            print()
        if args.claims:
            print(claims_to_markdown(CLAIM_CHECKERS[fig](result)))
            print()
        if args.svg is not None:
            from repro.experiments.svg_plot import render_sweep_svg
            args.svg.mkdir(parents=True, exist_ok=True)
            for panel, suffix in (("volume", "a"), ("time", "b")):
                path = args.svg / f"{fig}{suffix}_{config.label}.svg"
                path.write_text(render_sweep_svg(
                    result, panel=panel,
                    title=f"{fig}({suffix}) — {config.label} scale"))
                print(f"wrote {path}", file=sys.stderr)
        if args.out is not None:
            args.out.mkdir(parents=True, exist_ok=True)
            path = args.out / f"{fig}_{config.label}.csv"
            path.write_text(rows_to_csv(result))
            print(f"wrote {path}", file=sys.stderr)
    if tracer is not None:
        from repro.obs.export import write_jsonl
        write_jsonl(tracer.records(), args.trace)
        print(f"wrote {args.trace} ({len(tracer.records())} spans)",
              file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())


__all__ = ["main", "RUNNERS", "CLAIM_CHECKERS"]
