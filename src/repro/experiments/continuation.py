"""δ-continuation: chain a δ sweep's cells coarse→fine with warm starts.

A δ sweep (Fig. 4) re-plans the *same* instance on ever finer hovering
grids, and each finer grid's solution tends to trace the same physical
corridor as the coarser one.  ``run_sweep(..., delta_continuation=True)``
exploits that: each Algorithm 1 spec's cells are planned per instance in
**descending δ order** (coarse first), and every finer cell receives two
warm payloads derived from the coarser cell's finished tour:

* ``corridor_seed`` — the coarse tour's hover points, consumed by the
  :class:`~repro.experiments.artifacts.ArtifactCache` to warm-start an
  ``aggressive`` reduction's TSP-corridor stage (the corridor follows
  where the coarse tour actually went instead of a set-cover guess);
* ``warm_nodes`` — the finer grid's nearest candidate site to each
  coarse stop (:func:`project_warm_nodes`), from which
  :func:`~repro.core.algorithm1.plan_algorithm1` grows a feasible warm
  tour and polishes it *after* the GRASP restarts, keeping it only on
  strict improvement.

With the reduction off or ``safe`` the candidate geometry is untouched,
so a continuation cell's volume can never drop below its cold-start
value — the warm tour competes through the same strict-improvement
acceptance as every restart.  This module holds the pure helpers; the
chain executors live next to their per-cell siblings in
:mod:`repro.experiments.runner` and :mod:`repro.experiments.parallel`.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.core.hovering import HoveringSites
from repro.experiments.config import ExperimentConfig
from repro.geometry.distance import cross_distances

#: The planner method δ-continuation knows how to chain.
CHAINABLE_METHODS = ("algorithm1",)


def continuation_order(param_values: Sequence[float]) -> List[int]:
    """Cell indices in planning order: coarse (largest δ) first.

    Stable for duplicate values (earlier cell first), so the chain — and
    every warm payload handed down it — is deterministic.
    """
    return sorted(range(len(param_values)),
                  key=lambda i: (-float(param_values[i]), i))


def chainable_spec(config: ExperimentConfig, spec: Any,
                   param_values: Sequence[float],
                   make_kwargs: Callable[[ExperimentConfig, float, Any],
                                         Dict[str, Any]]) -> bool:
    """True when *spec*'s cells form one δ-continuation chain.

    Chainable means: the method is Algorithm 1 (the only planner with a
    warm-start entry point), every cell's kwargs are JSON data (the
    parallel chain units ship them to workers), each cell's ``delta``
    *is* the swept value (this is a δ sweep), and the caller did not
    already pass warm payloads of their own.
    """
    if spec.method not in CHAINABLE_METHODS or not len(param_values):
        return False
    for value in param_values:
        try:
            kwargs = make_kwargs(config, value, spec)
            json.dumps(kwargs)
        except TypeError:
            return False
        if kwargs.get("delta") != value:
            return False
        if "warm_nodes" in kwargs or "corridor_seed" in kwargs:
            return False
    return True


def project_warm_nodes(coarse_points: Sequence[Sequence[float]],
                       sites: HoveringSites) -> Optional[List[int]]:
    """The finer grid's node ids nearest to each coarse tour stop.

    *coarse_points* are the coarser cell's non-depot hover points in
    visit order; each maps to its nearest candidate in *sites* (the
    finer — possibly reduced — grid), ``+1`` for the depot node, with
    order-preserving dedup.  Feasibility is **not** checked here: the
    planner grows the actual warm tour through the conflict- and
    budget-aware greedy fill
    (:func:`repro.orienteering.grasp.warm_tour_from_nodes`).
    """
    pts = np.asarray(coarse_points, dtype=float)
    if pts.size == 0 or sites.n_sites == 0:
        return None
    nearest = np.argmin(cross_distances(pts, sites.points), axis=1)
    nodes: List[int] = []
    seen = set()
    for s in nearest:
        node = int(s) + 1
        if node not in seen:
            seen.add(node)
            nodes.append(node)
    return nodes


def tour_seed_points(tour: Any) -> List[List[float]]:
    """A finished cell's warm payload: its non-depot hover points.

    Plain nested lists so the payload is JSON data — it crosses the
    parallel worker boundary inside chain units and joins the artifact
    cache key byte-for-byte identically in every process.
    """
    points = np.asarray(tour.points, dtype=float)
    return [[float(x), float(y)] for x, y in points[1:]]


__all__ = ["CHAINABLE_METHODS", "chainable_spec", "continuation_order",
           "project_warm_nodes", "tour_seed_points"]
