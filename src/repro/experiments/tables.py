"""Rendering of sweep results as CSV and markdown tables.

The markdown renderer produces the two side-by-side series the paper's
figures plot — collected volume (GB) and running time (s) — one row per
swept parameter value, one column per algorithm.
"""

from __future__ import annotations

import csv
import io
from typing import List

from repro.experiments.runner import SweepResult


def rows_to_csv(result: SweepResult) -> str:
    """Serialise every sweep row to CSV (one line per algorithm x value)."""
    buf = io.StringIO()
    fieldnames = ["param_name", "param_value", "algorithm",
                  "mean_volume_gb", "std_volume_gb",
                  "mean_time_s", "std_time_s", "n_instances"]
    writer = csv.DictWriter(buf, fieldnames=fieldnames)
    writer.writeheader()
    for row in result.rows:
        writer.writerow(row.as_dict())
    return buf.getvalue()


def _pivot(result: SweepResult, attr: str) -> List[List[str]]:
    algos = result.algorithms()
    values = sorted({r.param_value for r in result.rows})
    header = [result.rows[0].param_name if result.rows else "param"] + algos
    body: List[List[str]] = []
    lookup = {(r.param_value, r.algorithm): r for r in result.rows}
    for v in values:
        line = [f"{v:g}"]
        for a in algos:
            r = lookup.get((v, a))
            line.append(f"{getattr(r, attr):.3f}" if r is not None else "-")
        body.append(line)
    return [header] + body


def _markdown_table(grid: List[List[str]]) -> str:
    header, *body = grid
    lines = ["| " + " | ".join(header) + " |",
             "|" + "|".join("---" for _ in header) + "|"]
    lines += ["| " + " | ".join(row) + " |" for row in body]
    return "\n".join(lines)


def rows_to_markdown(result: SweepResult, *, title: str = "") -> str:
    """Render the (a) volume and (b) time panels as markdown tables."""
    parts = []
    if title:
        parts.append(f"### {title}")
    parts.append("**(a) Collected data volume (GB)**\n")
    parts.append(_markdown_table(_pivot(result, "mean_volume_gb")))
    parts.append("\n**(b) Planning time (s)**\n")
    parts.append(_markdown_table(_pivot(result, "mean_time_s")))
    return "\n".join(parts) + "\n"


__all__ = ["rows_to_csv", "rows_to_markdown"]
