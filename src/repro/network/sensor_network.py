"""The :class:`SensorNetwork` container.

Unit conventions used throughout the library (matching the paper's
evaluation settings):

* distance — metres
* data volume — megabytes (MB)
* bandwidth — MB/s
* time — seconds
* energy — joules

A :class:`SensorNetwork` is the immutable problem input shared by all
planners: aggregate-node positions and stored volumes ``D_v``, the depot,
and the region the δ-grid partitions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.geometry.region import Region
from repro.network.device import AggregateNode, IoTDevice
from repro.utils.errors import InvalidParameterError
from repro.utils.validation import check_points_array


@dataclass
class SensorNetwork:
    """An aggregate sensor network ``G = (V ∪ {d}, E)`` (paper §III-A).

    Attributes
    ----------
    positions:
        ``(n, 2)`` ground coordinates of the aggregate nodes ``V``.
    volumes:
        Length-``n`` stored data volumes ``D_v`` in MB (>= 0).
    depot:
        Length-2 depot coordinates ``d`` (UAV start/end, recharge point).
    region:
        The monitoring rectangle (defaults to the bounding region implied
        by the positions when not given).
    devices:
        Optional list of the underlying non-aggregate :class:`IoTDevice`
        objects whose forwarded data produced ``volumes`` — kept for
        provenance/analysis; the planners never read it.
    name:
        Optional human-readable instance label.
    """

    positions: np.ndarray
    volumes: np.ndarray
    depot: np.ndarray
    region: Optional[Region] = None
    devices: Optional[List[IoTDevice]] = None
    name: str = ""

    def __post_init__(self) -> None:
        self.positions = check_points_array(self.positions, "positions")
        self.volumes = np.asarray(self.volumes, dtype=float)
        if self.volumes.ndim != 1 or len(self.volumes) != len(self.positions):
            raise InvalidParameterError(
                f"volumes must be a 1-D array of length {len(self.positions)}, "
                f"got shape {self.volumes.shape}")
        if not np.isfinite(self.volumes).all() or (self.volumes < 0).any():
            raise InvalidParameterError("volumes must be finite and >= 0")
        self.depot = np.asarray(self.depot, dtype=float).reshape(2)
        if not np.isfinite(self.depot).all():
            raise InvalidParameterError("depot coordinates must be finite")
        if self.region is None:
            self.region = self._implied_region()

    def _implied_region(self) -> Region:
        """Smallest padded rectangle containing all nodes and the depot."""
        pts = np.vstack([self.positions, self.depot[None, :]]) if len(self.positions) \
            else self.depot[None, :]
        pad = 1.0
        return Region(float(pts[:, 0].min() - pad), float(pts[:, 0].max() + pad),
                      float(pts[:, 1].min() - pad), float(pts[:, 1].max() + pad))

    @property
    def n_nodes(self) -> int:
        """Number of aggregate nodes ``|V|``."""
        return len(self.positions)

    @property
    def total_volume(self) -> float:
        """Total stored data ``sum_v D_v`` in MB — upper bound on any tour."""
        return float(self.volumes.sum())

    def node(self, idx: int) -> AggregateNode:
        """Materialise node *idx* as an :class:`AggregateNode` view."""
        if not (0 <= idx < self.n_nodes):
            raise InvalidParameterError(
                f"node index {idx} out of range [0, {self.n_nodes})")
        return AggregateNode(node_id=idx, x=float(self.positions[idx, 0]),
                             y=float(self.positions[idx, 1]),
                             own_volume=float(self.volumes[idx]))

    def subset(self, indices: Sequence[int]) -> "SensorNetwork":
        """A new network restricted to the given node *indices*.

        Useful for ablations ("what if only the densest cluster existed?").
        """
        idx = np.asarray(indices, dtype=int)
        if len(idx) and ((idx < 0).any() or (idx >= self.n_nodes).any()):
            raise InvalidParameterError("subset indices out of range")
        return SensorNetwork(positions=self.positions[idx].copy(),
                             volumes=self.volumes[idx].copy(),
                             depot=self.depot.copy(),
                             region=self.region,
                             name=f"{self.name}/subset" if self.name else "subset")

    def with_volumes(self, volumes) -> "SensorNetwork":
        """A copy of this network with replaced data volumes."""
        return SensorNetwork(positions=self.positions.copy(),
                             volumes=np.asarray(volumes, dtype=float).copy(),
                             depot=self.depot.copy(),
                             region=self.region,
                             devices=self.devices,
                             name=self.name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f" {self.name!r}" if self.name else ""
        return (f"SensorNetwork({label} n={self.n_nodes}, "
                f"total={self.total_volume:.1f} MB, depot={tuple(self.depot)})")


__all__ = ["SensorNetwork"]
