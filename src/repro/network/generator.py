"""Seeded deployment generators.

The paper's default instance is 500 aggregate nodes uniformly deployed in a
1000 m x 1000 m square with ``D_v ~ U[100, 1000] MB``
(:func:`paper_default_network`).  For the example applications and for
robustness testing we also provide clustered (smart-city districts) and
regular-grid (metering) deployments, all driven by the shared
:class:`NetworkGenerator` so every instance is reproducible from a seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.geometry.region import Region
from repro.network.sensor_network import SensorNetwork
from repro.utils.errors import InvalidParameterError
from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import check_integer, check_non_negative, check_positive

#: Paper §VII-A default data-volume bounds, in MB.
PAPER_VOLUME_RANGE: Tuple[float, float] = (100.0, 1000.0)


def _uniform_volumes(rng: np.random.Generator, n: int,
                     low: float, high: float) -> np.ndarray:
    if high < low:
        raise InvalidParameterError(
            f"volume range is inverted: [{low}, {high}]")
    return rng.uniform(low, high, size=n)


@dataclass
class NetworkGenerator:
    """Factory for reproducible random :class:`SensorNetwork` instances.

    Attributes
    ----------
    region:
        Deployment rectangle.
    volume_range:
        ``(low, high)`` bounds of the uniform ``D_v`` distribution, MB.
    depot:
        Depot coordinates; defaults to the region centre (the natural
        choice for a closed tour and what makes small-budget tours viable).
    """

    region: Region
    volume_range: Tuple[float, float] = PAPER_VOLUME_RANGE
    depot: Optional[Tuple[float, float]] = None

    def _depot(self) -> np.ndarray:
        if self.depot is None:
            return self.region.center
        return np.asarray(self.depot, dtype=float).reshape(2)

    def uniform(self, n: int, seed: SeedLike = None, name: str = "") -> SensorNetwork:
        """*n* nodes i.i.d. uniform over the region (paper default)."""
        n = check_integer(n, "n", minimum=0)
        rng = as_rng(seed)
        pos = self.region.sample_uniform(n, rng)
        vol = _uniform_volumes(rng, n, *self.volume_range)
        return SensorNetwork(positions=pos, volumes=vol, depot=self._depot(),
                             region=self.region, name=name or f"uniform-{n}")

    def clustered(self, n: int, n_clusters: int = 5, spread: float = 60.0,
                  seed: SeedLike = None, name: str = "") -> SensorNetwork:
        """*n* nodes in Gaussian clusters (smart-city district scenario).

        Cluster centres are uniform over the region; nodes are normal with
        standard deviation *spread* around their centre, clipped to the
        region.  Nodes are dealt to clusters round-robin so cluster sizes
        differ by at most one.
        """
        n = check_integer(n, "n", minimum=0)
        n_clusters = check_integer(n_clusters, "n_clusters", minimum=1)
        check_positive(spread, "spread")
        rng = as_rng(seed)
        centers = self.region.sample_uniform(n_clusters, rng)
        assignment = np.arange(n) % n_clusters
        offsets = rng.normal(0.0, spread, size=(n, 2))
        pos = self.region.clip(centers[assignment] + offsets)
        vol = _uniform_volumes(rng, n, *self.volume_range)
        return SensorNetwork(positions=pos, volumes=vol, depot=self._depot(),
                             region=self.region,
                             name=name or f"clustered-{n}x{n_clusters}")

    def grid(self, rows: int, cols: int, jitter: float = 0.0,
             seed: SeedLike = None, name: str = "") -> SensorNetwork:
        """``rows x cols`` nodes on a regular lattice with optional jitter.

        Models a planned deployment such as utility meters along streets.
        *jitter* is the standard deviation (metres) of an optional Gaussian
        perturbation; positions are clipped to the region.
        """
        rows = check_integer(rows, "rows", minimum=1)
        cols = check_integer(cols, "cols", minimum=1)
        check_non_negative(jitter, "jitter")
        rng = as_rng(seed)
        # Lattice points at cell centres so no node sits on the boundary.
        xs = self.region.xmin + (np.arange(cols) + 0.5) * self.region.width / cols
        ys = self.region.ymin + (np.arange(rows) + 0.5) * self.region.height / rows
        gx, gy = np.meshgrid(xs, ys)
        pos = np.column_stack([gx.ravel(), gy.ravel()])
        if jitter > 0:
            pos = self.region.clip(pos + rng.normal(0.0, jitter, size=pos.shape))
        vol = _uniform_volumes(rng, rows * cols, *self.volume_range)
        return SensorNetwork(positions=pos, volumes=vol, depot=self._depot(),
                             region=self.region, name=name or f"grid-{rows}x{cols}")


def paper_default_network(n: int = 500, side: float = 1000.0,
                          seed: SeedLike = None) -> SensorNetwork:
    """The paper's §VII-A instance: *n* uniform nodes in a *side*² square.

    ``D_v ~ U[100, 1000] MB``; depot at the region centre.
    """
    gen = NetworkGenerator(Region.square(side))
    return gen.uniform(n, seed=seed, name=f"paper-default-{n}")


def uniform_network(n: int, region: Optional[Region] = None,
                    seed: SeedLike = None, **kwargs) -> SensorNetwork:
    """Convenience wrapper: uniform deployment over *region* (default paper square)."""
    gen = NetworkGenerator(region or Region.square(1000.0), **kwargs)
    return gen.uniform(n, seed=seed)


def clustered_network(n: int, n_clusters: int = 5, region: Optional[Region] = None,
                      spread: float = 60.0, seed: SeedLike = None,
                      **kwargs) -> SensorNetwork:
    """Convenience wrapper: clustered deployment (see :meth:`NetworkGenerator.clustered`)."""
    gen = NetworkGenerator(region or Region.square(1000.0), **kwargs)
    return gen.clustered(n, n_clusters=n_clusters, spread=spread, seed=seed)


def grid_network(rows: int, cols: int, region: Optional[Region] = None,
                 jitter: float = 0.0, seed: SeedLike = None,
                 **kwargs) -> SensorNetwork:
    """Convenience wrapper: lattice deployment (see :meth:`NetworkGenerator.grid`)."""
    gen = NetworkGenerator(region or Region.square(1000.0), **kwargs)
    return gen.grid(rows, cols, jitter=jitter, seed=seed)


__all__ = [
    "PAPER_VOLUME_RANGE",
    "NetworkGenerator",
    "paper_default_network",
    "uniform_network",
    "clustered_network",
    "grid_network",
]
