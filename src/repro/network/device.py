"""Device-level dataclasses.

Two tiers, per paper §III-A:

* :class:`IoTDevice` — an ordinary sensing device that forwards its data to
  a neighbouring aggregate node (it is never visited by the UAV directly);
* :class:`AggregateNode` — a device chosen to store its own plus its
  neighbours' data; these are the nodes the UAV collects from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.utils.validation import check_finite, check_non_negative


@dataclass
class IoTDevice:
    """An ordinary (non-aggregate) IoT sensing device.

    Attributes
    ----------
    device_id:
        Unique id within its network.
    x, y:
        Ground coordinates in metres.
    data_volume:
        Bytes of sensory data generated over the monitoring period
        (forwarded to :attr:`assigned_aggregate` before the UAV flies).
    assigned_aggregate:
        Id of the aggregate node storing this device's data, or ``None``
        if no aggregate node is within transmission range (the data is
        then unreachable — see :func:`repro.network.forwarding.assign_forwarding`).
    """

    device_id: int
    x: float
    y: float
    data_volume: float = 0.0
    assigned_aggregate: Optional[int] = None

    def __post_init__(self) -> None:
        check_finite(self.x, "x")
        check_finite(self.y, "y")
        check_non_negative(self.data_volume, "data_volume")

    @property
    def position(self) -> np.ndarray:
        """Ground position as a length-2 array."""
        return np.array([self.x, self.y])


@dataclass
class AggregateNode:
    """An aggregate sensor node — a UAV collection target.

    Attributes
    ----------
    node_id:
        Unique id within its network (also its index in
        :attr:`repro.network.SensorNetwork.positions`).
    x, y:
        Ground coordinates in metres.
    own_volume:
        Bytes of the node's own sensory data.
    forwarded_volume:
        Bytes forwarded from neighbouring non-aggregate devices.
    """

    node_id: int
    x: float
    y: float
    own_volume: float = 0.0
    forwarded_volume: float = 0.0

    def __post_init__(self) -> None:
        check_finite(self.x, "x")
        check_finite(self.y, "y")
        check_non_negative(self.own_volume, "own_volume")
        check_non_negative(self.forwarded_volume, "forwarded_volume")

    @property
    def position(self) -> np.ndarray:
        """Ground position as a length-2 array."""
        return np.array([self.x, self.y])

    @property
    def data_volume(self) -> float:
        """Total stored volume ``D_v`` = own + forwarded (bytes)."""
        return self.own_volume + self.forwarded_volume


__all__ = ["IoTDevice", "AggregateNode"]
