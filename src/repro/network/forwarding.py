"""Two-tier forwarding: non-aggregate devices → aggregate nodes.

Paper §III-A: an IoT device that is not an aggregate node forwards its
sensory data to one neighbouring aggregate node (any one, if several are in
range).  This module implements that assignment and the resulting
aggregate-node volumes ``D_v`` = own data + forwarded data.

The planners only ever see the aggregated volumes, but modelling the tier
explicitly lets the examples build realistic instances (e.g. hundreds of
meters feeding a few dozen collectors) and lets tests assert conservation:
no data is created or destroyed by forwarding.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np
from scipy.spatial import cKDTree

from repro.network.device import IoTDevice
from repro.network.sensor_network import SensorNetwork
from repro.utils.errors import InvalidParameterError
from repro.utils.validation import check_points_array, check_positive


def assign_forwarding(device_positions, aggregate_positions,
                      comm_range: float, *,
                      policy: str = "nearest") -> np.ndarray:
    """Assign each device to an aggregate node within *comm_range*.

    Parameters
    ----------
    device_positions:
        ``(m, 2)`` coordinates of non-aggregate devices.
    aggregate_positions:
        ``(n, 2)`` coordinates of aggregate nodes.
    comm_range:
        Device transmission range in metres.
    policy:
        ``"nearest"`` — each device picks its nearest in-range aggregate
        node (minimises device transmit energy, the sensible default);
        ``"first"`` — picks the lowest-indexed in-range node (models the
        paper's "choose one of them" arbitrarily).

    Returns
    -------
    numpy.ndarray
        Length-``m`` integer array: assigned aggregate index, or ``-1``
        when no aggregate node is in range (that device's data is
        unreachable and will not appear in any ``D_v``).
    """
    devices = check_points_array(device_positions, "device_positions")
    aggregates = check_points_array(aggregate_positions, "aggregate_positions")
    check_positive(comm_range, "comm_range")
    if policy not in ("nearest", "first"):
        raise InvalidParameterError(f"unknown forwarding policy: {policy!r}")
    m = len(devices)
    out = np.full(m, -1, dtype=int)
    if m == 0 or len(aggregates) == 0:
        return out
    tree = cKDTree(aggregates)
    if policy == "nearest":
        dist, idx = tree.query(devices, k=1)
        in_range = dist <= comm_range
        out[in_range] = idx[in_range]
    else:  # "first"
        hits = tree.query_ball_point(devices, r=comm_range)
        for i, h in enumerate(hits):
            if h:
                out[i] = min(h)
    return out


def aggregate_volumes(own_volumes, device_volumes, assignment,
                      n_aggregates: Optional[int] = None) -> np.ndarray:
    """Total stored volume per aggregate node after forwarding.

    ``D_v = own_volumes[v] + sum of device_volumes forwarded to v``.
    Devices with assignment ``-1`` contribute nothing.

    Parameters
    ----------
    own_volumes:
        Length-``n`` own data of each aggregate node (MB).
    device_volumes:
        Length-``m`` data of each non-aggregate device (MB).
    assignment:
        Length-``m`` output of :func:`assign_forwarding`.
    n_aggregates:
        Override for ``n`` (defaults to ``len(own_volumes)``).
    """
    own = np.asarray(own_volumes, dtype=float)
    dev = np.asarray(device_volumes, dtype=float)
    assign = np.asarray(assignment, dtype=int)
    if dev.shape != assign.shape:
        raise InvalidParameterError(
            f"device_volumes and assignment must have equal length, "
            f"got {dev.shape} vs {assign.shape}")
    n = int(n_aggregates) if n_aggregates is not None else len(own)
    if len(own) != n:
        raise InvalidParameterError(
            f"own_volumes has length {len(own)}, expected {n}")
    if len(assign) and assign.max(initial=-1) >= n:
        raise InvalidParameterError("assignment refers to a nonexistent aggregate")
    total = own.copy()
    reachable = assign >= 0
    if reachable.any():
        np.add.at(total, assign[reachable], dev[reachable])
    return total


def build_two_tier_network(aggregate_positions, own_volumes,
                           device_positions, device_volumes,
                           comm_range: float, depot,
                           *, region=None, policy: str = "nearest",
                           name: str = "") -> Tuple[SensorNetwork, List[IoTDevice]]:
    """Construct a :class:`SensorNetwork` from an explicit two-tier deployment.

    Returns the network (whose ``volumes`` include forwarded data) and the
    list of :class:`IoTDevice` records with their assignments, so callers
    can inspect which devices were unreachable.
    """
    assignment = assign_forwarding(device_positions, aggregate_positions,
                                   comm_range, policy=policy)
    volumes = aggregate_volumes(own_volumes, device_volumes, assignment,
                                n_aggregates=len(aggregate_positions))
    devices = [
        IoTDevice(device_id=i,
                  x=float(device_positions[i][0]), y=float(device_positions[i][1]),
                  data_volume=float(device_volumes[i]),
                  assigned_aggregate=int(a) if a >= 0 else None)
        for i, a in enumerate(assignment)
    ]
    net = SensorNetwork(positions=np.asarray(aggregate_positions, dtype=float),
                        volumes=volumes, depot=np.asarray(depot, dtype=float),
                        region=region, devices=devices, name=name or "two-tier")
    return net, devices


__all__ = ["assign_forwarding", "aggregate_volumes", "build_two_tier_network"]
