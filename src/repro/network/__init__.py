"""IoT sensor-network substrate.

The paper's ground truth is a sparse network of *aggregate sensor nodes*:
ordinary IoT devices forward their readings to a neighbouring aggregate
node, and only aggregate nodes hold data for the UAV to collect
(paper §III-A).  This subpackage models both tiers:

* :mod:`repro.network.device` — device dataclasses,
* :mod:`repro.network.sensor_network` — the :class:`SensorNetwork`
  container with the aggregate-node data volumes the planners consume,
* :mod:`repro.network.generator` — seeded deployment generators (uniform,
  clustered, grid) and data-volume distributions, including the paper's
  default setting (500 nodes, 1000x1000 m, D_v ~ U[100, 1000] MB),
* :mod:`repro.network.forwarding` — assignment of non-aggregate devices to
  aggregate neighbours, which *produces* the D_v volumes from raw device
  readings,
* :mod:`repro.network.serialization` — JSON round-tripping for
  reproducible experiment instances.
"""

from repro.network.device import AggregateNode, IoTDevice
from repro.network.sensor_network import SensorNetwork
from repro.network.generator import (
    NetworkGenerator,
    paper_default_network,
    uniform_network,
    clustered_network,
    grid_network,
)
from repro.network.forwarding import assign_forwarding, aggregate_volumes
from repro.network.serialization import network_to_dict, network_from_dict

__all__ = [
    "AggregateNode",
    "IoTDevice",
    "SensorNetwork",
    "NetworkGenerator",
    "paper_default_network",
    "uniform_network",
    "clustered_network",
    "grid_network",
    "assign_forwarding",
    "aggregate_volumes",
    "network_to_dict",
    "network_from_dict",
]
