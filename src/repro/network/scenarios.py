"""Named canonical scenarios.

The paper evaluates on uniform deployments only; real adopters care how
the planners behave on structured geographies.  Each scenario here is a
seeded, documented instance family used by the examples, the robustness
benches, and the ablation studies:

* ``sparse_rural``      — few, far-apart, high-volume nodes (travel-bound),
* ``dense_urban``       — many overlapping nodes (hover-bound, coverage
  overlap is the whole game),
* ``corridor``          — nodes along a road/pipeline; tours degenerate to
  out-and-back sweeps,
* ``hotspot``           — one dense cluster plus scattered outliers; the
  classic ratio-greedy trap,
* ``ring``              — nodes on an annulus around the depot; TSP
  structure is trivial, the hover/travel split is not.

All scenarios use the paper's volume distribution unless noted, and a
depot at the region centre.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from repro.geometry.region import Region
from repro.network.generator import NetworkGenerator
from repro.network.sensor_network import SensorNetwork
from repro.utils.errors import InvalidParameterError
from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import check_integer


def sparse_rural(n: int = 40, seed: SeedLike = None) -> SensorNetwork:
    """Few, far-apart, high-volume nodes in a 2 km square (travel-bound)."""
    gen = NetworkGenerator(Region.square(2000.0),
                           volume_range=(500.0, 2000.0))
    net = gen.uniform(n, seed=seed, name=f"sparse-rural-{n}")
    return net


def dense_urban(n: int = 200, seed: SeedLike = None) -> SensorNetwork:
    """Dense 600 m square; heavy coverage overlap (hover-bound)."""
    gen = NetworkGenerator(Region.square(600.0),
                           volume_range=(100.0, 1000.0))
    return gen.uniform(n, seed=seed, name=f"dense-urban-{n}")


def corridor(n: int = 60, length: float = 3000.0, width: float = 120.0,
             seed: SeedLike = None) -> SensorNetwork:
    """Nodes along a road/pipeline corridor; depot at one end.

    The region is a thin strip; the depot sits at the west end, so every
    tour is an out-and-back sweep and the budget translates directly into
    a reachable prefix of the corridor.
    """
    check_integer(n, "n", minimum=0)
    rng = as_rng(seed)
    region = Region(0.0, length, 0.0, width)
    xs = rng.uniform(0.0, length, n)
    ys = rng.uniform(0.0, width, n)
    volumes = rng.uniform(100.0, 1000.0, n)
    return SensorNetwork(positions=np.column_stack([xs, ys]),
                         volumes=volumes,
                         depot=np.array([0.0, width / 2.0]),
                         region=region, name=f"corridor-{n}")


def hotspot(n: int = 80, hotspot_fraction: float = 0.6,
            seed: SeedLike = None) -> SensorNetwork:
    """One dense high-value cluster plus scattered outliers.

    The ratio-greedy trap: the hotspot's first hovering location has an
    enormous award, but committing the whole budget there strands the
    outliers.  ``hotspot_fraction`` of the nodes are in the cluster.
    """
    check_integer(n, "n", minimum=0)
    if not (0.0 <= hotspot_fraction <= 1.0):
        raise InvalidParameterError(
            f"hotspot_fraction must be in [0, 1], got {hotspot_fraction}")
    rng = as_rng(seed)
    region = Region.square(1000.0)
    n_hot = int(round(n * hotspot_fraction))
    hot = rng.normal([250.0, 250.0], 40.0, size=(n_hot, 2))
    rest = region.sample_uniform(n - n_hot, rng)
    pos = region.clip(np.vstack([hot, rest])) if n else np.empty((0, 2))
    volumes = rng.uniform(100.0, 1000.0, n)
    return SensorNetwork(positions=pos, volumes=volumes,
                         depot=region.center, region=region,
                         name=f"hotspot-{n}")


def ring(n: int = 50, radius: float = 400.0, jitter: float = 25.0,
         seed: SeedLike = None) -> SensorNetwork:
    """Nodes on an annulus around the depot.

    Every node is equidistant from the depot, so pure distance heuristics
    are blind here; what matters is committing to an arc and the
    hover/travel split along it.
    """
    check_integer(n, "n", minimum=0)
    rng = as_rng(seed)
    region = Region.square(1000.0)
    angles = rng.uniform(0, 2 * np.pi, n)
    radii = radius + rng.normal(0, jitter, n)
    pos = region.clip(np.column_stack([
        500.0 + radii * np.cos(angles),
        500.0 + radii * np.sin(angles)]))
    volumes = rng.uniform(100.0, 1000.0, n)
    return SensorNetwork(positions=pos, volumes=volumes,
                         depot=region.center, region=region,
                         name=f"ring-{n}")


#: Registry for CLIs and sweep drivers.
SCENARIOS: Dict[str, Callable[..., SensorNetwork]] = {
    "sparse_rural": sparse_rural,
    "dense_urban": dense_urban,
    "corridor": corridor,
    "hotspot": hotspot,
    "ring": ring,
}


def make_scenario(name: str, seed: SeedLike = None, **kwargs) -> SensorNetwork:
    """Instantiate a named scenario (see :data:`SCENARIOS`)."""
    if name not in SCENARIOS:
        raise InvalidParameterError(
            f"unknown scenario {name!r}; expected one of {sorted(SCENARIOS)}")
    return SCENARIOS[name](seed=seed, **kwargs)


__all__ = ["SCENARIOS", "make_scenario", "sparse_rural", "dense_urban",
           "corridor", "hotspot", "ring"]
