"""JSON (de)serialisation of :class:`~repro.network.SensorNetwork`.

Experiment instances are fully determined by their seed, but persisting the
materialised instance makes runs auditable and lets third parties rerun the
planners on byte-identical inputs.  The schema is a flat JSON object with a
``schema`` version tag for forward compatibility.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Sequence

import numpy as np

from repro.geometry.region import Region
from repro.network.sensor_network import SensorNetwork
from repro.utils.errors import InvalidParameterError

SCHEMA_VERSION = 1


def network_to_dict(network: SensorNetwork) -> Dict[str, Any]:
    """Serialise *network* to a JSON-compatible dict (devices omitted)."""
    region = network.region
    assert region is not None  # __post_init__ guarantees it
    return {
        "schema": SCHEMA_VERSION,
        "name": network.name,
        "positions": network.positions.tolist(),
        "volumes": network.volumes.tolist(),
        "depot": network.depot.tolist(),
        "region": [region.xmin, region.xmax, region.ymin, region.ymax],
    }


def network_from_dict(data: Dict[str, Any]) -> SensorNetwork:
    """Inverse of :func:`network_to_dict`.

    Raises
    ------
    InvalidParameterError
        On a missing/unknown schema tag or malformed payload.
    """
    if not isinstance(data, dict):
        raise InvalidParameterError("network payload must be a dict")
    schema = data.get("schema")
    if schema != SCHEMA_VERSION:
        raise InvalidParameterError(
            f"unsupported network schema {schema!r} (expected {SCHEMA_VERSION})")
    try:
        region_bounds = data["region"]
        region = Region(*[float(b) for b in region_bounds])
        return SensorNetwork(
            positions=np.asarray(data["positions"], dtype=float),
            volumes=np.asarray(data["volumes"], dtype=float),
            depot=np.asarray(data["depot"], dtype=float),
            region=region,
            name=str(data.get("name", "")),
        )
    except (KeyError, TypeError) as exc:
        raise InvalidParameterError(f"malformed network payload: {exc}") from exc


def network_to_json(network: SensorNetwork, *, indent: int | None = None) -> str:
    """Serialise *network* to a JSON string.

    The JSON round-trip is *exact*: ``json.dumps`` emits ``repr``-style
    shortest floats and ``json.loads`` parses them back to the identical
    IEEE-754 doubles, so ``network_from_json(network_to_json(net))``
    reproduces every position/volume bitwise.  The parallel sweep
    executor relies on this to keep worker outputs identical to the
    in-process path; ``tests/test_network_serialization.py`` pins it for
    every generator scenario.
    """
    return json.dumps(network_to_dict(network), indent=indent)


def network_from_json(text: str) -> SensorNetwork:
    """Parse a network from a JSON string produced by :func:`network_to_json`."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise InvalidParameterError(f"invalid JSON: {exc}") from exc
    return network_from_dict(payload)


def networks_to_json(networks: Sequence[SensorNetwork]) -> str:
    """Serialise an instance set to one JSON array (worker transport)."""
    return json.dumps([network_to_dict(net) for net in networks])


def networks_from_json(text: str) -> List[SensorNetwork]:
    """Inverse of :func:`networks_to_json`."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise InvalidParameterError(f"invalid JSON: {exc}") from exc
    if not isinstance(payload, list):
        raise InvalidParameterError("instance-set payload must be a list")
    return [network_from_dict(item) for item in payload]


__all__ = [
    "SCHEMA_VERSION",
    "network_to_dict",
    "network_from_dict",
    "network_to_json",
    "network_from_json",
    "networks_to_json",
    "networks_from_json",
]
