"""Orienteering instance and solution dataclasses.

An instance is a complete undirected graph given by a symmetric cost
matrix, per-node awards, a depot index, and a budget.  A feasible solution
is a closed tour (sequence of distinct node indices beginning at the depot)
whose total edge cost is at most the budget; its value is the sum of the
awards of the visited nodes.

Optional *conflict groups* mark sets of nodes of which at most one may be
visited — used by Algorithm 1 to enforce non-overlapping hovering coverage
and by the partial-collection reduction tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.tsp.length import tour_length_matrix, validate_tour
from repro.utils.errors import InvalidParameterError
from repro.utils.validation import check_non_negative


def transpose_copy(matrix: np.ndarray, block: int = 512) -> np.ndarray:
    """C-contiguous transpose copy, tiled to stay cache/TLB-friendly.

    ``matrix.T.copy()`` walks one operand with a full-row stride, which
    on paper-scale cost matrices (hundreds of MB) turns every element
    into a cache+TLB miss; tiling keeps both operands inside a few pages
    per block.  The result is element-for-element identical either way.
    """
    n, m = matrix.shape
    out = np.empty((m, n), dtype=matrix.dtype)
    for i in range(0, n, block):
        for j in range(0, m, block):
            out[j:j + block, i:i + block] = matrix[i:i + block, j:j + block].T
    return out


@dataclass
class OrienteeringInstance:
    """A budget-constrained award-collection tour problem.

    Attributes
    ----------
    costs:
        Symmetric non-negative ``(n, n)`` edge-cost matrix.  For Algorithm 1
        these are the paper's ``w2`` energy weights, so "tour cost" is
        exactly "tour energy".
    awards:
        Length-``n`` non-negative node awards (``p(s_j)``; MB for Alg. 1).
    budget:
        Maximum tour cost (the UAV battery capacity ``E`` for Alg. 1).
    depot:
        Index of the mandatory start/end node.
    conflict_groups:
        Optional list of index arrays; at most one node from each group may
        appear on a tour.
    conflict_neighbor_lists:
        Alternative conflict encoding: one array per node listing the
        nodes it may not share a tour with (must be symmetric).  More
        compact than pairwise groups when conflicts are dense — this is
        what Algorithm 1 passes for overlapping hovering coverage.
        Mutually exclusive with ``conflict_groups``.
    """

    costs: np.ndarray
    awards: np.ndarray
    budget: float
    depot: int = 0
    conflict_groups: Optional[List[np.ndarray]] = None
    conflict_neighbor_lists: Optional[List[np.ndarray]] = None

    def __post_init__(self) -> None:
        self.costs = np.asarray(self.costs, dtype=float)
        n = self.costs.shape[0]
        if self.costs.ndim != 2 or self.costs.shape != (n, n):
            raise InvalidParameterError(
                f"costs must be square, got shape {self.costs.shape}")
        if not np.isfinite(self.costs).all() or (self.costs < 0).any():
            raise InvalidParameterError("costs must be finite and >= 0")
        if not np.allclose(self.costs, self.costs.T, atol=1e-9):
            raise InvalidParameterError("costs must be symmetric")
        self.awards = np.asarray(self.awards, dtype=float)
        if self.awards.shape != (n,):
            raise InvalidParameterError(
                f"awards must have shape ({n},), got {self.awards.shape}")
        if not np.isfinite(self.awards).all() or (self.awards < 0).any():
            raise InvalidParameterError("awards must be finite and >= 0")
        check_non_negative(self.budget, "budget")
        if not (0 <= self.depot < n):
            raise InvalidParameterError(
                f"depot {self.depot} out of range [0, {n})")
        if (self.conflict_groups is not None
                and self.conflict_neighbor_lists is not None):
            raise InvalidParameterError(
                "pass conflict_groups or conflict_neighbor_lists, not both")
        self._neighbors: Optional[List[np.ndarray]] = None
        if self.conflict_groups is not None:
            groups = []
            neighbor_sets: List[set] = [set() for _ in range(n)]
            for g in self.conflict_groups:
                arr = np.unique(np.asarray(g, dtype=int))
                if len(arr) and (arr.min() < 0 or arr.max() >= n):
                    raise InvalidParameterError("conflict group index out of range")
                groups.append(arr)
                members = [int(v) for v in arr]
                for v in members:
                    neighbor_sets[v].update(u for u in members if u != v)
            self.conflict_groups = groups
            self._neighbors = [
                np.fromiter(sorted(s), dtype=int) if s else np.empty(0, dtype=int)
                for s in neighbor_sets]
        elif self.conflict_neighbor_lists is not None:
            if len(self.conflict_neighbor_lists) != n:
                raise InvalidParameterError(
                    f"conflict_neighbor_lists must have {n} entries")
            lists = []
            for v, nb in enumerate(self.conflict_neighbor_lists):
                arr = np.unique(np.asarray(nb, dtype=int))
                if len(arr) and (arr.min() < 0 or arr.max() >= n):
                    raise InvalidParameterError(
                        "conflict neighbor index out of range")
                if v in arr:
                    raise InvalidParameterError(
                        f"node {v} lists itself as a conflict neighbor")
                lists.append(arr)
            # Symmetry check: u in N(v) <=> v in N(u) (set-based, O(edges)).
            directed = {(v, int(u)) for v, nb in enumerate(lists) for u in nb}
            for v, u in directed:
                if (u, v) not in directed:
                    raise InvalidParameterError(
                        f"conflict neighbors not symmetric: {v} lists {u} "
                        "but not vice versa")
            self.conflict_neighbor_lists = lists
            self._neighbors = lists

    @property
    def n_nodes(self) -> int:
        """Number of nodes including the depot."""
        return self.costs.shape[0]

    @property
    def costs_t(self) -> np.ndarray:
        """C-contiguous transpose of ``costs``, built lazily and cached.

        ``costs_t[i, j]`` *is* ``costs[j, i]`` — a pure relabeling, no
        arithmetic — so kernels may replace a strided column gather
        ``costs[:, idx]`` with the contiguous row gather ``costs_t[idx]``
        without changing a single output bit, whether or not the matrix
        is exactly symmetric.
        """
        ct = getattr(self, "_costs_t", None)
        if ct is None:
            ct = transpose_copy(self.costs)
            self._costs_t = ct
        return ct

    def attach_costs_t(self, costs_t: np.ndarray) -> None:
        """Install a precomputed transpose for :attr:`costs_t`.

        Lets builders that already hold a cached transpose of the same
        cost matrix (e.g. the auxiliary graph shared across a capacity
        sweep's cells) share it instead of re-transposing per instance.
        """
        if costs_t.shape != self.costs.shape:
            raise InvalidParameterError(
                f"costs_t shape {costs_t.shape} does not match costs "
                f"shape {self.costs.shape}")
        self._costs_t = costs_t

    @property
    def conflict_lists(self) -> Optional[List[np.ndarray]]:
        """Per-node conflict neighbor arrays, or None when unconstrained.

        The canonical arrays built at construction — shared, not copied;
        callers must treat them as read-only.
        """
        return self._neighbors

    def tour_cost(self, tour) -> float:
        """Total edge cost of the closed *tour*."""
        return tour_length_matrix(np.asarray(tour, dtype=int), self.costs)

    def tour_award(self, tour) -> float:
        """Total award of the visited nodes."""
        arr = np.asarray(tour, dtype=int)
        return float(self.awards[arr].sum()) if len(arr) else 0.0

    def neighbors_of(self, node: int) -> np.ndarray:
        """Nodes that may not share a tour with *node* (empty if none)."""
        if self._neighbors is None:
            return np.empty(0, dtype=int)
        return self._neighbors[int(node)]

    @property
    def has_conflicts(self) -> bool:
        """True when any conflict constraint is configured."""
        return self._neighbors is not None

    def conflicts_ok(self, tour) -> bool:
        """True when no two mutually-conflicting nodes are both on *tour*."""
        if self._neighbors is None:
            return True
        on_tour = set(int(v) for v in np.asarray(tour, dtype=int))
        for v in on_tour:
            nb = self._neighbors[v]
            if len(nb) and any(int(u) in on_tour for u in nb):
                return False
        return True

    def node_conflicts_with(self, node: int, tour) -> bool:
        """True when adding *node* to *tour* would violate a conflict."""
        if self._neighbors is None:
            return False
        nb = self._neighbors[int(node)]
        if not len(nb):
            return False
        on_tour = set(int(v) for v in np.asarray(tour, dtype=int))
        return any(int(u) in on_tour for u in nb)

    def is_feasible(self, tour, *, tol: float = 1e-6) -> bool:
        """Full feasibility check: validity, depot, budget, conflicts."""
        arr = validate_tour(tour, self.n_nodes)
        if len(arr) == 0 or arr[0] != self.depot:
            return False
        if self.tour_cost(arr) > self.budget + tol:
            return False
        return self.conflicts_ok(arr)


@dataclass(frozen=True)
class OrienteeringSolution:
    """A solver's output: the tour, its award, cost, and provenance tag.

    ``stats`` carries optional solver-side work counters (GRASP restart
    accounting, local-search rounds); it never participates in equality
    so two solutions with the same tour/award/cost still compare equal.
    """

    tour: np.ndarray
    award: float
    cost: float
    method: str = ""
    stats: Optional[Dict[str, int]] = field(default=None, compare=False,
                                            repr=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "tour", np.asarray(self.tour, dtype=int))

    @property
    def n_visited(self) -> int:
        """Number of nodes on the tour (depot included)."""
        return len(self.tour)


def make_solution(instance: OrienteeringInstance, tour, method: str,
                  stats: Optional[Dict[str, int]] = None
                  ) -> OrienteeringSolution:
    """Build a solution record with award/cost computed from *instance*."""
    arr = np.asarray(tour, dtype=int)
    return OrienteeringSolution(tour=arr,
                                award=instance.tour_award(arr),
                                cost=instance.tour_cost(arr),
                                method=method, stats=stats)


def trusted_instance(costs: np.ndarray, awards: np.ndarray, budget: float, *,
                     depot: int = 0,
                     conflict_neighbor_lists: Optional[List[np.ndarray]] = None
                     ) -> OrienteeringInstance:
    """Build an instance *without* the O(n²) validation pass.

    :class:`OrienteeringInstance.__post_init__` re-checks symmetry,
    finiteness, and conflict-list consistency on every construction —
    dominant when the inputs are the already-validated outputs of the
    repo's own builders (``build_auxiliary_graph`` costs are symmetric by
    construction; the artifact cache's conflict lists are unique, sorted,
    and symmetric).  This constructor trusts the caller: pass it nothing
    but artifacts produced by those builders.
    """
    inst = object.__new__(OrienteeringInstance)
    inst.costs = np.asarray(costs, dtype=float)
    inst.awards = np.asarray(awards, dtype=float)
    inst.budget = float(budget)
    inst.depot = int(depot)
    inst.conflict_groups = None
    if conflict_neighbor_lists is not None:
        lists = [np.asarray(nb, dtype=int) for nb in conflict_neighbor_lists]
        inst.conflict_neighbor_lists = lists
        inst._neighbors = lists
    else:
        inst.conflict_neighbor_lists = None
        inst._neighbors = None
    return inst


__all__ = ["OrienteeringInstance", "OrienteeringSolution", "make_solution",
           "transpose_copy", "trusted_instance"]
