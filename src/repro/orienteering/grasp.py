"""GRASP metaheuristic for orienteering.

Greedy Randomised Adaptive Search Procedure: *n_restarts* iterations of
(randomised greedy construction → local search), keeping the best feasible
solution found.  The first restart is always the *deterministic* greedy
construction so GRASP provably never returns a worse solution than
:func:`repro.orienteering.greedy.solve_greedy` followed by local search.

This is the library's large-instance orienteering solver and the stand-in
for the Bansal et al. 3-approximation (DESIGN.md substitution S1).
"""

from __future__ import annotations


from repro.orienteering.greedy import randomized_construct, solve_greedy
from repro.orienteering.local_search import improve_solution
from repro.orienteering.problem import OrienteeringInstance, OrienteeringSolution
from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import check_integer


def solve_grasp(instance: OrienteeringInstance, *, n_restarts: int = 8,
                rcl_size: int = 3, seed: SeedLike = None,
                local_search: bool = True) -> OrienteeringSolution:
    """Solve via GRASP.

    Parameters
    ----------
    instance:
        The orienteering instance.
    n_restarts:
        Total construction attempts (>= 1).  Restart 0 is deterministic
        greedy; restarts 1.. are randomised.
    rcl_size:
        Restricted-candidate-list size for the randomised constructions.
    seed:
        RNG seed for reproducibility.
    local_search:
        Apply the add/drop/replace/2-opt polish after each construction.
    """
    n_restarts = check_integer(n_restarts, "n_restarts", minimum=1)
    check_integer(rcl_size, "rcl_size", minimum=1)
    rng = as_rng(seed)

    best: OrienteeringSolution | None = None
    for restart in range(n_restarts):
        if restart == 0:
            tour = solve_greedy(instance).tour
        else:
            tour = randomized_construct(instance, seed=rng, rcl_size=rcl_size)
        if local_search:
            sol = improve_solution(instance, tour)
        else:
            from repro.orienteering.problem import make_solution
            sol = make_solution(instance, tour, "construct")
        if best is None or sol.award > best.award + 1e-12 or (
                abs(sol.award - best.award) <= 1e-12 and sol.cost < best.cost - 1e-9):
            best = sol
    assert best is not None
    return OrienteeringSolution(tour=best.tour, award=best.award,
                                cost=best.cost, method="grasp")


__all__ = ["solve_grasp"]
