"""GRASP metaheuristic for orienteering.

Greedy Randomised Adaptive Search Procedure: *n_restarts* iterations of
(randomised greedy construction → local search), keeping the best feasible
solution found.  The first restart is always the *deterministic* greedy
construction so GRASP provably never returns a worse solution than
:func:`repro.orienteering.greedy.solve_greedy` followed by local search.

Randomness is a pre-drawn **tape** (:func:`~repro.orienteering._vector.
draw_rng_tape`): restart ``r`` replays row ``r - 1``, so restarts are
independent, replayable one at a time, and — via ``tape_nodes`` — drawn
against the *original* node count even when the instance was shrunk by a
site reduction.  Identical constructions are deduplicated (local search
is a pure function of the tour) and restart-level work counters are
returned on ``solution.stats`` for the ``meta["perf"]`` contract.

This is the library's large-instance orienteering solver and the stand-in
for the Bansal et al. 3-approximation (DESIGN.md substitution S1).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

import numpy as np

from repro.obs.metrics import MetricsRegistry
from repro.orienteering._vector import draw_rng_tape, greedy_fill
from repro.orienteering.greedy import randomized_construct, solve_greedy
from repro.orienteering.local_search import improve_solution
from repro.orienteering.problem import (OrienteeringInstance,
                                        OrienteeringSolution, make_solution)
from repro.utils.errors import InvalidParameterError
from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import check_integer

#: The ``grasp.*`` work counters every solve reports (``solution.stats``).
GRASP_STAT_NAMES = ("restarts", "constructions", "constructions_deduped",
                    "ls_rounds", "ls_moves", "warm_starts", "warm_improved")


def better_solution(sol: OrienteeringSolution,
                    best: Optional[OrienteeringSolution]) -> bool:
    """GRASP's acceptance order: award first, cost as strict tie-break."""
    return best is None or sol.award > best.award + 1e-12 or (
        abs(sol.award - best.award) <= 1e-12 and sol.cost < best.cost - 1e-9)


def polish_constructions(instance: OrienteeringInstance,
                         constructions: Iterable[np.ndarray], *,
                         local_search: bool = True,
                         warm_tour: Optional[np.ndarray] = None
                         ) -> OrienteeringSolution:
    """Dedup, polish, and select over an ordered construction stream.

    The shared back half of the scalar and stacked GRASP engines:
    identical constructions run local search once (it is a pure function
    of the tour), the best solution is kept in stream order, and the
    optional *warm_tour* is polished last — replacing the winner only on
    strict improvement.  Work counters land on ``solution.stats``.
    """
    metrics = MetricsRegistry()
    for name in GRASP_STAT_NAMES:
        metrics.counter(name)

    polished: Dict[bytes, OrienteeringSolution] = {}

    def evaluate(tour: np.ndarray) -> OrienteeringSolution:
        key = tour.astype(np.int64, copy=False).tobytes()
        cached = polished.get(key)
        if cached is not None:
            # Local search is a pure function of the tour, so replaying
            # it on an identical construction is pure waste.
            metrics.counter("constructions_deduped").inc()
            return cached
        metrics.counter("constructions").inc()
        if local_search:
            sol = improve_solution(instance, tour)
            ls = sol.stats or {}
            metrics.counter("ls_rounds").inc(ls.get("rounds", 0))
            metrics.counter("ls_moves").inc(ls.get("moves", 0))
        else:
            sol = make_solution(instance, tour, "construct")
        polished[key] = sol
        return sol

    best: Optional[OrienteeringSolution] = None
    for tour in constructions:
        metrics.counter("restarts").inc()
        sol = evaluate(tour)
        if better_solution(sol, best):
            best = sol
    if warm_tour is not None and len(warm_tour):
        metrics.counter("warm_starts").inc()
        warm = evaluate(np.asarray(warm_tour, dtype=int))
        if better_solution(warm, best):
            metrics.counter("warm_improved").inc()
            best = warm
    assert best is not None
    # Sorted keys: the parallel executor canonicalises records through
    # sorted-key JSON, so emit the same order here for bitwise ledgers.
    values = metrics.counter_values()
    stats = {name: int(values[name]) for name in sorted(values)}
    return OrienteeringSolution(tour=best.tour, award=best.award,
                                cost=best.cost, method="grasp", stats=stats)


def warm_tour_from_nodes(instance: OrienteeringInstance,
                         nodes) -> Optional[np.ndarray]:
    """Grow a feasible warm-start tour restricted to the hinted *nodes*.

    The δ-continuation entry point: *nodes* are the finer grid's nearest
    candidates to a coarser grid's tour stops, and the warm tour is the
    plain deterministic ratio-greedy construction with every *other*
    node blocked — budget- and conflict-feasible by construction no
    matter what the geometric projection produced.  Returns ``None``
    when no hinted node fits (the caller then just runs cold).
    """
    idx = np.unique(np.asarray(nodes, dtype=int))
    if idx.size == 0:
        return None
    if idx.min() < 0 or idx.max() >= instance.n_nodes:
        raise InvalidParameterError(
            f"warm node index out of range [0, {instance.n_nodes})")
    blocked = np.ones(instance.n_nodes, dtype=bool)
    blocked[idx] = False
    tour = greedy_fill(instance, np.array([instance.depot]),
                       blocked=blocked)
    return tour if len(tour) > 1 else None


def resolve_tape_nodes(instance: OrienteeringInstance,
                       tape_nodes: Optional[int]) -> int:
    """Validate a ``tape_nodes`` override (default: the instance's own)."""
    if tape_nodes is None:
        return instance.n_nodes
    return check_integer(tape_nodes, "tape_nodes",
                         minimum=instance.n_nodes)


def solve_grasp(instance: OrienteeringInstance, *, n_restarts: int = 8,
                rcl_size: int = 3, seed: SeedLike = None,
                local_search: bool = True,
                tape_nodes: Optional[int] = None,
                warm_tour: Optional[np.ndarray] = None
                ) -> OrienteeringSolution:
    """Solve via GRASP.

    Parameters
    ----------
    instance:
        The orienteering instance.
    n_restarts:
        Total construction attempts (>= 1).  Restart 0 is deterministic
        greedy; restarts 1.. are randomised.
    rcl_size:
        Restricted-candidate-list size for the randomised constructions.
    seed:
        RNG seed for reproducibility.
    local_search:
        Apply the add/drop/replace/2-opt polish after each construction.
    tape_nodes:
        Node count the RNG tape is sized for (default: the instance's
        own).  Pass the *original* pre-reduction count so restarts on a
        reduced instance replay the exact same tape as unreduced runs.
    warm_tour:
        Optional extra starting tour (e.g. a coarser δ-grid's projected
        solution) polished *after* the restarts; it replaces the restart
        winner only on strict improvement, so a non-improving warm start
        leaves the result bitwise unchanged.
    """
    n_restarts = check_integer(n_restarts, "n_restarts", minimum=1)
    check_integer(rcl_size, "rcl_size", minimum=1)
    tape = draw_rng_tape(as_rng(seed), n_restarts,
                         resolve_tape_nodes(instance, tape_nodes))

    def constructions() -> Iterable[np.ndarray]:
        yield solve_greedy(instance).tour
        for restart in range(1, n_restarts):
            yield randomized_construct(instance, rcl_size=rcl_size,
                                       tape=tape[restart - 1])

    return polish_constructions(instance, constructions(),
                                local_search=local_search,
                                warm_tour=warm_tour)


__all__ = ["solve_grasp", "polish_constructions", "better_solution",
           "resolve_tape_nodes", "warm_tour_from_nodes", "GRASP_STAT_NAMES"]
