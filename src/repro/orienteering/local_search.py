"""Local search for orienteering solutions.

Operator rotation applied until a fixed point:

* **shorten** — 2-opt the tour under the cost matrix.  Never changes the
  award but frees budget, enabling further insertions.
* **add** — vectorised best-ratio feasible insertions to exhaustion.
* **swap** — replace one on-tour node by a higher-award off-tour node in
  the same position when budget-feasible.
* **drop-readd** — remove the worst-ratio node, refill greedily; kept only
  when the final award strictly improves.

The accepted rounds strictly improve (award, then cost), so the search
terminates.
"""

from __future__ import annotations

import numpy as np

from repro.orienteering._vector import drop_worst, greedy_fill, swap_pass
from repro.orienteering.problem import OrienteeringInstance, OrienteeringSolution, make_solution
from repro.tsp.improve import two_opt


def _shorten(instance: OrienteeringInstance, tour: np.ndarray) -> np.ndarray:
    """2-opt the tour, rotated back to depot-first."""
    if len(tour) < 4:
        return tour
    shortened = two_opt(tour, instance.costs)
    start = int(np.flatnonzero(shortened == instance.depot)[0])
    return np.roll(shortened, -start)


def _drop_readd(instance: OrienteeringInstance, tour: np.ndarray) -> np.ndarray:
    """Drop the worst-ratio node, refill greedily; keep only if better."""
    base_award = instance.tour_award(tour)
    reduced, removed = drop_worst(instance, tour)
    if removed < 0:
        return tour
    cand = greedy_fill(instance, reduced)
    if instance.tour_award(cand) > base_award + 1e-12:
        return cand
    return tour


def improve_solution(instance: OrienteeringInstance,
                     tour, *, max_rounds: int = 30) -> OrienteeringSolution:
    """Run the operator rotation on *tour* until no round improves.

    Parameters
    ----------
    instance:
        The orienteering instance.
    tour:
        A feasible starting tour (depot-first).
    max_rounds:
        Safety bound on improvement rounds.
    """
    cur = np.asarray(tour, dtype=int)
    rounds = moves = 0
    for _ in range(max_rounds):
        before_award = instance.tour_award(cur)
        before_cost = instance.tour_cost(cur)
        cur = _shorten(instance, cur)
        cur = greedy_fill(instance, cur)
        cur = swap_pass(instance, cur)
        cur = _drop_readd(instance, cur)
        after_award = instance.tour_award(cur)
        after_cost = instance.tour_cost(cur)
        rounds += 1
        if (after_award <= before_award + 1e-12
                and after_cost >= before_cost - 1e-9):
            break
        moves += 1
    return make_solution(instance, cur, "local-search",
                         stats={"rounds": rounds, "moves": moves})


__all__ = ["improve_solution"]
