"""Orienteering-problem toolkit.

The paper proves the data-collection maximisation problem NP-hard by
reduction *from* orienteering (Theorem 1) and solves it by reduction *to*
orienteering on the auxiliary graph ``G_s`` (Algorithm 1).  The orienteering
problem: given node awards, symmetric edge costs, a depot and a budget, find
a closed tour through the depot maximising collected award with tour cost
within budget.

Solvers provided (see DESIGN.md substitution S1 for why these replace the
Bansal et al. 3-approximation):

* :mod:`repro.orienteering.exact` — subset DP, the optimality oracle
  (n <= ~14),
* :mod:`repro.orienteering.greedy` — deterministic best-ratio insertion,
* :mod:`repro.orienteering.local_search` — add/drop/replace/2-opt polishing,
* :mod:`repro.orienteering.grasp` — randomised multi-start wrapper,
* :mod:`repro.orienteering.fast` — the stacked GRASP engine (all restarts
  as one numpy program, bitwise-identical to the scalar path),
* :mod:`repro.orienteering.solver` — facade picking exact vs GRASP by size.

All solvers support optional *conflict groups* — sets of mutually exclusive
nodes — which Algorithm 1 uses to enforce the paper's "no hovering-coverage
overlapping" assumption.
"""

from repro.orienteering.problem import (OrienteeringInstance,
                                        OrienteeringSolution,
                                        trusted_instance)
from repro.orienteering.exact import solve_exact
from repro.orienteering.greedy import solve_greedy
from repro.orienteering.local_search import improve_solution
from repro.orienteering.grasp import solve_grasp
from repro.orienteering.fast import solve_grasp_fast
from repro.orienteering.solver import solve_orienteering

__all__ = [
    "OrienteeringInstance",
    "OrienteeringSolution",
    "trusted_instance",
    "solve_exact",
    "solve_greedy",
    "improve_solution",
    "solve_grasp",
    "solve_grasp_fast",
    "solve_orienteering",
]
