"""Stacked GRASP engine: all restarts as one numpy program.

The scalar engine (:func:`repro.orienteering.grasp.solve_grasp`) runs
``n_restarts`` independent constructions, each recomputing the same
insertion-delta geometry step by step.  This module runs them *stacked*:
one ``(R, k, n)`` candidate tensor per step serves every still-active
restart, so the per-step numpy dispatch overhead is paid once instead of
``R`` times and the cost-matrix rows stream through the CPU cache once.

Bitwise equivalence to the scalar path holds restart-by-restart because

* both paths draw the same pre-drawn RNG tape
  (:func:`~repro.orienteering._vector.draw_rng_tape`) and map each entry
  through the same sorted-RCL pick (:func:`~repro.orienteering._vector.
  rcl_pick`);
* every float expression (insertion deltas, feasibility, ratios) is the
  same elementwise numpy program evaluated on the same values — the
  stacked tensor's row ``r`` slice is the scalar path's array;
* all active restarts insert exactly one node per step, so they share a
  tour length and the stack never ragged-pads.

Construction dedup, local search, and best-selection are the *shared*
back half (:func:`~repro.orienteering.grasp.polish_constructions`), so
the returned solution — tour, award, cost, stats — is identical to the
scalar engine's.  ``tests/test_orienteering_fast.py`` pins all of this
property-style.
"""
# repro: hot-path

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.orienteering._vector import (conflict_neighbors, draw_rng_tape,
                                        insertion_ratio, rcl_pick)
from repro.orienteering.grasp import (polish_constructions,
                                      resolve_tape_nodes)
from repro.orienteering.problem import OrienteeringInstance, OrienteeringSolution
from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import check_integer


def stacked_constructions(instance: OrienteeringInstance, n_restarts: int,
                          rcl_size: int,
                          tape: np.ndarray) -> List[np.ndarray]:
    """All GRASP constructions at once; row 0 is the deterministic greedy.

    Returns the restart tours in restart order, each bitwise equal to
    what :func:`~repro.orienteering._vector.greedy_fill` grows from the
    same tape row.
    """
    n = instance.n_nodes
    costs = instance.costs
    costs_t = instance.costs_t
    budget = instance.budget
    awards = instance.awards
    neigh = conflict_neighbors(instance)
    depot = instance.depot

    R = n_restarts
    # Once-per-solve state, not per-step: the (R, n) buffers are the
    # whole point of stacking.
    # repro: allow[hot-path-purity] -- once-per-solve restart-stack state
    tours = np.zeros((R, n), dtype=np.int64)
    tours[:, 0] = depot
    lens = np.ones(R, dtype=np.int64)
    cost = np.full(R, float(instance.tour_cost(np.array([depot]))))
    active = np.ones(R, dtype=bool)

    base_unavailable = np.zeros(n, dtype=bool)
    base_unavailable[depot] = True
    base_unavailable[awards <= 0] = True
    if neigh is not None and len(neigh[depot]):
        base_unavailable[neigh[depot]] = True
    # repro: allow[hot-path-purity] -- once-per-solve restart-stack state
    unavailable = np.tile(base_unavailable, (R, 1))

    k = 1
    while active.any():
        rows = np.flatnonzero(active)
        a = len(rows)
        tact = tours[rows, :k]
        if k == 1:
            deltas = np.broadcast_to(2.0 * costs[depot], (a, n))
            # First step only (k == 1 happens once); every insertion
            # lands at position 1 of a depot-only tour.
            # repro: allow[hot-path-purity] -- once per solve, not per step
            positions = np.ones((a, n), dtype=np.int64)
        else:
            # Successor view of the (a, k) active tours; k is the shared
            # tour length, not the candidate count — no (m, n) blowup.
            # repro: allow[hot-path-purity] -- (a, k) roll, once per step
            nxt = np.concatenate([tact[:, 1:], tact[:, :1]], axis=1)
            edge = costs[tact, nxt]                              # (a, k)
            # cand[r, i, v]: insert v after position i of restart r's tour
            # — gathered over the contiguous rows of ``costs_t``, so
            # cand[r, i, v] == costs[v, tact[r, i]] + costs[v, nxt[r, i]]
            # - edge[r, i] bit-for-bit (costs_t is a pure relabeling),
            # and slice [r] is the scalar path's (k, n) matrix.
            cand = costs_t[tact]
            cand += costs_t[nxt]
            cand -= edge[:, :, None]
            best = np.argmin(cand, axis=1)                       # (a, n)
            deltas = np.take_along_axis(
                cand, best[:, None, :], axis=1)[:, 0, :]         # (a, n)
            positions = (best + 1) % k
            positions[positions == 0] = k
        feasible = ~unavailable[rows] & (cost[rows, None] + deltas
                                         <= budget + 1e-9)       # (a, n)
        ratio = insertion_ratio(deltas, awards, feasible)
        inserted = False
        for j in range(a):
            r = int(rows[j])
            if not feasible[j].any():
                active[r] = False
                continue
            if r == 0:
                v = int(np.argmax(ratio[j]))
            else:
                v = rcl_pick(ratio[j], int(feasible[j].sum()),
                             float(tape[r - 1, k - 1]), rcl_size)
            p = int(positions[j, v])
            p = p if p != 0 else k
            row = tours[r]
            row[p + 1:k + 1] = row[p:k].copy()
            row[p] = v
            cost[r] += float(deltas[j, v])
            lens[r] = k + 1
            unavailable[r, v] = True
            if neigh is not None and len(neigh[v]):
                unavailable[r, neigh[v]] = True
            if unavailable[r].all():
                active[r] = False
            inserted = True
        if inserted:
            k += 1
    return [tours[r, :int(lens[r])].copy() for r in range(R)]


def solve_grasp_fast(instance: OrienteeringInstance, *,
                     n_restarts: int = 8, rcl_size: int = 3,
                     seed: SeedLike = None, local_search: bool = True,
                     tape_nodes: Optional[int] = None,
                     warm_tour: Optional[np.ndarray] = None
                     ) -> OrienteeringSolution:
    """GRASP via the stacked construction engine.

    Same signature and bitwise-identical result as
    :func:`repro.orienteering.grasp.solve_grasp`.
    """
    n_restarts = check_integer(n_restarts, "n_restarts", minimum=1)
    check_integer(rcl_size, "rcl_size", minimum=1)
    tape = draw_rng_tape(as_rng(seed), n_restarts,
                         resolve_tape_nodes(instance, tape_nodes))
    tours = stacked_constructions(instance, n_restarts, rcl_size, tape)
    return polish_constructions(instance, tours,
                                local_search=local_search,
                                warm_tour=warm_tour)


__all__ = ["solve_grasp_fast", "stacked_constructions"]
