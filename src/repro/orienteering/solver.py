"""Solver facade: pick the right orienteering backend for the instance.

``method="auto"`` (the default) uses the exact subset DP when the instance
is small enough to verify optimality and GRASP otherwise — so small unit
tests get exact answers for free while the planners scale.
"""

from __future__ import annotations

from repro.obs.tracer import span
from repro.orienteering.exact import MAX_EXACT_NODES, solve_exact
from repro.orienteering.grasp import solve_grasp
from repro.orienteering.greedy import solve_greedy
from repro.orienteering.problem import OrienteeringInstance, OrienteeringSolution
from repro.utils.errors import InvalidParameterError
from repro.utils.rng import SeedLike

#: "auto" switches from exact DP to GRASP above this node count.
AUTO_EXACT_THRESHOLD = 13


def solve_orienteering(instance: OrienteeringInstance, *,
                       method: str = "auto",
                       seed: SeedLike = None,
                       n_restarts: int = 8,
                       rcl_size: int = 3) -> OrienteeringSolution:
    """Solve an orienteering instance with the chosen backend.

    Parameters
    ----------
    instance:
        The problem.
    method:
        ``"auto"``, ``"exact"``, ``"grasp"``, or ``"greedy"``.
    seed, n_restarts, rcl_size:
        Passed through to GRASP when applicable.

    Returns
    -------
    OrienteeringSolution
        Always budget-feasible; the depot-only tour when nothing fits.
    """
    with span("orienteering.solve", method=method, n_nodes=instance.n_nodes):
        if method == "auto":
            if instance.n_nodes <= AUTO_EXACT_THRESHOLD:
                return solve_exact(instance)
            return solve_grasp(instance, n_restarts=n_restarts,
                               rcl_size=rcl_size, seed=seed)
        if method == "exact":
            if instance.n_nodes > MAX_EXACT_NODES:
                raise InvalidParameterError(
                    f"exact method limited to {MAX_EXACT_NODES} nodes, "
                    f"instance has {instance.n_nodes}")
            return solve_exact(instance)
        if method == "grasp":
            return solve_grasp(instance, n_restarts=n_restarts,
                               rcl_size=rcl_size, seed=seed)
        if method == "greedy":
            return solve_greedy(instance)
    raise InvalidParameterError(
        f"unknown orienteering method {method!r}; "
        "expected 'auto', 'exact', 'grasp', or 'greedy'")


__all__ = ["solve_orienteering", "AUTO_EXACT_THRESHOLD"]
