"""Solver facade: pick the right orienteering backend for the instance.

``method="auto"`` (the default) uses the exact subset DP when the instance
is small enough to verify optimality and GRASP otherwise — so small unit
tests get exact answers for free while the planners scale.

GRASP itself runs on one of two engines: ``"scalar"`` (restart-by-restart,
:func:`~repro.orienteering.grasp.solve_grasp`) or ``"fast"`` (all restarts
as one stacked numpy program,
:func:`~repro.orienteering.fast.solve_grasp_fast`).  Both consume the same
pre-drawn RNG tape and produce bitwise-identical solutions.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.obs.tracer import span
from repro.orienteering.exact import MAX_EXACT_NODES, solve_exact
from repro.orienteering.fast import solve_grasp_fast
from repro.orienteering.grasp import solve_grasp
from repro.orienteering.greedy import solve_greedy
from repro.orienteering.problem import OrienteeringInstance, OrienteeringSolution
from repro.utils.errors import InvalidParameterError
from repro.utils.rng import SeedLike

#: "auto" switches from exact DP to GRASP above this node count.
AUTO_EXACT_THRESHOLD = 13

#: GRASP execution engines (both bitwise-identical; see module docstring).
GRASP_ENGINES = ("scalar", "fast")


def solve_orienteering(instance: OrienteeringInstance, *,
                       method: str = "auto",
                       seed: SeedLike = None,
                       n_restarts: int = 8,
                       rcl_size: int = 3,
                       engine: str = "scalar",
                       tape_nodes: Optional[int] = None,
                       warm_tour: Optional[np.ndarray] = None
                       ) -> OrienteeringSolution:
    """Solve an orienteering instance with the chosen backend.

    Parameters
    ----------
    instance:
        The problem.
    method:
        ``"auto"``, ``"exact"``, ``"grasp"``, or ``"greedy"``.
    seed, n_restarts, rcl_size:
        Passed through to GRASP when applicable.
    engine:
        GRASP execution engine, ``"scalar"`` or ``"fast"`` (bitwise-
        identical results; ignored by the exact/greedy backends).
    tape_nodes, warm_tour:
        Passed through to GRASP: the RNG-tape sizing override (for
        renumbering-invariant restarts on reduced instances) and an
        optional warm-start tour polished after the restarts.

    Returns
    -------
    OrienteeringSolution
        Always budget-feasible; the depot-only tour when nothing fits.
    """
    if engine not in GRASP_ENGINES:
        raise InvalidParameterError(
            f"engine must be one of {GRASP_ENGINES}, got {engine!r}")
    grasp = solve_grasp_fast if engine == "fast" else solve_grasp
    with span("orienteering.solve", method=method, n_nodes=instance.n_nodes):
        if method == "auto":
            if instance.n_nodes <= AUTO_EXACT_THRESHOLD:
                return solve_exact(instance)
            return grasp(instance, n_restarts=n_restarts,
                         rcl_size=rcl_size, seed=seed,
                         tape_nodes=tape_nodes, warm_tour=warm_tour)
        if method == "exact":
            if instance.n_nodes > MAX_EXACT_NODES:
                raise InvalidParameterError(
                    f"exact method limited to {MAX_EXACT_NODES} nodes, "
                    f"instance has {instance.n_nodes}")
            return solve_exact(instance)
        if method == "grasp":
            return grasp(instance, n_restarts=n_restarts,
                         rcl_size=rcl_size, seed=seed,
                         tape_nodes=tape_nodes, warm_tour=warm_tour)
        if method == "greedy":
            return solve_greedy(instance)
    raise InvalidParameterError(
        f"unknown orienteering method {method!r}; "
        "expected 'auto', 'exact', 'grasp', or 'greedy'")


__all__ = ["solve_orienteering", "AUTO_EXACT_THRESHOLD", "GRASP_ENGINES"]
