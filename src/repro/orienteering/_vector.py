"""Vectorised kernels shared by the orienteering heuristics.

All heavy per-candidate work — insertion deltas, ratio scoring, conflict
masking — is expressed as numpy operations over the instance's cost
matrix, so the greedy constructor and the local-search passes cost
O(n * |tour|) numpy work per step instead of O(n * |tour|) Python loops.

Randomised (GRASP) construction consumes a pre-drawn **RNG tape**: one
uniform ``[0, 1)`` draw per accepted insertion, mapped onto a
*sorted* restricted candidate list by :func:`rcl_pick`.  Because the
tape is drawn up front and the RCL is ordered by node index, the scalar
restart loop (:func:`greedy_fill` once per restart) and the stacked
fast engine (:mod:`repro.orienteering.fast`, all restarts at once) make
bitwise-identical choices from the same tape row — and the choices are
invariant under site renumbering that preserves relative index order
(the `ReducedSites` survivor maps do).
"""
# repro: hot-path

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.orienteering.problem import OrienteeringInstance


def all_insertion_deltas(tour: np.ndarray, costs: np.ndarray,
                         costs_t: Optional[np.ndarray] = None
                         ) -> Tuple[np.ndarray, np.ndarray]:
    """Cheapest insertion delta of *every* node into the closed *tour*.

    Returns ``(deltas, positions)`` of length ``n`` each; ``positions[v]``
    is the tour index before which node ``v`` would be inserted.  Entries
    for nodes already on the tour are meaningless (callers mask them).

    *costs_t* (``instance.costs_t``) routes the gathers over contiguous
    rows of the transposed matrix instead of strided columns of *costs*
    — the same elements bit-for-bit, several times faster at paper
    scale.  Both layouts accumulate in place on the first fancy-index
    copy and tie-break ``argmin`` at the first minimal tour position.
    """
    n = len(costs)
    k = len(tour)
    if k == 0:
        return np.zeros(n), np.zeros(n, dtype=int)
    if k == 1:
        return 2.0 * costs[tour[0]], np.ones(n, dtype=int)
    nxt = np.roll(tour, -1)
    edge = costs[tour, nxt]                        # (k,)
    if costs_t is not None:
        # cand[i, v] = c(tour_i, v) + c(v, tour_{i+1}) - edge_i
        cand = costs_t[tour]
        cand += costs_t[nxt]
        cand -= edge[:, None]
        best = np.argmin(cand, axis=0)
        deltas = cand[best, np.arange(n)]
    else:
        # cand[v, i] = c(tour_i, v) + c(v, tour_{i+1}) - edge_i
        cand = costs[:, tour]
        cand += costs[:, nxt]
        cand -= edge[None, :]
        best = np.argmin(cand, axis=1)
        deltas = cand[np.arange(n), best]
    positions = (best + 1) % k
    positions[positions == 0] = k
    return deltas, positions


def conflict_neighbors(instance: OrienteeringInstance) -> Optional[List[np.ndarray]]:
    """Per-node arrays of conflicting nodes, or None when unconstrained.

    The instance precomputes these at construction, so this is O(1) —
    the canonical list itself, not a copy (treat it as read-only).
    """
    if not instance.has_conflicts:
        return None
    return instance.conflict_lists


def insertion_ratio(deltas: np.ndarray, awards: np.ndarray,
                    feasible: np.ndarray) -> np.ndarray:
    """Award-per-marginal-cost score; ``-inf`` off the feasible set.

    Zero-delta feasible insertions score ``+inf`` (free award).  Shared
    by the scalar constructor and the stacked fast engine so both paths
    rank candidates through the identical float expression.
    """
    with np.errstate(divide="ignore"):
        return np.where(
            feasible,
            np.where(deltas > 0, awards / np.maximum(deltas, 1e-300), np.inf),
            -np.inf)


def rcl_pick(ratio: np.ndarray, n_feasible: int, u: float,
             rcl_size: int) -> int:
    """The tape draw *u*'s pick from the sorted restricted candidate list.

    The RCL is the ``min(rcl_size, n_feasible)`` best-ratio candidates,
    ordered by **node index** — an order-isomorphism under any
    renumbering that preserves relative index order, which is what makes
    reduction-seeded restarts renumbering-invariant.  ``u`` in ``[0, 1)``
    indexes the list uniformly; the same ``(ratio, u)`` pair yields the
    same node on the scalar and stacked paths.
    """
    k = rcl_size if rcl_size < n_feasible else n_feasible
    top = np.sort(np.argpartition(-ratio, k - 1)[:k])
    i = int(u * k)
    return int(top[i if i < k else k - 1])


def draw_rng_tape(rng: np.random.Generator, n_restarts: int,
                  tape_nodes: int) -> np.ndarray:
    """Pre-draw the GRASP RNG tape: one row per *randomised* restart.

    Row ``r`` feeds restart ``r + 1`` (restart 0 is deterministic); each
    accepted insertion consumes one entry, and a tour of ``tape_nodes``
    nodes can accept at most ``tape_nodes - 1``.  Drawing against the
    *original* (pre-reduction) node count keeps the tape — hence every
    restart — identical whether or not a site reduction ran first.
    """
    length = max(int(tape_nodes) - 1, 1)
    rows = max(int(n_restarts) - 1, 0)
    return rng.random((rows, length))


def greedy_fill(instance: OrienteeringInstance, tour: np.ndarray, *,
                rng: Optional[np.random.Generator] = None,
                tape: Optional[np.ndarray] = None,
                rcl_size: int = 1,
                blocked: Optional[np.ndarray] = None) -> np.ndarray:
    """Insert feasible nodes by best award/delta ratio until none fits.

    Parameters
    ----------
    instance:
        The orienteering instance.
    tour:
        Starting tour (depot-first); not modified.
    rng, tape, rcl_size:
        With ``rcl_size > 1``, each step picks from the sorted top-
        ``rcl_size`` candidates (GRASP) driven by one tape entry per
        insertion.  Pass *tape* directly (a 1-D ``[0, 1)`` array, e.g.
        one row of :func:`draw_rng_tape`) for replayable construction,
        or *rng* to draw a tape internally.
    blocked:
        Optional starting block-mask (nodes never to insert); conflict
        blocking is applied on top.

    Returns
    -------
    numpy.ndarray
        The grown tour.
    """
    n = instance.n_nodes
    costs = instance.costs
    costs_t = instance.costs_t
    budget = instance.budget
    awards = instance.awards
    neigh = conflict_neighbors(instance)

    if tape is None and rng is not None and rcl_size > 1:
        tape = rng.random(max(n - 1, 1))
    randomized = tape is not None and rcl_size > 1
    drawn = 0

    cur = np.asarray(tour, dtype=int).copy()
    cost = instance.tour_cost(cur)
    unavailable = np.zeros(n, dtype=bool)
    if blocked is not None:
        unavailable |= np.asarray(blocked, dtype=bool)
    unavailable[cur] = True
    unavailable[awards <= 0] = True
    if neigh is not None:
        for v in cur:
            nb = neigh[int(v)]
            if len(nb):
                unavailable[nb] = True

    while True:
        if unavailable.all():
            break
        deltas, positions = all_insertion_deltas(cur, costs, costs_t)
        feasible = ~unavailable & (cost + deltas <= budget + 1e-9)
        if not feasible.any():
            break
        ratio = insertion_ratio(deltas, awards, feasible)
        if not randomized:
            v = int(np.argmax(ratio))
        else:
            v = rcl_pick(ratio, int(feasible.sum()),
                         float(tape[drawn]), rcl_size)
            drawn += 1
        pos = int(positions[v])
        # repro: allow[hot-path-purity] -- one O(k) copy per accepted insertion
        cur = np.insert(cur, pos if pos != 0 else len(cur), v)
        cost += float(deltas[v])
        unavailable[v] = True
        if neigh is not None and len(neigh[v]):
            unavailable[neigh[v]] = True
    return cur


def tour_conflict_counts(tour: np.ndarray, neigh: List[np.ndarray],
                         n: int) -> np.ndarray:
    """``counts[v]`` = how many tour nodes conflict with node ``v``.

    Conflict lists are symmetric, so this equals ``|neigh[v] ∩ tour|``;
    one bincount over the concatenated tour-node neighbour lists replaces
    the per-candidate Python set probes the swap pass used to run.
    """
    stacked = [neigh[int(w)] for w in tour if len(neigh[int(w)])]
    if not stacked:
        return np.zeros(n, dtype=np.int64)
    return np.bincount(np.concatenate(stacked), minlength=n)


def swap_pass(instance: OrienteeringInstance, tour: np.ndarray) -> np.ndarray:
    """One improving same-position swap (on-tour node ↔ off-tour node).

    For every tour position ``i`` (except the depot) and every off-tour
    candidate ``v``, consider replacing ``tour[i]`` by ``v`` between its
    current neighbours.  Accept the best swap that increases award and
    stays within budget; return the (possibly unchanged) tour.
    """
    n = instance.n_nodes
    costs = instance.costs
    costs_t = instance.costs_t
    k = len(tour)
    if k < 2:
        return tour
    cost = instance.tour_cost(tour)
    awards = instance.awards
    neigh = conflict_neighbors(instance)
    counts = tour_conflict_counts(tour, neigh, n) if neigh is not None else None

    off = np.ones(n, dtype=bool)
    off[tour] = False

    best_gain, best_i, best_v, best_delta = 0.0, -1, -1, 0.0
    for i in range(1, k):
        u = int(tour[i])
        prev_node = int(tour[i - 1])
        next_node = int(tour[(i + 1) % k])
        base = costs[prev_node, u] + costs[u, next_node]
        # costs_t[next_node] is costs[:, next_node] element-for-element
        # (contiguous row instead of a strided column).
        new_cost_v = cost - base + costs[prev_node, :] + costs_t[next_node]
        gain_v = awards - awards[u]
        ok = off & (gain_v > 1e-12) & (new_cost_v <= instance.budget + 1e-9)
        if counts is not None and ok.any():
            # A replacement must not conflict with the rest of the tour:
            # counts[v] > 0 bans v, except a lone conflict with u itself
            # (the node leaving the tour) does not count.
            bad = counts > 0
            nb_u = neigh[u]
            if len(nb_u):
                bad[nb_u] = counts[nb_u] > 1
            ok &= ~bad
        if not ok.any():
            continue
        cand = np.where(ok, gain_v, -np.inf)
        v = int(np.argmax(cand))
        if gain_v[v] > best_gain + 1e-12:
            best_gain = float(gain_v[v])
            best_i, best_v = i, v
            best_delta = float(new_cost_v[v] - cost)
    if best_i >= 0:
        out = tour.copy()
        out[best_i] = best_v
        return out
    return tour


def drop_worst(instance: OrienteeringInstance,
               tour: np.ndarray) -> Tuple[np.ndarray, int]:
    """Remove the node with the worst award-per-energy-saved ratio.

    Returns ``(reduced_tour, removed_node)``; the depot is never removed.
    A tour with only the depot is returned unchanged with ``removed = -1``.
    """
    k = len(tour)
    if k < 2:
        return tour, -1
    costs = instance.costs
    awards = instance.awards
    prev_nodes = np.roll(tour, 1)
    next_nodes = np.roll(tour, -1)
    saved = (costs[prev_nodes, tour] + costs[tour, next_nodes]
             - costs[prev_nodes, next_nodes])
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = np.where(saved > 1e-12, awards[tour] / saved, np.inf)
    ratio[0] = np.inf  # protect the depot
    i = int(np.argmin(ratio))
    if not np.isfinite(ratio[i]):
        return tour, -1
    return np.delete(tour, i), int(tour[i])


__all__ = ["all_insertion_deltas", "conflict_neighbors", "insertion_ratio",
           "rcl_pick", "draw_rng_tape", "greedy_fill",
           "tour_conflict_counts", "swap_pass", "drop_worst"]
