"""Vectorised kernels shared by the orienteering heuristics.

All heavy per-candidate work — insertion deltas, ratio scoring, conflict
masking — is expressed as numpy operations over the instance's cost
matrix, so the greedy constructor and the local-search passes cost
O(n * |tour|) numpy work per step instead of O(n * |tour|) Python loops.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.orienteering.problem import OrienteeringInstance


def all_insertion_deltas(tour: np.ndarray,
                         costs: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Cheapest insertion delta of *every* node into the closed *tour*.

    Returns ``(deltas, positions)`` of length ``n`` each; ``positions[v]``
    is the tour index before which node ``v`` would be inserted.  Entries
    for nodes already on the tour are meaningless (callers mask them).
    """
    n = len(costs)
    k = len(tour)
    if k == 0:
        return np.zeros(n), np.zeros(n, dtype=int)
    if k == 1:
        return 2.0 * costs[tour[0]], np.ones(n, dtype=int)
    nxt = np.roll(tour, -1)
    edge = costs[tour, nxt]                        # (k,)
    # cand[v, i] = c(tour_i, v) + c(v, tour_{i+1}) - c(tour_i, tour_{i+1})
    cand = costs[:, tour] + costs[:, nxt] - edge[None, :]
    best = np.argmin(cand, axis=1)
    deltas = cand[np.arange(n), best]
    positions = (best + 1) % k
    positions[positions == 0] = k
    return deltas, positions


def conflict_neighbors(instance: OrienteeringInstance) -> Optional[List[np.ndarray]]:
    """Per-node arrays of conflicting nodes, or None when unconstrained.

    The instance precomputes these at construction, so this is O(1).
    """
    if not instance.has_conflicts:
        return None
    return [instance.neighbors_of(v) for v in range(instance.n_nodes)]


def greedy_fill(instance: OrienteeringInstance, tour: np.ndarray, *,
                rng: Optional[np.random.Generator] = None,
                rcl_size: int = 1,
                blocked: Optional[np.ndarray] = None) -> np.ndarray:
    """Insert feasible nodes by best award/delta ratio until none fits.

    Parameters
    ----------
    instance:
        The orienteering instance.
    tour:
        Starting tour (depot-first); not modified.
    rng, rcl_size:
        When *rng* is given, each step picks uniformly among the top
        ``rcl_size`` candidates instead of the single best (GRASP).
    blocked:
        Optional starting block-mask (nodes never to insert); conflict
        blocking is applied on top.

    Returns
    -------
    numpy.ndarray
        The grown tour.
    """
    n = instance.n_nodes
    costs = instance.costs
    budget = instance.budget
    awards = instance.awards
    neigh = conflict_neighbors(instance)

    cur = np.asarray(tour, dtype=int).copy()
    cost = instance.tour_cost(cur)
    unavailable = np.zeros(n, dtype=bool)
    if blocked is not None:
        unavailable |= np.asarray(blocked, dtype=bool)
    unavailable[cur] = True
    unavailable[awards <= 0] = True
    if neigh is not None:
        for v in cur:
            nb = neigh[int(v)]
            if len(nb):
                unavailable[nb] = True

    while True:
        if unavailable.all():
            break
        deltas, positions = all_insertion_deltas(cur, costs)
        feasible = ~unavailable & (cost + deltas <= budget + 1e-9)
        if not feasible.any():
            break
        with np.errstate(divide="ignore"):
            ratio = np.where(feasible,
                             np.where(deltas > 0, awards / np.maximum(deltas, 1e-300),
                                      np.inf),
                             -np.inf)
        if rng is None or rcl_size <= 1:
            v = int(np.argmax(ratio))
        else:
            k = min(rcl_size, int(feasible.sum()))
            top = np.argpartition(-ratio, k - 1)[:k]
            top = top[np.isfinite(ratio[top]) | (ratio[top] == np.inf)]
            v = int(top[int(rng.integers(0, len(top)))]) if len(top) else int(np.argmax(ratio))
        pos = int(positions[v])
        cur = np.insert(cur, pos if pos != 0 else len(cur), v)
        cost += float(deltas[v])
        unavailable[v] = True
        if neigh is not None and len(neigh[v]):
            unavailable[neigh[v]] = True
    return cur


def swap_pass(instance: OrienteeringInstance, tour: np.ndarray) -> np.ndarray:
    """One improving same-position swap (on-tour node ↔ off-tour node).

    For every tour position ``i`` (except the depot) and every off-tour
    candidate ``v``, consider replacing ``tour[i]`` by ``v`` between its
    current neighbours.  Accept the best swap that increases award and
    stays within budget; return the (possibly unchanged) tour.
    """
    n = instance.n_nodes
    costs = instance.costs
    k = len(tour)
    if k < 2:
        return tour
    cost = instance.tour_cost(tour)
    awards = instance.awards
    neigh = conflict_neighbors(instance)

    off = np.ones(n, dtype=bool)
    off[tour] = False

    best_gain, best_i, best_v, best_delta = 0.0, -1, -1, 0.0
    for i in range(1, k):
        u = int(tour[i])
        prev_node = int(tour[i - 1])
        next_node = int(tour[(i + 1) % k])
        base = costs[prev_node, u] + costs[u, next_node]
        new_cost_v = cost - base + costs[prev_node, :] + costs[:, next_node]
        gain_v = awards - awards[u]
        ok = off & (gain_v > 1e-12) & (new_cost_v <= instance.budget + 1e-9)
        if neigh is not None and ok.any():
            # A replacement must not conflict with the rest of the tour.
            rest = set(int(x) for x in tour) - {u}
            for v in np.flatnonzero(ok):
                if any(int(c) in rest for c in neigh[int(v)]):
                    ok[v] = False
        if not ok.any():
            continue
        cand = np.where(ok, gain_v, -np.inf)
        v = int(np.argmax(cand))
        if gain_v[v] > best_gain + 1e-12:
            best_gain = float(gain_v[v])
            best_i, best_v = i, v
            best_delta = float(new_cost_v[v] - cost)
    if best_i >= 0:
        out = tour.copy()
        out[best_i] = best_v
        return out
    return tour


def drop_worst(instance: OrienteeringInstance,
               tour: np.ndarray) -> Tuple[np.ndarray, int]:
    """Remove the node with the worst award-per-energy-saved ratio.

    Returns ``(reduced_tour, removed_node)``; the depot is never removed.
    A tour with only the depot is returned unchanged with ``removed = -1``.
    """
    k = len(tour)
    if k < 2:
        return tour, -1
    costs = instance.costs
    awards = instance.awards
    prev_nodes = np.roll(tour, 1)
    next_nodes = np.roll(tour, -1)
    saved = (costs[prev_nodes, tour] + costs[tour, next_nodes]
             - costs[prev_nodes, next_nodes])
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = np.where(saved > 1e-12, awards[tour] / saved, np.inf)
    ratio[0] = np.inf  # protect the depot
    i = int(np.argmin(ratio))
    if not np.isfinite(ratio[i]):
        return tour, -1
    return np.delete(tour, i), int(tour[i])


__all__ = ["all_insertion_deltas", "conflict_neighbors", "greedy_fill",
           "swap_pass", "drop_worst"]
