"""Path orienteering and the paper's dummy-depot construction.

Algorithm 1's pseudo-code does not solve closed-tour orienteering
directly: it adds a dummy depot ``d'`` (a copy of ``d`` with the same
edges) and finds a maximum-award *simple path* from ``d`` to ``d'`` within
budget (paper Algorithm 1, steps 3–4).  A ``d → d'`` path in the augmented
graph is exactly a closed tour through ``d`` in the original graph, so the
two formulations are equivalent; the library's planners use the closed-tour
form and this module provides the path form plus the equivalence
machinery, both for fidelity and as a cross-check oracle
(``tests/test_orienteering_path.py`` asserts the equivalence on random
instances).

Contents:

* :func:`augment_with_dummy_depot` — build the paper's augmented instance,
* :func:`solve_path_exact` — exact max-award ``s → t`` path DP,
* :func:`path_to_tour` / :func:`tour_to_path` — the bijection between
  ``d → d'`` paths and closed tours.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.orienteering.problem import OrienteeringInstance
from repro.utils.errors import InvalidParameterError

#: Subset-DP limit (see repro.orienteering.exact).
MAX_PATH_NODES = 18


def augment_with_dummy_depot(instance: OrienteeringInstance
                             ) -> Tuple[OrienteeringInstance, int]:
    """The paper's construction: append ``d'`` mirroring the depot's edges.

    Returns the augmented instance and the dummy's node index (``n``).
    The dummy has award 0 and distance 0 to the depot; conflicts carry
    over unchanged (the dummy conflicts with nothing).
    """
    n = instance.n_nodes
    costs = np.zeros((n + 1, n + 1))
    costs[:n, :n] = instance.costs
    costs[n, :n] = instance.costs[instance.depot, :]
    costs[:n, n] = instance.costs[:, instance.depot]
    costs[n, n] = 0.0
    costs[instance.depot, n] = costs[n, instance.depot] = 0.0
    awards = np.concatenate([instance.awards, [0.0]])
    neighbors = None
    if instance.has_conflicts:
        neighbors = [instance.neighbors_of(v) for v in range(n)]
        neighbors.append(np.empty(0, dtype=int))
    return OrienteeringInstance(costs=costs, awards=awards,
                                budget=instance.budget,
                                depot=instance.depot,
                                conflict_neighbor_lists=neighbors), n


def solve_path_exact(instance: OrienteeringInstance, source: int,
                     target: int) -> Tuple[np.ndarray, float]:
    """Exact max-award simple path ``source -> target`` within budget.

    Subset DP over intermediate nodes; O(2^n * n^2).  Returns
    ``(path, award)`` where the path includes both endpoints.  Conflicts
    (if configured) are respected.

    Raises
    ------
    InvalidParameterError
        On out-of-range endpoints or oversize instances.
    """
    n = instance.n_nodes
    if n > MAX_PATH_NODES:
        raise InvalidParameterError(
            f"solve_path_exact limited to n <= {MAX_PATH_NODES}, got {n}")
    if not (0 <= source < n) or not (0 <= target < n):
        raise InvalidParameterError("endpoint out of range")
    if source == target:
        raise InvalidParameterError(
            "source and target must differ (use the closed-tour solver)")
    d = instance.costs
    budget = instance.budget
    inner = [v for v in range(n) if v not in (source, target)]
    m = len(inner)
    full = 1 << m

    # dp[mask, i] = min cost of source -> ... -> inner[i] visiting mask.
    dp = np.full((full, m), np.inf)
    parent = np.full((full, m), -1, dtype=int)
    for i, v in enumerate(inner):
        dp[1 << i, i] = d[source, v]
    for mask in range(1, full):
        row = dp[mask]
        live = np.flatnonzero(np.isfinite(row))
        rest = ~mask & (full - 1)
        for i in live:
            base = row[i]
            vi = inner[i]
            j = rest
            while j:
                low = j & -j
                k = low.bit_length() - 1
                cand = base + d[vi, inner[k]]
                nm = mask | low
                if cand < dp[nm, k]:
                    dp[nm, k] = cand
                    parent[nm, k] = i
                j ^= low

    base_award = float(instance.awards[source] + instance.awards[target])
    best_award = base_award if d[source, target] <= budget + 1e-9 else -np.inf
    best_mask, best_last = 0, -1
    for mask in range(1, full):
        row = dp[mask]
        live = np.flatnonzero(np.isfinite(row))
        if len(live) == 0:
            continue
        closes = row[live] + np.array([d[inner[i], target] for i in live])
        ok = closes <= budget + 1e-9
        if not ok.any():
            continue
        members = [inner[i] for i in range(m) if mask & (1 << i)]
        if instance.has_conflicts and not instance.conflicts_ok(
                [source, target, *members]):
            continue
        award = base_award + float(instance.awards[members].sum())
        if award > best_award + 1e-12:
            best_award = award
            best_mask = mask
            best_last = int(live[ok][int(np.argmin(closes[ok]))])

    if best_last < 0 and best_award == -np.inf:
        raise InvalidParameterError(
            "no budget-feasible path between the endpoints")
    if best_last < 0:
        return np.array([source, target]), base_award
    order = []
    mask, i = best_mask, best_last
    while i != -1:
        order.append(inner[i])
        pi = parent[mask, i]
        mask ^= 1 << i
        i = pi
    order.reverse()
    return np.array([source, *order, target]), best_award


def path_to_tour(path: np.ndarray, dummy: int) -> np.ndarray:
    """Collapse a ``d -> ... -> d'`` path into a closed tour through ``d``."""
    arr = np.asarray(path, dtype=int)
    if len(arr) < 2 or arr[-1] != dummy:
        raise InvalidParameterError("path must end at the dummy depot")
    return arr[:-1]


def tour_to_path(tour: np.ndarray, dummy: int) -> np.ndarray:
    """Expand a closed tour through the depot into a ``d -> d'`` path."""
    arr = np.asarray(tour, dtype=int)
    if len(arr) == 0:
        raise InvalidParameterError("tour must be non-empty")
    return np.concatenate([arr, [dummy]])


__all__ = [
    "augment_with_dummy_depot",
    "solve_path_exact",
    "path_to_tour",
    "tour_to_path",
    "MAX_PATH_NODES",
]
