"""Deterministic greedy orienteering construction.

Repeatedly inserts the node with the best award-per-marginal-cost ratio at
its cheapest tour position, subject to the budget and conflict groups.
This is both a fast standalone solver and the construction step the GRASP
wrapper randomises.  The per-step work is fully vectorised
(:mod:`repro.orienteering._vector`).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.orienteering._vector import greedy_fill
from repro.orienteering.problem import OrienteeringInstance, OrienteeringSolution, make_solution
from repro.utils.rng import SeedLike, as_rng


def solve_greedy(instance: OrienteeringInstance) -> OrienteeringSolution:
    """Pure deterministic greedy best-ratio insertion."""
    start = np.array([instance.depot], dtype=int)
    tour = greedy_fill(instance, start)
    return make_solution(instance, tour, "greedy")


def randomized_construct(instance: OrienteeringInstance,
                         seed: SeedLike = None,
                         rcl_size: int = 3, *,
                         tape: Optional[np.ndarray] = None) -> np.ndarray:
    """One randomised greedy construction (used by GRASP).

    Pass *tape* (one row of :func:`repro.orienteering._vector.draw_rng_tape`)
    for a replayable construction; otherwise a tape is drawn from *seed*.
    """
    start = np.array([instance.depot], dtype=int)
    if tape is not None:
        return greedy_fill(instance, start,
                           tape=np.asarray(tape, dtype=float),
                           rcl_size=rcl_size)
    return greedy_fill(instance, start, rng=as_rng(seed), rcl_size=rcl_size)


__all__ = ["solve_greedy", "randomized_construct"]
