"""Deterministic greedy orienteering construction.

Repeatedly inserts the node with the best award-per-marginal-cost ratio at
its cheapest tour position, subject to the budget and conflict groups.
This is both a fast standalone solver and the construction step the GRASP
wrapper randomises.  The per-step work is fully vectorised
(:mod:`repro.orienteering._vector`).
"""

from __future__ import annotations

import numpy as np

from repro.orienteering._vector import greedy_fill
from repro.orienteering.problem import OrienteeringInstance, OrienteeringSolution, make_solution
from repro.utils.rng import SeedLike, as_rng


def solve_greedy(instance: OrienteeringInstance) -> OrienteeringSolution:
    """Pure deterministic greedy best-ratio insertion."""
    start = np.array([instance.depot], dtype=int)
    tour = greedy_fill(instance, start)
    return make_solution(instance, tour, "greedy")


def randomized_construct(instance: OrienteeringInstance,
                         seed: SeedLike = None,
                         rcl_size: int = 3) -> np.ndarray:
    """One randomised greedy construction (used by GRASP)."""
    start = np.array([instance.depot], dtype=int)
    return greedy_fill(instance, start, rng=as_rng(seed), rcl_size=rcl_size)


__all__ = ["solve_greedy", "randomized_construct"]
