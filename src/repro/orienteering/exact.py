"""Exact orienteering via Held–Karp-style subset dynamic programming.

For every subset ``S`` of non-depot nodes and endpoint ``j in S`` the DP
computes the cheapest open path ``depot -> ... -> j`` visiting exactly
``S``; a subset is *reachable* when some endpoint's path plus the closing
edge fits the budget.  The optimum is the maximum award over reachable,
conflict-free subsets.

O(2^n * n^2) — the test oracle for the heuristic solvers (n <= ~14).
"""

from __future__ import annotations

import numpy as np

from repro.orienteering.problem import OrienteeringInstance, OrienteeringSolution, make_solution
from repro.utils.errors import InvalidParameterError

#: Subset DP hard limit (memory ~ n * 2^n doubles).
MAX_EXACT_NODES = 18


def solve_exact(instance: OrienteeringInstance) -> OrienteeringSolution:
    """Optimal orienteering solution by subset DP.

    Raises
    ------
    InvalidParameterError
        When the instance has more than :data:`MAX_EXACT_NODES` nodes.
    """
    n = instance.n_nodes
    if n > MAX_EXACT_NODES:
        raise InvalidParameterError(
            f"solve_exact limited to n <= {MAX_EXACT_NODES}, got n = {n}")
    depot = instance.depot
    d = instance.costs
    budget = instance.budget

    others = [v for v in range(n) if v != depot]
    m = len(others)
    if m == 0:
        return make_solution(instance, np.array([depot]), "exact-dp")
    full = 1 << m

    # Conflict masks: one bitmask per conflicting pair (groups of any size
    # decompose into their pairs — "at most one of the group" is exactly
    # "no conflicting pair together").
    group_masks = []
    if instance.has_conflicts:
        pos_of = {v: i for i, v in enumerate(others)}
        seen = set()
        for v in others:
            for u in instance.neighbors_of(v):
                u = int(u)
                pair = (min(v, u), max(v, u))
                if pair in seen:
                    continue
                seen.add(pair)
                if pair[0] in pos_of and pair[1] in pos_of:
                    group_masks.append((1 << pos_of[pair[0]])
                                       | (1 << pos_of[pair[1]]))

    dp = np.full((full, m), np.inf)
    for i, v in enumerate(others):
        dp[1 << i, i] = d[depot, v]
    for mask in range(1, full):
        row = dp[mask]
        live = np.flatnonzero(np.isfinite(row))
        if len(live) == 0:
            continue
        rest = ~mask & (full - 1)
        for i in live:
            base = row[i]
            vi = others[i]
            j = rest
            while j:
                low = j & -j
                k = low.bit_length() - 1
                cand = base + d[vi, others[k]]
                nm = mask | low
                if cand < dp[nm, k]:
                    dp[nm, k] = cand
                j ^= low

    # Closing edge back to the depot, vectorised over endpoints.
    back = np.array([d[v, depot] for v in others])
    close = dp + back[None, :]          # (full, m) total closed-tour costs
    min_close = close.min(axis=1)       # cheapest closed tour per subset

    awards_others = np.array([instance.awards[v] for v in others])
    base_award = float(instance.awards[depot])

    best_award = base_award
    best_mask = 0
    for mask in range(1, full):
        if min_close[mask] > budget + 1e-9:
            continue
        ok = True
        for gm in group_masks:
            if bin(mask & gm).count("1") > 1:
                ok = False
                break
        if not ok:
            continue
        award = base_award
        mm = mask
        while mm:
            low = mm & -mm
            award += awards_others[low.bit_length() - 1]
            mm ^= low
        if award > best_award + 1e-12:
            best_award = award
            best_mask = mask

    if best_mask == 0:
        return make_solution(instance, np.array([depot]), "exact-dp")

    # Reconstruct the cheapest closed tour for the winning subset by
    # re-running parent tracking on that subset only.
    members = [others[i] for i in range(m) if best_mask & (1 << i)]
    tour = _cheapest_closed_tour(instance, members)
    return make_solution(instance, tour, "exact-dp")


def _cheapest_closed_tour(instance: OrienteeringInstance, members) -> np.ndarray:
    """Exact cheapest closed tour through depot + *members* (small sets)."""
    depot = instance.depot
    d = instance.costs
    m = len(members)
    full = 1 << m
    dp = np.full((full, m), np.inf)
    parent = np.full((full, m), -1, dtype=int)
    for i, v in enumerate(members):
        dp[1 << i, i] = d[depot, v]
    for mask in range(1, full):
        row = dp[mask]
        live = np.flatnonzero(np.isfinite(row))
        rest = ~mask & (full - 1)
        for i in live:
            vi = members[i]
            base = row[i]
            j = rest
            while j:
                low = j & -j
                k = low.bit_length() - 1
                cand = base + d[vi, members[k]]
                nm = mask | low
                if cand < dp[nm, k]:
                    dp[nm, k] = cand
                    parent[nm, k] = i
                j ^= low
    totals = dp[full - 1] + np.array([d[v, depot] for v in members])
    best = int(np.argmin(totals))
    order = []
    mask, i = full - 1, best
    while i != -1:
        order.append(members[i])
        pi = parent[mask, i]
        mask ^= 1 << i
        i = pi
    order.reverse()
    return np.array([depot] + order, dtype=int)


__all__ = ["solve_exact", "MAX_EXACT_NODES"]
