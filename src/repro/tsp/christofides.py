"""Christofides' 1.5-approximation for metric TSP (Christofides 1976).

This is the tour subroutine the paper specifies for Algorithm 2/3's
``TSP(S_j)`` evaluations and for the benchmark baseline's initial tour.

Pipeline (implemented from scratch on top of networkx's blossom matching):

1. minimum spanning tree of the complete graph,
2. minimum-weight perfect matching on the odd-degree MST vertices,
3. union multigraph is Eulerian; take an Euler circuit,
4. shortcut repeated vertices (valid by the triangle inequality).

The distance matrix must be (approximately) metric for the 1.5 guarantee;
the function itself works on any symmetric non-negative matrix.
"""

from __future__ import annotations

from typing import Optional

import networkx as nx
import numpy as np
from scipy.sparse.csgraph import minimum_spanning_tree

from repro.obs.tracer import span
from repro.tsp.length import validate_tour
from repro.utils.errors import InvalidParameterError


def _check_matrix(dist: np.ndarray) -> np.ndarray:
    d = np.asarray(dist, dtype=float)
    if d.ndim != 2 or d.shape[0] != d.shape[1]:
        raise InvalidParameterError(f"dist must be square, got shape {d.shape}")
    if not np.isfinite(d).all():
        raise InvalidParameterError("dist contains non-finite entries")
    if (d < 0).any():
        raise InvalidParameterError("dist contains negative entries")
    if not np.allclose(d, d.T, rtol=1e-9, atol=1e-9):
        raise InvalidParameterError("dist must be symmetric")
    return d


def christofides_tour(dist: np.ndarray, start: int = 0,
                      nodes: Optional[np.ndarray] = None) -> np.ndarray:
    """Christofides tour over *nodes* (default all) of the matrix *dist*.

    Parameters
    ----------
    dist:
        Symmetric non-negative ``(n, n)`` distance matrix.
    start:
        Node the returned tour begins at (must be in *nodes*).
    nodes:
        Optional subset of node indices to tour; the planners pass the
        current hovering-location set here so the full matrix is computed
        only once per instance.

    Returns
    -------
    numpy.ndarray
        A permutation of *nodes* beginning at *start*, interpreted as a
        closed tour.
    """
    d = _check_matrix(dist)
    n = d.shape[0]
    pool = np.arange(n) if nodes is None else np.asarray(nodes, dtype=int)
    if len(pool) and (pool.min() < 0 or pool.max() >= n):
        raise InvalidParameterError("nodes contains indices outside the matrix")
    if len(np.unique(pool)) != len(pool):
        raise InvalidParameterError("nodes contains duplicates")
    if start not in pool:
        raise InvalidParameterError(f"start node {start} not in the node set")
    k = len(pool)
    if k <= 2:
        # 1 node: stay put; 2 nodes: out-and-back. Both trivially optimal.
        rest = pool[pool != start]
        return np.concatenate([[start], rest]).astype(int)

    with span("tsp.christofides"):
        sub = d[np.ix_(pool, pool)]

        # 1. MST on the subset (scipy is much faster than nx for dense
        #    input).  scipy's sparse MST treats exact zeros as "no edge",
        #    which would disconnect coincident points; shifting every edge
        #    by a constant leaves the arg-min spanning tree unchanged (all
        #    trees gain the same (k-1)*shift) while keeping zero-length
        #    edges representable.
        shift = max(1.0, float(sub.max()))
        shifted = sub + shift
        np.fill_diagonal(shifted, 0.0)
        mst = minimum_spanning_tree(shifted).toarray()
        mst_sym = mst + mst.T

        degree = (mst_sym > 0).sum(axis=1)
        odd = np.flatnonzero(degree % 2 == 1)
        # Handshake lemma: the number of odd-degree vertices is even.
        assert len(odd) % 2 == 0, "odd-degree vertex count must be even"

        # 2. Min-weight perfect matching on the odd vertices (blossom
        #    algorithm via networkx; min_weight over the complete graph
        #    on `odd`).
        g_odd = nx.Graph()
        g_odd.add_nodes_from(range(len(odd)))
        for a in range(len(odd)):
            for b in range(a + 1, len(odd)):
                g_odd.add_edge(a, b, weight=float(sub[odd[a], odd[b]]))
        matching = nx.min_weight_matching(g_odd)

        # 3. Multigraph = MST + matching edges; it is connected with
        #    all-even degrees, hence Eulerian.
        multi = nx.MultiGraph()
        multi.add_nodes_from(range(k))
        ii, jj = np.nonzero(mst)
        for a, b in zip(ii, jj):
            multi.add_edge(int(a), int(b))
        for a, b in matching:
            multi.add_edge(int(odd[a]), int(odd[b]))
        start_local = int(np.flatnonzero(pool == start)[0])
        circuit = nx.eulerian_circuit(multi, source=start_local)

        # 4. Shortcut: keep the first occurrence of each vertex.
        seen = np.zeros(k, dtype=bool)
        order = []
        for a, _b in circuit:
            if not seen[a]:
                seen[a] = True
                order.append(a)
        # The Euler circuit visits every vertex (connected multigraph).
        assert seen.all(), "Euler circuit missed a vertex"

        tour = pool[np.asarray(order, dtype=int)]
        return validate_tour(tour, n)


__all__ = ["christofides_tour"]
