"""Held–Karp exact TSP dynamic program.

O(n^2 * 2^n) time / O(n * 2^n) memory — practical to about n = 13, which is
exactly what the test suite needs: an optimality oracle to validate
Christofides' 1.5 bound and the local-search improvements on small random
instances.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.utils.errors import InvalidParameterError

#: Hard limit keeping memory below ~1 GB.
MAX_EXACT_NODES = 16


def held_karp(dist: np.ndarray, start: int = 0) -> Tuple[np.ndarray, float]:
    """Optimal closed tour and its length.

    Parameters
    ----------
    dist:
        Symmetric ``(n, n)`` distance matrix with ``n <= 16``.
    start:
        Node the returned tour begins at.

    Returns
    -------
    (tour, length):
        *tour* is a permutation of ``range(n)`` beginning at *start*.
    """
    d = np.asarray(dist, dtype=float)
    n = d.shape[0]
    if d.ndim != 2 or d.shape[0] != d.shape[1]:
        raise InvalidParameterError(f"dist must be square, got {d.shape}")
    if n > MAX_EXACT_NODES:
        raise InvalidParameterError(
            f"held_karp limited to n <= {MAX_EXACT_NODES}, got n = {n}")
    if n == 0:
        return np.empty(0, dtype=int), 0.0
    if not (0 <= start < n):
        raise InvalidParameterError(f"start {start} out of range [0, {n})")
    if n == 1:
        return np.array([start]), 0.0
    if n == 2:
        other = 1 - start
        return np.array([start, other]), float(2 * d[start, other])

    others = [v for v in range(n) if v != start]
    idx_of = {v: i for i, v in enumerate(others)}
    m = len(others)
    full = 1 << m

    # dp[mask, i] = min cost of a path start -> ... -> others[i] visiting
    # exactly the `others` in mask.
    dp = np.full((full, m), np.inf)
    parent = np.full((full, m), -1, dtype=int)
    for i, v in enumerate(others):
        dp[1 << i, i] = d[start, v]
    for mask in range(full):
        row = dp[mask]
        live = np.flatnonzero(np.isfinite(row))
        if len(live) == 0:
            continue
        for i in live:
            base = row[i]
            vi = others[i]
            rest = ~mask & (full - 1)
            j = rest
            while j:
                low = j & -j
                k = low.bit_length() - 1
                new_mask = mask | low
                cand = base + d[vi, others[k]]
                if cand < dp[new_mask, k]:
                    dp[new_mask, k] = cand
                    parent[new_mask, k] = i
                j ^= low
    # Close the tour back to start.
    totals = dp[full - 1] + d[[others[i] for i in range(m)], start]
    best = int(np.argmin(totals))
    length = float(totals[best])

    # Reconstruct.
    order = []
    mask, i = full - 1, best
    while i != -1:
        order.append(others[i])
        pi = parent[mask, i]
        mask ^= (1 << i)
        i = pi
    order.reverse()
    tour = np.array([start] + order, dtype=int)
    return tour, length


__all__ = ["held_karp", "MAX_EXACT_NODES"]
