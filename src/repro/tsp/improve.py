"""Local-search improvement: 2-opt and Or-opt.

Used (a) to polish Christofides tours inside the planners when
``polish=True``, and (b) by the GRASP orienteering solver's intra-route
step.  Both operators are implemented with vectorised gain scans so a full
improvement pass over a tour of length m costs O(m^2) numpy work rather
than O(m^2) Python-loop work.
"""

from __future__ import annotations

import numpy as np

from repro.utils.errors import InvalidParameterError


def _check(tour, dist) -> np.ndarray:
    arr = np.asarray(tour, dtype=int)
    if arr.ndim != 1:
        raise InvalidParameterError("tour must be 1-D")
    return arr


def two_opt(tour, dist: np.ndarray, *, max_rounds: int = 50,
            tol: float = 1e-9) -> np.ndarray:
    """First-improvement 2-opt on a closed tour.

    Repeats full scans until no move improves by more than *tol* or
    *max_rounds* scans elapse.  Returns a new tour array; the input is not
    modified.
    """
    arr = _check(tour, dist).copy()
    m = len(arr)
    if m < 4:
        return arr
    for _ in range(max_rounds):
        improved = False
        # Consider reversing segment arr[i+1 .. j] for 0 <= i < j < m.
        for i in range(m - 2):
            a, b = arr[i], arr[i + 1]
            # Vectorised gain for all j in (i+1, m-1]:
            js = np.arange(i + 2, m)
            c = arr[js]
            d_next = arr[(js + 1) % m]
            # Skip the wrap edge when it coincides with edge (a, b).
            gains = (dist[a, b] + dist[c, d_next]
                     - dist[a, c] - dist[b, d_next])
            if i == 0:
                gains[-1] = -np.inf  # j = m-1 with i = 0 reverses the whole tour
            best = int(np.argmax(gains))
            if gains[best] > tol:
                j = int(js[best])
                arr[i + 1:j + 1] = arr[i + 1:j + 1][::-1]
                improved = True
        if not improved:
            break
    return arr


def or_opt(tour, dist: np.ndarray, *, segment_lengths=(1, 2, 3),
           max_rounds: int = 20, tol: float = 1e-9) -> np.ndarray:
    """Or-opt: relocate short segments (length 1–3) to better positions.

    Complements 2-opt (which cannot move a single vertex between two fixed
    neighbours).  Returns a new tour array.
    """
    arr = _check(tour, dist).copy()
    m = len(arr)
    if m < 5:
        return arr
    for _ in range(max_rounds):
        improved = False
        for seg_len in segment_lengths:
            if seg_len >= m - 2:
                continue
            i = 0
            while i < m:
                # Segment arr[i : i+seg_len] (no wraparound segments; the
                # tour is rotation-invariant so full coverage is achieved
                # over successive rounds).
                if i + seg_len >= m:
                    break
                prev_node = arr[i - 1] if i > 0 else arr[m - 1]
                seg_start, seg_end = arr[i], arr[i + seg_len - 1]
                nxt = arr[(i + seg_len) % m]
                removal_gain = (dist[prev_node, seg_start]
                                + dist[seg_end, nxt]
                                - dist[prev_node, nxt])
                if removal_gain > tol:
                    rest = np.concatenate([arr[:i], arr[i + seg_len:]])
                    seg = arr[i:i + seg_len]
                    r = len(rest)
                    nxt_rest = np.roll(rest, -1)
                    ins_cost = (dist[rest, seg_start] + dist[seg_end, nxt_rest]
                                - dist[rest, nxt_rest])
                    best = int(np.argmin(ins_cost))
                    if ins_cost[best] < removal_gain - tol:
                        pos = best + 1
                        arr = np.concatenate([rest[:pos], seg, rest[pos:]])
                        improved = True
                        i = 0
                        continue
                i += 1
        if not improved:
            break
    return arr


__all__ = ["two_opt", "or_opt"]
