"""Tour representation helpers.

A *tour* is a sequence of distinct node indices; it is interpreted as
closed (the UAV returns from the last node to the first).  All length
computations take a precomputed symmetric ``(n, n)`` distance matrix, which
the planners build once per instance via
:func:`repro.geometry.pairwise_distances`.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.utils.errors import InvalidParameterError


def _as_tour(tour) -> np.ndarray:
    arr = np.asarray(tour, dtype=int)
    if arr.ndim != 1:
        raise InvalidParameterError(f"tour must be 1-D, got shape {arr.shape}")
    return arr


def validate_tour(tour, n: int) -> np.ndarray:
    """Check that *tour* is a sequence of distinct indices in ``[0, n)``.

    Returns the tour as an int array.  An empty tour is valid (the UAV
    never leaves the depot).
    """
    arr = _as_tour(tour)
    if len(arr) == 0:
        return arr
    if arr.min() < 0 or arr.max() >= n:
        raise InvalidParameterError(
            f"tour contains indices outside [0, {n})")
    if len(np.unique(arr)) != len(arr):
        raise InvalidParameterError("tour visits a node more than once")
    return arr


def tour_length_matrix(tour, dist: np.ndarray) -> float:
    """Length of the closed tour under distance matrix *dist*.

    Tours with fewer than two nodes have length zero.
    """
    arr = _as_tour(tour)
    if len(arr) < 2:
        return 0.0
    nxt = np.roll(arr, -1)
    return float(dist[arr, nxt].sum())


def tour_edges(tour) -> List[Tuple[int, int]]:
    """The closed tour's directed edge list ``[(t0,t1), ..., (tk,t0)]``."""
    arr = _as_tour(tour)
    if len(arr) < 2:
        return []
    return [(int(arr[i]), int(arr[(i + 1) % len(arr)])) for i in range(len(arr))]


def rotate_to_start(tour, start: int) -> np.ndarray:
    """Rotate a closed tour so that it begins at node *start*.

    Closed tours are rotation-invariant; planners use this to present tours
    depot-first.  Raises if *start* is not on the tour.
    """
    arr = _as_tour(tour)
    where = np.flatnonzero(arr == start)
    if len(where) == 0:
        raise InvalidParameterError(f"node {start} is not on the tour")
    return np.roll(arr, -int(where[0]))


__all__ = ["validate_tour", "tour_length_matrix", "tour_edges", "rotate_to_start"]
