"""Travelling-salesman toolkit.

Algorithms 2 and 3 call ``TSP(S_j)`` — the length of a closed tour over the
current hovering-location set — inside their selection loop, and both the
paper's Algorithm 2/3 and its benchmark baseline specify **Christofides'
algorithm** for that tour.  This subpackage implements Christofides from
scratch (MST + minimum-weight perfect matching on odd-degree vertices +
Eulerian shortcutting) along with the cheaper constructions and local
search the fast planner mode uses:

* :mod:`repro.tsp.length` — tour representation helpers and length math,
* :mod:`repro.tsp.construct` — nearest-neighbour and cheapest-insertion,
* :mod:`repro.tsp.christofides` — the 1.5-approximation,
* :mod:`repro.tsp.improve` — 2-opt and Or-opt local search,
* :mod:`repro.tsp.exact` — Held–Karp dynamic program (test oracle, n <= 13).

All functions operate on a symmetric distance matrix and index tours
(permutations of ``range(n)``); closed tours are implicit (last node links
back to the first).
"""

from repro.tsp.length import tour_length_matrix, validate_tour, rotate_to_start, tour_edges
from repro.tsp.construct import (
    nearest_neighbor_tour,
    cheapest_insertion_tour,
    insertion_delta,
    best_insertion,
)
from repro.tsp.christofides import christofides_tour
from repro.tsp.improve import two_opt, or_opt
from repro.tsp.exact import held_karp

__all__ = [
    "tour_length_matrix",
    "validate_tour",
    "rotate_to_start",
    "tour_edges",
    "nearest_neighbor_tour",
    "cheapest_insertion_tour",
    "insertion_delta",
    "best_insertion",
    "christofides_tour",
    "two_opt",
    "or_opt",
    "held_karp",
]
