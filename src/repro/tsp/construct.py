"""Construction heuristics: nearest neighbour and cheapest insertion.

Cheapest insertion is the workhorse of the planners' *fast* incremental-TSP
mode: when Algorithm 2/3 evaluate a candidate hovering location they need
``TSP(S ∪ {c}) - TSP(S)`` for every candidate ``c``; the cheapest-insertion
delta gives a tight upper bound in O(|tour|) per candidate and is exact for
the marginal insertion they actually perform.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.utils.errors import InvalidParameterError


def nearest_neighbor_tour(dist: np.ndarray, start: int = 0) -> np.ndarray:
    """Greedy nearest-neighbour tour over all nodes of *dist*.

    Parameters
    ----------
    dist:
        Symmetric ``(n, n)`` distance matrix.
    start:
        Index of the first node (the depot).
    """
    n = len(dist)
    if n == 0:
        return np.empty(0, dtype=int)
    if not (0 <= start < n):
        raise InvalidParameterError(f"start index {start} out of range [0, {n})")
    visited = np.zeros(n, dtype=bool)
    tour = np.empty(n, dtype=int)
    tour[0] = start
    visited[start] = True
    current = start
    for i in range(1, n):
        # Mask visited nodes with +inf, then take the arg-min row lookup.
        row = np.where(visited, np.inf, dist[current])
        current = int(np.argmin(row))
        tour[i] = current
        visited[current] = True
    return tour


def insertion_delta(tour: np.ndarray, dist: np.ndarray, node: int) -> Tuple[float, int]:
    """Cheapest cost increase of inserting *node* into the closed *tour*.

    Returns ``(delta, position)`` where *position* is the index in the tour
    *before which* the node should be inserted (i.e. the new node lands
    between ``tour[position-1]`` and ``tour[position]``, with wraparound).

    Edge cases: an empty tour has delta 0 (tour becomes ``[node]``); a
    single-node tour gains the out-and-back leg ``2 * dist[a, node]``.
    """
    m = len(tour)
    if m == 0:
        return 0.0, 0
    if m == 1:
        return float(2.0 * dist[tour[0], node]), 1
    nxt = np.roll(tour, -1)
    # delta_i = d(tour_i, node) + d(node, tour_{i+1}) - d(tour_i, tour_{i+1})
    deltas = dist[tour, node] + dist[node, nxt] - dist[tour, nxt]
    best = int(np.argmin(deltas))
    return float(deltas[best]), (best + 1) % m if m > 1 else 1


def best_insertion(tour: np.ndarray, dist: np.ndarray, node: int) -> np.ndarray:
    """Insert *node* into *tour* at its cheapest position; returns a new tour."""
    m = len(tour)
    if m == 0:
        return np.array([node], dtype=int)
    _, pos = insertion_delta(tour, dist, node)
    if pos == 0:
        pos = m  # appending at the end is equivalent for a closed tour
    return np.insert(tour, pos, node)


def cheapest_insertion_tour(dist: np.ndarray, start: int = 0,
                            nodes: Optional[Sequence[int]] = None) -> np.ndarray:
    """Cheapest-insertion tour over *nodes* (default: all nodes).

    Starts from the degenerate tour ``[start]`` and repeatedly inserts the
    node whose cheapest insertion is globally cheapest.
    """
    n = len(dist)
    if n == 0:
        return np.empty(0, dtype=int)
    pool = list(range(n)) if nodes is None else [int(v) for v in nodes]
    if start not in pool:
        raise InvalidParameterError("start must be among the nodes to tour")
    if len(set(pool)) != len(pool):
        raise InvalidParameterError("duplicate node in pool")
    remaining = set(pool)
    remaining.discard(start)
    tour = np.array([start], dtype=int)
    while remaining:
        best_node, best_delta, best_pos = -1, np.inf, 0
        for v in remaining:
            delta, pos = insertion_delta(tour, dist, v)
            if delta < best_delta:
                best_node, best_delta, best_pos = v, delta, pos
        pos = best_pos if best_pos != 0 else len(tour)
        tour = np.insert(tour, pos, best_node)
        remaining.discard(best_node)
    return tour


__all__ = [
    "nearest_neighbor_tour",
    "insertion_delta",
    "best_insertion",
    "cheapest_insertion_tour",
]
