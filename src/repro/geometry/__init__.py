"""Planar geometry substrate.

Everything in the paper happens in a rectangular monitoring region: sensor
nodes live on the ground plane, the UAV hovers at altitude ``H`` above grid
squares of edge length ``delta``, and coverage is a disc of radius
``R0 = sqrt(R**2 - H**2)`` projected onto the ground (paper §III-B).

This subpackage provides:

* vectorised Euclidean distance kernels (:mod:`repro.geometry.distance`),
* the δ-grid partition of the region (:mod:`repro.geometry.grid`),
* coverage queries between hovering locations and sensors
  (:mod:`repro.geometry.coverage`), with a KD-tree fast path and a
  brute-force reference used in tests,
* the :class:`~repro.geometry.region.Region` rectangle abstraction.
"""

from repro.geometry.distance import (
    euclidean,
    pairwise_distances,
    cross_distances,
    path_length,
    tour_length,
)
from repro.geometry.grid import GridPartition
from repro.geometry.coverage import (
    CoverageIndex,
    SparseCoverage,
    coverage_sets_bruteforce,
    coverage_matrix,
    projected_radius,
)
from repro.geometry.region import Region

__all__ = [
    "euclidean",
    "pairwise_distances",
    "cross_distances",
    "path_length",
    "tour_length",
    "GridPartition",
    "CoverageIndex",
    "SparseCoverage",
    "coverage_sets_bruteforce",
    "coverage_matrix",
    "projected_radius",
    "Region",
]
