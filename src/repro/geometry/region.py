"""Rectangular monitoring region.

The paper deploys sensors uniformly in a 1000 m x 1000 m square;
:class:`Region` generalises that to any axis-aligned rectangle and provides
the sampling and containment primitives the deployment generators and the
grid partition build on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.errors import InvalidParameterError
from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import check_finite


@dataclass(frozen=True)
class Region:
    """Axis-aligned rectangle ``[xmin, xmax] x [ymin, ymax]``.

    Attributes
    ----------
    xmin, xmax, ymin, ymax:
        Rectangle bounds in metres. ``xmax > xmin`` and ``ymax > ymin``.
    """

    xmin: float = 0.0
    xmax: float = 1000.0
    ymin: float = 0.0
    ymax: float = 1000.0

    def __post_init__(self) -> None:
        for name in ("xmin", "xmax", "ymin", "ymax"):
            check_finite(getattr(self, name), name)
        if self.xmax <= self.xmin or self.ymax <= self.ymin:
            raise InvalidParameterError(
                f"degenerate region: x=[{self.xmin}, {self.xmax}], "
                f"y=[{self.ymin}, {self.ymax}]")

    @classmethod
    def square(cls, side: float, origin: tuple = (0.0, 0.0)) -> "Region":
        """A ``side x side`` square with its lower-left corner at *origin*."""
        ox, oy = float(origin[0]), float(origin[1])
        return cls(ox, ox + float(side), oy, oy + float(side))

    @property
    def width(self) -> float:
        """Extent along x (metres)."""
        return self.xmax - self.xmin

    @property
    def height(self) -> float:
        """Extent along y (metres)."""
        return self.ymax - self.ymin

    @property
    def area(self) -> float:
        """Region area in square metres."""
        return self.width * self.height

    @property
    def center(self) -> np.ndarray:
        """Centre point as a length-2 array."""
        return np.array([(self.xmin + self.xmax) / 2.0,
                         (self.ymin + self.ymax) / 2.0])

    def contains(self, points) -> np.ndarray:
        """Boolean mask of which ``(n, 2)`` *points* fall inside (inclusive)."""
        pts = np.atleast_2d(np.asarray(points, dtype=float))
        return ((pts[:, 0] >= self.xmin) & (pts[:, 0] <= self.xmax)
                & (pts[:, 1] >= self.ymin) & (pts[:, 1] <= self.ymax))

    def sample_uniform(self, n: int, seed: SeedLike = None) -> np.ndarray:
        """Draw *n* points uniformly at random from the region."""
        if n < 0:
            raise InvalidParameterError(f"n must be >= 0, got {n}")
        rng = as_rng(seed)
        xs = rng.uniform(self.xmin, self.xmax, size=n)
        ys = rng.uniform(self.ymin, self.ymax, size=n)
        return np.column_stack([xs, ys])

    def clip(self, points) -> np.ndarray:
        """Clamp ``(n, 2)`` points into the region (used by clustered sampling)."""
        pts = np.atleast_2d(np.asarray(points, dtype=float)).copy()
        pts[:, 0] = np.clip(pts[:, 0], self.xmin, self.xmax)
        pts[:, 1] = np.clip(pts[:, 1], self.ymin, self.ymax)
        return pts


__all__ = ["Region"]
