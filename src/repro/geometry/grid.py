"""δ-grid partition of the monitoring region (paper §IV-A).

The paper makes the set of hovering locations finite by partitioning the
region into ``M`` squares of edge length δ and letting the UAV hover only at
square centres.  :class:`GridPartition` materialises exactly that: it
enumerates square centres, maps arbitrary points to their containing square,
and can prune the candidate set to squares whose centre actually covers at
least one sensor (the paper's bound ``M <= (pi*R0^2/delta^2 + 1)*|V|``
implicitly assumes this pruning).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.region import Region
from repro.utils.errors import InvalidParameterError
from repro.utils.validation import check_points_array, check_positive


@dataclass(frozen=True)
class GridPartition:
    """Partition of a :class:`Region` into squares of edge length ``delta``.

    Squares are indexed row-major: square ``(i, j)`` occupies
    ``[xmin + j*delta, xmin + (j+1)*delta] x [ymin + i*delta, ...]`` and has
    flat index ``i * ncols + j``.  When the region side is not an exact
    multiple of δ, the last row/column of squares sticks out past the region
    boundary (their centres may lie outside); this matches the paper's
    "partition into M squares" without special-casing the border.

    Attributes
    ----------
    region:
        The rectangle being partitioned.
    delta:
        Square edge length in metres (> 0).
    """

    region: Region
    delta: float

    def __post_init__(self) -> None:
        check_positive(self.delta, "delta")
        if self.delta > max(self.region.width, self.region.height):
            # Still legal (a single square covers everything) but worth a
            # defensive check against accidental unit mistakes.
            if self.delta > 10 * max(self.region.width, self.region.height):
                raise InvalidParameterError(
                    f"delta={self.delta} is more than 10x the region extent; "
                    "this is almost certainly a unit error")

    @property
    def ncols(self) -> int:
        """Number of squares along x."""
        return int(np.ceil(self.region.width / self.delta))

    @property
    def nrows(self) -> int:
        """Number of squares along y."""
        return int(np.ceil(self.region.height / self.delta))

    @property
    def num_squares(self) -> int:
        """Total number of squares ``M = nrows * ncols``."""
        return self.nrows * self.ncols

    def centers(self) -> np.ndarray:
        """Centres of all squares as an ``(M, 2)`` array in flat-index order."""
        half = self.delta / 2.0
        xs = self.region.xmin + half + self.delta * np.arange(self.ncols)
        ys = self.region.ymin + half + self.delta * np.arange(self.nrows)
        gx, gy = np.meshgrid(xs, ys)  # gy varies along rows (i), gx along cols (j)
        return np.column_stack([gx.ravel(), gy.ravel()])

    def flat_index(self, points) -> np.ndarray:
        """Flat square index for each of ``(n, 2)`` *points*.

        Points outside the region are clamped to the border squares, matching
        how a depot slightly outside the grid is snapped in the planners.
        """
        pts = check_points_array(points, "points")
        col = np.floor((pts[:, 0] - self.region.xmin) / self.delta).astype(int)
        row = np.floor((pts[:, 1] - self.region.ymin) / self.delta).astype(int)
        col = np.clip(col, 0, self.ncols - 1)
        row = np.clip(row, 0, self.nrows - 1)
        return row * self.ncols + col

    def center_of(self, flat_idx) -> np.ndarray:
        """Centre coordinates of squares given by *flat_idx* (scalar or array)."""
        idx = np.atleast_1d(np.asarray(flat_idx, dtype=int))
        if (idx < 0).any() or (idx >= self.num_squares).any():
            raise InvalidParameterError(
                f"flat index out of range [0, {self.num_squares})")
        row, col = np.divmod(idx, self.ncols)
        half = self.delta / 2.0
        out = np.column_stack([
            self.region.xmin + half + self.delta * col,
            self.region.ymin + half + self.delta * row,
        ])
        return out if np.ndim(flat_idx) else out[0]

    def candidate_centers(self, sensor_points, radius: float) -> np.ndarray:
        """Centres of squares whose centre covers >= 1 sensor within *radius*.

        This is the pruning step that keeps the candidate hovering-location
        set ``S`` linear in ``|V|`` (paper §IV-A): a square whose centre is
        farther than ``R0`` from every sensor can never collect anything, so
        it is dropped.  Returns an ``(m, 2)`` array of surviving centres.
        """
        check_positive(radius, "radius")
        sensors = check_points_array(sensor_points, "sensor_points")
        centers = self.centers()
        if len(sensors) == 0:
            return centers[:0]
        # KD-tree query: for each centre, is any sensor within `radius`?
        from scipy.spatial import cKDTree

        tree = cKDTree(sensors)
        dist, _ = tree.query(centers, k=1)
        return centers[dist <= radius]


__all__ = ["GridPartition"]
