"""Vectorised Euclidean distance kernels.

These are the hot inner loops of every planner in the library (TSP deltas,
orienteering edge weights, coverage pre-filtering), so they are written as
single numpy expressions over ``(n, 2)`` arrays — no Python-level loops —
following the broadcasting/vectorisation idioms of the scientific-Python
optimisation guide.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_points_array


def euclidean(a, b) -> float:
    """Euclidean distance between two planar points.

    Parameters
    ----------
    a, b:
        Length-2 sequences ``(x, y)``.
    """
    ax, ay = float(a[0]), float(a[1])
    bx, by = float(b[0]), float(b[1])
    return float(np.hypot(ax - bx, ay - by))


def pairwise_distances(points) -> np.ndarray:
    """Full symmetric ``(n, n)`` distance matrix for ``(n, 2)`` *points*.

    The result is exactly symmetric with a zero diagonal; the computation
    broadcasts each coordinate separately and accumulates in place —
    ``sqrt(dx*dx + dy*dy)`` is bitwise-identical to the einsum-over-
    ``(n, n, 2)`` formulation it replaces (same two products summed in
    the same order) at a third of the memory traffic, which is what the
    paper-scale auxiliary-graph build is bound by.  No symmetrization
    pass is needed: IEEE-754 subtraction is exactly sign-symmetric
    (``fl(a-b) == -fl(b-a)``), so ``dx*dx``, ``dy*dy``, their sum, and
    the square root are already bitwise symmetric, and the diagonal is
    an exact ``0.0`` (``fl(a-a) == 0``).
    """
    pts = check_points_array(points, "points")
    dx = pts[:, 0, None] - pts[None, :, 0]
    dy = pts[:, 1, None] - pts[None, :, 1]
    dx *= dx
    dy *= dy
    dx += dy
    return np.sqrt(dx, out=dx)


def cross_distances(a, b) -> np.ndarray:
    """Distances between every point in *a* and every point in *b*.

    Returns an ``(len(a), len(b))`` array.  Used e.g. to score all candidate
    hovering locations against the nodes of the current tour in one shot.
    """
    pa = check_points_array(a, "a")
    pb = check_points_array(b, "b")
    dx = pa[:, 0, None] - pb[None, :, 0]
    dy = pa[:, 1, None] - pb[None, :, 1]
    dx *= dx
    dy *= dy
    dx += dy
    return np.sqrt(dx, out=dx)


def path_length(points) -> float:
    """Length of the open polyline visiting *points* in order."""
    pts = check_points_array(points, "points")
    if len(pts) < 2:
        return 0.0
    seg = np.diff(pts, axis=0)
    return float(np.hypot(seg[:, 0], seg[:, 1]).sum())


def tour_length(points) -> float:
    """Length of the closed tour visiting *points* in order and returning.

    A tour on fewer than two points has length zero.
    """
    pts = check_points_array(points, "points")
    if len(pts) < 2:
        return 0.0
    rolled = np.roll(pts, -1, axis=0)
    seg = rolled - pts
    return float(np.hypot(seg[:, 0], seg[:, 1]).sum())


__all__ = [
    "euclidean",
    "pairwise_distances",
    "cross_distances",
    "path_length",
    "tour_length",
]
