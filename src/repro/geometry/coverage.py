"""Coverage queries between hovering locations and ground sensors.

The UAV at hovering location ``s_j = (x_j, y_j, H)`` covers sensor
``v_i = (x_i, y_i, 0)`` iff the ground distance is at most
``R0 = sqrt(R^2 - H^2)`` (paper Fig. 1(b)).  This module provides:

* :func:`projected_radius` — the ``R0`` law,
* :class:`CoverageIndex` — a KD-tree-backed index answering "which sensors
  does each candidate cover" in bulk,
* :func:`coverage_sets_bruteforce` — an O(n*m) reference implementation the
  tests cross-check the index against,
* :func:`coverage_matrix` — a dense boolean (candidates x sensors) matrix
  used by the vectorised planners.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

import numpy as np
from scipy.spatial import cKDTree

from repro.utils.errors import InvalidParameterError
from repro.utils.validation import check_non_negative, check_points_array, check_positive


def projected_radius(transmission_range: float, altitude: float) -> float:
    """Ground-projected coverage radius ``R0 = sqrt(R**2 - H**2)``.

    Parameters
    ----------
    transmission_range:
        Sensor transmission range ``R`` in metres (> 0).
    altitude:
        UAV hovering altitude ``H`` in metres, with ``0 <= H <= R``
        (paper §III-B requires ``H <= R``).

    Raises
    ------
    InvalidParameterError
        If ``H > R`` — the UAV would be out of every sensor's range.
    """
    r = check_positive(transmission_range, "transmission_range")
    h = check_non_negative(altitude, "altitude")
    if h > r:
        raise InvalidParameterError(
            f"altitude H={h} exceeds transmission range R={r}; "
            "the paper requires H <= R")
    return math.sqrt(r * r - h * h)


def coverage_sets_bruteforce(candidates, sensors, radius: float) -> List[np.ndarray]:
    """Reference implementation: sensor indices covered by each candidate.

    Pure O(n*m) broadcasting; used as the oracle in property tests.
    Boundary convention: a sensor exactly at distance ``radius`` IS covered
    (the paper uses ``<=`` throughout).
    """
    cands = check_points_array(candidates, "candidates")
    sens = check_points_array(sensors, "sensors")
    check_positive(radius, "radius")
    if len(sens) == 0:
        return [np.empty(0, dtype=int) for _ in range(len(cands))]
    diff = cands[:, None, :] - sens[None, :, :]
    d2 = np.einsum("ijk,ijk->ij", diff, diff)
    mask = d2 <= radius * radius
    return [np.flatnonzero(row) for row in mask]


def coverage_matrix(candidates, sensors, radius: float) -> np.ndarray:
    """Dense boolean matrix ``cov[c, v] = (candidate c covers sensor v)``.

    For the library's working sizes (tens of thousands of candidates x a few
    hundred sensors) the dense boolean matrix is a few megabytes and lets the
    planners compute all candidate awards with single matrix-vector products.
    """
    cands = check_points_array(candidates, "candidates")
    sens = check_points_array(sensors, "sensors")
    check_positive(radius, "radius")
    cov = np.zeros((len(cands), len(sens)), dtype=bool)
    if len(sens) == 0 or len(cands) == 0:
        return cov
    tree = cKDTree(sens)
    neighbors = tree.query_ball_point(cands, r=radius)
    for ci, idx in enumerate(neighbors):
        if idx:
            cov[ci, idx] = True
    return cov


@dataclass(frozen=True)
class SparseCoverage:
    """CSR view of a boolean coverage matrix, plus its transpose.

    Built once per instance; the incremental planner kernel
    (:mod:`repro.core.kernel`) walks these index arrays instead of
    materialising ``(m, n)`` temporaries on every greedy step:

    * ``site_indptr`` / ``site_indices`` — row ``j`` of the matrix, i.e.
      the sorted sensor indices covered by candidate site ``j``;
    * ``sensor_indptr`` / ``sensor_indices`` — the transpose: the sorted
      site indices covering sensor ``v`` (the dirty-set propagation
      direction — "which candidates must be rescored when ``v`` drains").
    """

    n_sites: int
    n_sensors: int
    site_indptr: np.ndarray
    site_indices: np.ndarray
    sensor_indptr: np.ndarray
    sensor_indices: np.ndarray

    @classmethod
    def from_matrix(cls, cov: np.ndarray) -> "SparseCoverage":
        """Build both CSR directions from a dense boolean ``(m, n)`` matrix."""
        cov = np.asarray(cov, dtype=bool)
        if cov.ndim != 2:
            raise InvalidParameterError(
                f"coverage matrix must be 2-D, got shape {cov.shape}")
        m, n = cov.shape
        rows, cols = np.nonzero(cov)          # row-major ⇒ cols sorted per row
        site_indptr = np.zeros(m + 1, dtype=np.int64)
        np.cumsum(np.bincount(rows, minlength=m), out=site_indptr[1:])
        tcols, trows = np.nonzero(cov.T)      # transpose walk, same trick
        sensor_indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(tcols, minlength=n), out=sensor_indptr[1:])
        return cls(n_sites=m, n_sensors=n,
                   site_indptr=site_indptr, site_indices=cols,
                   sensor_indptr=sensor_indptr, sensor_indices=trows)

    @property
    def nnz(self) -> int:
        """Number of (site, sensor) coverage pairs."""
        return len(self.site_indices)

    def sensors_of(self, site: int) -> np.ndarray:
        """Sorted sensor indices covered by *site* (CSR row slice)."""
        return self.site_indices[self.site_indptr[site]:
                                 self.site_indptr[site + 1]]

    def sites_of(self, sensor: int) -> np.ndarray:
        """Sorted site indices covering *sensor* (transpose row slice)."""
        return self.sensor_indices[self.sensor_indptr[sensor]:
                                   self.sensor_indptr[sensor + 1]]

    def sites_covering(self, sensors: np.ndarray) -> np.ndarray:
        """Sorted unique site indices covering any of *sensors*.

        This is the dirty set of one greedy selection: the only candidates
        whose residual award / hover time can have changed.
        """
        sensors = np.asarray(sensors, dtype=np.int64)
        if len(sensors) == 0:
            return np.empty(0, dtype=np.int64)
        lengths = self.sensor_indptr[sensors + 1] - self.sensor_indptr[sensors]
        total = int(lengths.sum())
        if total == 0:
            return np.empty(0, dtype=np.int64)
        # Gather all transpose segments in one flat index expression.
        flat = np.repeat(self.sensor_indptr[sensors]
                         - np.cumsum(lengths) + lengths, lengths) \
            + np.arange(total)
        return np.unique(self.sensor_indices[flat])

    def gather(self, sites: np.ndarray) -> tuple:
        """Segment gather for a batch of site rows.

        Returns ``(flat, starts, lengths)`` where ``flat`` indexes the
        concatenated sensor lists of *sites* into ``site_indices`` and
        ``starts`` are the segment boundaries usable with ``np.add.reduceat``
        / ``np.maximum.reduceat`` (callers must mask zero-length segments).
        """
        sites = np.asarray(sites, dtype=np.int64)
        lengths = self.site_indptr[sites + 1] - self.site_indptr[sites]
        total = int(lengths.sum())
        if total == 0:
            return (np.empty(0, dtype=np.int64),
                    np.zeros(len(sites), dtype=np.int64), lengths)
        flat = np.repeat(self.site_indptr[sites]
                         - np.cumsum(lengths) + lengths, lengths) \
            + np.arange(total)
        starts = np.concatenate(([0], np.cumsum(lengths)[:-1]))
        return self.site_indices[flat], starts, lengths


class CoverageIndex:
    """KD-tree index over sensors supporting bulk coverage queries.

    Parameters
    ----------
    sensors:
        ``(n, 2)`` ground coordinates of the sensors.
    radius:
        Coverage radius ``R0`` in metres.

    Notes
    -----
    The index is immutable after construction; planners that need residual
    data volumes track those separately and use the index only for geometry.
    """

    def __init__(self, sensors, radius: float) -> None:
        self._sensors = check_points_array(sensors, "sensors")
        self._radius = check_positive(radius, "radius")
        self._tree = cKDTree(self._sensors) if len(self._sensors) else None

    @property
    def sensors(self) -> np.ndarray:
        """The indexed sensor coordinates (read-only view)."""
        v = self._sensors.view()
        v.flags.writeable = False
        return v

    @property
    def radius(self) -> float:
        """Coverage radius ``R0``."""
        return self._radius

    def __len__(self) -> int:
        return len(self._sensors)

    def covered_by(self, candidates) -> List[np.ndarray]:
        """Sorted sensor indices covered by each of ``(m, 2)`` *candidates*."""
        cands = check_points_array(candidates, "candidates")
        if self._tree is None:
            return [np.empty(0, dtype=int) for _ in range(len(cands))]
        hits = self._tree.query_ball_point(cands, r=self._radius)
        return [np.asarray(sorted(h), dtype=int) for h in hits]

    def covered_by_single(self, point) -> np.ndarray:
        """Sensor indices covered from one hovering point ``(x, y)``."""
        return self.covered_by(np.asarray(point, dtype=float).reshape(1, 2))[0]

    def covering_candidates(self, candidates) -> np.ndarray:
        """Boolean mask over *candidates*: covers at least one sensor."""
        cands = check_points_array(candidates, "candidates")
        if self._tree is None:
            return np.zeros(len(cands), dtype=bool)
        dist, _ = self._tree.query(cands, k=1)
        return dist <= self._radius

    def matrix(self, candidates) -> np.ndarray:
        """Dense boolean coverage matrix for *candidates* (see module docs)."""
        return coverage_matrix(candidates, self._sensors, self._radius)


__all__ = [
    "projected_radius",
    "coverage_sets_bruteforce",
    "coverage_matrix",
    "CoverageIndex",
    "SparseCoverage",
]
