"""Shared utilities: errors, RNG handling, argument validation, timing.

These helpers are deliberately small and dependency-free so that every
other subpackage can import them without risk of circular imports.
"""

from repro.utils.errors import ReproError, InfeasibleTourError, InvalidParameterError
from repro.utils.rng import as_rng, spawn_rngs
from repro.utils.timing import Timer
from repro.utils.validation import (
    check_finite,
    check_positive,
    check_non_negative,
    check_in_range,
    check_integer,
)

__all__ = [
    "ReproError",
    "InfeasibleTourError",
    "InvalidParameterError",
    "as_rng",
    "spawn_rngs",
    "Timer",
    "check_finite",
    "check_positive",
    "check_non_negative",
    "check_in_range",
    "check_integer",
]
