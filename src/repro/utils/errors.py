"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised intentionally by this library derive from
:class:`ReproError`, so callers can catch library-specific failures with a
single ``except ReproError`` clause while letting genuine bugs propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class InvalidParameterError(ReproError, ValueError):
    """A user-supplied parameter is outside its documented domain.

    Subclasses :class:`ValueError` so that generic callers that expect the
    standard library convention keep working.
    """


class InfeasibleTourError(ReproError):
    """A tour violates the UAV energy budget or structural constraints.

    Raised by validators in :mod:`repro.core.tour` and by the execution
    simulator in :mod:`repro.sim` when a planned tour cannot be flown.
    """

    def __init__(self, message: str, *, required: float | None = None,
                 available: float | None = None) -> None:
        super().__init__(message)
        #: Energy (J) the tour would need, when known.
        self.required = required
        #: Energy (J) the UAV battery holds, when known.
        self.available = available


__all__ = ["ReproError", "InvalidParameterError", "InfeasibleTourError"]
