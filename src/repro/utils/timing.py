"""Wall-clock timing helper used by the experiment harness.

The paper reports per-algorithm running times (Figs. 3(b), 4(b), 5(b));
:class:`Timer` provides the measurement primitive with a context-manager
interface so runners can write ``with Timer() as t: ...; t.elapsed``.
"""

from __future__ import annotations

import time
from typing import Optional


class Timer:
    """Context manager measuring elapsed wall-clock seconds.

    Examples
    --------
    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self._elapsed: Optional[float] = None

    def __enter__(self) -> "Timer":
        if self.running:
            # Nested re-entry would silently restart the clock and corrupt
            # the outer measurement; sequential reuse stays allowed.
            raise RuntimeError("Timer is already running; "
                               "use a separate Timer for nested timing")
        self._start = time.perf_counter()
        self._elapsed = None
        return self

    def __exit__(self, *exc_info: object) -> None:
        assert self._start is not None
        self._elapsed = time.perf_counter() - self._start

    @property
    def running(self) -> bool:
        """True while inside the ``with`` block."""
        return self._start is not None and self._elapsed is None

    @property
    def elapsed(self) -> float:
        """Elapsed seconds; live value while running, frozen after exit."""
        if self._start is None:
            raise RuntimeError("Timer was never started")
        if self._elapsed is None:
            return time.perf_counter() - self._start
        return self._elapsed


__all__ = ["Timer"]
