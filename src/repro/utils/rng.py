"""Random-number-generator plumbing.

Every stochastic entry point in the library accepts a ``seed`` argument that
may be ``None``, an ``int``, or an already-constructed
:class:`numpy.random.Generator`.  :func:`as_rng` normalises all three to a
``Generator`` so downstream code never has to branch on the type, and
:func:`spawn_rngs` derives independent child generators for repeated trials
(one per network instance, matching the paper's "15 instances per point").
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *seed*.

    Parameters
    ----------
    seed:
        ``None`` (fresh OS entropy), an integer seed, a ``SeedSequence``,
        or an existing ``Generator`` (returned unchanged).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, n: int) -> Sequence[np.random.Generator]:
    """Derive *n* statistically independent generators from *seed*.

    Uses :class:`numpy.random.SeedSequence` spawning, which guarantees the
    children do not overlap even when *seed* is ``None``.

    Raises
    ------
    ValueError
        If ``n`` is negative.
    """
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of RNGs: {n}")
    if isinstance(seed, np.random.Generator):
        # Derive children from the generator's own bit stream.
        seeds = seed.integers(0, 2**63 - 1, size=n)
        return [np.random.default_rng(int(s)) for s in seeds]
    ss = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in ss.spawn(n)]


def rng_state_fingerprint(rng: np.random.Generator) -> int:
    """Cheap fingerprint of a generator's state (for test determinism checks)."""
    state = rng.bit_generator.state
    return hash(repr(state))


__all__ = ["SeedLike", "as_rng", "spawn_rngs", "rng_state_fingerprint"]
