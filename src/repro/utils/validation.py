"""Small argument-validation helpers used across the library.

Each helper raises :class:`repro.utils.errors.InvalidParameterError` with a
message that names the offending parameter, which makes configuration
mistakes in experiment sweeps immediately diagnosable.
"""

from __future__ import annotations

import math
import numbers
from typing import Any

import numpy as np

from repro.utils.errors import InvalidParameterError


def check_finite(value: Any, name: str) -> float:
    """Ensure *value* is a finite real number and return it as ``float``."""
    if not isinstance(value, numbers.Real) or isinstance(value, bool):
        raise InvalidParameterError(f"{name} must be a real number, got {value!r}")
    v = float(value)
    if not math.isfinite(v):
        raise InvalidParameterError(f"{name} must be finite, got {value!r}")
    return v


def check_positive(value: Any, name: str) -> float:
    """Ensure *value* is finite and strictly positive."""
    v = check_finite(value, name)
    if v <= 0:
        raise InvalidParameterError(f"{name} must be > 0, got {value!r}")
    return v


def check_non_negative(value: Any, name: str) -> float:
    """Ensure *value* is finite and >= 0."""
    v = check_finite(value, name)
    if v < 0:
        raise InvalidParameterError(f"{name} must be >= 0, got {value!r}")
    return v


def check_in_range(value: Any, name: str, low: float, high: float, *,
                   inclusive: bool = True) -> float:
    """Ensure ``low <= value <= high`` (or strict when ``inclusive=False``)."""
    v = check_finite(value, name)
    if inclusive:
        if not (low <= v <= high):
            raise InvalidParameterError(
                f"{name} must be in [{low}, {high}], got {value!r}")
    else:
        if not (low < v < high):
            raise InvalidParameterError(
                f"{name} must be in ({low}, {high}), got {value!r}")
    return v


def check_integer(value: Any, name: str, *, minimum: int | None = None) -> int:
    """Ensure *value* is an integer (or integral float) and return ``int``."""
    if isinstance(value, bool):
        raise InvalidParameterError(f"{name} must be an integer, got {value!r}")
    if isinstance(value, (int, np.integer)):
        v = int(value)
    elif isinstance(value, float) and value.is_integer():
        v = int(value)
    else:
        raise InvalidParameterError(f"{name} must be an integer, got {value!r}")
    if minimum is not None and v < minimum:
        raise InvalidParameterError(f"{name} must be >= {minimum}, got {value!r}")
    return v


def check_points_array(points: Any, name: str) -> np.ndarray:
    """Validate and coerce an ``(n, 2)`` float array of planar coordinates."""
    arr = np.asarray(points, dtype=float)
    if arr.ndim == 1 and arr.size == 2:
        arr = arr.reshape(1, 2)
    elif arr.size == 0:
        arr = arr.reshape(0, 2)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise InvalidParameterError(
            f"{name} must have shape (n, 2), got shape {arr.shape}")
    if not np.isfinite(arr).all():
        raise InvalidParameterError(f"{name} contains non-finite coordinates")
    return arr


__all__ = [
    "check_finite",
    "check_positive",
    "check_non_negative",
    "check_in_range",
    "check_integer",
    "check_points_array",
]
