"""Append-only energy account for a UAV mission.

The execution simulator (:mod:`repro.sim`) debits the ledger once per
flight leg and once per hover; validators then assert that the planner's
claimed energy matches the ledger total and that the battery never goes
negative mid-mission.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Literal

from repro.energy.model import EnergyModel
from repro.utils.errors import InfeasibleTourError, InvalidParameterError
from repro.utils.validation import check_non_negative

Activity = Literal["travel", "hover"]


@dataclass(frozen=True)
class LedgerEntry:
    """One debit: activity kind, duration (s), and energy (J)."""

    activity: Activity
    duration: float
    energy: float
    note: str = ""


class EnergyLedger:
    """Tracks UAV energy consumption against a battery capacity.

    Parameters
    ----------
    model:
        The :class:`EnergyModel` whose capacity bounds the mission.
    strict:
        When True (default), a debit that would overdraw the battery raises
        :class:`InfeasibleTourError`; when False it is recorded and the
        ledger merely reports :attr:`overdrawn`.
    """

    def __init__(self, model: EnergyModel, *, strict: bool = True) -> None:
        if not isinstance(model, EnergyModel):
            raise InvalidParameterError("model must be an EnergyModel")
        self._model = model
        self._strict = strict
        self._entries: List[LedgerEntry] = []
        self._spent = 0.0

    @property
    def model(self) -> EnergyModel:
        """The governing energy model."""
        return self._model

    @property
    def entries(self) -> List[LedgerEntry]:
        """Immutable view of recorded debits (a copy)."""
        return list(self._entries)

    @property
    def spent(self) -> float:
        """Total joules debited so far."""
        return self._spent

    @property
    def remaining(self) -> float:
        """Joules left in the battery (may be negative when non-strict)."""
        return self._model.capacity - self._spent

    @property
    def overdrawn(self) -> bool:
        """True when spending exceeds capacity (possible only when non-strict)."""
        return self._spent > self._model.capacity + 1e-9

    @property
    def travel_time(self) -> float:
        """Total seconds spent travelling."""
        return sum(e.duration for e in self._entries if e.activity == "travel")

    @property
    def hover_time(self) -> float:
        """Total seconds spent hovering."""
        return sum(e.duration for e in self._entries if e.activity == "hover")

    def _debit(self, entry: LedgerEntry) -> None:
        new_spent = self._spent + entry.energy
        if self._strict and new_spent > self._model.capacity + 1e-9:
            raise InfeasibleTourError(
                f"energy overdraw: {entry.activity} of {entry.energy:.1f} J "
                f"would exceed capacity {self._model.capacity:.1f} J "
                f"(spent {self._spent:.1f} J)",
                required=new_spent, available=self._model.capacity)
        self._entries.append(entry)
        self._spent = new_spent

    def debit_travel(self, distance: float, note: str = "") -> LedgerEntry:
        """Record a flight leg of *distance* metres; returns the entry."""
        check_non_negative(distance, "distance")
        entry = LedgerEntry("travel", self._model.travel_time(distance),
                            self._model.travel_energy(distance), note)
        self._debit(entry)
        return entry

    def debit_hover(self, duration: float, note: str = "") -> LedgerEntry:
        """Record a hover of *duration* seconds; returns the entry."""
        check_non_negative(duration, "duration")
        entry = LedgerEntry("hover", duration,
                            self._model.hover_energy(duration), note)
        self._debit(entry)
        return entry


__all__ = ["EnergyLedger", "LedgerEntry", "Activity"]
