"""UAV energy substrate.

The UAV spends energy on exactly two activities (paper §III-A):
hovering at rate ``eta_h`` (J/s) and travelling at rate ``eta_t`` (J/s),
flying at constant speed.  The tour constraint is
``T_h * eta_h + T_t * eta_t <= E``.

* :mod:`repro.energy.model` — :class:`EnergyModel` with the rate constants
  and the energy⇄time⇄distance conversions every planner uses,
* :mod:`repro.energy.ledger` — :class:`EnergyLedger`, an append-only
  per-leg account used by the execution simulator and the validators,
* :data:`PAPER_ENERGY_MODEL` — the paper's §VII-A setting
  (E = 3e5 J, speed 10 m/s, eta_t = 100 J/s, eta_h = 150 J/s, which the
  paper attributes to a DJI Phantom 4 Pro class airframe).
"""

from repro.energy.model import EnergyModel, PAPER_ENERGY_MODEL, PAPER_LITERAL_ENERGY_MODEL
from repro.energy.ledger import EnergyLedger, LedgerEntry

__all__ = ["EnergyModel", "PAPER_ENERGY_MODEL", "PAPER_LITERAL_ENERGY_MODEL",
           "EnergyLedger", "LedgerEntry"]
