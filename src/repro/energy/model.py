"""UAV energy model (paper §III-A and §VII-A).

All planners reason about energy through this one dataclass so the unit
conversions live in a single place:

* travelling a distance ``l`` metres takes ``l / speed`` seconds and costs
  ``(l / speed) * eta_t`` joules — i.e. ``eta_t / speed`` J/m — under the
  *physical* reading of the paper's "eta_t = 100 J/s at 10 m/s".
* hovering ``t`` seconds costs ``t * eta_h`` joules.

The paper's equations, however, write the travel term as ``l * eta_t``
(Eq. 9) with no division by speed, and its reported absolute volumes
(e.g. Fig. 4's 132.8 GB of a ~275 GB instance at E = 3e5 J) are only
reachable if travel really costs ~100 J per *metre* — ten times the
physical reading.  Both readings are supported via
:attr:`EnergyModel.distance_based_travel`:

* ``False`` (default) — physical: ``eta_t / speed`` J/m;
* ``True`` (paper-literal) — ``eta_t`` J/m, reproducing the paper's
  energy regime at its stated parameters (used by the ``paper`` experiment
  preset; see EXPERIMENTS.md).

Travel *time* is ``l / speed`` under both readings.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.utils.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class EnergyModel:
    """Energy parameters of the UAV.

    Attributes
    ----------
    capacity:
        Battery capacity ``E`` in joules.
    hover_power:
        Hovering consumption rate ``eta_h`` in J/s.
    travel_power:
        Travelling consumption rate ``eta_t`` — J/s under the physical
        reading, J/m under the paper-literal reading (see below).
    speed:
        Constant flying speed in m/s.
    distance_based_travel:
        When True, travel costs ``eta_t`` joules per *metre* (the paper's
        Eq. 9 read literally); when False (default), ``eta_t / speed``
        joules per metre (the physical J/s reading).
    """

    capacity: float
    hover_power: float
    travel_power: float
    speed: float
    distance_based_travel: bool = False

    def __post_init__(self) -> None:
        check_positive(self.capacity, "capacity")
        check_positive(self.hover_power, "hover_power")
        check_positive(self.travel_power, "travel_power")
        check_positive(self.speed, "speed")

    @property
    def travel_cost_per_meter(self) -> float:
        """Joules consumed per metre of flight (see class docstring)."""
        if self.distance_based_travel:
            return self.travel_power
        return self.travel_power / self.speed

    def travel_time(self, distance: float) -> float:
        """Seconds to fly *distance* metres (reading-independent)."""
        return check_non_negative(distance, "distance") / self.speed

    def travel_energy(self, distance: float) -> float:
        """Joules to fly *distance* metres."""
        return check_non_negative(distance, "distance") * self.travel_cost_per_meter

    def hover_energy(self, duration: float) -> float:
        """Joules to hover for *duration* seconds."""
        return check_non_negative(duration, "duration") * self.hover_power

    def tour_energy(self, travel_distance: float, hover_duration: float) -> float:
        """Total joules for a tour with the given travel/hover totals."""
        return (self.travel_energy(travel_distance)
                + self.hover_energy(hover_duration))

    def max_travel_distance(self) -> float:
        """Longest flyable distance (metres) with zero hovering."""
        return self.capacity / self.travel_cost_per_meter

    def max_hover_duration(self) -> float:
        """Longest hover (seconds) with zero travelling."""
        return self.capacity / self.hover_power

    def remaining_hover_time(self, travel_distance: float) -> float:
        """Hover seconds affordable after flying *travel_distance* metres.

        Returns a negative number when the travel alone already exceeds the
        budget, which callers use as an infeasibility signal.
        """
        return (self.capacity - self.travel_energy(travel_distance)) / self.hover_power

    def with_capacity(self, capacity: float) -> "EnergyModel":
        """A copy with a different battery capacity (used in the E sweeps)."""
        return replace(self, capacity=capacity)


#: Paper §VII-A defaults under the physical reading: 3e5 J battery, 10 m/s,
#: eta_t = 100 J/s, eta_h = 150 J/s.
PAPER_ENERGY_MODEL = EnergyModel(capacity=3e5, hover_power=150.0,
                                 travel_power=100.0, speed=10.0)

#: The same parameters under the paper-literal Eq. 9 reading (eta_t J/m) —
#: this is the regime the paper's absolute figures live in.
PAPER_LITERAL_ENERGY_MODEL = EnergyModel(capacity=3e5, hover_power=150.0,
                                         travel_power=100.0, speed=10.0,
                                         distance_based_travel=True)

__all__ = ["EnergyModel", "PAPER_ENERGY_MODEL", "PAPER_LITERAL_ENERGY_MODEL"]
