"""Per-worker trace shards and their merge into one trace.

The parallel sweep executor (:mod:`repro.experiments.parallel`) cannot
share one :class:`~repro.obs.tracer.Tracer` across processes, so each
worker appends its finished spans to a private JSONL *shard* file —
``trace-shard-<worker id>.jsonl`` in a directory the parent owns — and
the parent merges the shards into a single span-record list after the
sweep completes.  The merge:

* orders shards deterministically — by the smallest ``cell`` attribute
  recorded in the shard (every ``runner.cell`` span carries its cell
  index), falling back to the shard filename — so the merged trace does
  not depend on worker pids or completion order;
* re-identifies every span into one contiguous id space and remaps
  parent links shard-locally, so ids never collide across workers;
* preserves each shard's internal record order (children before parents,
  the Chrome ``trace_event`` completion order the exporters expect).

Timestamps stay worker-relative (each worker has its own tracer epoch);
spans keep the ``worker`` attribute the executor stamps on them so a
flame-chart viewer can still group lanes per process.

The same shard-file discipline carries the run **ledger** across the
pool: workers append their :class:`~repro.obs.record.RunRecord` dicts to
``ledger-shard-<worker id>.jsonl`` files (the ``kind`` parameter selects
the filename family) and :func:`merge_ledger_shards` merges them in
canonical cell order — no id rebasing needed, records are self-contained.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, Iterable, List, Sequence, Tuple, Union

from repro.obs.export import read_jsonl, write_jsonl

#: Default shard filename pattern inside a shard directory (trace spans).
SHARD_PREFIX = "trace-shard-"
SHARD_SUFFIX = ".jsonl"

PathLike = Union[str, Path]


def _prefix(kind: str) -> str:
    """The filename prefix of one shard family (``trace``, ``ledger``)."""
    return f"{kind}-shard-"


def shard_path(directory: PathLike, worker_id: Union[int, str],
               kind: str = "trace") -> Path:
    """The *kind* shard file for *worker_id* inside *directory*."""
    return Path(directory) / f"{_prefix(kind)}{worker_id}{SHARD_SUFFIX}"


def append_shard(records: Iterable[Dict[str, Any]], path: PathLike) -> int:
    """Append span *records* to the shard at *path*; returns count written.

    Workers call this once per completed cell (records are flushed from
    the worker tracer afterwards), so a crashed worker still leaves the
    spans of every cell it finished.
    """
    n = 0
    with open(path, "a", encoding="utf-8") as fh:
        n = write_jsonl(records, fh)
    return n


def list_shards(directory: PathLike, kind: str = "trace") -> List[Path]:
    """All *kind* shard files in *directory*, sorted by filename."""
    return sorted(Path(directory).glob(f"{_prefix(kind)}*{SHARD_SUFFIX}"))


def _shard_sort_key(records: List[Dict[str, Any]], path: Path) -> tuple:
    """Deterministic shard order: smallest recorded cell index, then name."""
    cells = [rec["attrs"]["cell"] for rec in records
             if isinstance(rec.get("attrs"), dict)
             and isinstance(rec["attrs"].get("cell"), int)]
    return (min(cells) if cells else -1, path.name)


def merge_trace_shards(
        shards: Union[PathLike, Sequence[PathLike]]) -> List[Dict[str, Any]]:
    """Merge shard files into one re-identified span-record list.

    Parameters
    ----------
    shards:
        Either a shard directory (all ``trace-shard-*.jsonl`` files in it
        are merged) or an explicit sequence of shard paths.

    Returns
    -------
    list of span-record dicts, ready for :func:`repro.obs.export.write_jsonl`,
    :func:`repro.obs.export.to_chrome_trace`, or
    :meth:`repro.obs.tracer.Tracer.ingest`.
    """
    if isinstance(shards, (str, Path)) and Path(shards).is_dir():
        paths = list_shards(shards)
    else:
        paths = [Path(p) for p in shards]  # type: ignore[union-attr]
    loaded = [(path, read_jsonl(path)) for path in paths]
    loaded.sort(key=lambda pair: _shard_sort_key(pair[1], pair[0]))

    merged: List[Dict[str, Any]] = []
    next_id = 0
    for _path, records in loaded:
        id_map: Dict[int, int] = {}
        for rec in records:
            copy = dict(rec)
            old_id = rec.get("id")
            copy["id"] = next_id
            if isinstance(old_id, int):
                id_map[old_id] = next_id
            next_id += 1
            parent = rec.get("parent")
            if isinstance(parent, int):
                copy["parent"] = id_map.get(parent, None)
            merged.append(copy)
    return merged


def _ledger_sort_key(record: Dict[str, Any]) -> Tuple:
    """Canonical ledger-record order, independent of worker pids.

    Sorts by cell index, then instance index (both from the ``extra``
    payload when the emitter stamped them; -1 otherwise), then the
    identity fields (label, event, config hash).  Records whose full key
    ties — e.g. the per-instance ``planner.call`` records of one cell —
    are interchangeable by construction: they differ only in their
    nondeterministic fields, so the stable sort leaves the merged
    deterministic view canonical either way.
    """
    extra = record.get("extra") or {}
    cell = extra.get("cell")
    instance = extra.get("instance")
    return (cell if isinstance(cell, int) else -1,
            instance if isinstance(instance, int) else -1,
            str(record.get("label", "")), str(record.get("event", "")),
            str(record.get("config_hash", "")))


def merge_ledger_shards(
        shards: Union[PathLike, Sequence[PathLike]]) -> List[Dict[str, Any]]:
    """Merge worker ledger shards into one canonically-ordered record list.

    Parameters
    ----------
    shards:
        Either a shard directory (all ``ledger-shard-*.jsonl`` files in
        it are merged) or an explicit sequence of shard paths.

    Unlike trace spans, ledger records carry no ids to rebase — the merge
    is a stable sort by ``(cell, instance, label, event)``, so the merged
    ledger is independent of worker pids and completion order (the
    determinism contract the jobs=1 vs jobs=N tests compare under).
    """
    if isinstance(shards, (str, Path)) and Path(shards).is_dir():
        paths = list_shards(shards, kind="ledger")
    else:
        paths = [Path(p) for p in shards]  # type: ignore[union-attr]
    records: List[Dict[str, Any]] = []
    for path in paths:
        records.extend(read_jsonl(path))
    records.sort(key=_ledger_sort_key)
    return records


__all__ = ["SHARD_PREFIX", "SHARD_SUFFIX", "shard_path", "append_shard",
           "list_shards", "merge_trace_shards", "merge_ledger_shards"]
