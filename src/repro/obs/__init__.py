"""repro.obs — structured tracing, metrics, and profiling export.

The observability layer behind the paper's running-time evaluation
(Figs. 3(b)/4(b)/5(b)): nestable wall-clock spans with near-zero disabled
overhead (:mod:`repro.obs.tracer`), a counters/gauges/histograms registry
that backs the planner kernel's ``meta["perf"]`` contract
(:mod:`repro.obs.metrics`), JSONL + Chrome ``trace_event`` export
(:mod:`repro.obs.export`), and the per-span-name summary table behind
``python -m repro.obs report`` (:mod:`repro.obs.report`).

Tracing is off by default; enable it with ``plan_tour(..., trace=...)``,
:func:`set_tracer`, or ``REPRO_TRACE=1``.  See ``docs/observability.md``.
"""

from repro.obs.tracer import (
    Tracer,
    NullTracer,
    Span,
    NULL_TRACER,
    NULL_SPAN,
    get_tracer,
    set_tracer,
    span,
    activated,
    install_from_env,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.export import (
    write_jsonl,
    read_jsonl,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.obs.shards import (
    shard_path,
    append_shard,
    list_shards,
    merge_trace_shards,
)
from repro.obs.report import SpanStats, summarize, render_table

#: Honour REPRO_TRACE / REPRO_TRACE_FILE the moment the package loads, so
#: any entry point (CLI, pytest, a one-off script) can be traced without
#: code changes.
install_from_env()

__all__ = [
    # tracer
    "Tracer", "NullTracer", "Span", "NULL_TRACER", "NULL_SPAN",
    "get_tracer", "set_tracer", "span", "activated", "install_from_env",
    # metrics
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    # export
    "write_jsonl", "read_jsonl", "to_chrome_trace", "write_chrome_trace",
    # shards
    "shard_path", "append_shard", "list_shards", "merge_trace_shards",
    # report
    "SpanStats", "summarize", "render_table",
]
