"""repro.obs — structured tracing, metrics, profiling, and the run ledger.

The observability layer behind the paper's running-time evaluation
(Figs. 3(b)/4(b)/5(b)): nestable wall-clock spans with near-zero disabled
overhead (:mod:`repro.obs.tracer`), a counters/gauges/histograms registry
that backs the planner kernel's ``meta["perf"]`` contract
(:mod:`repro.obs.metrics`), JSONL + Chrome ``trace_event`` export
(:mod:`repro.obs.export`), the per-span-name summary table behind
``python -m repro.obs report`` (:mod:`repro.obs.report`), and the durable
run ledger + regression observatory behind ``repro-bench``
(:mod:`repro.obs.ledger`, :mod:`repro.obs.record`,
:mod:`repro.obs.regress`, :mod:`repro.obs.bench`).

Tracing is off by default; enable it with ``plan_tour(..., trace=...)``,
:func:`set_tracer`, or ``REPRO_TRACE=1``.  The ledger is likewise off by
default; enable it with :class:`ledger_active` or ``REPRO_LEDGER=path``.
See ``docs/observability.md``.
"""

from repro.obs.tracer import (
    Tracer,
    NullTracer,
    Span,
    NULL_TRACER,
    NULL_SPAN,
    get_tracer,
    set_tracer,
    span,
    activated,
    install_from_env,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    nearest_rank,
    quantile_sorted,
    get_metrics,
    set_metrics,
    metrics_scope,
)
from repro.obs.export import (
    write_jsonl,
    read_jsonl,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.obs.shards import (
    shard_path,
    append_shard,
    list_shards,
    merge_trace_shards,
    merge_ledger_shards,
)
from repro.obs.report import SpanStats, summarize, render_table
from repro.obs.record import (
    RunRecord,
    canonical_json,
    config_hash,
    sanitize_config,
    environment_fingerprint,
)
from repro.obs.ledger import (
    Ledger,
    get_ledger,
    set_ledger,
    ledger_active,
    record_event,
)
from repro.obs.ledger import install_from_env as install_ledger_from_env
from repro.obs.memprof import PeakMemory
from repro.obs.regress import Thresholds, CompareReport, aggregate, compare

#: Honour REPRO_TRACE / REPRO_TRACE_FILE and REPRO_LEDGER /
#: REPRO_LEDGER_MEM the moment the package loads, so any entry point
#: (CLI, pytest, a one-off script) can be traced and ledgered without
#: code changes.
install_from_env()
install_ledger_from_env()

__all__ = [
    # tracer
    "Tracer", "NullTracer", "Span", "NULL_TRACER", "NULL_SPAN",
    "get_tracer", "set_tracer", "span", "activated", "install_from_env",
    # metrics
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "nearest_rank", "quantile_sorted",
    "get_metrics", "set_metrics", "metrics_scope",
    # export
    "write_jsonl", "read_jsonl", "to_chrome_trace", "write_chrome_trace",
    # shards
    "shard_path", "append_shard", "list_shards", "merge_trace_shards",
    "merge_ledger_shards",
    # report
    "SpanStats", "summarize", "render_table",
    # ledger
    "RunRecord", "canonical_json", "config_hash", "sanitize_config",
    "environment_fingerprint", "Ledger", "get_ledger", "set_ledger",
    "ledger_active", "record_event", "install_ledger_from_env",
    "PeakMemory",
    # regression observatory
    "Thresholds", "CompareReport", "aggregate", "compare",
]
