"""Structured tracing: nestable wall-clock spans with near-zero disabled cost.

The paper's headline evaluation is *running time* versus network size
(Figs. 3(b)/4(b)/5(b)); this module makes where that time goes a
first-class, exportable quantity instead of something re-derived under an
external profiler.  A :class:`Tracer` records nestable spans —

    with tracer.span("alg2.insertion", site=j):
        ...

— into a bounded ring buffer: each finished span keeps its dotted name,
start offset, duration, nesting depth, parent link, and attributes.  The
buffer exports as JSONL (:mod:`repro.obs.export`) or Chrome
``trace_event`` JSON for about://tracing / Perfetto.

Tracing is **off by default**.  The module-level active tracer starts as
:data:`NULL_TRACER`, whose ``span()`` returns one shared do-nothing
context manager — a disabled span site costs a global load, a method
call, and *no allocation* (property-tested in
``tests/test_obs_tracer.py``), so instrumented hot loops keep their
timings and planners their bitwise-identical outputs.  Enable it with

* ``plan_tour(..., trace=Tracer())`` / ``run_sweep(..., trace=...)``,
* :func:`set_tracer` / :func:`activated` around any code block, or
* the ``REPRO_TRACE=1`` environment variable (plus an optional
  ``REPRO_TRACE_FILE=path.jsonl`` atexit export).

Spans assume single-threaded, well-nested use — exactly what the
``with``-statement guarantees — matching the planners' execution model.
"""

from __future__ import annotations

import os
import time
from collections import deque
from typing import Any, Deque, Dict, Iterator, List, Optional, Union

#: Default ring-buffer capacity (finished spans kept; oldest dropped first).
DEFAULT_CAPACITY = 1 << 16

#: Environment variable enabling the global tracer at import time.
ENV_TRACE = "REPRO_TRACE"

#: Environment variable naming a JSONL file exported at interpreter exit.
ENV_TRACE_FILE = "REPRO_TRACE_FILE"

#: Values of :data:`ENV_TRACE` treated as "disabled".
_FALSY = frozenset({"", "0", "false", "no", "off"})


class _NullSpan:
    """The shared do-nothing span; one instance serves every disabled site."""

    __slots__ = ()

    enabled = False

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None

    def set(self, /, **attrs: Any) -> "_NullSpan":
        """Ignore attributes (chainable, like :meth:`Span.set`)."""
        return self


#: The singleton no-op span every :class:`NullTracer` site reuses.
NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled tracer: every ``span()`` is the same shared no-op object."""

    __slots__ = ()

    enabled = False

    def span(self, name: str, /, **attrs: Any) -> _NullSpan:
        """Return the shared no-op span (no allocation, nothing recorded)."""
        return NULL_SPAN

    def records(self) -> List[Dict[str, Any]]:
        """Always empty."""
        return []


#: The module-wide disabled tracer (also the initial active tracer).
NULL_TRACER = NullTracer()


class Span:
    """One live span; created by :meth:`Tracer.span`, recorded on exit."""

    __slots__ = ("tracer", "name", "attrs", "span_id", "parent_id", "depth",
                 "start_s", "_t0")

    enabled = True

    def __init__(self, tracer: "Tracer", name: str,
                 attrs: Dict[str, Any]) -> None:
        self.tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = -1
        self.parent_id: Optional[int] = None
        self.depth = 0
        self.start_s = 0.0
        self._t0 = 0.0

    def set(self, /, **attrs: Any) -> "Span":
        """Attach extra attributes to the span (chainable)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self.tracer._push(self)
        self._t0 = time.perf_counter()
        self.start_s = self._t0 - self.tracer.epoch_s
        return self

    def __exit__(self, *exc_info: object) -> None:
        duration_s = time.perf_counter() - self._t0
        self.tracer._pop(self, duration_s)
        return None


class Tracer:
    """Recording tracer: bounded ring buffer of finished-span records.

    Parameters
    ----------
    capacity:
        Maximum finished spans retained; older records are dropped first
        and counted in :attr:`dropped` (so a truncated export is visibly
        truncated, never silently short).
    track_memory:
        When true, every **root** span (depth 0) additionally measures
        its peak traced allocation via ``tracemalloc``
        (:mod:`repro.obs.memprof`) and stamps it as the
        ``mem_peak_bytes`` attribute.  Off by default — tracemalloc
        slows allocation-heavy code, and nested spans would fight over
        one global peak counter, so only run roots are measured.

    Notes
    -----
    A record is a plain dict —
    ``{"name", "ts_s", "dur_s", "id", "parent", "depth", "attrs"}`` —
    with times in seconds relative to the tracer's construction
    (:attr:`epoch_s`).  Records appear in *completion* order: children
    before their parent, exactly like Chrome ``trace_event`` producers.
    """

    __slots__ = ("epoch_s", "dropped", "track_memory", "_records", "_stack",
                 "_next_id", "_mem_started")

    enabled = True

    def __init__(self, capacity: int = DEFAULT_CAPACITY, *,
                 track_memory: bool = False) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.epoch_s = time.perf_counter()
        self.dropped = 0
        self.track_memory = track_memory
        self._records: Deque[Dict[str, Any]] = deque(maxlen=capacity)
        self._stack: List[Span] = []
        self._next_id = 0
        self._mem_started = False

    def span(self, name: str, /, **attrs: Any) -> Span:
        """A new live span; ``with tracer.span("mod.op", key=val): ...``.

        ``name`` is positional-only so attribute keys named ``self`` or
        ``name`` cannot collide with the method's own parameters.
        """
        return Span(self, name, attrs)

    # -- Span protocol ------------------------------------------------- #

    def _push(self, span: Span) -> None:
        span.span_id = self._next_id
        self._next_id += 1
        span.parent_id = self._stack[-1].span_id if self._stack else None
        span.depth = len(self._stack)
        self._stack.append(span)
        if self.track_memory and span.depth == 0:
            from repro.obs.memprof import begin_peak_region
            self._mem_started = begin_peak_region()

    def _pop(self, span: Span, duration_s: float) -> None:
        if self.track_memory and span.depth == 0:
            from repro.obs.memprof import end_peak_region
            span.attrs["mem_peak_bytes"] = end_peak_region(self._mem_started)
            self._mem_started = False
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        elif span in self._stack:          # tolerate out-of-order exits
            self._stack.remove(span)
        if len(self._records) == self._records.maxlen:
            self.dropped += 1
        self._records.append({
            "name": span.name,
            "ts_s": span.start_s,
            "dur_s": duration_s,
            "id": span.span_id,
            "parent": span.parent_id,
            "depth": span.depth,
            "attrs": span.attrs,
        })

    # -- Inspection ---------------------------------------------------- #

    def __len__(self) -> int:
        return len(self._records)

    def records(self) -> List[Dict[str, Any]]:
        """Finished-span records, oldest first (copies the ring buffer)."""
        return list(self._records)

    def clear(self) -> None:
        """Drop all finished records (live spans are unaffected)."""
        self._records.clear()
        self.dropped = 0

    def ingest(self, records: List[Dict[str, Any]]) -> int:
        """Append pre-recorded span dicts (e.g. merged worker shards).

        Every ingested record is re-identified into this tracer's id space
        and parent links are remapped alongside, so ingested spans can
        never collide with locally recorded ones.  Records keep their own
        ``ts_s`` timebase (worker-relative offsets); consumers that care
        about cross-process alignment should group by the ``worker``
        attribute the parallel sweep executor stamps on shard spans.
        Returns the number of records ingested.
        """
        id_map: Dict[int, int] = {}
        n = 0
        for rec in records:
            new_id = self._next_id
            self._next_id += 1
            old_id = rec.get("id")
            if isinstance(old_id, int):
                id_map[old_id] = new_id
            copy = dict(rec)
            copy["id"] = new_id
            parent = rec.get("parent")
            if isinstance(parent, int):
                copy["parent"] = id_map.get(parent, None)
            if len(self._records) == self._records.maxlen:
                self.dropped += 1
            self._records.append(copy)
            n += 1
        return n


#: Anything a ``trace=`` parameter accepts.
TracerLike = Union[Tracer, NullTracer]

_active: TracerLike = NULL_TRACER


def get_tracer() -> TracerLike:
    """The active tracer (:data:`NULL_TRACER` unless tracing is enabled)."""
    return _active


def set_tracer(tracer: Optional[TracerLike]) -> TracerLike:
    """Install *tracer* (``None`` disables); returns the previous tracer."""
    global _active
    previous = _active
    _active = tracer if tracer is not None else NULL_TRACER
    return previous


def span(name: str, /, **attrs: Any) -> Union[Span, _NullSpan]:
    """A span on the active tracer — the one-liner instrumented sites use.

    When tracing is disabled this resolves to ``NullTracer.span`` and
    returns the shared :data:`NULL_SPAN` without allocating.
    """
    return _active.span(name, **attrs)


class activated:
    """Temporarily install a tracer: ``with activated(tracer): ...``.

    ``activated(None)`` keeps the current tracer — entry points thread
    their optional ``trace=`` parameter straight through.
    """

    __slots__ = ("tracer", "_previous")

    def __init__(self, tracer: Optional[TracerLike]) -> None:
        self.tracer = tracer
        self._previous: Optional[TracerLike] = None

    def __enter__(self) -> TracerLike:
        if self.tracer is None:
            return _active
        self._previous = set_tracer(self.tracer)
        return self.tracer

    def __exit__(self, *exc_info: object) -> None:
        if self._previous is not None:
            set_tracer(self._previous)
            self._previous = None
        return None


def _env_enabled(value: Optional[str]) -> bool:
    """True when an ``REPRO_TRACE`` value means "tracing on"."""
    return value is not None and value.strip().lower() not in _FALSY


def install_from_env(environ: Optional[Dict[str, str]] = None) -> TracerLike:
    """Install the tracer the environment asks for; returns the active one.

    ``REPRO_TRACE`` truthy enables a fresh :class:`Tracer`;
    ``REPRO_TRACE_FILE`` additionally registers an atexit JSONL export so
    batch runs leave an inspectable profile without code changes.  Called
    once at ``repro.obs`` import; exposed for tests.
    """
    env = os.environ if environ is None else environ
    if not _env_enabled(env.get(ENV_TRACE)):
        return _active
    tracer = Tracer()
    set_tracer(tracer)
    path = env.get(ENV_TRACE_FILE)
    if path:
        import atexit

        def _export() -> None:
            from repro.obs.export import write_jsonl
            write_jsonl(tracer.records(), path)

        atexit.register(_export)
    return tracer


def walk_children(records: List[Dict[str, Any]],
                  parent: Optional[int]) -> Iterator[Dict[str, Any]]:
    """Yield the direct children of span id *parent* (``None`` = roots)."""
    for rec in records:
        if rec.get("parent") == parent:
            yield rec


__all__ = ["Tracer", "NullTracer", "Span", "NULL_TRACER", "NULL_SPAN",
           "TracerLike", "get_tracer", "set_tracer", "span", "activated",
           "install_from_env", "walk_children", "DEFAULT_CAPACITY",
           "ENV_TRACE", "ENV_TRACE_FILE"]
