"""Metrics registry: counters, gauges, and fixed-bucket histograms.

This is the structured successor of the planner kernel's hand-rolled
``counters``/``timers`` dicts: :class:`repro.core.kernel.PlannerKernel`
now keeps a :class:`MetricsRegistry` and serves the *same*
``CollectionTour.meta["perf"]`` snapshot from it (engine, integer work
counters, ``seconds`` per phase), so downstream consumers — the
experiment runner's perf aggregation, ``benchmarks/bench_kernel.py`` —
see an unchanged contract.

Three instrument kinds, all get-or-create by name:

* :class:`Counter` — monotonically-increasing float (work counts,
  accumulated seconds);
* :class:`Gauge` — last-write-wins value (queue depths, tour length);
* :class:`Histogram` — fixed upper-bound buckets plus sum/count, with a
  bucket-interpolated :meth:`~Histogram.quantile` — cheap enough for hot
  loops, stable enough for regression gates.

:meth:`MetricsRegistry.time` is the timing primitive the kernel uses::

    with metrics.time("rescore"):
        ...  # accumulates wall-clock seconds into timer "rescore"

Timers are plain counters in a separate namespace so a timer and a work
counter may share a name without colliding.
"""

from __future__ import annotations

import bisect
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: Default histogram upper bounds (seconds-flavoured, log-spaced).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 30.0, 120.0)


class Counter:
    """A monotonically-increasing value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add *amount* (must be >= 0)."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease "
                             f"(inc by {amount})")
        self.value += amount


class Gauge:
    """A last-write-wins value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the current level of the tracked quantity."""
        self.value = float(value)


class Histogram:
    """Fixed-bucket histogram: counts per upper bound, plus sum/count.

    ``bounds`` are strictly-increasing inclusive upper bounds; a final
    implicit overflow bucket catches everything above the last bound.
    """

    __slots__ = ("name", "bounds", "counts", "total", "count")

    def __init__(self, name: str,
                 bounds: Sequence[float] = DEFAULT_BUCKETS) -> None:
        bounds_t = tuple(float(b) for b in bounds)
        if not bounds_t or any(b2 <= b1 for b1, b2
                               in zip(bounds_t, bounds_t[1:])):
            raise ValueError("histogram bounds must be non-empty and "
                             f"strictly increasing, got {bounds!r}")
        self.name = name
        self.bounds = bounds_t
        self.counts = [0] * (len(bounds_t) + 1)   # last = overflow
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.total += value
        self.count += 1

    @property
    def mean(self) -> float:
        """Mean observation (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile estimate (upper bound of the bucket
        holding the q-th observation; linear within the overflow bucket is
        impossible, so the last bound is returned there)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = max(1, int(q * self.count + 0.5))
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= rank:
                return self.bounds[min(i, len(self.bounds) - 1)]
        return self.bounds[-1]

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready snapshot."""
        return {"bounds": list(self.bounds), "counts": list(self.counts),
                "sum": self.total, "count": self.count}


class _TimerContext:
    """Accumulates a ``with`` block's wall-clock into a timer counter."""

    __slots__ = ("_counter", "_t0")

    def __init__(self, counter: Counter) -> None:
        self._counter = counter
        self._t0 = 0.0

    def __enter__(self) -> "_TimerContext":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._counter.value += time.perf_counter() - self._t0
        return None


class MetricsRegistry:
    """Named counters, gauges, histograms, and timers (get-or-create)."""

    __slots__ = ("_counters", "_gauges", "_histograms", "_timers")

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._timers: Dict[str, Counter] = {}

    def counter(self, name: str) -> Counter:
        """The counter *name*, created on first use."""
        try:
            return self._counters[name]
        except KeyError:
            c = self._counters.setdefault(name, Counter(name))
            return c

    def gauge(self, name: str) -> Gauge:
        """The gauge *name*, created on first use."""
        try:
            return self._gauges[name]
        except KeyError:
            g = self._gauges.setdefault(name, Gauge(name))
            return g

    def histogram(self, name: str,
                  bounds: Optional[Sequence[float]] = None) -> Histogram:
        """The histogram *name*, created on first use with *bounds*."""
        try:
            return self._histograms[name]
        except KeyError:
            h = self._histograms.setdefault(
                name, Histogram(name, bounds if bounds is not None
                                else DEFAULT_BUCKETS))
            return h

    def timer(self, name: str) -> Counter:
        """The timer *name* (an accumulated-seconds counter), created on
        first use.  Timers live in their own namespace so a timer and a
        work counter may share a name."""
        try:
            return self._timers[name]
        except KeyError:
            c = self._timers.setdefault(name, Counter(name))
            return c

    def time(self, name: str) -> _TimerContext:
        """Context manager accumulating seconds into timer *name*."""
        return _TimerContext(self.timer(name))

    # -- Snapshots ----------------------------------------------------- #

    def counter_values(self) -> Dict[str, float]:
        """``{name: value}`` for every counter."""
        return {n: c.value for n, c in self._counters.items()}

    def timer_seconds(self) -> Dict[str, float]:
        """``{name: accumulated seconds}`` for every timer."""
        return {n: c.value for n, c in self._timers.items()}

    def snapshot(self) -> Dict[str, Any]:
        """Full JSON-ready state of every instrument."""
        return {
            "counters": self.counter_values(),
            "gauges": {n: g.value for n, g in self._gauges.items()},
            "timers_s": self.timer_seconds(),
            "histograms": {n: h.as_dict()
                           for n, h in self._histograms.items()},
        }


__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "DEFAULT_BUCKETS"]
