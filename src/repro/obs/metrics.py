"""Metrics registry: counters, gauges, and fixed-bucket histograms.

This is the structured successor of the planner kernel's hand-rolled
``counters``/``timers`` dicts: :class:`repro.core.kernel.PlannerKernel`
now keeps a :class:`MetricsRegistry` and serves the *same*
``CollectionTour.meta["perf"]`` snapshot from it (engine, integer work
counters, ``seconds`` per phase), so downstream consumers — the
experiment runner's perf aggregation, ``benchmarks/bench_kernel.py`` —
see an unchanged contract.

Three instrument kinds, all get-or-create by name:

* :class:`Counter` — monotonically-increasing float (work counts,
  accumulated seconds);
* :class:`Gauge` — last-write-wins value (queue depths, tour length);
* :class:`Histogram` — fixed upper-bound buckets plus sum/count, with a
  bucket-interpolated :meth:`~Histogram.quantile` — cheap enough for hot
  loops, stable enough for regression gates.

:meth:`MetricsRegistry.time` is the timing primitive the kernel uses::

    with metrics.time("rescore"):
        ...  # accumulates wall-clock seconds into timer "rescore"

Timers are plain counters in a separate namespace so a timer and a work
counter may share a name without colliding.

Registries also know how to **merge** (:meth:`MetricsRegistry.merge` /
:meth:`MetricsRegistry.merge_snapshot`): counters, timers, and histogram
buckets add, gauges add as partitions of one quantity — all
order-insensitive, which is what lets the parallel sweep executor fold
per-worker snapshots back into the parent registry deterministically.
An optional **ambient registry** (:func:`get_metrics` /
:func:`set_metrics` / :class:`metrics_scope`) mirrors the tracer's
active-instance pattern: ``None`` by default, installed for the duration
of a sweep or benchmark run so instrumented layers can accumulate into
one place without threading a registry through every signature.
"""

from __future__ import annotations

import bisect
import math
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: Default histogram upper bounds (seconds-flavoured, log-spaced).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 30.0, 120.0)


def nearest_rank(n: int, q: float) -> int:
    """The 1-based nearest-rank index of quantile *q* in *n* samples.

    The single quantile definition shared by :meth:`Histogram.quantile`,
    the trace report's percentile column, and the regression
    observatory's p50/p95 aggregation (``rank = max(1, ceil(q * n))``;
    0 when there are no samples).  Raises for ``q`` outside ``[0, 1]``.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be in [0, 1], got {q}")
    if n <= 0:
        return 0
    return max(1, math.ceil(q * n))


def quantile_sorted(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank quantile of an ascending sequence (0.0 when empty)."""
    rank = nearest_rank(len(sorted_values), q)
    if rank == 0:
        return 0.0
    return sorted_values[rank - 1]


class Counter:
    """A monotonically-increasing value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add *amount* (must be >= 0)."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease "
                             f"(inc by {amount})")
        self.value += amount


class Gauge:
    """A last-write-wins value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the current level of the tracked quantity."""
        self.value = float(value)


class Histogram:
    """Fixed-bucket histogram: counts per upper bound, plus sum/count.

    ``bounds`` are strictly-increasing inclusive upper bounds; a final
    implicit overflow bucket catches everything above the last bound.
    """

    __slots__ = ("name", "bounds", "counts", "total", "count")

    def __init__(self, name: str,
                 bounds: Sequence[float] = DEFAULT_BUCKETS) -> None:
        bounds_t = tuple(float(b) for b in bounds)
        if not bounds_t or any(b2 <= b1 for b1, b2
                               in zip(bounds_t, bounds_t[1:])):
            raise ValueError("histogram bounds must be non-empty and "
                             f"strictly increasing, got {bounds!r}")
        self.name = name
        self.bounds = bounds_t
        self.counts = [0] * (len(bounds_t) + 1)   # last = overflow
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.total += value
        self.count += 1

    @property
    def mean(self) -> float:
        """Mean observation (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile estimate (upper bound of the bucket
        holding the q-th observation; linear within the overflow bucket is
        impossible, so the last bound is returned there).  Uses the same
        nearest-rank definition (:func:`nearest_rank`) as the trace
        report and the regression observatory."""
        rank = nearest_rank(self.count, q)
        if rank == 0:
            return 0.0
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= rank:
                return self.bounds[min(i, len(self.bounds) - 1)]
        return self.bounds[-1]

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready snapshot."""
        return {"bounds": list(self.bounds), "counts": list(self.counts),
                "sum": self.total, "count": self.count}


class _TimerContext:
    """Accumulates a ``with`` block's wall-clock into a timer counter."""

    __slots__ = ("_counter", "_t0")

    def __init__(self, counter: Counter) -> None:
        self._counter = counter
        self._t0 = 0.0

    def __enter__(self) -> "_TimerContext":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._counter.value += time.perf_counter() - self._t0
        return None


class MetricsRegistry:
    """Named counters, gauges, histograms, and timers (get-or-create)."""

    __slots__ = ("_counters", "_gauges", "_histograms", "_timers")

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._timers: Dict[str, Counter] = {}

    def counter(self, name: str) -> Counter:
        """The counter *name*, created on first use."""
        try:
            return self._counters[name]
        except KeyError:
            c = self._counters.setdefault(name, Counter(name))
            return c

    def gauge(self, name: str) -> Gauge:
        """The gauge *name*, created on first use."""
        try:
            return self._gauges[name]
        except KeyError:
            g = self._gauges.setdefault(name, Gauge(name))
            return g

    def histogram(self, name: str,
                  bounds: Optional[Sequence[float]] = None) -> Histogram:
        """The histogram *name*, created on first use with *bounds*."""
        try:
            return self._histograms[name]
        except KeyError:
            h = self._histograms.setdefault(
                name, Histogram(name, bounds if bounds is not None
                                else DEFAULT_BUCKETS))
            return h

    def timer(self, name: str) -> Counter:
        """The timer *name* (an accumulated-seconds counter), created on
        first use.  Timers live in their own namespace so a timer and a
        work counter may share a name."""
        try:
            return self._timers[name]
        except KeyError:
            c = self._timers.setdefault(name, Counter(name))
            return c

    def time(self, name: str) -> _TimerContext:
        """Context manager accumulating seconds into timer *name*."""
        return _TimerContext(self.timer(name))

    # -- Snapshots ----------------------------------------------------- #

    def counter_values(self) -> Dict[str, float]:
        """``{name: value}`` for every counter."""
        return {n: c.value for n, c in self._counters.items()}

    def timer_seconds(self) -> Dict[str, float]:
        """``{name: accumulated seconds}`` for every timer."""
        return {n: c.value for n, c in self._timers.items()}

    def snapshot(self) -> Dict[str, Any]:
        """Full JSON-ready state of every instrument."""
        return {
            "counters": self.counter_values(),
            "gauges": {n: g.value for n, g in self._gauges.items()},
            "timers_s": self.timer_seconds(),
            "histograms": {n: h.as_dict()
                           for n, h in self._histograms.items()},
        }

    # -- Merging ------------------------------------------------------- #

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold *other*'s instruments into this registry (returns self).

        Counters and timers add; gauges add too — a merged gauge reads as
        the sum over the per-registry levels, the right semantics for the
        per-worker partitions of one quantity (cache sizes, queue depths)
        this is used for; histograms add bucket-wise and must agree on
        bounds.  Merging is commutative and associative, so folding N
        worker snapshots produces the same registry in any order.
        """
        return self.merge_snapshot(other.snapshot())

    def merge_snapshot(self, snap: Dict[str, Any]) -> "MetricsRegistry":
        """Fold a :meth:`snapshot`-shaped dict into this registry.

        This is the transport-side twin of :meth:`merge`: the parallel
        sweep executor ships worker registries across the process
        boundary as JSON snapshots and the parent folds them back here.
        """
        for name, value in snap.get("counters", {}).items():
            self.counter(name).inc(float(value))
        for name, value in snap.get("gauges", {}).items():
            gauge = self.gauge(name)
            gauge.set(gauge.value + float(value))
        for name, value in snap.get("timers_s", {}).items():
            self.timer(name).value += float(value)
        for name, hist in snap.get("histograms", {}).items():
            bounds = tuple(float(b) for b in hist["bounds"])
            mine = self.histogram(name, bounds)
            if mine.bounds != bounds:
                raise ValueError(
                    f"histogram {name!r} bounds mismatch on merge: "
                    f"{mine.bounds} vs {bounds}")
            for i, c in enumerate(hist["counts"]):
                mine.counts[i] += int(c)
            mine.total += float(hist["sum"])
            mine.count += int(hist["count"])
        return self


#: The ambient registry (``None`` = no ambient accumulation).
_active_metrics: Optional[MetricsRegistry] = None


def get_metrics() -> Optional[MetricsRegistry]:
    """The ambient registry installed by :func:`set_metrics`, or ``None``.

    Instrumented layers that *accumulate across calls* (the sweep
    runner's per-tour perf fold, the benchmark harness) write here when a
    scope is active; ``None`` — the default — means those sites do
    nothing, so ordinary planner runs pay no bookkeeping.
    """
    return _active_metrics


def set_metrics(registry: Optional[MetricsRegistry]
                ) -> Optional[MetricsRegistry]:
    """Install *registry* as ambient (``None`` disables); returns previous."""
    global _active_metrics
    previous = _active_metrics
    _active_metrics = registry
    return previous


class metrics_scope:
    """Temporarily install an ambient registry::

        with metrics_scope(MetricsRegistry()) as reg:
            run_sweep(...)            # kernel.* counters accumulate in reg

    ``metrics_scope(None)`` keeps the current ambient registry, so entry
    points can thread an optional parameter straight through.
    """

    __slots__ = ("registry", "_previous", "_installed")

    def __init__(self, registry: Optional[MetricsRegistry]) -> None:
        self.registry = registry
        self._previous: Optional[MetricsRegistry] = None
        self._installed = False

    def __enter__(self) -> Optional[MetricsRegistry]:
        if self.registry is None:
            return _active_metrics
        self._previous = set_metrics(self.registry)
        self._installed = True
        return self.registry

    def __exit__(self, *exc_info: object) -> None:
        if self._installed:
            set_metrics(self._previous)
            self._installed = False
        return None


__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "DEFAULT_BUCKETS", "nearest_rank", "quantile_sorted",
           "get_metrics", "set_metrics", "metrics_scope"]
