"""``python -m repro.obs`` — trace report / demo CLI."""

from repro.obs.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
