"""Run-ledger records: one structured measurement per planner/sweep/bench run.

A :class:`RunRecord` is the ledger's unit of accounting — every
``plan_tour`` facade call, every ``run_sweep`` cell/column, and every
``repro-bench`` case emits one.  The schema is flat JSON:

``v``
    record schema version (:data:`RECORD_VERSION`);
``event`` / ``label``
    what ran — ``event`` is a dotted ``family.verb`` name
    (``planner.call``, ``sweep.cell``, ``bench.case``; the
    ``obs-span-naming`` lint rule enforces the spelling at emission
    sites), ``label`` distinguishes cases within a family (planner
    method, algorithm display name, bench case);
``config_hash``
    hex digest of the canonically-serialised configuration
    (:func:`config_hash` over the same JSON transport the parallel
    executor ships work units with) — two records with equal hashes ran
    the same campaign;
``engine`` / ``jobs``
    execution engine (``kernel``/``dense``/``batch``) and worker count;
``wall_s``
    measured wall-clock seconds (**nondeterministic** — excluded from
    :meth:`RunRecord.deterministic_dict`);
``metrics``
    a full :meth:`repro.obs.metrics.MetricsRegistry.snapshot` (work
    counters deterministic, ``timers_s`` wall-clock);
``spans``
    optional per-span-family stats ``{name: {count, total_s, p95_s}}``
    summarised from a tracer, when one was active;
``mem_peak_bytes``
    peak traced allocation (``tracemalloc``), when memory profiling was
    on;
``env``
    host fingerprint (:func:`environment_fingerprint`);
``extra``
    emission-site JSON payload (cell index, parameter value, …);
``ts``
    unix timestamp of emission (nondeterministic, may be ``None``).

Records round-trip **losslessly** through :meth:`RunRecord.as_dict` /
:meth:`RunRecord.from_dict` and JSONL (property-tested in
``tests/test_obs_ledger.py``); the deterministic view is what regression
comparisons and the merge-order tests key on.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
from dataclasses import dataclass, field, fields
from typing import Any, Dict, Optional

#: Schema version stamped into every record.
RECORD_VERSION = 1

#: Metrics-snapshot sections that carry wall-clock (dropped from the
#: deterministic view alongside ``wall_s``).
_NONDETERMINISTIC_METRICS = ("timers_s", "histograms")

#: Key prefix of measured wall-clock in a tour's ``meta["perf"]``
#: snapshot (``repro.experiments.runner`` re-exports this as
#: ``PERF_SECONDS_PREFIX``; excluded from determinism comparisons).
PERF_SECONDS_PREFIX = "seconds."


def canonical_json(payload: Any) -> str:
    """The canonical serialisation records hash configurations with.

    Same transport discipline as the parallel executor's work units:
    sorted keys, minimal separators, data only.  Raises ``TypeError`` on
    non-JSON input — callers sanitise first (:func:`sanitize_config`).
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def config_hash(payload: Any) -> str:
    """Short stable hex digest of a JSON-serialisable configuration."""
    digest = hashlib.sha256(canonical_json(payload).encode("utf-8"))
    return digest.hexdigest()[:16]


def sanitize_config(payload: Dict[str, Any]) -> Dict[str, Any]:
    """A JSON-safe copy of *payload* for hashing.

    Non-JSON values (prebuilt geometry, caches) are replaced by their
    type name — deterministic, unlike their ``repr`` (which embeds
    addresses) — so facade calls with injected artifacts still hash
    stably.
    """
    clean: Dict[str, Any] = {}
    for key, value in payload.items():
        try:
            json.dumps(value)
        except (TypeError, ValueError):
            clean[str(key)] = f"<{type(value).__name__}>"
        else:
            clean[str(key)] = value
    return clean


def flatten_perf(perf: Dict[str, Any], prefix: str = "") -> Dict[str, float]:
    """Flatten a (possibly nested) ``meta["perf"]`` dict into dotted keys.

    ``{"sites_rescored": 3, "seconds": {"rescore": 0.1}}`` becomes
    ``{"sites_rescored": 3.0, "seconds.rescore": 0.1}``.  Non-numeric
    leaves (e.g. the ``"engine"`` string) and booleans are skipped.  The
    one flattening shared by the sweep runner's perf aggregation, the
    planner facade's ledger emission, and the bench adapters.
    """
    flat: Dict[str, float] = {}
    for key, val in perf.items():
        dotted = f"{prefix}{key}"
        if isinstance(val, dict):
            flat.update(flatten_perf(val, prefix=f"{dotted}."))
        elif isinstance(val, bool):
            continue
        elif isinstance(val, (int, float)):
            flat[dotted] = float(val)
    return flat


def perf_counter_metrics(perf: Dict[str, Any],
                         namespace: str = "kernel.") -> Dict[str, float]:
    """The deterministic work counters of one perf snapshot, namespaced.

    Drops the measured ``seconds.*`` entries — what remains is
    hardware-independent (insertions, rescores, ...), the ledger metrics
    a cross-host regression gate can trust.
    """
    return {f"{namespace}{key}": value
            for key, value in flatten_perf(perf).items()
            if not key.startswith(PERF_SECONDS_PREFIX)}


def perf_timer_metrics(perf: Dict[str, Any],
                       namespace: str = "kernel.") -> Dict[str, float]:
    """The measured per-phase seconds of one perf snapshot, namespaced
    as timers (nondeterministic; excluded from deterministic views)."""
    return {f"{namespace}{key[len(PERF_SECONDS_PREFIX):]}": value
            for key, value in flatten_perf(perf).items()
            if key.startswith(PERF_SECONDS_PREFIX)}


def environment_fingerprint() -> Dict[str, Any]:
    """The host facts a regression report needs to read two ledgers.

    Python/numpy versions, platform string, and CPU count — enough to
    spot "the baseline ran on different hardware" without shipping
    anything sensitive.
    """
    try:
        import numpy
        numpy_version = str(numpy.__version__)
    except Exception:  # pragma: no cover - numpy is a hard dep
        numpy_version = None
    return {
        "python": platform.python_version(),
        "numpy": numpy_version,
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
    }


@dataclass(frozen=True)
class RunRecord:
    """One ledger entry (see the module docstring for field semantics)."""

    event: str
    label: str
    config_hash: str = ""
    engine: Optional[str] = None
    jobs: int = 1
    wall_s: float = 0.0
    metrics: Dict[str, Any] = field(default_factory=dict)
    spans: Dict[str, Any] = field(default_factory=dict)
    mem_peak_bytes: Optional[int] = None
    env: Dict[str, Any] = field(default_factory=dict)
    extra: Dict[str, Any] = field(default_factory=dict)
    ts: Optional[float] = None
    v: int = RECORD_VERSION

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready dict, inverse of :meth:`from_dict`."""
        return {
            "v": self.v,
            "event": self.event,
            "label": self.label,
            "config_hash": self.config_hash,
            "engine": self.engine,
            "jobs": self.jobs,
            "wall_s": self.wall_s,
            "metrics": self.metrics,
            "spans": self.spans,
            "mem_peak_bytes": self.mem_peak_bytes,
            "env": self.env,
            "extra": self.extra,
            "ts": self.ts,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunRecord":
        """Rebuild a record from :meth:`as_dict` output (rejects unknown
        keys so a schema bump cannot be silently misread)."""
        if not isinstance(data, dict):
            raise TypeError(f"run record payload must be a dict, "
                            f"got {type(data).__name__}")
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown RunRecord fields: {unknown}")
        return cls(**data)

    def deterministic_dict(self) -> Dict[str, Any]:
        """The run-to-run reproducible view of the record.

        Drops measured wall-clock (``wall_s``, ``ts``, metric timers and
        histograms, span stats), memory, and the host fingerprint —
        keeping the identity fields and the deterministic work counters,
        the same discipline as ``SweepRow.deterministic_dict``.
        """
        det = self.as_dict()
        for key in ("wall_s", "ts", "spans", "mem_peak_bytes", "env"):
            del det[key]
        det["metrics"] = {k: v for k, v in self.metrics.items()
                          if k not in _NONDETERMINISTIC_METRICS}
        return det


__all__ = ["RunRecord", "RECORD_VERSION", "canonical_json", "config_hash",
           "sanitize_config", "environment_fingerprint", "flatten_perf",
           "perf_counter_metrics", "perf_timer_metrics",
           "PERF_SECONDS_PREFIX"]
