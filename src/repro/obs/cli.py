"""Command-line interface: ``python -m repro.obs <command>`` / ``repro-bench``.

Subcommands
-----------
``report``
    Summarise a JSONL trace into the per-span-name table (count, total,
    mean, p95, self time); ``--chrome-trace out.json`` additionally
    converts the spans for about://tracing / Perfetto, and
    ``--format json`` emits the statistics machine-readably.
``demo``
    Run one traced ``plan_tour`` (plus an independent simulator flight)
    on a small seeded instance and write the trace — the one-command way
    to produce an inspectable profile, used by the CI trace-artifact job.
``bench``
    Run a registered benchmark suite (:mod:`repro.obs.bench`), writing
    one ledger record per case run to ``--out``.
``compare``
    Diff two ledger JSONL files case-by-case (:mod:`repro.obs.regress`);
    ``--gate`` exits non-zero on any regression, which is how CI gates.

The ``repro-bench`` console script (:func:`bench_main`) exposes the last
two as ``repro-bench run`` / ``repro-bench compare``.

Exit codes: 0 — success; 1 — gate failure; 2 — usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.obs.export import read_jsonl, write_chrome_trace, write_jsonl
from repro.obs.report import render_table, summarize
from repro.obs.tracer import Tracer, activated


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Trace tooling: summarise and convert planner traces.")
    sub = parser.add_subparsers(dest="command")

    report = sub.add_parser(
        "report", help="summarise a JSONL trace into a per-span table")
    report.add_argument("trace", help="JSONL trace file (one span per line)")
    report.add_argument("--chrome-trace", metavar="OUT.json", default=None,
                        help="also write a Chrome trace_event conversion "
                             "for about://tracing / Perfetto")
    report.add_argument("--format", choices=("table", "json"),
                        default="table", help="report format")
    report.add_argument("--top", type=int, default=0,
                        help="only the N largest span names by total time")

    demo = sub.add_parser(
        "demo", help="run one traced plan_tour and write the trace")
    demo.add_argument("--out", default="trace.jsonl",
                      help="JSONL trace destination (default: trace.jsonl)")
    demo.add_argument("--chrome-trace", metavar="OUT.json", default=None,
                      help="also write the Chrome trace_event conversion")
    demo.add_argument("--nodes", type=int, default=60,
                      help="sensor count of the demo instance (default: 60)")
    demo.add_argument("--method", default="algorithm2",
                      help="planner method to trace (default: algorithm2)")
    demo.add_argument("--delta", type=float, default=40.0,
                      help="hovering-grid edge length in metres")
    demo.add_argument("--seed", type=int, default=7,
                      help="instance seed (default: 7)")

    _add_bench_parser(sub, "bench")
    _add_compare_parser(sub, "compare")
    return parser


def _add_bench_parser(sub, name: str) -> argparse.ArgumentParser:
    bench = sub.add_parser(
        name, help="run a registered benchmark suite into a run ledger")
    bench.add_argument("--suite", default="smoke",
                       help="registered suite name (default: smoke)")
    bench.add_argument("--out", default="bench-ledger.jsonl",
                       help="ledger JSONL destination "
                            "(default: bench-ledger.jsonl)")
    bench.add_argument("--repeats", type=int, default=1,
                       help="timed runs per case (default: 1)")
    bench.add_argument("--mem", action="store_true",
                       help="also record tracemalloc peak memory per run")
    return bench


def _add_compare_parser(sub, name: str) -> argparse.ArgumentParser:
    comp = sub.add_parser(
        name, help="diff two run ledgers with regression thresholds")
    comp.add_argument("old", help="baseline ledger JSONL")
    comp.add_argument("new", help="candidate ledger JSONL")
    comp.add_argument("--gate", action="store_true",
                      help="exit 1 when any case regresses (CI mode)")
    comp.add_argument("--time-ratio", type=float, default=None,
                      help="max allowed NEW/OLD wall p50 ratio")
    comp.add_argument("--mem-ratio", type=float, default=None,
                      help="max allowed NEW/OLD peak-memory ratio")
    comp.add_argument("--counter-ratio", type=float, default=None,
                      help="max allowed NEW/OLD work-counter ratio")
    comp.add_argument("--min-time-s", type=float, default=None,
                      help="ignore time deltas on cases faster than this")
    comp.add_argument("--format", choices=("table", "json"),
                      default="table", help="report format")
    return comp


def _cmd_report(args: argparse.Namespace) -> int:
    path = Path(args.trace)
    if not path.exists():
        print(f"error: trace file {args.trace!r} not found", file=sys.stderr)
        return 2
    records = read_jsonl(path)
    stats = summarize(records)
    if args.format == "json":
        print(json.dumps({"version": 1, "spans": len(records),
                          "stats": [s.as_dict() for s in stats]}, indent=2))
    else:
        print(f"{len(records)} span(s) in {path}")
        print(render_table(stats, top=args.top))
    if args.chrome_trace:
        n = write_chrome_trace(records, args.chrome_trace)
        print(f"wrote {n} trace event(s) to {args.chrome_trace}",
              file=sys.stderr)
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    # Planner/simulator imports stay local: the obs layer has no upward
    # dependency except inside this convenience command.
    from repro.core.planner import plan_tour
    from repro.energy.model import EnergyModel
    from repro.geometry.region import Region
    from repro.network.generator import NetworkGenerator
    from repro.radio.link import RadioModel
    from repro.sim.simulator import simulate_mission

    generator = NetworkGenerator(Region.square(400.0),
                                 volume_range=(50.0, 500.0))
    net = generator.uniform(args.nodes, seed=args.seed)
    energy = EnergyModel(capacity=6e4, hover_power=150.0,
                         travel_power=100.0, speed=10.0)
    radio = RadioModel(bandwidth=150.0, transmission_range=50.0, altitude=0.0)

    tracer = Tracer()
    tour = plan_tour(net, energy, radio, method=args.method,
                     delta=args.delta, trace=tracer)
    with activated(tracer):
        simulate_mission(tour, radio)

    records = tracer.records()
    write_jsonl(records, args.out)
    if args.chrome_trace:
        write_chrome_trace(records, args.chrome_trace)
    print(f"planned {tour.collected_volume:.1f} MB with {args.method}; "
          f"wrote {len(records)} span(s) to {args.out}"
          + (f" and {args.chrome_trace}" if args.chrome_trace else ""),
          file=sys.stderr)
    print(render_table(summarize(records), top=15))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.obs.bench import run_suite
    from repro.obs.ledger import Ledger
    out = Path(args.out)
    if out.exists():
        out.unlink()                       # ledgers append; start fresh
    try:
        ledger = run_suite(
            args.suite, repeats=args.repeats,
            ledger=Ledger(out, track_memory=args.mem),
            progress=lambda line: print(line, file=sys.stderr))
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"wrote {len(ledger)} run record(s) to {out}", file=sys.stderr)
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.obs.ledger import Ledger
    from repro.obs.regress import Thresholds, compare
    for path in (args.old, args.new):
        if not Path(path).exists():
            print(f"error: ledger file {path!r} not found", file=sys.stderr)
            return 2
    overrides = {name: value for name, value in (
        ("time_ratio", args.time_ratio), ("mem_ratio", args.mem_ratio),
        ("counter_ratio", args.counter_ratio),
        ("min_time_s", args.min_time_s)) if value is not None}
    report = compare(Ledger.read(args.old), Ledger.read(args.new),
                     Thresholds(**overrides))
    if args.format == "json":
        print(json.dumps(report.as_dict(), indent=2))
    else:
        print(report.render())
    if args.gate and not report.passed:
        return 1
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "demo":
        return _cmd_demo(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "compare":
        return _cmd_compare(args)
    parser.print_help()
    return 2


def bench_main(argv: Optional[Sequence[str]] = None) -> int:
    """``repro-bench`` entry point: ``run`` and ``compare`` subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Benchmark observatory: run registered suites into a "
                    "run ledger and gate on ledger diffs.")
    sub = parser.add_subparsers(dest="command")
    _add_bench_parser(sub, "run")
    _add_compare_parser(sub, "compare")
    args = parser.parse_args(argv)
    if args.command == "run":
        return _cmd_bench(args)
    if args.command == "compare":
        return _cmd_compare(args)
    parser.print_help()
    return 2


__all__ = ["main", "bench_main"]
