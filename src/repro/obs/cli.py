"""Command-line interface: ``python -m repro.obs report <trace.jsonl>``.

Subcommands
-----------
``report``
    Summarise a JSONL trace into the per-span-name table (count, total,
    mean, p95, self time); ``--chrome-trace out.json`` additionally
    converts the spans for about://tracing / Perfetto, and
    ``--format json`` emits the statistics machine-readably.
``demo``
    Run one traced ``plan_tour`` (plus an independent simulator flight)
    on a small seeded instance and write the trace — the one-command way
    to produce an inspectable profile, used by the CI trace-artifact job.

Exit codes: 0 — success; 2 — usage error (missing/unreadable trace).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.obs.export import read_jsonl, write_chrome_trace, write_jsonl
from repro.obs.report import render_table, summarize
from repro.obs.tracer import Tracer, activated


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Trace tooling: summarise and convert planner traces.")
    sub = parser.add_subparsers(dest="command")

    report = sub.add_parser(
        "report", help="summarise a JSONL trace into a per-span table")
    report.add_argument("trace", help="JSONL trace file (one span per line)")
    report.add_argument("--chrome-trace", metavar="OUT.json", default=None,
                        help="also write a Chrome trace_event conversion "
                             "for about://tracing / Perfetto")
    report.add_argument("--format", choices=("table", "json"),
                        default="table", help="report format")
    report.add_argument("--top", type=int, default=0,
                        help="only the N largest span names by total time")

    demo = sub.add_parser(
        "demo", help="run one traced plan_tour and write the trace")
    demo.add_argument("--out", default="trace.jsonl",
                      help="JSONL trace destination (default: trace.jsonl)")
    demo.add_argument("--chrome-trace", metavar="OUT.json", default=None,
                      help="also write the Chrome trace_event conversion")
    demo.add_argument("--nodes", type=int, default=60,
                      help="sensor count of the demo instance (default: 60)")
    demo.add_argument("--method", default="algorithm2",
                      help="planner method to trace (default: algorithm2)")
    demo.add_argument("--delta", type=float, default=40.0,
                      help="hovering-grid edge length in metres")
    demo.add_argument("--seed", type=int, default=7,
                      help="instance seed (default: 7)")
    return parser


def _cmd_report(args: argparse.Namespace) -> int:
    path = Path(args.trace)
    if not path.exists():
        print(f"error: trace file {args.trace!r} not found", file=sys.stderr)
        return 2
    records = read_jsonl(path)
    stats = summarize(records)
    if args.format == "json":
        print(json.dumps({"version": 1, "spans": len(records),
                          "stats": [s.as_dict() for s in stats]}, indent=2))
    else:
        print(f"{len(records)} span(s) in {path}")
        print(render_table(stats, top=args.top))
    if args.chrome_trace:
        n = write_chrome_trace(records, args.chrome_trace)
        print(f"wrote {n} trace event(s) to {args.chrome_trace}",
              file=sys.stderr)
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    # Planner/simulator imports stay local: the obs layer has no upward
    # dependency except inside this convenience command.
    from repro.core.planner import plan_tour
    from repro.energy.model import EnergyModel
    from repro.geometry.region import Region
    from repro.network.generator import NetworkGenerator
    from repro.radio.link import RadioModel
    from repro.sim.simulator import simulate_mission

    generator = NetworkGenerator(Region.square(400.0),
                                 volume_range=(50.0, 500.0))
    net = generator.uniform(args.nodes, seed=args.seed)
    energy = EnergyModel(capacity=6e4, hover_power=150.0,
                         travel_power=100.0, speed=10.0)
    radio = RadioModel(bandwidth=150.0, transmission_range=50.0, altitude=0.0)

    tracer = Tracer()
    tour = plan_tour(net, energy, radio, method=args.method,
                     delta=args.delta, trace=tracer)
    with activated(tracer):
        simulate_mission(tour, radio)

    records = tracer.records()
    write_jsonl(records, args.out)
    if args.chrome_trace:
        write_chrome_trace(records, args.chrome_trace)
    print(f"planned {tour.collected_volume:.1f} MB with {args.method}; "
          f"wrote {len(records)} span(s) to {args.out}"
          + (f" and {args.chrome_trace}" if args.chrome_trace else ""),
          file=sys.stderr)
    print(render_table(summarize(records), top=15))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "demo":
        return _cmd_demo(args)
    parser.print_help()
    return 2


__all__ = ["main"]
