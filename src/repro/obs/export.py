"""Trace export: JSONL span records and Chrome ``trace_event`` JSON.

Two interchange formats for :class:`repro.obs.tracer.Tracer` records:

* **JSONL** — one span record per line, exactly the tracer's dict schema
  (``name``/``ts_s``/``dur_s``/``id``/``parent``/``depth``/``attrs``).
  The native format of ``python -m repro.obs report`` and the round-trip
  format for archiving runs.
* **Chrome trace** — the ``trace_event`` JSON object format understood by
  about://tracing and https://ui.perfetto.dev: every span becomes one
  complete ("X"-phase) event with microsecond ``ts``/``dur`` and the span
  attributes under ``args``, so a planner run opens as a flame chart with
  zero extra tooling.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, IO, Iterable, List, Union

#: Synthetic process/thread ids (the planners are single-threaded).
TRACE_PID = 1
TRACE_TID = 1

#: Category stamped on every exported Chrome trace event.
TRACE_CATEGORY = "repro"

PathLike = Union[str, Path]


def write_jsonl(records: Iterable[Dict[str, Any]],
                dest: Union[PathLike, IO[str]]) -> int:
    """Write span *records* as JSONL; returns the number written."""
    if hasattr(dest, "write"):
        return _write_jsonl_stream(records, dest)  # type: ignore[arg-type]
    with open(dest, "w", encoding="utf-8") as fh:  # type: ignore[arg-type]
        return _write_jsonl_stream(records, fh)


def _write_jsonl_stream(records: Iterable[Dict[str, Any]],
                        fh: IO[str]) -> int:
    n = 0
    for rec in records:
        fh.write(json.dumps(rec, sort_keys=True, default=str))
        fh.write("\n")
        n += 1
    return n


def read_jsonl(source: Union[PathLike, IO[str]]) -> List[Dict[str, Any]]:
    """Read span records back from a JSONL file or stream."""
    if hasattr(source, "read"):
        lines = source.read().splitlines()  # type: ignore[union-attr]
    else:
        lines = Path(source).read_text(  # type: ignore[arg-type]
            encoding="utf-8").splitlines()
    return [json.loads(line) for line in lines if line.strip()]


def to_chrome_trace(records: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Convert span records to a Chrome ``trace_event`` JSON object.

    Every record becomes a complete event: ``ph="X"``, ``ts``/``dur`` in
    microseconds, fixed ``pid``/``tid`` (single-threaded planners), the
    span attributes plus the span/parent ids under ``args``.  The
    returned dict serialises directly with ``json.dump``.
    """
    events: List[Dict[str, Any]] = [{
        "name": "process_name", "ph": "M", "pid": TRACE_PID,
        "args": {"name": "repro planner"},
    }]
    for rec in records:
        args = dict(rec.get("attrs") or {})
        args["span_id"] = rec.get("id")
        if rec.get("parent") is not None:
            args["parent_id"] = rec["parent"]
        events.append({
            "name": rec["name"],
            "cat": TRACE_CATEGORY,
            "ph": "X",
            "ts": round(float(rec["ts_s"]) * 1e6, 3),
            "dur": round(float(rec["dur_s"]) * 1e6, 3),
            "pid": TRACE_PID,
            "tid": TRACE_TID,
            "args": args,
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(records: Iterable[Dict[str, Any]],
                       dest: PathLike) -> int:
    """Write the Chrome-trace conversion of *records* to *dest*.

    Returns the number of trace events written (spans + metadata).
    """
    payload = to_chrome_trace(records)
    Path(dest).write_text(json.dumps(payload, indent=1, default=str) + "\n",
                          encoding="utf-8")
    return len(payload["traceEvents"])


__all__ = ["write_jsonl", "read_jsonl", "to_chrome_trace",
           "write_chrome_trace", "TRACE_PID", "TRACE_TID", "TRACE_CATEGORY"]
