"""Regression observatory: aggregate run ledgers and gate on their diff.

``repro-bench compare OLD NEW --gate`` is the CI back-stop for every perf
claim the repo has accumulated (kernel ~14-20x, batch >=3x, cache and
pool speedups): it aggregates two ledgers (:func:`aggregate`), matches
benchmark cases by ``(event, label, config_hash)`` — so a case whose
*configuration* changed is reported as new, never silently compared —
and applies :class:`Thresholds` to the per-case deltas
(:func:`compare`).

What is compared per matched case:

* **wall time** — p50 over the case's samples (nearest-rank,
  :func:`repro.obs.metrics.quantile_sorted`), gated by ``time_ratio``
  but only when the baseline p50 clears ``min_time_s`` (sub-millisecond
  cases are timer noise, not signal);
* **peak memory** — max ``mem_peak_bytes``, gated by ``mem_ratio`` when
  both ledgers measured it;
* **work counters** — the deterministic ``metrics.counters`` from the
  records, gated by ``counter_ratio``.  Counters are hardware- and
  load-independent, so this is the gate that travels across CI hosts:
  an algorithmic regression (more rescores, more delta recomputations)
  fails here even when wall-clock noise would hide it.

Aggregation is **order-insensitive** — samples are sorted before
quantiles, counters/memory take maxima — so the verdict of a compare can
never depend on ledger merge order (property-tested in
``tests/test_obs_regress.py``).  Improvements (faster, fewer counted
operations) never fail the gate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.obs.metrics import quantile_sorted
from repro.obs.record import RunRecord

#: The identity a benchmark case is matched across ledgers by.
CaseKey = Tuple[str, str, str]


@dataclass(frozen=True)
class Thresholds:
    """Gate configuration: how much worse NEW may be before failing.

    Ratios are ``new / old`` upper bounds; the defaults are deliberately
    generous (catch 2x blow-ups, not scheduler noise) because CI hosts
    are shared and unwarmed.  Counters get the tight ratio — they are
    deterministic, so anything beyond float-mean jitter is a real
    algorithmic change.
    """

    time_ratio: float = 2.0
    mem_ratio: float = 2.0
    counter_ratio: float = 1.05
    min_time_s: float = 1e-3

    def as_dict(self) -> Dict[str, float]:
        """Flat dict for report JSON."""
        return {"time_ratio": self.time_ratio, "mem_ratio": self.mem_ratio,
                "counter_ratio": self.counter_ratio,
                "min_time_s": self.min_time_s}


@dataclass(frozen=True)
class CaseStats:
    """Order-insensitive aggregate of one case's ledger records."""

    event: str
    label: str
    config_hash: str
    n: int
    wall_p50_s: float
    wall_p95_s: float
    mem_peak_bytes: Optional[int]
    counters: Dict[str, float]

    @property
    def key(self) -> CaseKey:
        """The cross-ledger matching identity."""
        return (self.event, self.label, self.config_hash)

    def as_dict(self) -> Dict[str, Any]:
        """Flat dict for report JSON."""
        return {"event": self.event, "label": self.label,
                "config_hash": self.config_hash, "n": self.n,
                "wall_p50_s": self.wall_p50_s, "wall_p95_s": self.wall_p95_s,
                "mem_peak_bytes": self.mem_peak_bytes,
                "counters": dict(self.counters)}


def aggregate(records: Iterable[RunRecord]) -> Dict[CaseKey, CaseStats]:
    """Aggregate ledger records per case, insensitive to record order.

    Wall-clock samples are sorted before the nearest-rank quantiles,
    counters and peak memory take per-case maxima — a shuffled ledger
    aggregates to the identical stats, which is what makes compare
    verdicts independent of worker-shard merge order.
    """
    walls: Dict[CaseKey, List[float]] = {}
    mems: Dict[CaseKey, List[int]] = {}
    counters: Dict[CaseKey, Dict[str, float]] = {}
    for rec in records:
        key = (rec.event, rec.label, rec.config_hash)
        walls.setdefault(key, []).append(float(rec.wall_s))
        if rec.mem_peak_bytes is not None:
            mems.setdefault(key, []).append(int(rec.mem_peak_bytes))
        acc = counters.setdefault(key, {})
        for name, value in rec.metrics.get("counters", {}).items():
            acc[name] = max(acc.get(name, 0.0), float(value))
    stats: Dict[CaseKey, CaseStats] = {}
    for key, samples in walls.items():
        samples.sort()
        stats[key] = CaseStats(
            event=key[0], label=key[1], config_hash=key[2],
            n=len(samples),
            wall_p50_s=quantile_sorted(samples, 0.5),
            wall_p95_s=quantile_sorted(samples, 0.95),
            mem_peak_bytes=max(mems[key]) if key in mems else None,
            counters=counters.get(key, {}))
    return stats


@dataclass(frozen=True)
class CaseDelta:
    """One matched (or unmatched) case in a compare report."""

    key: CaseKey
    status: str                   # "ok" | "regressed" | "new" | "removed"
    reasons: Tuple[str, ...] = ()
    old: Optional[CaseStats] = None
    new: Optional[CaseStats] = None

    def as_dict(self) -> Dict[str, Any]:
        """Flat dict for report JSON."""
        return {"event": self.key[0], "label": self.key[1],
                "config_hash": self.key[2], "status": self.status,
                "reasons": list(self.reasons),
                "old": self.old.as_dict() if self.old else None,
                "new": self.new.as_dict() if self.new else None}


@dataclass(frozen=True)
class CompareReport:
    """Every case delta plus the gate verdict."""

    deltas: Tuple[CaseDelta, ...]
    thresholds: Thresholds = field(default_factory=Thresholds)

    @property
    def regressions(self) -> List[CaseDelta]:
        """The deltas that fail the gate."""
        return [d for d in self.deltas if d.status == "regressed"]

    @property
    def passed(self) -> bool:
        """True when no matched case regressed (new/removed never fail)."""
        return not self.regressions

    def as_dict(self) -> Dict[str, Any]:
        """JSON report: thresholds, verdict, per-case deltas."""
        return {"passed": self.passed,
                "regressions": len(self.regressions),
                "thresholds": self.thresholds.as_dict(),
                "cases": [d.as_dict() for d in self.deltas]}

    def render(self) -> str:
        """Human-readable compare table, regressions first."""
        lines = []
        order = {"regressed": 0, "ok": 1, "new": 2, "removed": 3}
        for d in sorted(self.deltas,
                        key=lambda d: (order.get(d.status, 9), d.key)):
            head = f"[{d.status:>9}] {d.key[0]} {d.key[1]}"
            if d.status == "ok" and d.old and d.new:
                ratio = (d.new.wall_p50_s / d.old.wall_p50_s
                         if d.old.wall_p50_s > 0 else float("nan"))
                head += (f"  p50 {d.old.wall_p50_s * 1e3:.2f}ms -> "
                         f"{d.new.wall_p50_s * 1e3:.2f}ms "
                         f"({ratio:.2f}x)")
            lines.append(head)
            for reason in d.reasons:
                lines.append(f"            - {reason}")
        verdict = ("PASS" if self.passed
                   else f"FAIL ({len(self.regressions)} regression(s))")
        lines.append(f"gate: {verdict}")
        return "\n".join(lines)


def _check_case(old: CaseStats, new: CaseStats,
                t: Thresholds) -> Tuple[str, ...]:
    """The gate reasons for one matched case (empty = within thresholds)."""
    reasons: List[str] = []
    if old.wall_p50_s >= t.min_time_s and old.wall_p50_s > 0:
        ratio = new.wall_p50_s / old.wall_p50_s
        if ratio > t.time_ratio:
            reasons.append(
                f"wall p50 {old.wall_p50_s:.4f}s -> {new.wall_p50_s:.4f}s "
                f"({ratio:.2f}x > {t.time_ratio:.2f}x)")
    if (old.mem_peak_bytes and new.mem_peak_bytes is not None
            and old.mem_peak_bytes > 0):
        ratio = new.mem_peak_bytes / old.mem_peak_bytes
        if ratio > t.mem_ratio:
            reasons.append(
                f"mem peak {old.mem_peak_bytes} -> {new.mem_peak_bytes} "
                f"bytes ({ratio:.2f}x > {t.mem_ratio:.2f}x)")
    for name in sorted(set(old.counters) & set(new.counters)):
        if old.counters[name] <= 0:
            continue
        ratio = new.counters[name] / old.counters[name]
        if ratio > t.counter_ratio:
            reasons.append(
                f"counter {name} {old.counters[name]:g} -> "
                f"{new.counters[name]:g} "
                f"({ratio:.3f}x > {t.counter_ratio:.3f}x)")
    return tuple(reasons)


def compare(old_records: Iterable[RunRecord],
            new_records: Iterable[RunRecord],
            thresholds: Optional[Thresholds] = None) -> CompareReport:
    """Diff two ledgers case-by-case under *thresholds*.

    Cases present only in NEW are ``"new"``, only in OLD ``"removed"`` —
    both informational, never gate failures (a changed ``config_hash``
    shows up as one of each, flagging the config drift instead of
    comparing incomparable runs).
    """
    t = thresholds if thresholds is not None else Thresholds()
    old_stats = aggregate(old_records)
    new_stats = aggregate(new_records)
    deltas: List[CaseDelta] = []
    for key in sorted(set(old_stats) | set(new_stats)):
        old = old_stats.get(key)
        new = new_stats.get(key)
        if old is None:
            deltas.append(CaseDelta(key=key, status="new", new=new))
        elif new is None:
            deltas.append(CaseDelta(key=key, status="removed", old=old))
        else:
            reasons = _check_case(old, new, t)
            deltas.append(CaseDelta(
                key=key, status="regressed" if reasons else "ok",
                reasons=reasons, old=old, new=new))
    return CompareReport(deltas=tuple(deltas), thresholds=t)


__all__ = ["Thresholds", "CaseStats", "CaseDelta", "CompareReport",
           "aggregate", "compare", "CaseKey"]
