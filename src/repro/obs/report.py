"""Trace summarisation: per-span-name statistics and the report table.

Turns a flat list of span records into the table ``python -m repro.obs
report`` prints: for every span name the call count, total / mean / p95
wall-clock, and **self time** — total minus the time spent in direct
child spans, i.e. the time genuinely attributable to that layer rather
than the layers below it.  Self time is what makes the table actionable:
``planner.plan_tour`` dominating *total* while ``kernel.insertion``
dominates *self* points the optimisation effort at the kernel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Sequence

from repro.obs.metrics import quantile_sorted


@dataclass(frozen=True)
class SpanStats:
    """Aggregated wall-clock statistics for one span name."""

    name: str
    count: int
    total_s: float
    mean_s: float
    p95_s: float
    self_s: float

    def as_dict(self) -> Dict[str, Any]:
        """Flat dict for JSON output."""
        return {"name": self.name, "count": self.count,
                "total_s": self.total_s, "mean_s": self.mean_s,
                "p95_s": self.p95_s, "self_s": self.self_s}


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an ascending sequence.

    Thin alias over the one shared quantile implementation
    (:func:`repro.obs.metrics.quantile_sorted`) so the report, the
    histogram buckets, and the regression observatory cannot drift apart.
    """
    return quantile_sorted(sorted_values, q)


def summarize(records: Sequence[Dict[str, Any]]) -> List[SpanStats]:
    """Per-name statistics over *records*, largest total first.

    Self time subtracts each span's *direct* children only; a dropped
    parent (ring-buffer truncation) simply leaves its children attributed
    to nobody, never double-counted.
    """
    child_time: Dict[int, float] = {}
    for rec in records:
        parent = rec.get("parent")
        if parent is not None:
            child_time[parent] = (child_time.get(parent, 0.0)
                                  + float(rec["dur_s"]))

    durations: Dict[str, List[float]] = {}
    self_times: Dict[str, float] = {}
    for rec in records:
        name = str(rec["name"])
        dur = float(rec["dur_s"])
        durations.setdefault(name, []).append(dur)
        own = dur - child_time.get(rec.get("id", -1), 0.0)
        self_times[name] = self_times.get(name, 0.0) + max(own, 0.0)

    stats = []
    for name, durs in durations.items():
        durs.sort()
        total = sum(durs)
        stats.append(SpanStats(
            name=name, count=len(durs), total_s=total,
            mean_s=total / len(durs), p95_s=_percentile(durs, 0.95),
            self_s=self_times[name]))
    stats.sort(key=lambda s: (-s.total_s, s.name))
    return stats


def _fmt_seconds(value: float) -> str:
    """Fixed-width (11 char) human-readable seconds."""
    if value >= 1.0:
        return f"{value:10.3f}s"
    if value >= 1e-3:
        return f"{value * 1e3:9.3f}ms"
    return f"{value * 1e6:9.1f}us"


def render_table(stats: Sequence[SpanStats], *, top: int = 0) -> str:
    """The report table, one row per span name (``top`` 0 = all rows)."""
    rows = stats[:top] if top else list(stats)
    name_w = max([len(s.name) for s in rows] + [len("span")])
    header = (f"{'span':<{name_w}}  {'count':>8}  {'total':>11}  "
              f"{'mean':>11}  {'p95':>11}  {'self':>11}")
    lines = [header, "-" * len(header)]
    for s in rows:
        lines.append(
            f"{s.name:<{name_w}}  {s.count:>8d}  {_fmt_seconds(s.total_s)}  "
            f"{_fmt_seconds(s.mean_s)}  {_fmt_seconds(s.p95_s)}  "
            f"{_fmt_seconds(s.self_s)}")
    if not rows:
        lines.append("(no spans recorded)")
    return "\n".join(lines)


__all__ = ["SpanStats", "summarize", "render_table"]
