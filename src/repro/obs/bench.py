"""Registered benchmark suites behind ``repro-bench`` / ``python -m repro.obs bench``.

Adapters over the scenarios the ad-hoc ``benchmarks/bench_*.py`` scripts
time — single planner calls per algorithm, miniature Fig. 3 / Fig. 5
sweeps — packaged as named :class:`BenchCase` entries so one harness can
run them, ledger them, and gate them.  Each case is:

* **self-contained** — a zero-argument callable building its own reduced
  instance from a JSON config payload (which is also what the case's
  ``config_hash`` is computed over, so a changed workload never gets
  silently compared against an old baseline);
* **deterministically counted** — besides wall-clock, every case reports
  the planner kernel's work counters (``kernel.*``), which are identical
  across hosts and are what the CI gate really keys on.

The ``smoke`` suite is the CI-sized selection (seconds, not minutes);
run it with::

    repro-bench run --suite smoke --out new.jsonl
    repro-bench compare baseline.jsonl new.jsonl --gate

``REPRO_BENCH_INJECT_SLEEP_S=<seconds>`` injects a sleep into every
case's timed region — the knob the gate-correctness tests (and the
BENCH_PR8 demo) use to manufacture a regression on demand.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.obs.ledger import Ledger, ledger_active, record_event
from repro.obs.memprof import PeakMemory
from repro.obs.record import config_hash

#: Environment knob: inject this many seconds of sleep into every case's
#: timed region (regression-gate demos and tests only).
ENV_INJECT_SLEEP = "REPRO_BENCH_INJECT_SLEEP_S"


@dataclass(frozen=True)
class BenchCase:
    """One registered benchmark scenario.

    ``fn`` runs the workload once and returns a result payload:
    ``{"counters": {...}, "engine": ..., "extra": {...}}`` — counters are
    the deterministic work counts folded into the ledger record.
    """

    name: str
    suites: Tuple[str, ...]
    config: Dict[str, Any]
    fn: Callable[[], Dict[str, Any]]


_REGISTRY: Dict[str, BenchCase] = {}


def register_case(case: BenchCase) -> BenchCase:
    """Add *case* to the registry (name must be unique)."""
    if case.name in _REGISTRY:
        raise ValueError(f"bench case {case.name!r} already registered")
    _REGISTRY[case.name] = case
    return case


def get_case(name: str) -> BenchCase:
    """The registered case *name* (raises ``KeyError`` when unknown)."""
    return _REGISTRY[name]


def suite_cases(suite: str) -> List[BenchCase]:
    """Every case in *suite*, in registration order."""
    return [c for c in _REGISTRY.values() if suite in c.suites]


def suites() -> List[str]:
    """All suite names, sorted."""
    return sorted({s for c in _REGISTRY.values() for s in c.suites})


# -- Harness ------------------------------------------------------------ #


def _injected_sleep_s() -> float:
    """The test-only sleep injected into each timed region (default 0)."""
    raw = os.environ.get(ENV_INJECT_SLEEP)
    return float(raw) if raw else 0.0


def run_case(case: BenchCase, *, repeats: int = 1,
             track_memory: bool = False,
             suite: Optional[str] = None) -> List[Any]:
    """Run *case* ``repeats`` times, emitting one ledger record per run.

    Requires an active ledger (install one with
    :class:`~repro.obs.ledger.ledger_active` or run via
    :func:`run_suite`); returns the emitted records.
    """
    inject_s = _injected_sleep_s()
    records = []
    for repeat in range(repeats):
        with PeakMemory(enabled=track_memory) as mem:
            t0 = time.perf_counter()
            payload = case.fn()
            if inject_s > 0.0:
                time.sleep(inject_s)
            wall_s = time.perf_counter() - t0
        rec = record_event(
            "bench.case",
            label=case.name,
            config_hash=config_hash(case.config),
            engine=payload.get("engine"),
            wall_s=wall_s,
            metrics={"counters": dict(payload.get("counters", {}))},
            mem_peak_bytes=mem.peak_bytes,
            extra={"suite": suite, "repeat": repeat,
                   **payload.get("extra", {})})
        if rec is not None:
            records.append(rec)
    return records


def run_suite(suite: str, *, repeats: int = 1,
              ledger: Optional[Ledger] = None,
              progress: Optional[Callable[[str], None]] = None) -> Ledger:
    """Run every case of *suite*; returns the ledger holding the records.

    A fresh in-memory :class:`Ledger` is created when none is given; pass
    ``Ledger(path)`` to stream records to a JSONL file as they complete.
    """
    cases = suite_cases(suite)
    if not cases:
        raise ValueError(f"unknown or empty bench suite {suite!r}; "
                         f"available: {suites()}")
    target = ledger if ledger is not None else Ledger()
    with ledger_active(target):
        for case in cases:
            t0 = time.perf_counter()
            run_case(case, repeats=repeats,
                     track_memory=target.track_memory, suite=suite)
            if progress is not None:
                progress(f"{case.name}: {repeats} run(s) in "
                         f"{time.perf_counter() - t0:.2f} s")
    return target


# -- Registered cases --------------------------------------------------- #
#
# Workload imports stay inside the case functions: the obs layer has no
# upward dependency on core/experiments except when a case actually runs
# (the `cli.py demo` discipline).


def _tour_counters(tour: Any) -> Dict[str, float]:
    """The kernel work counters of one planned tour, dotted-namespaced."""
    from repro.obs.record import perf_counter_metrics
    return perf_counter_metrics(tour.meta.get("perf") or {})


def _rows_counters(rows: Any) -> Dict[str, float]:
    """Summed kernel work counters over a sweep's aggregated rows."""
    from repro.obs.record import PERF_SECONDS_PREFIX
    acc: Dict[str, float] = {}
    for row in rows:
        for key, value in (row.perf or {}).items():
            if key == "engine" or key.startswith(PERF_SECONDS_PREFIX):
                continue
            name = f"kernel.{key}"
            acc[name] = acc.get(name, 0.0) + float(value)
    return acc


#: Shared reduced-scale payloads (also the hashed case configs).
_PLAN_CONFIG: Dict[str, Any] = {
    "n_nodes": 60, "n_instances": 1, "seed": 20200518, "delta": 20.0}
_SWEEP_CONFIG: Dict[str, Any] = {
    "n_nodes": 40, "n_instances": 2, "seed": 20200518, "delta": 20.0,
    "capacity_sweep": [3e4, 6e4], "k_values": [2]}


def _plan_workload(method: str, **kwargs: Any) -> Dict[str, Any]:
    """Plan one reduced instance with *method*; returns the case payload."""
    from repro.core.planner import plan_tour
    from repro.experiments.config import reduced_settings
    from repro.experiments.instances import make_instances
    config = reduced_settings().scaled(
        n_nodes=_PLAN_CONFIG["n_nodes"],
        n_instances=_PLAN_CONFIG["n_instances"],
        seed=_PLAN_CONFIG["seed"], delta=_PLAN_CONFIG["delta"])
    net = make_instances(config)[0]
    tour = plan_tour(net, config.energy_model(), config.radio_model(),
                     method=method, delta=config.delta, **kwargs)
    perf = tour.meta.get("perf") or {}
    return {"counters": _tour_counters(tour),
            "engine": perf.get("engine"),
            "extra": {"collected_gb": round(tour.collected_volume / 1e3, 3),
                      "n_hovers": tour.n_hovers}}


def _sweep_config() -> Any:
    from repro.experiments.config import reduced_settings
    return reduced_settings().scaled(
        n_nodes=_SWEEP_CONFIG["n_nodes"],
        n_instances=_SWEEP_CONFIG["n_instances"],
        seed=_SWEEP_CONFIG["seed"], delta=_SWEEP_CONFIG["delta"],
        capacity_sweep=tuple(_SWEEP_CONFIG["capacity_sweep"]),
        k_values=tuple(_SWEEP_CONFIG["k_values"]))


def _fig3_workload() -> Dict[str, Any]:
    """Miniature Fig. 3 capacity sweep (sequential, cached)."""
    from repro.experiments.fig3 import run_fig3
    result = run_fig3(_sweep_config(), n_restarts=1, jobs=1, cache=True)
    return {"counters": _rows_counters(result.rows),
            "extra": {"rows": len(result.rows)}}


def _fig5_batch_workload() -> Dict[str, Any]:
    """Miniature Fig. 5 capacity sweep via stacked batch columns."""
    from repro.experiments.fig5 import run_fig5
    result = run_fig5(_sweep_config(), jobs=1, cache=True,
                      batch_columns=True)
    return {"counters": _rows_counters(result.rows),
            "engine": "batch",
            "extra": {"rows": len(result.rows),
                      "batch_columns": result.meta.get("batch_columns")}}


register_case(BenchCase(
    name="plan.alg1", suites=("smoke",),
    config={**_PLAN_CONFIG, "method": "algorithm1"},
    fn=lambda: _plan_workload("algorithm1")))
register_case(BenchCase(
    name="plan.alg1_fast", suites=("smoke",),
    config={**_PLAN_CONFIG, "method": "algorithm1", "engine": "fast"},
    fn=lambda: _plan_workload("algorithm1", engine="fast")))
register_case(BenchCase(
    name="plan.alg2_kernel", suites=("smoke",),
    config={**_PLAN_CONFIG, "method": "algorithm2", "engine": "kernel"},
    fn=lambda: _plan_workload("algorithm2", engine="kernel")))
register_case(BenchCase(
    name="plan.alg2_reduce", suites=("smoke",),
    config={**_PLAN_CONFIG, "method": "algorithm2", "engine": "kernel",
            "site_reduction": "aggressive"},
    fn=lambda: _plan_workload("algorithm2", engine="kernel",
                              site_reduction="aggressive")))
register_case(BenchCase(
    name="plan.alg3_kernel", suites=("smoke",),
    config={**_PLAN_CONFIG, "method": "algorithm3", "K": 2,
            "engine": "kernel"},
    fn=lambda: _plan_workload("algorithm3", K=2, engine="kernel")))
register_case(BenchCase(
    name="plan.benchmark", suites=("smoke",),
    config={**_PLAN_CONFIG, "method": "benchmark"},
    fn=lambda: _plan_workload("benchmark")))
register_case(BenchCase(
    name="sweep.fig3", suites=("smoke",),
    config={**_SWEEP_CONFIG, "figure": "fig3"},
    fn=_fig3_workload))
register_case(BenchCase(
    name="sweep.fig5_batch", suites=("smoke",),
    config={**_SWEEP_CONFIG, "figure": "fig5", "batch_columns": True},
    fn=_fig5_batch_workload))


__all__ = ["BenchCase", "register_case", "get_case", "suite_cases",
           "suites", "run_case", "run_suite", "ENV_INJECT_SLEEP"]
