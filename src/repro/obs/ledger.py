"""The run ledger: durable JSONL accounting of planner/sweep/bench runs.

Nothing about a planner run used to persist across invocations — perf
counters died with the process, trace exports were one-offs, and the
pinned speedups (kernel ~14-20x, batch >=3x) had no continuously-audited
trail.  A :class:`Ledger` fixes that: an append-only JSONL file of
:class:`~repro.obs.record.RunRecord` entries, one per planner facade
call, sweep cell/column, or benchmark case.

Like tracing, the ledger is **off by default** and ambient when on:

* ``with ledger_active(Ledger(path)): run_fig5(...)`` — every cell of
  the sweep lands in ``path``;
* ``REPRO_LEDGER=runs.jsonl`` installs a ledger at ``repro.obs`` import
  (``REPRO_LEDGER_MEM=1`` additionally enables ``tracemalloc`` peak
  tracking), so batch runs leave an auditable trail with no code
  changes;
* emission sites call :func:`record_event` — a no-op returning ``None``
  when no ledger is active, so the disabled cost is one global load.

File layout is deterministic modulo timestamps: records append in the
order they are emitted, which every execution engine produces
canonically (the parallel executor merges worker ledger *shards* back in
canonical cell order — :mod:`repro.obs.shards`); the nondeterministic
fields (``wall_s``, ``ts``, timers, memory) are quarantined by
:meth:`RunRecord.deterministic_dict`.  ``python -m repro.obs bench`` /
``repro-bench`` write and compare ledgers (:mod:`repro.obs.regress`).
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Union

from repro.obs.record import RunRecord, environment_fingerprint

#: Environment variable naming a ledger JSONL appended to at import time.
ENV_LEDGER = "REPRO_LEDGER"

#: Environment variable enabling tracemalloc peak tracking in the ledger.
ENV_LEDGER_MEM = "REPRO_LEDGER_MEM"

#: Values of :data:`ENV_LEDGER_MEM` treated as "disabled".
_FALSY = frozenset({"", "0", "false", "no", "off"})

PathLike = Union[str, Path]

#: Cached host fingerprint (stable for the process lifetime).
_ENV_FINGERPRINT: Optional[Dict[str, Any]] = None


def _fingerprint() -> Dict[str, Any]:
    global _ENV_FINGERPRINT
    if _ENV_FINGERPRINT is None:
        _ENV_FINGERPRINT = environment_fingerprint()
    return _ENV_FINGERPRINT


class Ledger:
    """An append-only run ledger, optionally mirrored to a JSONL file.

    Parameters
    ----------
    path:
        When given, every :meth:`record` appends one JSON line there
        immediately (open/append/close, like trace shards), so a crashed
        run still leaves every record it finished.
    track_memory:
        When true, emission sites that support it wrap their measured
        region in :class:`repro.obs.memprof.PeakMemory` and stamp
        ``mem_peak_bytes`` — opt-in because ``tracemalloc`` costs real
        time on allocation-heavy paths.
    """

    __slots__ = ("path", "track_memory", "_records")

    def __init__(self, path: Optional[PathLike] = None, *,
                 track_memory: bool = False) -> None:
        self.path = Path(path) if path is not None else None
        self.track_memory = track_memory
        self._records: List[RunRecord] = []

    def __len__(self) -> int:
        return len(self._records)

    def record(self, rec: RunRecord) -> RunRecord:
        """Append *rec* (and its JSON line, when a path is set)."""
        self._records.append(rec)
        if self.path is not None:
            with open(self.path, "a", encoding="utf-8") as fh:
                fh.write(json.dumps(rec.as_dict(), sort_keys=True))
                fh.write("\n")
        return rec

    def extend(self, records: Iterable[RunRecord]) -> int:
        """Append many records (e.g. merged worker shards); returns count."""
        n = 0
        for rec in records:
            self.record(rec)
            n += 1
        return n

    def records(self) -> List[RunRecord]:
        """All records recorded so far (copies the list)."""
        return list(self._records)

    def write(self, dest: PathLike) -> int:
        """Write every record to *dest* as JSONL; returns the count."""
        with open(dest, "w", encoding="utf-8") as fh:
            for rec in self._records:
                fh.write(json.dumps(rec.as_dict(), sort_keys=True))
                fh.write("\n")
        return len(self._records)

    @staticmethod
    def read(source: PathLike) -> List[RunRecord]:
        """Load the records of a ledger JSONL file."""
        lines = Path(source).read_text(encoding="utf-8").splitlines()
        return [RunRecord.from_dict(json.loads(line))
                for line in lines if line.strip()]


#: The ambient ledger (``None`` = ledger off).
_active_ledger: Optional[Ledger] = None


def get_ledger() -> Optional[Ledger]:
    """The active ledger, or ``None`` when run accounting is off."""
    return _active_ledger


def set_ledger(ledger: Optional[Ledger]) -> Optional[Ledger]:
    """Install *ledger* (``None`` disables); returns the previous one."""
    global _active_ledger
    previous = _active_ledger
    _active_ledger = ledger
    return previous


class ledger_active:
    """Temporarily install a ledger: ``with ledger_active(ledger): ...``.

    ``ledger_active(None)`` keeps the current ledger, so entry points can
    thread an optional parameter straight through (the ``activated``
    tracer idiom).
    """

    __slots__ = ("ledger", "_previous", "_installed")

    def __init__(self, ledger: Optional[Ledger]) -> None:
        self.ledger = ledger
        self._previous: Optional[Ledger] = None
        self._installed = False

    def __enter__(self) -> Optional[Ledger]:
        if self.ledger is None:
            return _active_ledger
        self._previous = set_ledger(self.ledger)
        self._installed = True
        return self.ledger

    def __exit__(self, *exc_info: object) -> None:
        if self._installed:
            set_ledger(self._previous)
            self._installed = False
        return None


def record_event(event: str, /, label: str = "",
                 **fields: Any) -> Optional[RunRecord]:
    """Record one run event on the active ledger (``None`` when off).

    The one-liner emission sites use::

        record_event("sweep.cell", label=spec.name, wall_s=..., ...)

    ``event`` must be a dotted lowercase ``family.verb`` name — the
    ``obs-span-naming`` lint rule checks the literal, exactly as it does
    span names.  The host fingerprint and a unix timestamp are stamped
    automatically (cached fingerprint; both live outside the
    deterministic view).
    """
    ledger = _active_ledger
    if ledger is None:
        return None
    fields.setdefault("env", _fingerprint())
    fields.setdefault("ts", time.time())
    return ledger.record(RunRecord(event=event, label=label, **fields))


def install_from_env(environ: Optional[Dict[str, str]] = None
                     ) -> Optional[Ledger]:
    """Install the ledger the environment asks for; returns the active one.

    ``REPRO_LEDGER=path.jsonl`` appends every run record there for the
    process lifetime; ``REPRO_LEDGER_MEM`` truthy additionally turns on
    tracemalloc peak tracking.  Called once at ``repro.obs`` import;
    exposed for tests.
    """
    import os
    env = os.environ if environ is None else environ
    path = env.get(ENV_LEDGER)
    if not path or not path.strip():
        return _active_ledger
    mem = env.get(ENV_LEDGER_MEM)
    track = mem is not None and mem.strip().lower() not in _FALSY
    ledger = Ledger(path.strip(), track_memory=track)
    set_ledger(ledger)
    return ledger


__all__ = ["Ledger", "get_ledger", "set_ledger", "ledger_active",
           "record_event", "install_from_env", "ENV_LEDGER",
           "ENV_LEDGER_MEM"]
