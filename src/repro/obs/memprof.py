"""Peak-memory profiling via ``tracemalloc``, nestable and opt-in.

The ledger's ``mem_peak_bytes`` field answers "how much memory did this
planner call / sweep cell allocate at its worst moment" — the capacity
question a planning service has to answer before admitting a campaign.
``tracemalloc`` is the only stdlib way to measure that portably, but it
slows allocation-heavy code measurably, so everything here is **opt-in**
(``Ledger(track_memory=True)``, ``Tracer(track_memory=True)``, or
``REPRO_LEDGER_MEM=1``) and a disabled :class:`PeakMemory` region costs
one attribute check.

Regions nest: entering a region while ``tracemalloc`` is already tracing
resets the peak counter instead of restarting the tracer (so an outer
region keeps owning start/stop), and the measured peak is the traced
high-water mark *within* the region.
"""

from __future__ import annotations

import tracemalloc
from typing import Optional


def begin_peak_region() -> bool:
    """Start (or reset) peak tracking; returns True when tracing was
    started here — the caller that started it must stop it."""
    if tracemalloc.is_tracing():
        tracemalloc.reset_peak()
        return False
    tracemalloc.start()
    return True


def end_peak_region(started_here: bool) -> int:
    """Read the region's peak traced bytes and release the tracer when
    this region started it."""
    _current, peak = tracemalloc.get_traced_memory()
    if started_here:
        tracemalloc.stop()
    return int(peak)


class PeakMemory:
    """Measure the peak traced allocation of a ``with`` block::

        with PeakMemory(enabled=ledger.track_memory) as mem:
            plan_tour(...)
        record_event("planner.call", mem_peak_bytes=mem.peak_bytes)

    ``enabled=False`` (the common case — memory profiling off) makes the
    whole block a no-op and leaves :attr:`peak_bytes` ``None``, so
    emission sites can pass the attribute straight into a record.
    """

    __slots__ = ("enabled", "peak_bytes", "_started_here")

    def __init__(self, *, enabled: bool = True) -> None:
        self.enabled = enabled
        self.peak_bytes: Optional[int] = None
        self._started_here = False

    def __enter__(self) -> "PeakMemory":
        if self.enabled:
            self._started_here = begin_peak_region()
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self.enabled:
            self.peak_bytes = end_peak_region(self._started_here)
        return None


__all__ = ["PeakMemory", "begin_peak_region", "end_peak_region"]
