"""Execute a planned :class:`~repro.core.tour.CollectionTour` step by step.

The simulator shares *no* state with the planners: it re-derives coverage
from raw geometry, debits energy through the ledger, and uploads data with
the same greedy OFDMA semantics the paper's framework describes (every
covered device transmits on its own channel at bandwidth ``B`` for the
whole sojourn, capped by its remaining data).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.tour import CollectionTour
from repro.energy.ledger import EnergyLedger
from repro.geometry.coverage import CoverageIndex
from repro.obs.tracer import span
from repro.radio.link import DistanceRateModel, RadioModel
from repro.radio.ofdma import OFDMAScheduler
from repro.sim.events import FlightLeg, HoverEvent
from repro.sim.trace import MissionTrace


def simulate_mission(tour: CollectionTour, radio: RadioModel, *,
                     ofdma_channels: int = 1024,
                     strict_energy: bool = True,
                     strict_channels: bool = False,
                     rate_model: Optional[DistanceRateModel] = None
                     ) -> MissionTrace:
    """Fly the tour and return the full :class:`MissionTrace`.

    Parameters
    ----------
    tour:
        The planner output to execute.
    radio:
        Uplink model (coverage radius and bandwidth).
    ofdma_channels:
        Radio channel budget for the OFDMA scheduler.
    strict_energy:
        Raise :class:`~repro.utils.errors.InfeasibleTourError` the moment
        the battery would overdraw (default); otherwise finish the mission
        and let the caller inspect ``trace.ledger.overdrawn``.
    strict_channels:
        Raise when a hover covers more devices than channels exist;
        otherwise the excess devices are silently not served (their data
        stays on the ground), modelling a saturated radio.
    rate_model:
        Optional :class:`~repro.radio.link.DistanceRateModel`: uploads run
        at the distance-dependent effective rate instead of the constant
        ``radio.bandwidth`` the planners assume.  This is the sensitivity
        knob for the paper's §III-B "differences are negligible at low
        altitude" claim — see ``benchmarks/bench_rate_sensitivity.py``.

    Returns
    -------
    MissionTrace
    """
    net = tour.network
    index = CoverageIndex(net.positions, radio.coverage_radius)
    scheduler = OFDMAScheduler(ofdma_channels, strict=strict_channels)
    ledger = EnergyLedger(tour.energy, strict=strict_energy)

    rem = net.volumes.astype(float).copy()
    collected = np.zeros(net.n_nodes)
    events: list = []
    clock = 0.0
    points = tour.points

    with span("sim.mission", method=tour.method, n_stops=len(points)):
        for i in range(len(points)):
            pos = points[i]
            # Hover & collect (skip zero-duration stops, e.g. bare depot).
            duration = float(tour.sojourns[i])
            if duration > 0:
                with span("sim.hover"):
                    entry = ledger.debit_hover(duration, note=f"hover@{i}")
                    covered = index.covered_by_single(pos)
                    assignment = scheduler.assign(covered)
                    uploads = {}
                    for v, _ch in assignment.device_to_channel.items():
                        if rate_model is not None:
                            ground_d = float(
                                np.hypot(*(net.positions[v] - pos)))
                            rate = float(
                                rate_model.rate_at(np.asarray([ground_d]))[0])
                        else:
                            rate = radio.bandwidth
                        amount = min(rem[v], rate * duration)
                        if amount > 0:
                            uploads[v] = amount
                            rem[v] -= amount
                            collected[v] += amount
                    events.append(HoverEvent(
                        start_time=clock, end_time=clock + duration,
                        position=(float(pos[0]), float(pos[1])),
                        energy=entry.energy, uploads=uploads,
                        channels=dict(assignment.device_to_channel)))
                    clock += duration
            # Fly to the next point (wrapping back to the depot at the end).
            nxt = points[(i + 1) % len(points)]
            leg = float(np.hypot(*(nxt - pos)))
            if leg > 0:
                with span("sim.leg"):
                    entry = ledger.debit_travel(
                        leg, note=f"leg{i}->{(i + 1) % len(points)}")
                    events.append(FlightLeg(
                        start_time=clock, end_time=clock + entry.duration,
                        origin=(float(pos[0]), float(pos[1])),
                        destination=(float(nxt[0]), float(nxt[1])),
                        distance=leg, energy=entry.energy))
                    clock += entry.duration

    return MissionTrace(events=events, collected=collected, ledger=ledger,
                        ofdma_max_concurrency=scheduler.max_concurrency)


__all__ = ["simulate_mission"]
