"""Cross-validation: planner claims vs simulated execution.

The strongest correctness statement this library can make about a planner
is: *an independent executor, sharing no code path with the planner's
accounting, reproduces its claimed collected volume within tolerance and
stays within the battery.*  :func:`cross_validate` makes that statement
checkable in one call; the integration tests run it over every planner on
every scenario.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.core.tour import CollectionTour
from repro.radio.link import RadioModel
from repro.sim.simulator import simulate_mission
from repro.sim.trace import MissionTrace
from repro.utils.errors import InfeasibleTourError


@dataclass(frozen=True)
class CrossValidationReport:
    """Outcome of :func:`cross_validate`."""

    ok: bool
    claimed_volume: float
    simulated_volume: float
    claimed_energy: float
    simulated_energy: float
    discrepancies: List[str]
    trace: MissionTrace


def cross_validate(tour: CollectionTour, radio: RadioModel, *,
                   volume_tol: float = 1e-6,
                   energy_tol: float = 1e-6,
                   strict: bool = True) -> CrossValidationReport:
    """Execute *tour* and compare the trace against the planner's claims.

    Checks:

    1. the simulated mission never overdraws the battery,
    2. simulated total energy equals the planner's claimed energy,
    3. the simulator collects **at least** the claimed volume from every
       sensor (a planner may legitimately under-claim — e.g. a hover's
       sojourn drains neighbours it did not count — but must never
       over-claim).

    Parameters
    ----------
    strict:
        Raise :class:`InfeasibleTourError` on any discrepancy.
    """
    discrepancies: List[str] = []
    try:
        trace = simulate_mission(tour, radio, strict_energy=True)
    except InfeasibleTourError as exc:
        if strict:
            raise
        trace = simulate_mission(tour, radio, strict_energy=False)
        discrepancies.append(f"battery overdraw during execution: {exc}")

    sim_energy = trace.total_energy
    claimed_energy = tour.total_energy
    if abs(sim_energy - claimed_energy) > energy_tol * max(1.0, claimed_energy):
        discrepancies.append(
            f"energy mismatch: planner claims {claimed_energy:.6f} J, "
            f"simulator measured {sim_energy:.6f} J")

    short = tour.collected - trace.collected
    if (short > volume_tol).any():
        worst = int(np.argmax(short))
        discrepancies.append(
            f"sensor {worst}: planner claims {tour.collected[worst]:.6f} MB "
            f"but execution only collected {trace.collected[worst]:.6f} MB")

    report = CrossValidationReport(
        ok=not discrepancies,
        claimed_volume=tour.collected_volume,
        simulated_volume=trace.collected_volume,
        claimed_energy=claimed_energy,
        simulated_energy=sim_energy,
        discrepancies=discrepancies,
        trace=trace)
    if strict and discrepancies:
        raise InfeasibleTourError(
            "cross-validation failed: " + "; ".join(discrepancies))
    return report


__all__ = ["cross_validate", "CrossValidationReport"]
