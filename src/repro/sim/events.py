"""Timeline event records produced by the mission simulator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple


@dataclass(frozen=True)
class FlightLeg:
    """One point-to-point flight.

    Attributes
    ----------
    start_time, end_time:
        Mission clock (seconds) at departure and arrival.
    origin, destination:
        ``(x, y)`` coordinates.
    distance:
        Leg length in metres.
    energy:
        Joules consumed.
    """

    start_time: float
    end_time: float
    origin: Tuple[float, float]
    destination: Tuple[float, float]
    distance: float
    energy: float

    @property
    def duration(self) -> float:
        """Leg flight time in seconds."""
        return self.end_time - self.start_time


@dataclass(frozen=True)
class HoverEvent:
    """One hover-and-collect stop.

    Attributes
    ----------
    start_time, end_time:
        Mission clock (seconds).
    position:
        Hover ``(x, y)``.
    energy:
        Joules consumed hovering.
    uploads:
        Mapping sensor index -> MB uploaded during this hover.
    channels:
        Mapping sensor index -> OFDMA channel used.
    """

    start_time: float
    end_time: float
    position: Tuple[float, float]
    energy: float
    uploads: Dict[int, float] = field(default_factory=dict)
    channels: Dict[int, int] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Sojourn in seconds."""
        return self.end_time - self.start_time

    @property
    def volume(self) -> float:
        """Total MB collected at this hover."""
        return float(sum(self.uploads.values()))


__all__ = ["FlightLeg", "HoverEvent"]
