"""The :class:`MissionTrace` produced by executing a tour."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Union

import numpy as np

from repro.energy.ledger import EnergyLedger
from repro.sim.events import FlightLeg, HoverEvent

Event = Union[FlightLeg, HoverEvent]


@dataclass
class MissionTrace:
    """Complete record of one simulated mission.

    Attributes
    ----------
    events:
        Chronological :class:`FlightLeg` / :class:`HoverEvent` records.
    collected:
        Per-sensor MB actually uploaded over the mission.
    ledger:
        The energy account debited during execution.
    ofdma_max_concurrency:
        Peak simultaneous uploads observed (OFDMA channel pressure).
    """

    events: List[Event]
    collected: np.ndarray
    ledger: EnergyLedger
    ofdma_max_concurrency: int = 0

    @property
    def flight_legs(self) -> List[FlightLeg]:
        """Only the flight events, in order."""
        return [e for e in self.events if isinstance(e, FlightLeg)]

    @property
    def hovers(self) -> List[HoverEvent]:
        """Only the hover events, in order."""
        return [e for e in self.events if isinstance(e, HoverEvent)]

    @property
    def total_time(self) -> float:
        """Mission clock at the end of the last event (seconds)."""
        return self.events[-1].end_time if self.events else 0.0

    @property
    def total_energy(self) -> float:
        """Total joules debited."""
        return self.ledger.spent

    @property
    def collected_volume(self) -> float:
        """Total MB uploaded."""
        return float(self.collected.sum())

    def summary(self) -> str:
        """One-paragraph human-readable mission report."""
        legs, hovers = self.flight_legs, self.hovers
        travel = sum(leg.distance for leg in legs)
        return (
            f"mission: {len(legs)} legs ({travel:.0f} m), "
            f"{len(hovers)} hovers ({sum(h.duration for h in hovers):.1f} s), "
            f"collected {self.collected_volume:.1f} MB, "
            f"energy {self.total_energy:.0f} J "
            f"({self.ledger.remaining:.0f} J remaining), "
            f"peak OFDMA concurrency {self.ofdma_max_concurrency}"
        )


__all__ = ["MissionTrace", "Event"]
