"""Mission-execution simulator.

Planners *claim* a tour collects some volume within the energy budget; this
subpackage independently *executes* the tour: it flies each leg at the
UAV's speed, debits the :class:`~repro.energy.EnergyLedger` per activity,
assigns OFDMA channels at each hover, and uploads from every covered sensor
at bandwidth ``B`` for exactly the planned sojourn.  The resulting
:class:`~repro.sim.trace.MissionTrace` is compared against the planner's
claims by :func:`~repro.sim.validate.cross_validate` — the library's
end-to-end correctness check.
"""

from repro.sim.events import FlightLeg, HoverEvent
from repro.sim.trace import MissionTrace
from repro.sim.simulator import simulate_mission
from repro.sim.validate import cross_validate, CrossValidationReport
from repro.sim.perturb import (
    Perturbation,
    ContingencyResult,
    simulate_with_contingency,
    evaluate_robustness,
)

__all__ = [
    "Perturbation",
    "ContingencyResult",
    "simulate_with_contingency",
    "evaluate_robustness",
    "FlightLeg",
    "HoverEvent",
    "MissionTrace",
    "simulate_mission",
    "cross_validate",
    "CrossValidationReport",
]
