"""Execution under perturbation + a return-home contingency controller.

Planners assume calm air, nominal battery chemistry, clean radio links.
Real missions get headwinds, cold batteries, interference, and dead
sensors.  This module stress-tests a plan:

* :class:`Perturbation` — multiplicative disturbances on flight speed,
  hover power, and uplink bandwidth, plus random sensor dropout;
* :func:`simulate_with_contingency` — executes the tour under a
  perturbation with the safety policy every real autopilot ships:
  **before committing to the next waypoint, check that flying there,
  hovering, and then flying straight home still fits the remaining
  battery (plus a reserve); otherwise abort and return now.**

The result quantifies the *robustness margin* of each planner: how much
data survives a given disturbance, and whether the UAV ever strands
itself (it never should, by construction of the controller — asserted in
the tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.tour import CollectionTour
from repro.geometry.coverage import CoverageIndex
from repro.radio.link import RadioModel
from repro.utils.errors import InvalidParameterError
from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import check_in_range, check_positive


@dataclass(frozen=True)
class Perturbation:
    """Multiplicative disturbances applied during execution.

    Attributes
    ----------
    speed_factor:
        Effective ground speed multiplier (headwind < 1 < tailwind).
    hover_power_factor:
        Hover consumption multiplier (> 1 = cold/degraded battery).
    bandwidth_factor:
        Uplink rate multiplier (< 1 = interference).
    sensor_dropout:
        Fraction of sensors that silently fail to upload (seeded draw).
    seed:
        Seed for the dropout draw.
    """

    speed_factor: float = 1.0
    hover_power_factor: float = 1.0
    bandwidth_factor: float = 1.0
    sensor_dropout: float = 0.0
    seed: SeedLike = 0

    def __post_init__(self) -> None:
        check_positive(self.speed_factor, "speed_factor")
        check_positive(self.hover_power_factor, "hover_power_factor")
        check_positive(self.bandwidth_factor, "bandwidth_factor")
        check_in_range(self.sensor_dropout, "sensor_dropout", 0.0, 1.0)

    @classmethod
    def nominal(cls) -> "Perturbation":
        """No disturbance — execution should match the plan exactly."""
        return cls()


@dataclass
class ContingencyResult:
    """Outcome of :func:`simulate_with_contingency`.

    Attributes
    ----------
    collected:
        Per-sensor MB actually uploaded.
    energy_spent:
        Total joules consumed including the return leg.
    completed_hovers:
        Number of planned hovers fully executed.
    aborted_at:
        Index of the first skipped tour point, or ``None`` when the full
        plan flew.
    returned_safely:
        Whether the UAV reached the depot within the battery.
    """

    collected: np.ndarray
    energy_spent: float
    completed_hovers: int
    aborted_at: Optional[int]
    returned_safely: bool

    @property
    def collected_volume(self) -> float:
        """Total MB collected under the perturbation."""
        return float(self.collected.sum())

    @property
    def aborted(self) -> bool:
        """True when the contingency controller cut the mission short."""
        return self.aborted_at is not None


def simulate_with_contingency(tour: CollectionTour, radio: RadioModel,
                              perturbation: Perturbation = Perturbation(), *,
                              reserve_fraction: float = 0.0) -> ContingencyResult:
    """Execute *tour* under *perturbation* with the return-home policy.

    Parameters
    ----------
    tour:
        The planned mission.
    radio:
        Nominal radio model (bandwidth scaled by the perturbation).
    perturbation:
        The disturbance to apply.
    reserve_fraction:
        Battery fraction the controller refuses to touch except for the
        return leg (e.g. 0.1 = keep a 10 % reserve).

    Returns
    -------
    ContingencyResult
        Never raises for energy: the controller's whole job is to get
        home within budget; ``returned_safely`` reports whether it did
        (it can only fail when the perturbation makes even the *current*
        direct return infeasible — e.g. an extreme headwind arising
        mid-mission that no policy could beat).
    """
    check_in_range(reserve_fraction, "reserve_fraction", 0.0, 1.0)
    energy = tour.energy
    eff_speed = energy.speed * perturbation.speed_factor
    hover_power = energy.hover_power * perturbation.hover_power_factor
    travel_per_m = energy.travel_power / eff_speed
    bandwidth = radio.bandwidth * perturbation.bandwidth_factor
    capacity = energy.capacity
    reserve = capacity * reserve_fraction

    rng = as_rng(perturbation.seed)
    net = tour.network
    alive = rng.uniform(size=net.n_nodes) >= perturbation.sensor_dropout

    index = CoverageIndex(net.positions, radio.coverage_radius)
    rem = net.volumes.astype(float).copy()
    collected = np.zeros(net.n_nodes)

    depot = tour.points[0]
    pos = depot.copy()
    spent = 0.0
    completed = 0
    aborted_at: Optional[int] = None

    def travel_cost(a, b) -> float:
        return float(np.hypot(*(b - a))) * travel_per_m

    points = tour.points
    for i in range(1, len(points)):
        target = points[i]
        hover_cost = float(tour.sojourns[i]) * hover_power
        go = travel_cost(pos, target)
        home_after = travel_cost(target, depot)
        # Commit test: go + hover + direct return must fit above reserve.
        if spent + go + hover_cost + home_after > capacity - reserve + 1e-9:
            aborted_at = i
            break
        spent += go + hover_cost
        pos = target
        duration = float(tour.sojourns[i])
        if duration > 0:
            covered = index.covered_by_single(pos)
            for v in covered:
                if not alive[v]:
                    continue
                amount = min(rem[v], bandwidth * duration)
                rem[v] -= amount
                collected[v] += amount
            completed += 1

    # Return leg (always attempted).
    home = travel_cost(pos, depot)
    spent += home
    returned_safely = spent <= capacity + 1e-9
    return ContingencyResult(collected=collected, energy_spent=spent,
                             completed_hovers=completed,
                             aborted_at=aborted_at,
                             returned_safely=returned_safely)


@dataclass
class RobustnessRow:
    """One perturbation's outcome for the sweep helper."""

    label: str
    collected_volume: float
    fraction_of_plan: float
    aborted: bool
    returned_safely: bool
    energy_spent: float


def evaluate_robustness(tour: CollectionTour, radio: RadioModel,
                        perturbations: List, *,
                        labels: Optional[List[str]] = None,
                        reserve_fraction: float = 0.0) -> List[RobustnessRow]:
    """Run a batch of perturbations against one plan.

    Returns one :class:`RobustnessRow` per perturbation, with collected
    volume expressed both absolutely and as a fraction of the planner's
    nominal claim.
    """
    if labels is not None and len(labels) != len(perturbations):
        raise InvalidParameterError("labels must match perturbations")
    claim = max(tour.collected_volume, 1e-12)
    rows = []
    for i, p in enumerate(perturbations):
        res = simulate_with_contingency(tour, radio, p,
                                        reserve_fraction=reserve_fraction)
        rows.append(RobustnessRow(
            label=labels[i] if labels else f"perturbation-{i}",
            collected_volume=res.collected_volume,
            fraction_of_plan=res.collected_volume / claim,
            aborted=res.aborted,
            returned_safely=res.returned_safely,
            energy_spent=res.energy_spent))
    return rows


__all__ = [
    "Perturbation",
    "ContingencyResult",
    "simulate_with_contingency",
    "RobustnessRow",
    "evaluate_robustness",
]
