"""Planner output: the :class:`CollectionTour`, and its independent validator.

Every planner returns a :class:`CollectionTour` — the closed tour's hover
points (depot first), the sojourn duration at each point, and the per-sensor
collected volumes.  :func:`validate_tour_feasibility` re-derives energy and
collection claims from first principles (geometry + radio + energy model
only — none of the planner's internal state), so a planner bug that
over-claims data or under-counts energy cannot survive the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.energy.model import EnergyModel
from repro.geometry.distance import tour_length
from repro.network.sensor_network import SensorNetwork
from repro.radio.link import RadioModel
from repro.utils.errors import InfeasibleTourError, InvalidParameterError

#: Absolute tolerance (J / MB / s) used by the validator.
FEASIBILITY_TOL = 1e-6


@dataclass
class CollectionTour:
    """A planned UAV data-collection mission.

    Attributes
    ----------
    points:
        ``(k, 2)`` hover coordinates in visit order; row 0 is the depot.
        The tour is closed (the UAV returns from the last point to row 0).
    sojourns:
        Length-``k`` hover durations in seconds (``sojourns[0]`` is 0
        unless the depot doubles as a hovering location).
    collected:
        Length-``n`` per-sensor collected volumes in MB.
    network:
        The network the tour was planned for.
    energy:
        The energy model the tour was planned against.
    method:
        Planner tag (e.g. ``"algorithm2"``).
    meta:
        Free-form planner diagnostics (iteration counts, candidate sizes...).
    """

    points: np.ndarray
    sojourns: np.ndarray
    collected: np.ndarray
    network: SensorNetwork
    energy: EnergyModel
    method: str = ""
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.points = np.asarray(self.points, dtype=float)
        self.sojourns = np.asarray(self.sojourns, dtype=float)
        self.collected = np.asarray(self.collected, dtype=float)
        if self.points.ndim != 2 or self.points.shape[1] != 2:
            raise InvalidParameterError(
                f"points must be (k, 2), got {self.points.shape}")
        if len(self.points) == 0:
            raise InvalidParameterError("a tour must contain at least the depot")
        if self.sojourns.shape != (len(self.points),):
            raise InvalidParameterError(
                "sojourns must have one entry per tour point")
        if (self.sojourns < 0).any():
            raise InvalidParameterError("sojourns must be >= 0")
        if self.collected.shape != (self.network.n_nodes,):
            raise InvalidParameterError(
                f"collected must have shape ({self.network.n_nodes},)")
        if (self.collected < -FEASIBILITY_TOL).any():
            raise InvalidParameterError("collected volumes must be >= 0")

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #
    @property
    def n_hovers(self) -> int:
        """Number of tour points with positive sojourn."""
        return int((self.sojourns > 0).sum())

    @property
    def travel_distance(self) -> float:
        """Closed-tour length in metres."""
        return tour_length(self.points)

    @property
    def hover_time(self) -> float:
        """Total hover seconds ``T_h``."""
        return float(self.sojourns.sum())

    @property
    def travel_time(self) -> float:
        """Total travel seconds ``T_t``."""
        return self.energy.travel_time(self.travel_distance)

    @property
    def mission_time(self) -> float:
        """Total mission duration ``T = T_h + T_t``."""
        return self.hover_time + self.travel_time

    @property
    def hover_energy(self) -> float:
        """Joules spent hovering."""
        return self.energy.hover_energy(self.hover_time)

    @property
    def travel_energy(self) -> float:
        """Joules spent travelling."""
        return self.energy.travel_energy(self.travel_distance)

    @property
    def total_energy(self) -> float:
        """Total mission energy (J)."""
        return self.hover_energy + self.travel_energy

    @property
    def collected_volume(self) -> float:
        """Total collected data in MB — the optimisation objective."""
        return float(self.collected.sum())

    @property
    def energy_slack(self) -> float:
        """Unused battery (J); negative means infeasible."""
        return self.energy.capacity - self.total_energy

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"CollectionTour(method={self.method!r}, hovers={self.n_hovers}, "
                f"collected={self.collected_volume:.1f} MB, "
                f"energy={self.total_energy:.0f}/{self.energy.capacity:.0f} J)")


@dataclass(frozen=True)
class FeasibilityReport:
    """Outcome of :func:`validate_tour_feasibility`."""

    feasible: bool
    total_energy: float
    energy_capacity: float
    collected_volume: float
    violations: List[str]

    @property
    def energy_utilisation(self) -> float:
        """Fraction of the battery the tour uses."""
        return self.total_energy / self.energy_capacity


def validate_tour_feasibility(tour: CollectionTour, *,
                              radio: Optional[RadioModel] = None,
                              strict: bool = True,
                              tol: float = FEASIBILITY_TOL) -> FeasibilityReport:
    """Independently re-check every claim a planner made.

    Checks performed (all from raw geometry, not planner state):

    1. **Energy** — recomputed hover + travel energy fits the battery.
    2. **Closure** — the tour starts at the network depot.
    3. **Conservation** — no sensor yields more than it stores
       (``collected[v] <= D_v``).
    4. **Coverage & bandwidth** (requires *radio*) — for every sensor,
       the collected volume is at most ``B *`` (total sojourn of tour
       points covering it); a sensor no tour point covers must have
       ``collected[v] == 0``.

    Parameters
    ----------
    tour:
        The planner output.
    radio:
        Radio model enabling check 4; without it only 1–3 run.
    strict:
        Raise :class:`InfeasibleTourError` on any violation instead of
        returning a failing report.
    tol:
        Numerical slack for the comparisons (absolute, plus 1e-9 relative
        on the energy check).
    """
    violations: List[str] = []
    net = tour.network

    total_energy = tour.total_energy
    cap = tour.energy.capacity
    if total_energy > cap * (1 + 1e-9) + tol:
        violations.append(
            f"energy {total_energy:.3f} J exceeds capacity {cap:.3f} J")

    if not np.allclose(tour.points[0], net.depot, atol=1e-9):
        violations.append(
            f"tour starts at {tour.points[0]}, not the depot {net.depot}")

    over = tour.collected - net.volumes
    if (over > tol).any():
        worst = int(np.argmax(over))
        violations.append(
            f"sensor {worst} over-collected: {tour.collected[worst]:.6f} MB "
            f"of {net.volumes[worst]:.6f} MB stored")

    if radio is not None and net.n_nodes > 0:
        r0 = radio.coverage_radius
        # (k, n) ground distances from each tour point to each sensor.
        diff = tour.points[:, None, :] - net.positions[None, :, :]
        dists = np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))
        cover = dists <= r0 + 1e-9
        # Upper bound on what each sensor could upload across the mission.
        capacity_mb = radio.bandwidth * (cover * tour.sojourns[:, None]).sum(axis=0)
        excess = tour.collected - capacity_mb
        if (excess > tol * max(1.0, radio.bandwidth)).any():
            worst = int(np.argmax(excess))
            violations.append(
                f"sensor {worst} collected {tour.collected[worst]:.6f} MB but "
                f"covered sojourns only allow {capacity_mb[worst]:.6f} MB")

    report = FeasibilityReport(feasible=not violations,
                               total_energy=total_energy,
                               energy_capacity=cap,
                               collected_volume=tour.collected_volume,
                               violations=violations)
    if strict and violations:
        raise InfeasibleTourError(
            "infeasible tour: " + "; ".join(violations),
            required=total_energy, available=cap)
    return report


__all__ = [
    "CollectionTour",
    "FeasibilityReport",
    "validate_tour_feasibility",
    "FEASIBILITY_TOL",
]
