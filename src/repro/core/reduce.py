"""Candidate-site reduction pre-pass (runs between §III-B and Algs. 1-3).

Dense δ-grids explode the candidate-site count ``m`` (Fig. 4's δ = 5 m
column enumerates tens of thousands of squares for |V| = 500) and every
greedy round of Algorithms 1-3 scores all of them, even with the
incremental kernel and the stacked batch engine.  Following the
TSP-derived candidate-pruning idea of Krishnan et al. (arXiv:2306.01355),
this module shrinks the candidate :class:`~repro.core.hovering.HoveringSites`
*before* any planner runs, behind a :class:`SiteReduction` config with two
preset levels:

``safe`` — provably plan-preserving eliminations only.  A site with zero
residual award can never be selected (Eq. 11 keeps its ``P'`` at 0), and a
site whose out-and-back depot leg alone exceeds the battery can never pass
the planners' feasibility test ``new_energy <= E + 1e-9`` (any closed tour
through ``s`` has length ``>= 2·d(depot, s)``, so the travel term alone
already overshoots).  Removing such sites changes neither the residual
scores nor the argmax tie-breaks of the survivors, so Algorithms 2/3
produce bitwise-identical tours on every engine (pinned by
``tests/test_core_reduce.py`` and the hypothesis properties).

``aggressive`` — three additional heuristic stages that trade collected
data for candidate count (the deltas are measured by the claims harness,
never assumed):

* **dominated-coverage elimination** — drop any site whose covered-sensor
  set is a subset of another surviving site's (a subset never has the
  larger award, volumes being non-negative; equal sets keep the lowest
  index).  NOTE: dominance is *not* plan-preserving for the greedy
  heuristics — a dominated site can sit closer to the current tour, win
  Eq. 13 on a smaller insertion delta, and steer construction — which is
  why it lives above the ``safe`` level (see DESIGN.md §9).
* **cluster representatives** — group near-duplicate sites (coverage-set
  Jaccard ≥ ``cluster_jaccard`` within a ``cluster_radius_factor``·δ
  ball) and keep one representative per cluster (max award, ties to the
  lowest index).
* **TSP-corridor filtering** — build a cheap tour (nearest-neighbour +
  2-opt) over a greedy set-cover skeleton of the survivors and drop sites
  whose cheapest-insertion detour off that corridor exceeds
  ``corridor_budget_factor``·R0 metres.  The budget is deliberately
  denominated in metres, not joules, so the scalar and batch engines
  (which plan whole capacity columns at once) agree on the survivor set.

A coverage-repair step then re-adds the best dropped site for any sensor
the aggressive stages orphaned, so reachable sensors never silently lose
all coverage.

Every reduction returns a :class:`ReducedSites` — a row-sliced
``HoveringSites`` carrying the survivor→original index map and per-stage
drop counts; planners surface those under ``meta["site_reduction"]`` and
``meta["perf"]["reduce"]`` so the run ledger folds them into the
``kernel.reduce.*`` work counters the ``repro-bench`` gate keys on.
"""
# repro: hot-path  (m can be ~4e4 on dense grids: no (m, m)/(m, n) denses)

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Union

import numpy as np

from repro.core.hovering import HoveringSites
from repro.energy.model import EnergyModel
from repro.geometry.coverage import SparseCoverage
from repro.geometry.distance import cross_distances, pairwise_distances
from repro.obs.tracer import span
from repro.tsp.construct import nearest_neighbor_tour
from repro.tsp.improve import two_opt
from repro.tsp.length import tour_length_matrix
from repro.utils.errors import InvalidParameterError

#: Feasibility slack, matching the planners' ``new_energy <= E + 1e-9``.
_FEAS_TOL = 1e-9

#: Residual-award floor of the corridor skeleton's set-cover loop.
_AWARD_TOL = 1e-12

#: Rows per chunk of the sparse coverage gram product (bounds the peak
#: intersection-count buffer to ~chunk × mean-overlap entries).
_GRAM_CHUNK = 2048

#: Preset names accepted by :func:`resolve_reduction` and the CLI.
REDUCTION_LEVELS = ("off", "safe", "aggressive")


@dataclass(frozen=True)
class SiteReduction:
    """Which reduction stages run, and their knobs.

    ``level`` is a display/transport label; the stage booleans are the
    actual behaviour (so a custom mix is expressible).  Use
    :func:`resolve_reduction` to build one from a preset name or a
    transport dict.
    """

    level: str = "off"
    zero_award: bool = False
    unreachable: bool = False
    dominated: bool = False
    cluster: bool = False
    corridor: bool = False
    cluster_jaccard: float = 0.75
    cluster_radius_factor: float = 2.0
    corridor_budget_factor: float = 2.0

    def __post_init__(self) -> None:
        if not isinstance(self.level, str) or not self.level:
            raise InvalidParameterError("reduction level must be a string")
        if not (0.0 < self.cluster_jaccard <= 1.0):
            raise InvalidParameterError(
                f"cluster_jaccard must be in (0, 1], "
                f"got {self.cluster_jaccard}")
        if self.cluster_radius_factor <= 0.0:
            raise InvalidParameterError(
                f"cluster_radius_factor must be positive, "
                f"got {self.cluster_radius_factor}")
        if self.corridor_budget_factor <= 0.0:
            raise InvalidParameterError(
                f"corridor_budget_factor must be positive, "
                f"got {self.corridor_budget_factor}")

    @property
    def enabled(self) -> bool:
        """True when any stage runs at all."""
        return (self.zero_award or self.unreachable or self.dominated
                or self.cluster or self.corridor)

    @property
    def capacity_dependent(self) -> bool:
        """True when the survivor set depends on the battery capacity."""
        return self.unreachable

    def as_dict(self) -> Dict[str, Any]:
        """Plain-JSON view (the worker-transport / cache-key payload)."""
        return {
            "level": self.level,
            "zero_award": bool(self.zero_award),
            "unreachable": bool(self.unreachable),
            "dominated": bool(self.dominated),
            "cluster": bool(self.cluster),
            "corridor": bool(self.corridor),
            "cluster_jaccard": float(self.cluster_jaccard),
            "cluster_radius_factor": float(self.cluster_radius_factor),
            "corridor_budget_factor": float(self.corridor_budget_factor),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SiteReduction":
        """Inverse of :meth:`as_dict`; unknown keys are an error."""
        unknown = set(payload) - set(cls().as_dict())
        if unknown:
            raise InvalidParameterError(
                f"unknown SiteReduction keys: {sorted(unknown)}")
        return cls(**dict(payload))

    def key(self) -> str:
        """Canonical-JSON cache-key fragment (stable across processes)."""
        return json.dumps(self.as_dict(), sort_keys=True)

    def transport(self) -> Union[str, Dict[str, Any]]:
        """JSON-safe wire form: the preset name when exact, else the dict."""
        preset = _PRESETS.get(self.level)
        if preset is not None and preset == self:
            return self.level
        return self.as_dict()


_PRESETS: Dict[str, SiteReduction] = {
    "off": SiteReduction(level="off"),
    "safe": SiteReduction(level="safe", zero_award=True, unreachable=True),
    "aggressive": SiteReduction(level="aggressive", zero_award=True,
                                unreachable=True, dominated=True,
                                cluster=True, corridor=True),
}


def resolve_reduction(
        value: Union[None, str, Mapping[str, Any], SiteReduction],
) -> SiteReduction:
    """Coerce a planner's ``site_reduction=`` argument to a config.

    Accepts ``None`` (off), a preset name from :data:`REDUCTION_LEVELS`,
    a transport dict (:meth:`SiteReduction.as_dict`), or a ready config.
    """
    if value is None:
        return _PRESETS["off"]
    if isinstance(value, SiteReduction):
        return value
    if isinstance(value, str):
        try:
            return _PRESETS[value]
        except KeyError:
            raise InvalidParameterError(
                f"site_reduction must be one of {REDUCTION_LEVELS}, "
                f"got {value!r}")
    if isinstance(value, Mapping):
        return SiteReduction.from_dict(value)
    raise InvalidParameterError(
        f"site_reduction must be None, a level name, a dict, or a "
        f"SiteReduction, got {type(value).__name__}")


@dataclass
class ReducedSites(HoveringSites):
    """A row-sliced :class:`HoveringSites` plus its provenance.

    ``survivors`` maps reduced site index → original site index (strictly
    increasing — the reduction is a row slice, never a reorder);
    ``stats`` counts per-stage drops.  Planners accept a
    ``ReducedSites`` wherever they accept ``sites=`` and will not reduce
    it again (the cluster stage is not idempotent).
    """

    survivors: np.ndarray = field(default_factory=lambda: np.empty(0, int))
    n_original: int = 0
    reduction: SiteReduction = field(default_factory=SiteReduction)
    stats: Dict[str, int] = field(default_factory=dict)

    def to_original(self, indices) -> np.ndarray:
        """Original site ids of the given reduced site *indices*."""
        idx = np.asarray(indices, dtype=int)
        if idx.size and (idx.min() < 0 or idx.max() >= self.n_sites):
            raise InvalidParameterError(
                f"reduced site index out of range [0, {self.n_sites})")
        return self.survivors[idx]

    def from_original(self, indices) -> np.ndarray:
        """Reduced indices of original site ids (-1 where dropped)."""
        idx = np.asarray(indices, dtype=int)
        if idx.size and (idx.min() < 0 or idx.max() >= self.n_original):
            raise InvalidParameterError(
                f"original site index out of range [0, {self.n_original})")
        inverse = np.full(self.n_original, -1, dtype=int)
        inverse[self.survivors] = np.arange(self.n_sites)
        return inverse[idx]

    def meta_block(self) -> Dict[str, Any]:
        """The ``meta["site_reduction"]`` payload planners attach."""
        return {"level": self.reduction.level,
                "n_original": int(self.n_original),
                "n_reduced": int(self.n_sites),
                "stats": {k: int(v) for k, v in self.stats.items()}}


def attach_reduction_meta(meta: Dict[str, Any],
                          sites: HoveringSites) -> None:
    """Surface the pre-pass provenance when *sites* went through it.

    The stage drop counts land under ``meta["perf"]["reduce"]`` so the
    runner's perf fold and the run ledger pick them up as
    ``kernel.reduce.*`` work counters; ``meta`` is untouched for
    unreduced sites, keeping the off-level output bitwise-compatible.
    """
    if isinstance(sites, ReducedSites):
        meta["site_reduction"] = sites.meta_block()
        meta.setdefault("perf", {})["reduce"] = {
            k: int(v) for k, v in sites.stats.items()}


def reduce_sites(sites: HoveringSites,
                 reduction: Union[None, str, Mapping[str, Any],
                                  SiteReduction] = None, *,
                 energy: Optional[EnergyModel] = None,
                 corridor_seed: Optional[np.ndarray] = None) -> ReducedSites:
    """Run the configured reduction stages over *sites*.

    ``energy`` feeds the ``unreachable`` stage (its capacity is the
    feasibility bound); when ``None`` that stage is skipped.  For a batch
    column, pass the **largest**-capacity variant: a site unreachable at
    the largest battery is unreachable for every variant, which keeps the
    pre-pass plan-preserving column-wide.

    ``corridor_seed`` warm-starts the TSP-corridor stage: an ``(t, 2)``
    array of already-planned hover points (a coarser δ-grid's tour, the
    δ-continuation mode) used as the corridor skeleton *instead of* the
    greedy set-cover one — the corridor follows where the coarse tour
    actually went.  Ignored unless the config's ``corridor`` stage runs.

    The result is a pure, deterministic function of
    ``(sites, reduction config, capacity bound, corridor seed)`` — no
    RNG, no ordering sensitivity — which is what lets the artifact cache
    memoize it (the seed joins the cache key) and the parallel executor
    reproduce it in any worker.
    """
    cfg = resolve_reduction(reduction)
    if isinstance(sites, ReducedSites):
        raise InvalidParameterError(
            "sites are already reduced; reduce_sites() is not idempotent "
            "(pass the original HoveringSites)")
    m = sites.n_sites
    keep = np.ones(m, dtype=bool)
    stats = {"sites_in": m, "zero_award": 0, "unreachable": 0,
             "dominated": 0, "clustered": 0, "corridor": 0, "repaired": 0}
    with span("reduce.pass", level=cfg.level, sites_in=m):
        if cfg.zero_award:
            dropped = keep & (sites.awards <= 0.0)
            keep &= ~dropped
            stats["zero_award"] = int(dropped.sum())
        if cfg.unreachable and energy is not None:
            stats["unreachable"] = _drop_unreachable(sites, keep, energy)
        aggressive = cfg.dominated or cfg.cluster or cfg.corridor
        safe_keep = keep.copy() if aggressive else keep
        if cfg.dominated:
            with span("reduce.dominated"):
                stats["dominated"] = _drop_dominated(sites, keep)
        if cfg.cluster:
            with span("reduce.cluster"):
                stats["clustered"] = _drop_clustered(sites, keep, cfg)
        if cfg.corridor:
            with span("reduce.corridor",
                      seeded=bool(corridor_seed is not None
                                  and len(corridor_seed))):
                stats["corridor"] = _drop_off_corridor(
                    sites, keep, cfg, seed_points=corridor_seed)
        if aggressive:
            stats["repaired"] = _repair_coverage(sites, keep, safe_keep)
    survivors = np.flatnonzero(keep)
    stats["sites_out"] = int(len(survivors))
    return ReducedSites(
        points=sites.points[survivors],
        cov_matrix=sites.cov_matrix[survivors],
        awards=sites.awards[survivors],
        hover_times=sites.hover_times[survivors],
        network=sites.network, radio=sites.radio, delta=sites.delta,
        survivors=survivors, n_original=m, reduction=cfg, stats=stats)


# -- Safe stages --------------------------------------------------------- #


def _drop_unreachable(sites: HoveringSites, keep: np.ndarray,
                      energy: EnergyModel) -> int:
    """Drop sites whose depot out-and-back travel alone exceeds E.

    Any closed tour visiting ``s`` is at least ``2·d(depot, s)`` long, so
    the planners' feasibility test (Eq. 9's travel term against ``E`` with
    the shared 1e-9 slack) rejects ``s`` in every round: the elimination
    is plan-preserving.
    """
    d0 = np.linalg.norm(sites.points - sites.network.depot[None, :], axis=1)
    dropped = keep & (2.0 * d0 * energy.travel_cost_per_meter
                      > energy.capacity + _FEAS_TOL)
    keep &= ~dropped
    return int(dropped.sum())


# -- Aggressive stages --------------------------------------------------- #


def _kept_coverage(sites: HoveringSites, keep: np.ndarray):
    """Sparse gram-product helpers over the kept rows only.

    Returns ``(kept_idx, A, sizes)`` where ``A`` is the kept-row coverage
    as a scipy CSR matrix and ``sizes`` its per-row coverage counts.
    """
    from scipy import sparse
    kept_idx = np.flatnonzero(keep)
    A = sparse.csr_matrix(sites.cov_matrix[kept_idx].astype(np.int32))
    sizes = np.diff(A.indptr)
    return kept_idx, A, sizes


def _iter_gram_chunks(A):
    """Yield ``(row_offset, chunk @ A.T)`` of the coverage gram product.

    The full ``A @ A.T`` intersection-count matrix is sparse but its nnz
    grows with site density squared; chunking the left operand bounds the
    live buffer to ``_GRAM_CHUNK`` rows at a time.
    """
    k = A.shape[0]
    at = A.T.tocsc()
    for start in range(0, k, _GRAM_CHUNK):
        # repro: allow[hot-path-purity] -- sparse CSR product, nnz-bounded
        # by chunk x mean-overlap; never a dense (m, m) gram matrix.
        yield start, (A[start:start + _GRAM_CHUNK] @ at).tocsr()


def _drop_dominated(sites: HoveringSites, keep: np.ndarray) -> int:
    """Drop sites whose coverage set is a subset of another kept site's.

    Evaluated against the stage-entry ``keep`` mask, so the outcome is
    independent of iteration order (subset domination is transitive:
    if the dominator is itself dropped, its own dominator still covers
    the dominated site).  Equal coverage sets keep the lowest index.
    """
    kept_idx, A, sizes = _kept_coverage(sites, keep)
    k = len(kept_idx)
    if k == 0:
        return 0
    dominated = np.zeros(k, dtype=bool)
    for offset, gram in _iter_gram_chunks(A):
        rows = offset + np.repeat(np.arange(gram.shape[0]),
                                  np.diff(gram.indptr))
        cols = gram.indices
        inter = gram.data
        subset = inter == sizes[rows]          # C(row) ⊆ C(col)
        wins = (sizes[cols] > sizes[rows]) \
            | ((sizes[cols] == sizes[rows]) & (cols < rows))
        hit = subset & wins & (rows != cols)
        dominated[rows[hit]] = True
    keep[kept_idx[dominated]] = False
    return int(dominated.sum())


def _drop_clustered(sites: HoveringSites, keep: np.ndarray,
                    cfg: SiteReduction) -> int:
    """Collapse near-duplicate site groups to one representative each.

    Two kept sites are *near-duplicates* when their coverage-set Jaccard
    is at least ``cluster_jaccard`` and they sit within
    ``cluster_radius_factor``·δ of each other.  Greedy single-link
    grouping in ascending index order (each unassigned site seeds a
    cluster and claims its unassigned near-duplicates); the
    representative is the member with the largest award, ties to the
    lowest index.  Deterministic by construction.
    """
    kept_idx, A, sizes = _kept_coverage(sites, keep)
    k = len(kept_idx)
    if k == 0:
        return 0
    points = sites.points[kept_idx]
    radius = cfg.cluster_radius_factor * sites.delta
    pair_rows = []
    pair_cols = []
    for offset, gram in _iter_gram_chunks(A):
        rows = offset + np.repeat(np.arange(gram.shape[0]),
                                  np.diff(gram.indptr))
        cols = gram.indices
        inter = gram.data.astype(float)
        union = sizes[rows] + sizes[cols] - inter
        close = (np.linalg.norm(points[rows] - points[cols], axis=1)
                 <= radius)
        hit = (rows != cols) & close \
            & (inter >= cfg.cluster_jaccard * union - 1e-12)
        pair_rows.append(rows[hit])
        pair_cols.append(cols[hit])
    rows = np.concatenate(pair_rows) if pair_rows else np.empty(0, int)
    cols = np.concatenate(pair_cols) if pair_cols else np.empty(0, int)
    order = np.lexsort((cols, rows))           # stable, canonical pair order
    rows, cols = rows[order], cols[order]
    indptr = np.zeros(k + 1, dtype=np.int64)
    np.cumsum(np.bincount(rows, minlength=k), out=indptr[1:])

    awards = sites.awards[kept_idx]
    assigned = np.zeros(k, dtype=bool)
    drop = np.zeros(k, dtype=bool)
    for j in range(k):
        if assigned[j]:
            continue
        assigned[j] = True
        neighbors = cols[indptr[j]:indptr[j + 1]]
        members = [j]
        for i in neighbors:
            if not assigned[i]:
                assigned[i] = True
                members.append(int(i))
        if len(members) == 1:
            continue
        member_arr = np.array(members, dtype=int)
        rep = member_arr[int(np.argmax(awards[member_arr]))]
        drop[member_arr] = True
        drop[rep] = False
    keep[kept_idx[drop]] = False
    return int(drop.sum())


def _drop_off_corridor(sites: HoveringSites, keep: np.ndarray,
                       cfg: SiteReduction,
                       seed_points: Optional[np.ndarray] = None) -> int:
    """Keep the corridor of a cheap tour over a set-cover skeleton.

    The skeleton is a greedy max-residual-award set cover of the kept
    sites (first-argmax ties, i.e. lowest index); a nearest-neighbour +
    2-opt tour over depot + skeleton is the *corridor*.  Non-skeleton
    sites survive only when their cheapest-insertion detour into that
    tour is within ``corridor_budget_factor``·R0 metres — the Krishnan
    et al. reduction with a distance-denominated budget, so every
    capacity variant of a batch column computes the same survivor set.

    With *seed_points* (the δ-continuation warm start) the skeleton step
    is skipped entirely: the corridor tour is built over depot + the
    seed points — the coarser grid's planned hover stops — and every
    kept site is tested against it (the coverage-repair step still
    restores any sensor the seeded corridor would orphan).
    """
    kept_idx = np.flatnonzero(keep)
    k = len(kept_idx)
    if k <= 2:
        return 0
    points = sites.points[kept_idx]
    if seed_points is not None and len(seed_points):
        in_skeleton = np.zeros(k, dtype=bool)
        corridor_pts = np.vstack([sites.network.depot[None, :],
                                  np.asarray(seed_points, dtype=float)])
    else:
        cov = sites.cov_matrix[kept_idx]
        csr = SparseCoverage.from_matrix(cov)
        volumes = sites.network.volumes.astype(float).copy()
        res_award = cov @ volumes
        in_skeleton = np.zeros(k, dtype=bool)
        while True:
            j = int(np.argmax(res_award))
            if res_award[j] <= _AWARD_TOL:
                break
            in_skeleton[j] = True
            drained = csr.sensors_of(j)
            for v in drained:
                if volumes[v] > 0.0:
                    res_award[csr.sites_of(v)] -= volumes[v]
                    volumes[v] = 0.0

        skeleton = np.flatnonzero(in_skeleton)
        if len(skeleton) == k:
            return 0
        corridor_pts = np.vstack([sites.network.depot[None, :],
                                  points[skeleton]])
    # repro: allow[hot-path-purity] -- (skeleton+1)^2 only, not (m, m)
    dist = pairwise_distances(corridor_pts)
    tour = nearest_neighbor_tour(dist, start=0)
    tour = two_opt(tour, dist)
    tour_pts = corridor_pts[tour]

    others = np.flatnonzero(~in_skeleton)
    deltas = _cheapest_insertion_deltas(points[others], tour_pts)
    budget = cfg.corridor_budget_factor * sites.radio.coverage_radius
    dropped = others[deltas > budget + _FEAS_TOL]
    keep[kept_idx[dropped]] = False
    return int(len(dropped))


def _cheapest_insertion_deltas(site_points: np.ndarray,
                               tour_points: np.ndarray) -> np.ndarray:
    """Min tour-length increase of inserting each site into the closed tour.

    The (candidates, |corridor|) distance block is computed once per
    reduction, with |corridor| bounded by the set-cover skeleton size —
    not the (m, n) per-round temporary the hot-path contract bans.
    """
    if len(tour_points) == 1:
        return 2.0 * cross_distances(site_points, tour_points)[:, 0]
    # repro: allow[hot-path-purity] -- (survivors, skeleton) block, once
    # per reduction; the skeleton is set-cover sized, not m-sized.
    d = cross_distances(site_points, tour_points)
    nxt = np.roll(np.arange(len(tour_points)), -1)
    edge_len = np.linalg.norm(tour_points[nxt] - tour_points, axis=1)
    cand = d + d[:, nxt] - edge_len[None, :]
    return cand.min(axis=1)


def _repair_coverage(sites: HoveringSites, keep: np.ndarray,
                     safe_keep: np.ndarray) -> int:
    """Re-add the best dropped site for any sensor the heuristics orphaned.

    A sensor coverable at the end of the safe stages must stay coverable:
    for each such sensor with no surviving coverer (ascending sensor
    order), re-add the ``safe_keep`` site covering it with the largest
    award (ties to the lowest index, ``argmax`` over an ascending
    candidate list being first-match).
    """
    n = sites.network.n_nodes
    if n == 0:
        return 0
    covered_now = sites.cov_matrix[keep].any(axis=0) if keep.any() \
        else np.zeros(n, dtype=bool)
    coverable = sites.cov_matrix[safe_keep].any(axis=0) if safe_keep.any() \
        else np.zeros(n, dtype=bool)
    repaired = 0
    csr = SparseCoverage.from_matrix(sites.cov_matrix)
    for v in np.flatnonzero(coverable & ~covered_now):
        if covered_now[v]:
            continue                     # repaired by an earlier re-add
        candidates = csr.sites_of(v)
        candidates = candidates[safe_keep[candidates]]
        best = candidates[int(np.argmax(sites.awards[candidates]))]
        keep[best] = True
        covered_now[csr.sensors_of(best)] = True
        repaired += 1
    return repaired


__all__ = ["SiteReduction", "ReducedSites", "reduce_sites",
           "resolve_reduction", "attach_reduction_meta",
           "REDUCTION_LEVELS"]
