"""The auxiliary energy-weighted graph ``G_s`` (paper §IV-A, Eqs. 8–9).

Node 0 is the depot; nodes ``1..m`` are the hovering sites.  Edge weights

    w2(s_j, s_k) = (w1(s_j) + w1(s_k)) / 2 + l(s_j, s_k) * eta_t / speed

split each endpoint's hovering energy ``w1 = t * eta_h`` evenly across its
two incident tour edges, so the total weight of any closed tour equals the
tour's true energy (hover + travel) exactly — the observation Theorem 2's
feasibility argument rests on.  Lemma 1 proves ``w2`` is metric; the
property test suite re-verifies that on random instances.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.hovering import HoveringSites
from repro.energy.model import EnergyModel
from repro.geometry.distance import pairwise_distances
from repro.orienteering.problem import transpose_copy
from repro.utils.errors import InvalidParameterError
from repro.utils.rng import as_rng


@dataclass
class AuxiliaryGraph:
    """Materialised ``G_s`` for the orienteering reduction.

    Attributes
    ----------
    points:
        ``(m+1, 2)`` coordinates; row 0 is the depot.
    costs:
        ``(m+1, m+1)`` symmetric ``w2`` edge-weight matrix (joules).
    awards:
        Length-``m+1`` node awards; ``awards[0] = 0`` (the depot collects
        nothing).
    hover_energies:
        ``w1`` per node (joules); 0 at the depot.
    hover_times:
        ``t`` per node (seconds); 0 at the depot.
    sites:
        The underlying :class:`HoveringSites` (site ``j`` is node ``j+1``).
    energy:
        The energy model used to weight the graph.
    """

    points: np.ndarray
    costs: np.ndarray
    awards: np.ndarray
    hover_energies: np.ndarray
    hover_times: np.ndarray
    sites: HoveringSites
    energy: EnergyModel

    @property
    def n_nodes(self) -> int:
        """Node count ``m + 1`` (depot included)."""
        return len(self.points)

    @property
    def costs_t(self) -> np.ndarray:
        """C-contiguous transpose of ``costs``, built lazily and cached.

        Shared across every cell of a sweep that reuses this graph via
        the artifact cache, and attached to each cell's orienteering
        instance (:meth:`OrienteeringInstance.attach_costs_t`) so the
        planners' row-gather kernels never re-transpose per cell.
        """
        ct = getattr(self, "_costs_t", None)
        if ct is None:
            ct = transpose_copy(self.costs)
            self._costs_t = ct
        return ct

    def tour_energy(self, tour) -> float:
        """Energy of a closed tour = sum of its ``w2`` edge weights."""
        arr = np.asarray(tour, dtype=int)
        if len(arr) < 2:
            return 0.0
        nxt = np.roll(arr, -1)
        return float(self.costs[arr, nxt].sum())

    def verify_metric(self, *, n_samples: int = 200,
                      seed: int = 0, tol: float = 1e-6) -> bool:
        """Spot-check the triangle inequality on random node triples.

        Exhaustive verification is O(n^3); the planners call this sampled
        version defensively, while the Lemma 1 proof (and the hypothesis
        suite) covers the general case.
        """
        n = self.n_nodes
        if n < 3:
            return True
        rng = as_rng(seed)
        for _ in range(n_samples):
            i, j, k = rng.choice(n, size=3, replace=False)
            if self.costs[i, k] > self.costs[i, j] + self.costs[j, k] + tol:
                return False
        return True


def build_auxiliary_graph(sites: HoveringSites,
                          energy: EnergyModel) -> AuxiliaryGraph:
    """Construct ``G_s`` from hovering *sites* under *energy*.

    The travel term uses ``energy.travel_cost_per_meter`` (= eta_t / speed),
    making the edge weights joules end to end; see
    :mod:`repro.energy.model` for why this matches the paper's
    ``l * eta_t`` notation.
    """
    if not isinstance(energy, EnergyModel):
        raise InvalidParameterError("energy must be an EnergyModel")
    depot = sites.network.depot
    points = np.vstack([depot[None, :], sites.points])
    m1 = len(points)

    hover_times = np.concatenate([[0.0], sites.hover_times])
    w1 = hover_times * energy.hover_power
    awards = np.concatenate([[0.0], sites.awards])

    # In-place accumulation: bitwise-identical to
    # ``0.5 * (w1[:, None] + w1[None, :]) + dist * rate`` (same elementwise
    # operations in the same order) without the three (m+1, m+1) temps.
    dist = pairwise_distances(points)
    dist *= energy.travel_cost_per_meter
    costs = w1[:, None] + w1[None, :]
    costs *= 0.5
    costs += dist
    np.fill_diagonal(costs, 0.0)
    return AuxiliaryGraph(points=points, costs=costs, awards=awards,
                          hover_energies=w1, hover_times=hover_times,
                          sites=sites, energy=energy)


__all__ = ["AuxiliaryGraph", "build_auxiliary_graph"]
