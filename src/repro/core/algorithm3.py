"""Paper Algorithm 3 — partial data collection over K virtual locations.

Each hovering location ``s_j`` expands into ``K`` virtual locations
``s_{j,k}`` with sojourn ``k * t(s_j) / K`` and partial award per Eq. 4.
The greedy loop scores every (site, k) pair by the ratio of residual data
collectable in that sojourn to the marginal energy, honouring the paper's
two bookkeeping rules:

* at most one *physical* visit per site — re-selecting an already-visited
  site is the Lemma 2 "upgrade": extra sojourn is added at zero travel
  cost (the tour is unchanged, matching
  ``S'_j <- S'_{j-1} ∪ {s_{j,k2}} \\ {s_{j,k1}}``);
* after each selection, residual volumes ``D_v^{(j)}`` and the dependent
  awards/hover times of overlapping candidates are recomputed
  (Algorithm 3, lines 11–12).  We recompute the *sojourn partitioning*
  from residual volumes too, so virtual durations always tile the
  remaining drain time — a strictly finer discretisation than reusing
  the original ``t(s_j)``, with identical behaviour at K = 1.

Like Algorithm 2, this module is a thin policy layer over
:class:`repro.core.kernel.PlannerKernel`: the kernel caches the residual
hover times, the per-(site, k) sojourns and partial awards, and the
cheapest-insertion deltas, recomputing rows only for candidates whose
covered sensors drained since the last step — the paper's "recompute the
overlapping candidates" rule (lines 11–12) made literal.  With
``engine="dense"`` the legacy full ``(m, n)``-per-iteration formulation
runs instead (bitwise-identical results, kept for equivalence tests and
benchmarking).

With ``K = 1`` this planner coincides with Algorithm 2 (the paper's
observation that DCM is the special case of PDCM); the test suite asserts
that equivalence on seeded instances.  Like Algorithm 2, an optional
``polish`` pass 2-opts the finished tour and resumes the greedy loop with
the freed travel budget (both planners default to polishing, keeping the
Fig. 4/5 comparison fair).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.core.algorithm2 import _DENOM_EPS
from repro.core.hovering import HoveringSites, build_hovering_sites
from repro.core.kernel import PlannerKernel, check_engine
from repro.core.reduce import (ReducedSites, attach_reduction_meta,
                               reduce_sites, resolve_reduction)
from repro.core.tour import CollectionTour
from repro.energy.model import EnergyModel
from repro.geometry.distance import pairwise_distances
from repro.network.sensor_network import SensorNetwork
from repro.obs.tracer import span
from repro.radio.link import RadioModel
from repro.tsp.improve import two_opt
from repro.tsp.length import tour_length_matrix
from repro.utils.validation import check_integer

#: Residual volumes below this many MB are treated as fully collected,
#: which keeps the greedy loop from chasing floating-point dust.
_VOLUME_TOL = 1e-9


def plan_algorithm3(network: SensorNetwork, energy: EnergyModel,
                    radio: RadioModel, delta: float, K: int, *,
                    polish: bool = True,
                    sites: Optional[HoveringSites] = None,
                    site_reduction=None,
                    max_iterations: Optional[int] = None,
                    engine: str = "kernel") -> CollectionTour:
    """Plan a partial-collection tour with the K-virtual-location heuristic.

    Parameters
    ----------
    network, energy, radio, delta:
        Problem inputs; ``delta`` is the grid edge length.
    K:
        Number of equal sojourn partitions per hovering location (>= 1).
    polish:
        2-opt the finished tour and resume greedy selection with the
        freed budget (never reduces collected volume).
    sites:
        Pre-built hovering sites (else built from the inputs).  A
        :class:`~repro.core.reduce.ReducedSites` is used as-is.
    site_reduction:
        Candidate-site reduction pre-pass config (``None``/``"off"``,
        ``"safe"``, ``"aggressive"``, or a
        :class:`~repro.core.reduce.SiteReduction` / its dict form);
        ignored when *sites* is already reduced.
    max_iterations:
        Safety bound on greedy iterations (default ``2 * K * (m + 1)``,
        mirroring the paper's ``M' = K * M`` virtual-square count with
        headroom for post-polish resumption).
    engine:
        ``"kernel"`` — incremental sparse planner state (default);
        ``"dense"`` — legacy full-recompute loops (identical results).
    """
    # repro: hot-path  (the greedy loop must stay O(overlap) per step)
    K = check_integer(K, "K", minimum=1)
    check_engine(engine)
    if engine == "batch":
        from repro.core.batch import plan_algorithm3_batch
        return plan_algorithm3_batch(
            network, [energy], radio, delta, K, polish=polish,
            sites=sites, site_reduction=site_reduction,
            max_iterations=max_iterations)[0]
    reduction = resolve_reduction(site_reduction)
    if sites is None:
        sites = build_hovering_sites(network, radio, delta)
    if reduction.enabled and not isinstance(sites, ReducedSites):
        sites = reduce_sites(sites, reduction, energy=energy)

    kern = PlannerKernel(sites, energy, radio, engine=engine,
                         volume_tol=_VOLUME_TOL)
    pts_all = kern.points_all
    bandwidth = radio.bandwidth
    eta_h = energy.hover_power
    etat_m = energy.travel_cost_per_meter
    capacity = energy.capacity
    m = sites.n_sites

    # --- mutable planner state shared by the greedy loop and the polish ---
    sojourn_of: Dict[int, float] = {0: 0.0}
    state = {"hover": 0.0, "len": 0.0, "iters": 0}
    limit = max_iterations if max_iterations is not None else 2 * K * (m + 1)
    fractions = np.arange(1, K + 1) / K                          # (K,)

    def greedy_loop() -> None:
        """Select (site, k) pairs by max ratio until nothing feasible."""
        while state["iters"] < limit:
            # One greedy round (one (site, k) selection or termination).
            with span("alg3.round"):
                state["iters"] += 1
                # Residual hover times t', sojourns tau[j, k], and partial
                # awards (Eq. 4 on residuals) — cached, dirty rows refreshed.
                t_max, tau, p_partial = kern.partial_scores(fractions)
                eligible_site = t_max > _VOLUME_TOL / bandwidth
                if not eligible_site.any():
                    return

                # Travel delta: zero for on-tour sites (Lemma 2 upgrade).
                deltas, _positions = kern.insertion_state()
                deltas = np.maximum(deltas, 0.0)
                deltas[kern.in_tour[1:]] = 0.0

                new_energy = ((state["hover"] + tau) * eta_h
                              + (state["len"] + deltas)[:, None] * etat_m)
                feasible = (new_energy <= capacity + 1e-9) \
                    & (p_partial > _VOLUME_TOL) & eligible_site[:, None]
                if not feasible.any():
                    return

                denom = np.maximum(tau * eta_h + deltas[:, None] * etat_m,
                                   _DENOM_EPS)
                rho = np.where(feasible, p_partial / denom, -np.inf)
                j, k = np.unravel_index(int(np.argmax(rho)), rho.shape)
                j, k = int(j), int(k)

                node = j + 1
                duration = float(tau[j, k])
                if not kern.in_tour[node]:
                    kern.insert(j)
                    state["len"] += float(deltas[j])
                    sojourn_of[node] = 0.0
                sojourn_of[node] += duration
                state["hover"] += duration

                # Drain residuals (OFDMA: each covered device uploads
                # min(rem, B * duration) on its own channel).
                kern.drain_partial(j, duration)

    with span("alg3.greedy"):
        greedy_loop()

    if polish and len(kern.tour) >= 4:
        with span("alg3.polish"):
            tour_arr = np.array(kern.tour, dtype=int)
            # repro: allow[hot-path-purity] -- (|tour|, |tour|), not (m, n)
            local_dist = pairwise_distances(pts_all[tour_arr])
            improved = two_opt(np.arange(len(tour_arr)), local_dist)
            start = int(np.flatnonzero(tour_arr[improved] == 0)[0])
            order = np.roll(improved, -start)
            kern.set_tour([int(tour_arr[i]) for i in order])
            state["len"] = tour_length_matrix(
                np.arange(len(order)), local_dist[np.ix_(order, order)])
            greedy_loop()

    sojourns = np.array([sojourn_of[v] for v in kern.tour])
    collected = network.volumes - kern.rem
    meta = {
        "n_candidates": m,
        "n_virtual_candidates": m * K,
        "n_visited": len(kern.tour) - 1,
        "iterations": state["iters"],
        "K": K,
        "polished": bool(polish),
        "delta": float(sites.delta),
        "engine": engine,
        "perf": kern.perf(),
    }
    attach_reduction_meta(meta, sites)
    return CollectionTour(
        points=pts_all[np.array(kern.tour, dtype=int)],
        sojourns=sojourns, collected=collected,
        network=network, energy=energy, method="algorithm3",
        meta=meta)


__all__ = ["plan_algorithm3"]
