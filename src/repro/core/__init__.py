"""The paper's primary contribution: UAV data-collection tour planners.

* :mod:`repro.core.hovering` — candidate hovering locations on the δ-grid
  with their coverage sets, awards ``p``, and hover times ``t`` (Eqs. 1–2, 6–7),
* :mod:`repro.core.auxgraph` — the auxiliary energy-weighted graph ``G_s``
  (Eqs. 8–9) whose metricity Lemma 1 proves,
* :mod:`repro.core.tour` — the :class:`CollectionTour` result type and the
  independent feasibility validator,
* :mod:`repro.core.algorithm1` — DCM without hovering-coverage overlap via
  orienteering on ``G_s`` (paper Algorithm 1),
* :mod:`repro.core.algorithm2` — greedy max-ratio heuristic for DCM with
  overlap (paper Algorithm 2),
* :mod:`repro.core.algorithm3` — partial-collection heuristic over K
  virtual hovering locations (paper Algorithm 3),
* :mod:`repro.core.benchmark_alg` — the paper's comparison baseline
  (Christofides tour over all sensors + min-ratio pruning),
* :mod:`repro.core.batch` — the column-stacked ``engine="batch"`` planner
  state (one instance, B energy variants as one numpy program),
* :mod:`repro.core.planner` — one-call facade over all four planners.
"""

from repro.core.hovering import HoveringSites, build_hovering_sites
from repro.core.kernel import ENGINES, PlannerKernel, PruneCache
from repro.core.auxgraph import AuxiliaryGraph, build_auxiliary_graph
from repro.core.tour import CollectionTour, FeasibilityReport, validate_tour_feasibility
from repro.core.algorithm1 import plan_algorithm1
from repro.core.algorithm2 import plan_algorithm2
from repro.core.algorithm3 import plan_algorithm3
from repro.core.benchmark_alg import plan_benchmark
from repro.core.batch import (
    BatchPlannerKernel,
    plan_algorithm2_batch,
    plan_algorithm3_batch,
)
from repro.core.planner import plan_tour, PLANNERS
from repro.core.bounds import UpperBoundReport, collection_upper_bound, hover_bound, reach_bound
from repro.core.multi_uav import FleetPlan, plan_fleet, partition_sectors, partition_kmeans
from repro.core.exact_dcm import ExactDCMResult, solve_dcm_exact, optimality_gap
from repro.core.export import (
    Waypoint,
    tour_to_waypoints,
    tour_to_plan_dict,
    tour_to_plan_json,
    tour_to_csv,
    waypoints_to_tour,
    plan_dict_to_tour,
)

__all__ = [
    "UpperBoundReport",
    "collection_upper_bound",
    "hover_bound",
    "reach_bound",
    "FleetPlan",
    "plan_fleet",
    "partition_sectors",
    "partition_kmeans",
    "ExactDCMResult",
    "solve_dcm_exact",
    "optimality_gap",
    "Waypoint",
    "tour_to_waypoints",
    "tour_to_plan_dict",
    "tour_to_plan_json",
    "tour_to_csv",
    "waypoints_to_tour",
    "plan_dict_to_tour",
    "HoveringSites",
    "build_hovering_sites",
    "ENGINES",
    "PlannerKernel",
    "PruneCache",
    "AuxiliaryGraph",
    "build_auxiliary_graph",
    "CollectionTour",
    "FeasibilityReport",
    "validate_tour_feasibility",
    "plan_algorithm1",
    "plan_algorithm2",
    "plan_algorithm3",
    "plan_benchmark",
    "BatchPlannerKernel",
    "plan_algorithm2_batch",
    "plan_algorithm3_batch",
    "plan_tour",
    "PLANNERS",
]
