"""Extension: multi-UAV data collection by sector partitioning.

The paper plans for one UAV and cites multi-UAV collection (Mozaffari et
al.) as the natural scale-out.  This module provides the straightforward
extension a fleet operator would want: partition the sensors into angular
sectors or k-means-style clusters around the shared depot, then run any of
the paper's single-UAV planners independently per sector (each UAV has its
own battery).

The partitioning preserves the single-UAV guarantees: every per-sector
tour is validated by the same feasibility checker, and sensor sets are
disjoint so fleet totals are simple sums.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.core.planner import plan_tour
from repro.core.tour import CollectionTour
from repro.energy.model import EnergyModel
from repro.network.sensor_network import SensorNetwork
from repro.radio.link import RadioModel
from repro.utils.errors import InvalidParameterError
from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import check_integer


@dataclass
class FleetPlan:
    """One tour per UAV plus fleet-level aggregates.

    Attributes
    ----------
    tours:
        Per-UAV :class:`CollectionTour` (over the *full* network, with
        zeros outside the UAV's sector, so collected arrays add up).
    assignment:
        Length-``n`` sector index per sensor.
    """

    tours: List[CollectionTour]
    assignment: np.ndarray

    @property
    def n_uavs(self) -> int:
        """Fleet size."""
        return len(self.tours)

    @property
    def collected(self) -> np.ndarray:
        """Fleet-wide per-sensor collected volumes (MB)."""
        out = np.zeros_like(self.tours[0].collected)
        for t in self.tours:
            out += t.collected
        return out

    @property
    def collected_volume(self) -> float:
        """Fleet-wide total collected (MB)."""
        return float(self.collected.sum())

    @property
    def total_energy(self) -> float:
        """Sum of per-UAV mission energies (J)."""
        return sum(t.total_energy for t in self.tours)

    @property
    def makespan(self) -> float:
        """Fleet mission time = the slowest UAV's mission time (s)."""
        return max(t.mission_time for t in self.tours)


def partition_sectors(network: SensorNetwork, n_uavs: int) -> np.ndarray:
    """Equal-count angular sectors around the depot.

    Sensors are sorted by polar angle about the depot and dealt into
    ``n_uavs`` contiguous arcs of (near-)equal sensor count — the classic
    sweep heuristic, which keeps each UAV's travel confined to one wedge.
    """
    n_uavs = check_integer(n_uavs, "n_uavs", minimum=1)
    n = network.n_nodes
    if n == 0:
        return np.empty(0, dtype=int)
    rel = network.positions - network.depot[None, :]
    angles = np.arctan2(rel[:, 1], rel[:, 0])
    order = np.argsort(angles, kind="stable")
    assignment = np.empty(n, dtype=int)
    bounds = np.linspace(0, n, n_uavs + 1).astype(int)
    for k in range(n_uavs):
        assignment[order[bounds[k]:bounds[k + 1]]] = k
    return assignment


def partition_kmeans(network: SensorNetwork, n_uavs: int,
                     seed: SeedLike = None, n_iter: int = 20) -> np.ndarray:
    """Lloyd's k-means on sensor positions (data-volume weighted).

    Balances *geography* rather than counts; better when clusters are
    uneven.  Plain numpy implementation (no sklearn dependency).
    """
    n_uavs = check_integer(n_uavs, "n_uavs", minimum=1)
    n = network.n_nodes
    if n == 0:
        return np.empty(0, dtype=int)
    if n_uavs >= n:
        return np.arange(n) % n_uavs
    rng = as_rng(seed)
    centers = network.positions[rng.choice(n, n_uavs, replace=False)].copy()
    weights = np.maximum(network.volumes, 1e-9)
    assignment = np.zeros(n, dtype=int)
    for _ in range(n_iter):
        d2 = ((network.positions[:, None, :] - centers[None, :, :]) ** 2).sum(-1)
        new_assignment = np.argmin(d2, axis=1)
        if (new_assignment == assignment).all():
            break
        assignment = new_assignment
        for k in range(n_uavs):
            mask = assignment == k
            if mask.any():
                w = weights[mask]
                centers[k] = (network.positions[mask] * w[:, None]).sum(0) / w.sum()
    return assignment


def plan_fleet(network: SensorNetwork, energy: EnergyModel,
               radio: RadioModel, n_uavs: int, *,
               method: str = "algorithm2",
               partition: str = "sectors",
               delta: float = 10.0,
               seed: SeedLike = None,
               **planner_kwargs) -> FleetPlan:
    """Plan tours for a fleet of *n_uavs* identical UAVs.

    Parameters
    ----------
    network, energy, radio:
        Problem inputs; *energy* is **per UAV**.
    n_uavs:
        Fleet size (>= 1).
    method:
        Single-UAV planner used within each sector.
    partition:
        ``"sectors"`` (angular sweep) or ``"kmeans"``.
    delta, planner_kwargs:
        Forwarded to :func:`repro.core.planner.plan_tour`.
    """
    if partition == "sectors":
        assignment = partition_sectors(network, n_uavs)
    elif partition == "kmeans":
        assignment = partition_kmeans(network, n_uavs, seed=seed)
    else:
        raise InvalidParameterError(
            f"partition must be 'sectors' or 'kmeans', got {partition!r}")

    tours: List[CollectionTour] = []
    extra = {} if method == "benchmark" else {"delta": delta}
    for k in range(n_uavs):
        idx = np.flatnonzero(assignment == k)
        # Sector network keeps the shared depot; volumes outside zeroed so
        # per-UAV `collected` arrays live in full-network coordinates.
        vols = np.zeros(network.n_nodes)
        vols[idx] = network.volumes[idx]
        sector = network.with_volumes(vols)
        tour = plan_tour(sector, energy, radio, method=method,
                         **extra, **planner_kwargs)
        # Re-home the tour on the original network object for reporting.
        tour.network = network
        tours.append(tour)
    return FleetPlan(tours=tours, assignment=assignment)


__all__ = ["FleetPlan", "plan_fleet", "partition_sectors", "partition_kmeans"]
