"""Mission export: turn a :class:`CollectionTour` into flyable artifacts.

Downstream adopters do not fly `CollectionTour` objects; they upload
waypoint missions to an autopilot.  This module provides:

* :func:`tour_to_waypoints` — the flat waypoint list (position, altitude,
  hold time) with cumulative time/energy annotations,
* :func:`tour_to_plan_dict` / :func:`tour_to_plan_json` — a
  QGroundControl-style ``.plan`` JSON document (simple-items mission with
  local ENU coordinates and per-waypoint hold times),
* :func:`tour_to_csv` — a spreadsheet-friendly dump.

The export is lossless for the library's purposes: a round-trip through
:func:`waypoints_to_tour` reconstructs a tour with identical geometry and
sojourns (collected volumes are re-derived by the caller's planner or
simulator, since they are claims, not flight instructions).
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.tour import CollectionTour
from repro.energy.model import EnergyModel
from repro.network.sensor_network import SensorNetwork
from repro.utils.errors import InvalidParameterError

#: Schema tag for the exported plan document.
PLAN_SCHEMA = "repro-uav-plan/1"


@dataclass(frozen=True)
class Waypoint:
    """One mission waypoint.

    Attributes
    ----------
    index:
        Sequence number (0 = depot departure).
    x, y:
        Local ENU coordinates in metres.
    altitude:
        Hover altitude in metres.
    hold_s:
        Hover duration at this waypoint (0 for pure transit).
    eta_s:
        Cumulative mission time on *arrival* (seconds).
    energy_j:
        Cumulative energy on *departure* (joules).
    """

    index: int
    x: float
    y: float
    altitude: float
    hold_s: float
    eta_s: float
    energy_j: float


def tour_to_waypoints(tour: CollectionTour, *,
                      altitude: float = 0.0) -> List[Waypoint]:
    """Flatten the tour into waypoints with cumulative ETA/energy.

    The final waypoint is the return to the depot (hold 0), closing the
    mission explicitly.
    """
    energy = tour.energy
    pts = tour.points
    waypoints: List[Waypoint] = []
    clock, spent = 0.0, 0.0
    for i in range(len(pts)):
        hold = float(tour.sojourns[i])
        waypoints.append(Waypoint(index=i, x=float(pts[i][0]),
                                  y=float(pts[i][1]), altitude=altitude,
                                  hold_s=hold, eta_s=clock,
                                  energy_j=spent + energy.hover_energy(hold)))
        clock += hold
        spent += energy.hover_energy(hold)
        nxt = pts[(i + 1) % len(pts)]
        leg = float(np.hypot(*(nxt - pts[i])))
        clock += energy.travel_time(leg)
        spent += energy.travel_energy(leg)
    # Explicit return-to-depot waypoint.
    waypoints.append(Waypoint(index=len(pts), x=float(pts[0][0]),
                              y=float(pts[0][1]), altitude=altitude,
                              hold_s=0.0, eta_s=clock, energy_j=spent))
    return waypoints


def tour_to_plan_dict(tour: CollectionTour, *, altitude: float = 0.0) -> dict:
    """QGroundControl-style ``.plan`` document (local ENU frame)."""
    waypoints = tour_to_waypoints(tour, altitude=altitude)
    items = []
    for wp in waypoints:
        items.append({
            "type": "SimpleItem",
            "command": 19 if wp.hold_s > 0 else 16,  # LOITER_TIME / WAYPOINT
            "params": [wp.hold_s, 0, 0, 0, wp.x, wp.y, wp.altitude],
            "doJumpId": wp.index + 1,
            "frame": 1,  # local ENU
        })
    return {
        "schema": PLAN_SCHEMA,
        "fileType": "Plan",
        "groundStation": "repro",
        "mission": {
            "items": items,
            "plannedHomePosition": [float(tour.points[0][0]),
                                    float(tour.points[0][1]), altitude],
            "vehicleType": 2,  # multirotor
            "cruiseSpeed": tour.energy.speed,
        },
        "meta": {
            "method": tour.method,
            "collected_mb": tour.collected_volume,
            "total_energy_j": tour.total_energy,
            "battery_j": tour.energy.capacity,
        },
    }


def tour_to_plan_json(tour: CollectionTour, *, altitude: float = 0.0,
                      indent: int = 2) -> str:
    """Serialise :func:`tour_to_plan_dict` to JSON text."""
    return json.dumps(tour_to_plan_dict(tour, altitude=altitude),
                      indent=indent)


def tour_to_csv(tour: CollectionTour, *, altitude: float = 0.0) -> str:
    """Waypoints as CSV (index, x, y, altitude, hold_s, eta_s, energy_j)."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(["index", "x_m", "y_m", "alt_m", "hold_s",
                     "eta_s", "energy_j"])
    for wp in tour_to_waypoints(tour, altitude=altitude):
        writer.writerow([wp.index, f"{wp.x:.3f}", f"{wp.y:.3f}",
                         f"{wp.altitude:.1f}", f"{wp.hold_s:.3f}",
                         f"{wp.eta_s:.3f}", f"{wp.energy_j:.1f}"])
    return buf.getvalue()


def waypoints_to_tour(waypoints: List[Waypoint], network: SensorNetwork,
                      energy: EnergyModel, *,
                      collected: Optional[np.ndarray] = None,
                      method: str = "imported") -> CollectionTour:
    """Reconstruct a tour from waypoints (inverse of :func:`tour_to_waypoints`).

    The trailing return-to-depot waypoint (same position as the first,
    zero hold) is dropped if present.  ``collected`` defaults to zeros —
    the import path carries flight geometry, not collection claims.
    """
    if not waypoints:
        raise InvalidParameterError("waypoints must be non-empty")
    wps = list(waypoints)
    if (len(wps) >= 2 and wps[-1].hold_s == 0.0
            and wps[-1].x == wps[0].x and wps[-1].y == wps[0].y):
        wps = wps[:-1]
    points = np.array([[w.x, w.y] for w in wps])
    sojourns = np.array([w.hold_s for w in wps])
    if collected is None:
        collected = np.zeros(network.n_nodes)
    return CollectionTour(points=points, sojourns=sojourns,
                          collected=np.asarray(collected, dtype=float),
                          network=network, energy=energy, method=method)


def plan_dict_to_tour(plan: dict, network: SensorNetwork,
                      energy: EnergyModel) -> CollectionTour:
    """Parse a :func:`tour_to_plan_dict` document back into a tour."""
    if not isinstance(plan, dict) or plan.get("schema") != PLAN_SCHEMA:
        raise InvalidParameterError(
            f"not a {PLAN_SCHEMA} document: schema={plan.get('schema')!r}"
            if isinstance(plan, dict) else "plan must be a dict")
    try:
        items = plan["mission"]["items"]
        waypoints = [
            Waypoint(index=i, x=float(it["params"][4]),
                     y=float(it["params"][5]),
                     altitude=float(it["params"][6]),
                     hold_s=float(it["params"][0]),
                     eta_s=0.0, energy_j=0.0)
            for i, it in enumerate(items)
        ]
    except (KeyError, IndexError, TypeError) as exc:
        raise InvalidParameterError(f"malformed plan document: {exc}") from exc
    return waypoints_to_tour(waypoints, network, energy,
                             method=str(plan.get("meta", {}).get("method",
                                                                 "imported")))


__all__ = [
    "PLAN_SCHEMA",
    "Waypoint",
    "tour_to_waypoints",
    "tour_to_plan_dict",
    "tour_to_plan_json",
    "tour_to_csv",
    "waypoints_to_tour",
    "plan_dict_to_tour",
]
