"""Candidate hovering locations (paper §III-B, Eqs. 1–2 and 6–7).

The monitoring region is partitioned into δ-squares; the UAV may hover at
any square centre.  Squares whose centre covers no sensor are pruned (they
can never contribute award), which keeps the candidate count linear in
``|V|`` exactly as the paper's §IV-A bound argues.

:class:`HoveringSites` bundles, for each surviving candidate ``s_j``:

* its centre coordinates,
* the coverage set ``C(s_j)`` (sensor indices within ``R0``),
* the award ``p(s_j) = sum of D_v over C(s_j)`` (Eq. 6),
* the full-collection hover time ``t(s_j) = max D_v / B`` (Eq. 7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.geometry.coverage import CoverageIndex
from repro.geometry.grid import GridPartition
from repro.network.sensor_network import SensorNetwork
from repro.radio.link import RadioModel
from repro.utils.errors import InvalidParameterError
from repro.utils.validation import check_positive


@dataclass
class HoveringSites:
    """Candidate hovering locations with coverage, awards, and hover times.

    Attributes
    ----------
    points:
        ``(m, 2)`` candidate centre coordinates (depot NOT included).
    cov_matrix:
        ``(m, n)`` boolean coverage matrix over the network's sensors.
    awards:
        ``p(s_j)`` — total coverable data per site, MB (Eq. 6).
    hover_times:
        ``t(s_j)`` — full-collection sojourn per site, seconds (Eq. 7).
    network, radio, delta:
        The inputs the sites were derived from (kept for provenance and
        for the planners' recomputations).
    """

    points: np.ndarray
    cov_matrix: np.ndarray
    awards: np.ndarray
    hover_times: np.ndarray
    network: SensorNetwork
    radio: RadioModel
    delta: float

    @property
    def n_sites(self) -> int:
        """Number of candidate hovering locations ``m``."""
        return len(self.points)

    def coverage_list(self, site: int) -> np.ndarray:
        """Sorted sensor indices in ``C(s_site)``."""
        if not (0 <= site < self.n_sites):
            raise InvalidParameterError(
                f"site index {site} out of range [0, {self.n_sites})")
        return np.flatnonzero(self.cov_matrix[site])

    def overlap_matrix(self) -> np.ndarray:
        """Boolean ``(m, m)``: sites whose coverage sets intersect.

        Used by Algorithm 1's no-overlap conflict groups.  The diagonal is
        False (a site does not conflict with itself).

        Coverage sets are tiny relative to ``m`` (a site covers only the
        sensors within ``R0``), so the intersection test runs as a sparse
        CSR gram product — the dense integer matmul it replaces has no
        BLAS path and dominated paper-scale artifact construction.
        """
        from scipy import sparse

        cov = sparse.csr_matrix(self.cov_matrix)
        # repro: allow[hot-path-purity] -- sparse CSR product, nnz-bounded
        inter = (cov @ cov.T).toarray() > 0
        np.fill_diagonal(inter, False)
        return inter

    def residual_awards(self, residual_volumes) -> np.ndarray:
        """Awards recomputed against residual sensor volumes (vectorised).

        ``P'(s_j)`` in Eq. 11 when *residual_volumes* zeroes out collected
        sensors, and the partial-collection residual award otherwise.
        """
        rem = np.asarray(residual_volumes, dtype=float)
        if rem.shape != (self.network.n_nodes,):
            raise InvalidParameterError(
                f"residual_volumes must have shape ({self.network.n_nodes},)")
        return self.cov_matrix @ rem

    def residual_hover_times(self, residual_volumes) -> np.ndarray:
        """Per-site max residual upload time (Eq. 12's ``t'``), vectorised."""
        rem = np.asarray(residual_volumes, dtype=float)
        if rem.shape != (self.network.n_nodes,):
            raise InvalidParameterError(
                f"residual_volumes must have shape ({self.network.n_nodes},)")
        times = rem / self.radio.bandwidth
        masked = np.where(self.cov_matrix, times[None, :], 0.0)
        # Guard on the reduced axis (n sensors), not on m: with zero sensors
        # the (m, 0) max would raise even though every site's time is 0.
        if masked.shape[1] == 0:
            return np.zeros(self.n_sites)
        return masked.max(axis=1)


def build_hovering_sites(network: SensorNetwork, radio: RadioModel,
                         delta: float, *, prune: bool = True,
                         grid: Optional[GridPartition] = None) -> HoveringSites:
    """Enumerate candidate hovering locations for *network* on a δ-grid.

    Parameters
    ----------
    network:
        The aggregate sensor network.
    radio:
        Uplink model supplying the coverage radius ``R0`` and bandwidth ``B``.
    delta:
        Grid square edge length (metres); the paper requires ``delta <= R0``
        for Algorithm 1, but larger values are legal (the sweep in Fig. 4
        varies δ from 5 m to 30 m with R0 = 50 m).
    prune:
        Drop squares whose centre covers no sensor (default True — this is
        what keeps the instance size linear in |V|).
    grid:
        Optional pre-built partition (must match ``network.region``).
    """
    check_positive(delta, "delta")
    if grid is None:
        assert network.region is not None
        grid = GridPartition(network.region, delta)
    r0 = radio.coverage_radius
    if prune:
        centers = grid.candidate_centers(network.positions, r0)
    else:
        centers = grid.centers()
    index = CoverageIndex(network.positions, r0)
    cov = index.matrix(centers)
    awards = cov @ network.volumes
    upload_times = network.volumes / radio.bandwidth
    masked = np.where(cov, upload_times[None, :], 0.0)
    # Guard on the reduced axis: a zero-sensor network yields (m, 0).
    if masked.shape[1] == 0:
        hover_times = np.zeros(len(centers))
    else:
        hover_times = masked.max(axis=1)
    return HoveringSites(points=centers, cov_matrix=cov, awards=awards,
                         hover_times=hover_times, network=network,
                         radio=radio, delta=float(delta))


__all__ = ["HoveringSites", "build_hovering_sites"]
