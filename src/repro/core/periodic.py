"""Extension: periodic (multi-round) data collection.

Paper §III-A: "The stored data at an aggregate sensor node will be
collected **periodically** by a UAV" — sensors accrue data at per-node
rates over a monitoring period ``T``, the UAV flies one tour per period
(recharging at the depot between tours), and the steady-state question is
whether the fleet keeps up: does the per-sensor **backlog** stabilise, or
grow without bound?

:func:`run_periodic_collection` simulates ``R`` rounds:

1. each sensor's stored volume grows by ``rate_v * period`` (capped at an
   optional buffer size, modelling finite flash — overflow is *lost
   data*, tracked per round);
2. a fresh tour is planned on the current volumes with any single-UAV
   planner and executed (full battery each round);
3. collected data leaves the buffers.

The resulting :class:`PeriodicReport` exposes the backlog trajectory,
per-round collection, and loss — and :func:`is_sustainable` gives the
binary verdict the deployment designer needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

import numpy as np

from repro.core.planner import plan_tour
from repro.energy.model import EnergyModel
from repro.network.sensor_network import SensorNetwork
from repro.radio.link import RadioModel
from repro.utils.errors import InvalidParameterError
from repro.utils.validation import check_integer, check_positive


@dataclass
class RoundRecord:
    """One collection round's accounting (all volumes in MB)."""

    round_index: int
    generated: float
    overflowed: float
    collected: float
    backlog_after: float
    tour_energy: float
    n_hovers: int


@dataclass
class PeriodicReport:
    """Outcome of a multi-round campaign.

    Attributes
    ----------
    rounds:
        Per-round records, in order.
    final_backlog:
        Per-sensor stored volumes after the last round (MB).
    """

    rounds: List[RoundRecord]
    final_backlog: np.ndarray

    @property
    def total_collected(self) -> float:
        """MB collected across all rounds."""
        return sum(r.collected for r in self.rounds)

    @property
    def total_lost(self) -> float:
        """MB lost to buffer overflow across all rounds."""
        return sum(r.overflowed for r in self.rounds)

    @property
    def backlog_trajectory(self) -> np.ndarray:
        """Total backlog after each round."""
        return np.array([r.backlog_after for r in self.rounds])

    def is_sustainable(self, *, tail: int = 3, tol: float = 0.05) -> bool:
        """True when the backlog has stopped growing.

        Compares the mean backlog of the last *tail* rounds against the
        preceding *tail*; growth above ``tol`` (relative) means the UAV is
        falling behind.  Requires at least ``2 * tail`` rounds.
        """
        check_integer(tail, "tail", minimum=1)
        traj = self.backlog_trajectory
        if len(traj) < 2 * tail:
            raise InvalidParameterError(
                f"need >= {2 * tail} rounds to judge sustainability, "
                f"have {len(traj)}")
        early = traj[-2 * tail:-tail].mean()
        late = traj[-tail:].mean()
        scale = max(early, 1e-9)
        return bool((late - early) / scale <= tol)


def run_periodic_collection(network: SensorNetwork, energy: EnergyModel,
                            radio: RadioModel, *,
                            rates: Optional[np.ndarray] = None,
                            period: float = 600.0,
                            n_rounds: int = 10,
                            buffer_limit: Optional[float] = None,
                            method: str = "algorithm2",
                            delta: float = 20.0,
                            planner_kwargs: Optional[Dict[str, Any]] = None,
                            start_empty: bool = False) -> PeriodicReport:
    """Simulate *n_rounds* of accrue-plan-collect.

    Parameters
    ----------
    network:
        Initial network; its ``volumes`` seed the buffers unless
        *start_empty*.
    energy, radio:
        UAV models (battery is full at the start of every round).
    rates:
        Per-sensor data generation rate (MB/s); defaults to rates that
        regenerate each sensor's initial volume once per period
        (``volumes / period``), the natural reading of the paper's
        "volume stored over monitoring period T".
    period:
        Seconds between consecutive tours.
    n_rounds:
        Number of collection rounds to simulate.
    buffer_limit:
        Optional per-sensor storage cap (MB); excess generation is lost.
    method, delta, planner_kwargs:
        Planner selection per round.
    start_empty:
        Begin with empty buffers (pure steady-state study).
    """
    check_positive(period, "period")
    check_integer(n_rounds, "n_rounds", minimum=1)
    if buffer_limit is not None:
        check_positive(buffer_limit, "buffer_limit")
    if rates is None:
        rates = network.volumes / period
    rates = np.asarray(rates, dtype=float)
    if rates.shape != (network.n_nodes,):
        raise InvalidParameterError(
            f"rates must have shape ({network.n_nodes},), got {rates.shape}")
    if (rates < 0).any():
        raise InvalidParameterError("rates must be >= 0")
    kwargs = dict(planner_kwargs or {})
    if method != "benchmark":
        kwargs.setdefault("delta", delta)

    backlog = (np.zeros(network.n_nodes) if start_empty
               else network.volumes.astype(float).copy())
    rounds: List[RoundRecord] = []
    for r in range(n_rounds):
        generated = rates * period
        backlog += generated
        overflow = 0.0
        if buffer_limit is not None:
            over = np.maximum(backlog - buffer_limit, 0.0)
            overflow = float(over.sum())
            backlog -= over
        net_r = network.with_volumes(backlog)
        tour = plan_tour(net_r, energy, radio, method=method, **kwargs)
        backlog = backlog - tour.collected
        backlog[backlog < 1e-9] = 0.0
        rounds.append(RoundRecord(
            round_index=r,
            generated=float(generated.sum()),
            overflowed=overflow,
            collected=tour.collected_volume,
            backlog_after=float(backlog.sum()),
            tour_energy=tour.total_energy,
            n_hovers=tour.n_hovers))
    return PeriodicReport(rounds=rounds, final_backlog=backlog)


__all__ = ["RoundRecord", "PeriodicReport", "run_periodic_collection"]
