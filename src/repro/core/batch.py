"""Vectorized batch planner engine (``engine="batch"``).

The paper's figures are *columns* of closely related plans: one network
instance planned at B parameter variants (Fig. 5's capacity sweep, the
related work's denser capacity/rate grids).  PR 1 made a single plan
O(overlap) per selection, but every cell of a column still pays the full
Python interpreter overhead per greedy round — one round of numpy
dispatches, span/timer bookkeeping, and loop control *per cell*.

:class:`BatchPlannerKernel` plans the whole column as a single numpy
program.  The per-variant residual-award (Eq. 11) and residual-hover-time
(Eq. 12) state of :class:`~repro.core.kernel.PlannerKernel` is stacked
into ``(B, ·)`` arrays over one shared
:class:`~repro.geometry.coverage.SparseCoverage` CSR:

* **Union dirty-set rescoring** — each greedy round rescores the union of
  every variant's dirty sites with one batched segment-``reduceat`` over
  ``(B, nnz)`` gathered residuals.  Rescoring a site that is clean for
  some variant recomputes exactly the value its cache already holds
  (``reduceat`` is a deterministic sequential reduction over identical
  inputs), so the union rescore is bitwise-free.
* **Batched cheapest-insertion cache** — per-variant deltas/best-edges in
  ``(B, m)`` arrays, repaired after each round's insertions with the same
  operation order as :meth:`PlannerKernel.insert`: dead-edge detection
  before the edge-index shift, two sequential new-edge passes with the
  identical ``(cand < deltas) | ((cand == deltas) & (new_edge < edges))``
  tie-break toward the lower edge index, then per-variant rescans of the
  candidates whose recorded best edge was destroyed.
* **Energy masking** — variants leave the active set exactly where their
  sequential loop would ``break`` (no eligible candidate, nothing
  feasible, or the iteration limit); finished variants simply stop
  receiving updates while the rest of the column keeps planning.
* **Shared distance-row cache** — every tour point is drawn from the
  fixed ``points_all`` set, so each site-to-node distance row is
  computed once per column and reused across variants and rounds as a
  contiguous gather (``cross_distances`` is per-pair independent, so a
  cached row is bitwise-equal to a fresh scan); insertion repairs,
  flushes, and dead-edge rescans all become memory-bound instead of
  recomputing Euclidean distances.

Every per-variant result — tour, sojourns, collected volumes, iteration
count, work counters — is **bitwise-identical** to planning that variant
alone with ``engine="kernel"`` (or ``"dense"``): all elementwise energy
and score arithmetic broadcasts the identical float operations, and the
per-row ``argmax``/``argmin`` keep the sequential first-extremum
tie-breaking.  ``tests/test_core_batch.py`` pins the equivalence across
seeded scenarios, column groupings, and ``jobs`` settings.

The batch kernel keeps *grouping-invariant* per-variant counters
(insertions, drains, tour flushes, deltas recomputed) for
``CollectionTour.meta["perf"]`` — the union-rescore totals depend on the
column composition, so they live only in the column-level
:class:`~repro.obs.metrics.MetricsRegistry` (``rounds``,
``union_sites_rescored``) alongside the ``kernel.batch.*`` spans.
"""

from __future__ import annotations

# repro: hot-path
# (The whole module is checked by the hot-path-purity rule: the batch
# state is (B, n)/(B, m) per-variant rows — never a dense (m, n) or
# (B·m, n) temporary.  Legitimate (B, ·) allocations are annotated.)

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.algorithm2 import _DENOM_EPS, SCORING_POLICIES, _score
from repro.core.hovering import HoveringSites, build_hovering_sites
from repro.core.reduce import (ReducedSites, attach_reduction_meta,
                               reduce_sites, resolve_reduction)
from repro.core.tour import CollectionTour
from repro.energy.model import EnergyModel
from repro.geometry.coverage import SparseCoverage
from repro.geometry.distance import cross_distances, pairwise_distances
from repro.network.sensor_network import SensorNetwork
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import span
from repro.radio.link import RadioModel
from repro.tsp.improve import two_opt
from repro.tsp.length import tour_length_matrix
from repro.utils.errors import InvalidParameterError
from repro.utils.validation import check_integer

#: Algorithm 3's dust threshold (kept in sync with repro.core.algorithm3).
_VOLUME_TOL = 1e-9

#: Element budget for one insertion-flush distance block — bounds the
#: transient ``(m, rows·|tour|)`` distance matrix to ~32 MB of float64.
_FLUSH_CHUNK_ELEMS = 4_000_000


def _segment_reduce_rows(vals: np.ndarray, starts: np.ndarray,
                         lengths: np.ndarray, ufunc) -> np.ndarray:
    """Row-batched per-segment ``ufunc`` reduction, empty segments -> 0.0.

    The ``(B, nnz)`` generalisation of ``kernel._segment_reduce``:
    ``reduceat(axis=1)`` reduces every row's segments with the same
    sequential order as the 1-D call, so each row is bitwise-identical
    to reducing that row alone.
    """
    # repro: allow[hot-path-purity] -- (B, |dirty|) rescore rows, not (m, n)
    out = np.zeros((vals.shape[0], len(lengths)))
    if vals.shape[1] == 0 or len(lengths) == 0:
        return out
    safe = np.minimum(starts, vals.shape[1] - 1)
    out[:] = ufunc.reduceat(vals, safe, axis=1)
    out[:, lengths == 0] = 0.0
    return out


class BatchPlannerKernel:
    """Stacked per-variant planner state for one sweep column.

    Parameters
    ----------
    sites:
        The shared candidate hovering locations (one instance, one δ).
    energies:
        One :class:`EnergyModel` per variant (B = ``len(energies)``).
        All variants must share the energy *rates* (hover power and J/m
        travel rate) — the capacity is the batched axis, exactly like the
        artifact cache's auxiliary-graph key.
    radio:
        Shared radio model (the kernel uses ``radio.bandwidth``).
    volume_tol:
        Algorithm 3's dust threshold (0 disables), applied per variant
        after partial drains exactly like ``PlannerKernel``.

    Notes
    -----
    The batch kernel is the sparse ``PlannerKernel`` with a leading
    variant axis: ``rem``/``covered`` are ``(B, n)``, the residual and
    insertion caches ``(B, m)``, and each variant owns its tour.  All
    mutating operations take explicit variant-row arguments so the greedy
    drivers can mask exhausted variants out.
    """

    def __init__(self, sites: HoveringSites,
                 energies: Sequence[EnergyModel], radio: RadioModel, *,
                 volume_tol: float = 0.0) -> None:
        if len(energies) == 0:
            raise InvalidParameterError(
                "batch planning needs at least one energy variant")
        base = energies[0]
        for other in energies[1:]:
            if (other.hover_power != base.hover_power
                    or other.travel_cost_per_meter
                    != base.travel_cost_per_meter):
                raise InvalidParameterError(
                    "batch variants must share energy rates (hover power "
                    "and J/m travel); only the capacity may vary per "
                    "variant")
        self.sites = sites
        self.energies = list(energies)
        self.radio = radio
        self.volume_tol = float(volume_tol)
        self.B = len(energies)
        self.m = sites.n_sites
        self.n = sites.network.n_nodes
        self.bandwidth = radio.bandwidth
        self.eta_h = base.hover_power
        self.etat_m = base.travel_cost_per_meter
        self.capacities = np.array([e.capacity for e in energies],
                                   dtype=float)
        self.points_all = np.vstack([sites.network.depot[None, :],
                                     sites.points])
        self.csr = SparseCoverage.from_matrix(sites.cov_matrix)

        B, m, n = self.B, self.m, self.n
        # --- residual state (one PlannerKernel row per variant) -------- #
        # repro: allow[hot-path-purity] -- (B, n) variant state, not (m, n)
        self.rem = np.repeat(
            sites.network.volumes.astype(float)[None, :], B, axis=0)
        # repro: allow[hot-path-purity] -- (B, n) variant state, not (m, n)
        self.covered = np.zeros((B, n), dtype=bool)
        # repro: allow[hot-path-purity] -- (B, m) variant state, not (m, n)
        self._p_res = np.zeros((B, m))
        # repro: allow[hot-path-purity] -- (B, m) variant state, not (m, n)
        self._t_res = np.zeros((B, m))
        # repro: allow[hot-path-purity] -- (B, n) variant state, not (m, n)
        self._dirty_sensors = np.ones((B, n), dtype=bool)

        # --- partial-award table (Algorithm 3) ------------------------- #
        self._fractions: Optional[np.ndarray] = None
        self._tau: Optional[np.ndarray] = None
        self._p_partial: Optional[np.ndarray] = None
        # repro: allow[hot-path-purity] -- (B, m) variant state, not (m, n)
        self._partial_dirty = np.ones((B, m), dtype=bool)

        # --- tours + cheapest-insertion caches ------------------------- #
        self.tours: List[List[int]] = [[0] for _ in range(B)]
        # repro: allow[hot-path-purity] -- (B, m+1) variant state, not (m, n)
        self.in_tour = np.zeros((B, m + 1), dtype=bool)
        self.in_tour[:, 0] = True
        # repro: allow[hot-path-purity] -- (B, m) variant state, not (m, n)
        self._ins_deltas = np.zeros((B, m))
        # repro: allow[hot-path-purity] -- (B, m) variant state, not (m, n)
        self._ins_edges = np.zeros((B, m), dtype=np.int64)
        self._ins_stale = np.ones(B, dtype=bool)

        # Lazy site-to-node distance rows.  Every tour point is drawn
        # from the fixed ``points_all`` set, so ``d(site, node)`` is
        # computed once per column run and shared across variants and
        # rounds as a pure gather — ``cross_distances`` is per-pair
        # independent, which keeps every reuse bitwise-identical to a
        # fresh scan.  Row-major (one contiguous (m,) row per visited
        # node) so repairs, flushes, and dead-edge rescans all read
        # contiguous memory.  Grown by doubling; (|visited|, m) total.
        # repro: allow[hot-path-purity] -- (visited, m) cache rows
        self._dist_rows = np.zeros((0, m))
        self._dist_len = 0
        self._row_of: Dict[int, int] = {}
        # Per-variant cache-row list mirroring ``tours[b]``
        # (``_tour_rows[b][i] == _row_of[tours[b][i]]``); rebuilt by the
        # insertion flush, patched in step with each tour insert.
        self._tour_rows: List[List[int]] = [[] for _ in range(B)]

        # Column-level metrics: round and union-rescore totals (these
        # depend on the column composition and stay out of the
        # per-variant perf snapshots) plus per-phase timers.
        self.metrics = MetricsRegistry()
        for name in ("rounds", "union_sites_rescored", "insertions",
                     "drains", "tour_flushes", "deltas_recomputed"):
            self.metrics.counter(name)
        for name in ("rescore", "insertion", "partial"):
            self.metrics.timer(name)
        # Grouping-invariant per-variant work counters (perf snapshots).
        self._insertions = np.zeros(B, dtype=np.int64)
        self._drains = np.zeros(B, dtype=np.int64)
        self._tour_flushes = np.zeros(B, dtype=np.int64)
        self._deltas_recomputed = np.zeros(B, dtype=np.int64)

    # ------------------------------------------------------------------ #
    # Residual awards P' and hover times t'  (Eqs. 11-12, stacked)
    # ------------------------------------------------------------------ #
    def residual_scores(self) -> Tuple[np.ndarray, np.ndarray]:
        """Current ``(P', t')`` rows for every variant (cached views)."""
        with self.metrics.time("rescore"), span("kernel.batch.rescore"):
            self._flush_residuals()
        return self._p_res, self._t_res

    def _flush_residuals(self) -> None:
        """Rescore the union dirty set across all variants at once."""
        union = self._dirty_sensors.any(axis=0)
        if not union.any():
            return
        dirty = self.csr.sites_covering(np.flatnonzero(union))
        self._dirty_sensors[:] = False
        if len(dirty) == 0:
            return
        idxs, starts, lengths = self.csr.gather(dirty)
        vals = self.rem[:, idxs]
        self._p_res[:, dirty] = _segment_reduce_rows(vals, starts, lengths,
                                                     np.add)
        self._t_res[:, dirty] = _segment_reduce_rows(
            vals, starts, lengths, np.maximum) / self.bandwidth
        self._partial_dirty[:, dirty] = True
        self.metrics.counter("union_sites_rescored").inc(len(dirty))

    def partial_scores(self, fractions: np.ndarray
                       ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Algorithm 3's ``(t', tau, partial awards)`` stacked per variant."""
        fractions = np.asarray(fractions, dtype=float)
        if self._fractions is None or not np.array_equal(self._fractions,
                                                         fractions):
            self._fractions = fractions.copy()
            self._partial_dirty[:] = True
            # repro: allow[hot-path-purity] -- (B, m, K) cache, not (m, n)
            self._tau = np.zeros((self.B, self.m, len(fractions)))
            # repro: allow[hot-path-purity] -- (B, m, K) cache, not (m, n)
            self._p_partial = np.zeros((self.B, self.m, len(fractions)))
        with self.metrics.time("rescore"), span("kernel.batch.rescore"):
            self._flush_residuals()
        with self.metrics.time("partial"), span("kernel.batch.partial"):
            self._flush_partial()
        assert self._tau is not None and self._p_partial is not None
        return self._t_res, self._tau, self._p_partial

    def _flush_partial(self) -> None:
        """Recompute partial-award rows of the union dirty site set."""
        union = self._partial_dirty.any(axis=0)
        if not union.any():
            return
        assert (self._fractions is not None and self._tau is not None
                and self._p_partial is not None)
        dirty = np.flatnonzero(union)
        self._partial_dirty[:] = False
        tau_d = self._t_res[:, dirty, None] * self._fractions[None, None, :]
        self._tau[:, dirty, :] = tau_d
        idxs, starts, lengths = self.csr.gather(dirty)
        vals = self.rem[:, idxs]
        for k in range(len(self._fractions)):
            caps = np.repeat(self.bandwidth * tau_d[:, :, k], lengths,
                             axis=1)
            self._p_partial[:, dirty, k] = _segment_reduce_rows(
                np.minimum(vals, caps), starts, lengths, np.add)

    # ------------------------------------------------------------------ #
    # Drains (batched over the selected variant rows)
    # ------------------------------------------------------------------ #
    def drain_full_many(self, rows: np.ndarray,
                        sites_sel: np.ndarray) -> None:
        """Full collection per (variant row, selected site) pair (DCM)."""
        idxs, _starts, lengths = self.csr.gather(sites_sel)
        row_ids = np.repeat(rows, lengths)
        vals = self.rem[row_ids, idxs]
        changed = vals > 0.0
        self.rem[row_ids, idxs] = 0.0
        self.covered[row_ids, idxs] = True
        self._dirty_sensors[row_ids[changed], idxs[changed]] = True
        self._drains[rows] += 1
        self.metrics.counter("drains").inc(len(rows))

    def drain_partial_many(self, rows: np.ndarray, sites_sel: np.ndarray,
                           durations: np.ndarray) -> None:
        """OFDMA drains per (variant row, site, duration) triple (PDCM)."""
        idxs, _starts, lengths = self.csr.gather(sites_sel)
        row_ids = np.repeat(rows, lengths)
        vals = self.rem[row_ids, idxs]
        uploaded = np.minimum(vals, self.bandwidth * np.repeat(durations,
                                                               lengths))
        self.rem[row_ids, idxs] = vals - uploaded
        changed = uploaded > 0.0
        self._dirty_sensors[row_ids[changed], idxs[changed]] = True
        if self.volume_tol > 0.0:
            # Dust snap over the drained variants' whole residual rows,
            # mirroring PlannerKernel.drain_partial.
            sub = self.rem[rows]
            tiny = (sub > 0.0) & (sub < self.volume_tol)
            sub[tiny] = 0.0
            self.rem[rows] = sub
            self._dirty_sensors[rows] |= tiny
        self.covered[row_ids, idxs] = True
        self._drains[rows] += 1
        self.metrics.counter("drains").inc(len(rows))

    # ------------------------------------------------------------------ #
    # Batched cheapest-insertion delta cache
    # ------------------------------------------------------------------ #
    def insertion_state(self, active: np.ndarray) -> np.ndarray:
        """Per-variant cheapest-insertion deltas, flushing stale *active*
        rows first (inactive variants keep their stale caches — they will
        never be read again).  Returns the internal ``(B, m)`` array; the
        drivers treat it as read-only."""
        with self.metrics.time("insertion"), span("kernel.batch.insertion"):
            stale = np.flatnonzero(active & self._ins_stale)
            if len(stale):
                self._flush_insertion_rows(stale)
        return self._ins_deltas

    def _node_rows(self, nodes: Sequence[int]) -> List[int]:
        """Distance-cache row indices for *nodes*, computing misses.

        Missing rows are filled with one ``cross_distances`` call over
        the batch of new points; swapping the argument order computes the
        row-major layout directly and is bitwise-equal to the transposed
        site-major scan (negating the coordinate diff is exact and
        squares to the identical float).
        """
        missing = [v for v in nodes if v not in self._row_of]
        if missing:
            uniq = list(dict.fromkeys(missing))
            need = self._dist_len + len(uniq)
            if need > self._dist_rows.shape[0]:
                # repro: allow[hot-path-purity] -- (visited, m) cache rows
                grown = np.zeros((max(2 * self._dist_rows.shape[0], need,
                                      16), self.m))
                grown[:self._dist_len] = self._dist_rows[:self._dist_len]
                self._dist_rows = grown
            new = cross_distances(self.points_all[np.array(uniq)],
                                  self.sites.points)
            self._dist_rows[self._dist_len:need] = new
            for i, v in enumerate(uniq):
                self._row_of[v] = self._dist_len + i
            self._dist_len = need
        return [self._row_of[v] for v in nodes]

    def _flush_insertion_rows(self, rows: np.ndarray) -> None:
        """Full cheapest-insertion rescan for the given variant rows.

        Rows are grouped by tour length and scanned as one stacked
        gather from the distance-row cache per group (chunked so the
        transient block stays bounded); each row's scan is elementwise
        identical to ``PlannerKernel._flush_insertion`` — the candidate
        block is laid out ``(rows, edges, sites)`` so the per-site
        ``argmin`` over the edge axis keeps the first-minimum tie-break
        toward the lower edge index.
        """
        by_len: Dict[int, List[int]] = {}
        for b in rows.tolist():
            by_len.setdefault(len(self.tours[b]), []).append(b)
        for k, group in by_len.items():
            if k == 1:
                # Depot-only tours are identical across variants: one scan.
                depot_row = self._node_rows([0])[0]
                d = 2.0 * self._dist_rows[depot_row]
                for b in group:
                    self._ins_deltas[b] = d
                    self._ins_edges[b] = 0
                    self._tour_rows[b] = [depot_row]
                continue
            grp = np.array(group, dtype=int)
            tours_arr = np.array([self.tours[b] for b in group], dtype=int)
            for b in group:
                self._tour_rows[b] = self._node_rows(self.tours[b])
            ridx = np.array([self._tour_rows[b] for b in group],
                            dtype=int)                          # (R, k)
            tp = self.points_all[tours_arr]                     # (R, k, 2)
            nxt = np.roll(np.arange(k), -1)
            step = max(1, _FLUSH_CHUNK_ELEMS // max(1, self.m * k))
            for c0 in range(0, len(grp), step):
                sub = grp[c0:c0 + step]
                tpc = tp[c0:c0 + step]
                rc = len(sub)
                d = self._dist_rows[ridx[c0:c0 + step].reshape(-1)]
                d = d.reshape(rc, k, self.m)                     # (Rc, k, m)
                edge_len = np.linalg.norm(tpc[:, nxt] - tpc, axis=2)
                cand = d + d[:, nxt] - edge_len[:, :, None]
                best = np.argmin(cand, axis=1)                   # (Rc, m)
                self._ins_deltas[sub] = np.take_along_axis(
                    cand, best[:, None, :], axis=1)[:, 0]
                self._ins_edges[sub] = best
        self._ins_stale[rows] = False
        self._deltas_recomputed[rows] += self.m
        self.metrics.counter("deltas_recomputed").inc(len(rows) * self.m)

    def insert_many(self, rows: np.ndarray, sites_sel: np.ndarray) -> None:
        """Insert each variant's selected site at its cached best position.

        The cache repair replays ``PlannerKernel.insert`` per row with the
        row axis batched: dead-edge masks are taken before the edge-index
        shift, both new edges are applied sequentially with the identical
        lower-edge-index tie-break, and destroyed-edge candidates are
        rescanned per variant (tours are ragged across variants).
        """
        with self.metrics.time("insertion"), span("kernel.batch.insertion"):
            stale = np.flatnonzero(self._ins_stale[rows])
            if len(stale):
                self._flush_insertion_rows(rows[stale])
            self._insertions[rows] += 1
            self.metrics.counter("insertions").inc(len(rows))
            nodes = sites_sel + 1
            e_sel = self._ins_edges[rows, sites_sel]
            k_olds = np.array([len(self.tours[b]) for b in rows.tolist()])

            first = k_olds == 1
            for b, node in zip(rows[first].tolist(),
                               nodes[first].tolist()):
                self.tours[b].insert(1, node)
            self.in_tour[rows[first], nodes[first]] = True
            self._ins_stale[rows[first]] = True

            gen = ~first
            if not gen.any():
                return
            rows_g = rows[gen]
            e_g = e_sel[gen]
            nodes_g = nodes[gen]
            k_g = k_olds[gen]
            n_rows = self._node_rows(nodes_g.tolist())
            a_nodes = np.empty(len(rows_g), dtype=int)
            b_nodes = np.empty(len(rows_g), dtype=int)
            # repro: allow[hot-path-purity] -- (R, 3) repair rows, R small
            rows3 = np.empty((len(rows_g), 3), dtype=np.intp)
            for i, (b, e, k, node) in enumerate(
                    zip(rows_g.tolist(), e_g.tolist(), k_g.tolist(),
                        nodes_g.tolist())):
                tour = self.tours[b]
                trow = self._tour_rows[b]
                a_nodes[i] = tour[e]
                b_nodes[i] = tour[(e + 1) % k]
                rows3[i, 0] = trow[e]
                rows3[i, 2] = trow[(e + 1) % k]
                tour.insert(e + 1, node)
                trow.insert(e + 1, n_rows[i])
            rows3[:, 1] = n_rows
            self.in_tour[rows_g, nodes_g] = True

            deltas_sub = self._ins_deltas[rows_g]
            edges_sub = self._ins_edges[rows_g]
            dead = edges_sub == e_g[:, None]
            edges_sub[edges_sub > e_g[:, None]] += 1
            # O(1) per candidate: compare against the two edges each
            # row's insertion just created.
            pa = self.points_all[a_nodes]
            pn = self.points_all[nodes_g]
            pb = self.points_all[b_nodes]
            d3 = self._dist_rows[rows3.reshape(-1)]
            d3 = d3.reshape(len(rows_g), 3, self.m)
            lens = np.stack([np.linalg.norm(pn - pa, axis=1),
                             np.linalg.norm(pb - pn, axis=1)], axis=1)
            for t in (0, 1):
                new_edge = (e_g + t)[:, None]
                cand = d3[:, t] + d3[:, t + 1] - lens[:, t][:, None]
                better = (cand < deltas_sub) | ((cand == deltas_sub)
                                                & (new_edge < edges_sub))
                deltas_sub[better] = cand[better]
                edges_sub[better] = np.broadcast_to(
                    new_edge, edges_sub.shape)[better]
            # Full rescan only where a row's recorded best edge died
            # ((edges, sites) layout: the per-site argmin over the edge
            # axis keeps the first-minimum tie-break).
            for i, b in enumerate(rows_g.tolist()):
                dead_idx = np.flatnonzero(dead[i])
                if not len(dead_idx):
                    continue
                k = len(self.tours[b])
                ridx = np.array(self._tour_rows[b], dtype=np.intp)
                sub = self._dist_rows[ridx[:, None], dead_idx]   # (k, dead)
                tour_pts = self.points_all[self.tours[b]]
                nxt = np.arange(1, k + 1)
                nxt[k - 1] = 0
                edge_len = np.linalg.norm(tour_pts[nxt] - tour_pts, axis=1)
                cand = sub + sub[nxt] - edge_len[:, None]
                best = np.argmin(cand, axis=0)
                deltas_sub[i, dead_idx] = cand[best,
                                               np.arange(len(dead_idx))]
                edges_sub[i, dead_idx] = best
                self._deltas_recomputed[b] += len(dead_idx)
                self.metrics.counter("deltas_recomputed").inc(len(dead_idx))
            self._ins_deltas[rows_g] = deltas_sub
            self._ins_edges[rows_g] = edges_sub

    def set_tour(self, b: int, order) -> None:
        """Replace variant *b*'s tour wholesale (e.g. after a 2-opt)."""
        self.tours[b] = [int(v) for v in order]
        if 0 not in self.tours[b]:
            raise InvalidParameterError("tour must contain the depot (0)")
        self.in_tour[b] = False
        self.in_tour[b, np.array(self.tours[b], dtype=int)] = True
        self._tour_rows[b] = []        # rebuilt by the next flush
        self._ins_stale[b] = True
        self._tour_flushes[b] += 1
        self.metrics.counter("tour_flushes").inc()

    # ------------------------------------------------------------------ #
    # Diagnostics
    # ------------------------------------------------------------------ #
    def perf(self, b: int) -> Dict[str, object]:
        """Variant *b*'s perf snapshot for ``CollectionTour.meta["perf"]``.

        Only grouping-invariant counters appear here — planning the same
        variant in a different column grouping (or alone) yields the
        identical snapshot.  Union-rescore totals live on
        :attr:`metrics`; the shared per-phase timers are exported under
        ``seconds`` (excluded from determinism comparisons like every
        measured wall-clock).
        """
        # Batch publishes only the grouping-invariant counters (see the
        # docstring); the per-site rescore counters have no batch
        # equivalent by construction.
        # repro: allow[flow-parity] -- grouping-invariant keys only
        return {
            "engine": "batch",
            "insertions": int(self._insertions[b]),
            "drains": int(self._drains[b]),
            "tour_flushes": int(self._tour_flushes[b]),
            "deltas_recomputed": int(self._deltas_recomputed[b]),
            "seconds": {k: round(v, 6)
                        for k, v in self.metrics.timer_seconds().items()},
        }


def _polish_tour(kern: BatchPlannerKernel, b: int) -> float:
    """2-opt variant *b*'s tour in place; returns the new tour length.

    Identical operation sequence to Algorithm 2/3's polish blocks: local
    pairwise distances, 2-opt, depot roll, wholesale ``set_tour``.
    """
    tour_arr = np.array(kern.tours[b], dtype=int)
    tour_pts = kern.points_all[tour_arr]
    # repro: allow[hot-path-purity] -- (|tour|, |tour|) only, not (m, n)
    local_dist = pairwise_distances(tour_pts)
    improved = two_opt(np.arange(len(tour_arr)), local_dist)
    start = int(np.flatnonzero(tour_arr[improved] == 0)[0])
    order = np.roll(improved, -start)
    kern.set_tour(b, [int(tour_arr[i]) for i in order])
    return float(tour_length_matrix(np.arange(len(order)),
                                    local_dist[np.ix_(order, order)]))


def _reduce_column_sites(sites: HoveringSites, site_reduction,
                         energies: Sequence[EnergyModel]) -> HoveringSites:
    """Run the pre-pass once for a whole capacity column.

    The reachability bound is the largest-capacity variant (``max`` keeps
    the first maximum, so ties are deterministic): a site whose depot
    out-and-back exceeds the largest battery is unreachable for every
    variant, which is what keeps the safe level plan-preserving
    column-wide.  Already-reduced sites pass through untouched.
    """
    reduction = resolve_reduction(site_reduction)
    if not reduction.enabled or isinstance(sites, ReducedSites):
        return sites
    cap_energy = max(energies, key=lambda e: e.capacity)
    return reduce_sites(sites, reduction, energy=cap_energy)


def plan_algorithm2_batch(network: SensorNetwork,
                          energies: Sequence[EnergyModel],
                          radio: RadioModel, delta: float, *,
                          polish: bool = True,
                          scoring: str = "ratio",
                          sites: Optional[HoveringSites] = None,
                          site_reduction=None,
                          max_iterations: Optional[int] = None
                          ) -> List[CollectionTour]:
    """Plan one Algorithm 2 capacity column: one tour per energy variant.

    Each returned tour is bitwise-identical to
    ``plan_algorithm2(..., energies[b], engine="kernel")`` — same points,
    sojourns, collected volumes, iteration counts.  Only
    ``tsp_mode="insertion"`` batches (the Christofides mode re-solves a
    TSP per candidate and has no stacked formulation).

    ``site_reduction`` runs the pre-pass once for the whole column with
    the *largest*-capacity variant as the reachability bound (see
    :func:`repro.core.reduce.reduce_sites`): ``safe`` eliminations stay
    plan-preserving for every variant, so the per-variant bitwise
    equivalence to the scalar kernel holds with the pre-pass on.
    """
    if scoring not in SCORING_POLICIES:
        raise InvalidParameterError(
            f"scoring must be one of {SCORING_POLICIES}, got {scoring!r}")
    if sites is None:
        sites = build_hovering_sites(network, radio, delta)
    sites = _reduce_column_sites(sites, site_reduction, energies)
    kern = BatchPlannerKernel(sites, energies, radio)
    B, m = kern.B, kern.m
    pts_all = kern.points_all
    volumes = network.volumes
    eta_h, etat_m = kern.eta_h, kern.etat_m
    caps = kern.capacities

    sojourn_of: List[Dict[int, float]] = [{0: 0.0} for _ in range(B)]
    hover = np.zeros(B)
    tour_len = np.zeros(B)
    iters = np.zeros(B, dtype=np.int64)
    limit = max_iterations if max_iterations is not None else m + 1

    def greedy_rounds(active: np.ndarray, policy: str,
                      count_iters: bool) -> None:
        """Batched greedy rounds until every variant in *active* stops."""
        while active.any():
            with span("batch.round"):
                if count_iters:
                    active &= iters < limit
                    if not active.any():
                        return
                    iters[active] += 1
                kern.metrics.counter("rounds").inc()
                p_res, t_res = kern.residual_scores()       # Eqs. 11-12
                eligible = (p_res > 0) & ~kern.in_tour[:, 1:]
                active &= eligible.any(axis=1)
                if not active.any():
                    return
                deltas = kern.insertion_state(active)
                new_energy = ((hover[:, None] + t_res) * eta_h
                              + (tour_len[:, None]
                                 + np.maximum(deltas, 0.0)) * etat_m)
                feasible = eligible & (new_energy <= caps[:, None] + 1e-9)
                active &= feasible.any(axis=1)
                if not active.any():
                    return
                rho = _score(policy, p_res, t_res, deltas, eta_h, etat_m,
                             feasible)
                rows = np.flatnonzero(active)
                j_sel = np.argmax(rho, axis=1)[rows]
                # Capture before insert_many: `deltas` aliases the
                # kernel's cache, which the insert writes back into.
                d_sel = deltas[rows, j_sel]
                kern.insert_many(rows, j_sel)
                tour_len[rows] += d_sel
                dur = t_res[rows, j_sel]
                for b, jj, d in zip(rows.tolist(), j_sel.tolist(),
                                    dur.tolist()):
                    sojourn_of[b][jj + 1] = d
                hover[rows] += dur
                kern.drain_full_many(rows, j_sel)

    with span("batch.greedy"):
        greedy_rounds(np.ones(B, dtype=bool), scoring, True)

    if polish:
        with span("batch.polish"):
            refill = np.zeros(B, dtype=bool)
            for b in range(B):
                if len(kern.tours[b]) >= 4:
                    tour_len[b] = _polish_tour(kern, b)
                    refill[b] = True
            if refill.any():
                # Post-polish refill always uses the paper's ratio rule
                # and does not count iterations (same as Algorithm 2).
                greedy_rounds(refill, "ratio", False)

    tours: List[CollectionTour] = []
    for b in range(B):
        order = np.array(kern.tours[b], dtype=int)
        meta = {
            "n_candidates": m,
            "n_visited": len(kern.tours[b]) - 1,
            "iterations": int(iters[b]),
            "tsp_mode": "insertion",
            "scoring": scoring,
            "polished": bool(polish),
            "delta": float(sites.delta),
            "engine": "batch",
            "perf": kern.perf(b),
        }
        attach_reduction_meta(meta, sites)
        tours.append(CollectionTour(
            points=pts_all[order],
            sojourns=np.array([sojourn_of[b][v] for v in kern.tours[b]]),
            collected=np.where(kern.covered[b], volumes, 0.0),
            network=network, energy=kern.energies[b], method="algorithm2",
            meta=meta))
    return tours


def plan_algorithm3_batch(network: SensorNetwork,
                          energies: Sequence[EnergyModel],
                          radio: RadioModel, delta: float, K: int, *,
                          polish: bool = True,
                          sites: Optional[HoveringSites] = None,
                          site_reduction=None,
                          max_iterations: Optional[int] = None
                          ) -> List[CollectionTour]:
    """Plan one Algorithm 3 capacity column: one tour per energy variant.

    Bitwise-identical per variant to
    ``plan_algorithm3(..., energies[b], engine="kernel")``;
    ``site_reduction`` follows the column-wide max-capacity convention of
    :func:`plan_algorithm2_batch`.
    """
    K = check_integer(K, "K", minimum=1)
    if sites is None:
        sites = build_hovering_sites(network, radio, delta)
    sites = _reduce_column_sites(sites, site_reduction, energies)
    kern = BatchPlannerKernel(sites, energies, radio,
                              volume_tol=_VOLUME_TOL)
    B, m = kern.B, kern.m
    pts_all = kern.points_all
    bandwidth = radio.bandwidth
    eta_h, etat_m = kern.eta_h, kern.etat_m
    caps = kern.capacities
    fractions = np.arange(1, K + 1) / K

    sojourn_of: List[Dict[int, float]] = [{0: 0.0} for _ in range(B)]
    hover = np.zeros(B)
    tour_len = np.zeros(B)
    iters = np.zeros(B, dtype=np.int64)
    limit = (max_iterations if max_iterations is not None
             else 2 * K * (m + 1))

    def greedy_rounds(active: np.ndarray) -> None:
        """Batched (site, k) selections until every variant stops."""
        while active.any():
            with span("batch.round"):
                active &= iters < limit
                if not active.any():
                    return
                iters[active] += 1
                kern.metrics.counter("rounds").inc()
                t_max, tau, p_partial = kern.partial_scores(fractions)
                eligible_site = t_max > _VOLUME_TOL / bandwidth
                active &= eligible_site.any(axis=1)
                if not active.any():
                    return
                # Travel delta: zero for on-tour sites (Lemma 2 upgrade).
                deltas = np.maximum(kern.insertion_state(active), 0.0)
                deltas[kern.in_tour[:, 1:]] = 0.0
                new_energy = ((hover[:, None, None] + tau) * eta_h
                              + (tour_len[:, None]
                                 + deltas)[:, :, None] * etat_m)
                feasible = ((new_energy <= caps[:, None, None] + 1e-9)
                            & (p_partial > _VOLUME_TOL)
                            & eligible_site[:, :, None])
                active &= feasible.reshape(B, -1).any(axis=1)
                if not active.any():
                    return
                denom = np.maximum(tau * eta_h
                                   + deltas[:, :, None] * etat_m,
                                   _DENOM_EPS)
                rho = np.where(feasible, p_partial / denom, -np.inf)
                rows = np.flatnonzero(active)
                flat = np.argmax(rho.reshape(B, -1), axis=1)[rows]
                j_sel, k_sel = np.unravel_index(flat, (m, K))
                durations = tau[rows, j_sel, k_sel]
                nodes = j_sel + 1
                newly = ~kern.in_tour[rows, nodes]
                if newly.any():
                    ins_rows = rows[newly]
                    ins_j = j_sel[newly]
                    kern.insert_many(ins_rows, ins_j)
                    tour_len[ins_rows] += deltas[ins_rows, ins_j]
                    for b, jj in zip(ins_rows.tolist(), ins_j.tolist()):
                        sojourn_of[b][jj + 1] = 0.0
                for b, jj, d in zip(rows.tolist(), j_sel.tolist(),
                                    durations.tolist()):
                    sojourn_of[b][jj + 1] += d
                hover[rows] += durations
                kern.drain_partial_many(rows, j_sel, durations)

    with span("batch.greedy"):
        greedy_rounds(np.ones(B, dtype=bool))

    if polish:
        with span("batch.polish"):
            refill = np.zeros(B, dtype=bool)
            for b in range(B):
                if len(kern.tours[b]) >= 4:
                    tour_len[b] = _polish_tour(kern, b)
                    refill[b] = True
            if refill.any():
                # Algorithm 3's refill re-enters the same greedy loop
                # and keeps counting iterations against the same limit.
                greedy_rounds(refill)

    tours: List[CollectionTour] = []
    for b in range(B):
        order = np.array(kern.tours[b], dtype=int)
        meta = {
            "n_candidates": m,
            "n_virtual_candidates": m * K,
            "n_visited": len(kern.tours[b]) - 1,
            "iterations": int(iters[b]),
            "K": K,
            "polished": bool(polish),
            "delta": float(sites.delta),
            "engine": "batch",
            "perf": kern.perf(b),
        }
        attach_reduction_meta(meta, sites)
        tours.append(CollectionTour(
            points=pts_all[order],
            sojourns=np.array([sojourn_of[b][v] for v in kern.tours[b]]),
            collected=network.volumes - kern.rem[b],
            network=network, energy=kern.energies[b], method="algorithm3",
            meta=meta))
    return tours


__all__ = ["BatchPlannerKernel", "plan_algorithm2_batch",
           "plan_algorithm3_batch"]
