"""One-call planning facade.

``plan_tour(network, energy, radio, method="algorithm2", delta=10.0)``
dispatches to the right planner with sensible defaults; the
:data:`PLANNERS` registry names every available method for CLIs and
experiment configs.

When a run ledger is active (:mod:`repro.obs.ledger`), every facade call
additionally emits one ``planner.call`` :class:`~repro.obs.record.RunRecord`
— config hash, engine, wall-clock, kernel work counters, optional
tracemalloc peak — *after* planning completes, so the returned tour is
bitwise-identical with the ledger on or off.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Optional

from repro.core.algorithm1 import plan_algorithm1
from repro.core.algorithm2 import plan_algorithm2
from repro.core.algorithm3 import plan_algorithm3
from repro.core.benchmark_alg import plan_benchmark
from repro.core.tour import CollectionTour
from repro.energy.model import EnergyModel
from repro.network.sensor_network import SensorNetwork
from repro.obs.ledger import get_ledger, record_event
from repro.obs.memprof import PeakMemory
from repro.obs.record import config_hash, perf_counter_metrics, \
    sanitize_config
from repro.obs.tracer import TracerLike, activated, span
from repro.radio.link import RadioModel
from repro.utils.errors import InvalidParameterError

#: Planner registry: method name -> short description.
PLANNERS: Dict[str, str] = {
    "algorithm1": "orienteering reduction, no coverage overlap (paper Alg. 1)",
    "algorithm2": "greedy max-ratio with overlap (paper Alg. 2)",
    "algorithm3": "partial collection over K virtual locations (paper Alg. 3)",
    "benchmark": "Christofides over all sensors + min-ratio pruning (baseline)",
}


def _dispatch(network: SensorNetwork, energy: EnergyModel, radio: RadioModel,
              method: str, delta: float,
              kwargs: Dict[str, Any]) -> CollectionTour:
    """The method dispatch proper (kwargs may be mutated; pass a copy)."""
    if method == "algorithm1":
        return plan_algorithm1(network, energy, radio, delta, **kwargs)
    if method == "algorithm2":
        return plan_algorithm2(network, energy, radio, delta, **kwargs)
    if method == "algorithm3":
        kwargs.setdefault("K", 2)
        return plan_algorithm3(network, energy, radio, delta, **kwargs)
    if method == "benchmark":
        engine = kwargs.pop("engine", "kernel")
        if kwargs:
            raise InvalidParameterError(
                f"benchmark planner takes no extra options, "
                f"got {sorted(kwargs)}")
        return plan_benchmark(network, energy, radio, engine=engine)
    raise InvalidParameterError(
        f"unknown method {method!r}; expected one of {sorted(PLANNERS)}")


def plan_tour(network: SensorNetwork, energy: EnergyModel, radio: RadioModel,
              *, method: str = "algorithm2", delta: float = 10.0,
              trace: Optional[TracerLike] = None,
              **kwargs: Any) -> CollectionTour:
    """Plan a data-collection tour with the chosen *method*.

    Parameters
    ----------
    network, energy, radio:
        Problem inputs.
    method:
        One of :data:`PLANNERS`.
    delta:
        Grid edge length (ignored by ``"benchmark"``, which hovers directly
        above sensors).
    trace:
        Optional :class:`repro.obs.Tracer` activated for the duration of
        the call; the plan runs under one ``planner.plan_tour`` root span
        with every instrumented layer (kernel, orienteering, TSP) nested
        below it.  ``None`` (default) keeps the ambient tracer — a no-op
        unless tracing was enabled via ``REPRO_TRACE`` or
        :func:`repro.obs.set_tracer`.  Tracing never changes the tour,
        and neither does the run ledger (``REPRO_LEDGER`` /
        :class:`repro.obs.ledger_active`), which records one
        ``planner.call`` entry per facade call when active.
    **kwargs:
        Planner-specific options — e.g. ``K=4`` for ``algorithm3``,
        ``overlap="ignore"`` for ``algorithm1``, ``tsp_mode="christofides"``
        for ``algorithm2``/``algorithm3``.

    Returns
    -------
    CollectionTour
    """
    with activated(trace), span("planner.plan_tour", method=method,
                                n_nodes=network.n_nodes):
        ledger = get_ledger()
        if ledger is None:
            return _dispatch(network, energy, radio, method, delta,
                             dict(kwargs))
        with PeakMemory(enabled=ledger.track_memory) as mem:
            t0 = time.perf_counter()
            tour = _dispatch(network, energy, radio, method, delta,
                             dict(kwargs))
            wall_s = time.perf_counter() - t0
        perf: Dict[str, Any] = tour.meta.get("perf") or {}
        payload = sanitize_config({
            "method": method, "delta": float(delta),
            "n_nodes": network.n_nodes, "capacity": energy.capacity,
            **kwargs})
        record_event(
            "planner.call",
            label=method,
            config_hash=config_hash(payload),
            engine=perf.get("engine"),
            wall_s=wall_s,
            metrics={"counters": perf_counter_metrics(perf)},
            mem_peak_bytes=mem.peak_bytes,
            extra={"collected_mb": float(tour.collected_volume),
                   "n_hovers": int(tour.n_hovers)})
        return tour


__all__ = ["plan_tour", "PLANNERS"]
