"""The paper's comparison baseline (§VII-A).

Build a Christofides tour over *all* aggregate sensor nodes plus the depot
(the UAV hovers directly above each sensor and drains it at bandwidth B).
While the tour's energy exceeds the battery, remove the node whose removal
loses the least data per joule saved — i.e. the minimum of

    D_v / (hover_energy(v) + travel_energy_saved_by_splicing(v)),

then splice its neighbours together.  The loop always terminates because
the depot-only tour costs zero energy.

The pruning loop runs on :class:`repro.core.kernel.PruneCache` by default:
a removal only changes the splice savings of the removed node's two
neighbours, so each round is two scalar rescores plus one vectorised
argmin instead of a fresh Python pass over the whole tour (O(k) vs O(k²)
scalar work across a prune-down).  ``engine="dense"`` keeps the legacy
loop for equivalence tests; results are bitwise-identical.

The paper's running-time observation — the baseline gets *faster* as the
battery grows, because fewer nodes need pruning — falls straight out of
this structure and is reproduced by the Fig. 3(b)/5(b) benches.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.kernel import PruneCache, check_engine
from repro.core.tour import CollectionTour
from repro.energy.model import EnergyModel
from repro.geometry.distance import pairwise_distances
from repro.network.sensor_network import SensorNetwork
from repro.obs.tracer import span
from repro.radio.link import RadioModel
from repro.tsp.christofides import christofides_tour
from repro.tsp.length import tour_length_matrix


def plan_benchmark(network: SensorNetwork, energy: EnergyModel,
                   radio: RadioModel, *,
                   engine: str = "kernel") -> CollectionTour:
    """Plan a tour with the Christofides-then-prune baseline.

    Parameters
    ----------
    network, energy, radio:
        Problem inputs.  Note the baseline ignores the δ-grid entirely:
        its hovering locations are the sensor positions themselves, and
        each visit collects exactly that sensor's data (the paper's
        baseline does not exploit multi-sensor coverage).
    engine:
        ``"kernel"`` — incremental neighbour-only rescoring (default);
        ``"dense"`` — legacy full rescan per removal (identical results).
    """
    # repro: hot-path  (the prune-down must stay O(1) rescores per removal)
    check_engine(engine)
    n = network.n_nodes
    pts_all = np.vstack([network.depot[None, :], network.positions])
    volumes = network.volumes
    hover_times = volumes / radio.bandwidth               # D_v / B per sensor
    eta_h = energy.hover_power
    etat_m = energy.travel_cost_per_meter
    capacity = energy.capacity

    # Christofides needs the full (n+1, n+1) sensor metric; the baseline's
    # n is the sensor count, not the candidate-grid m.
    # repro: allow[hot-path-purity] -- (n+1, n+1) over sensors, not (m, n)
    dist = pairwise_distances(pts_all)
    if n == 0:
        tour = [0]
    else:
        tour = [int(v) for v in christofides_tour(dist, start=0)]

    def tour_energy(order: List[int]) -> float:
        travel = tour_length_matrix(np.array(order, dtype=int), dist)
        hover = sum(hover_times[v - 1] for v in order if v != 0)
        return hover * eta_h + travel * etat_m

    removals = 0
    rescored = 0
    current = tour_energy(tour)
    with span("benchmark.prune"):
        if engine in ("kernel", "batch"):
            # The prune baseline has no stacked formulation; "batch"
            # falls back to the incremental removal cache.
            cache = PruneCache(dist, volumes, hover_times, eta_h, etat_m)
            cache.set_tour(tour)
            while current > capacity + 1e-9 and len(cache.tour) > 1:
                best_i = cache.best()
                if best_i < 0:
                    break  # only zero-saving nodes left; cannot reduce more
                cache.remove(best_i)
                removals += 1
                current = tour_energy(cache.tour)
            tour = cache.tour
            rescored = cache.rescored
        else:
            while current > capacity + 1e-9 and len(tour) > 1:
                best_i, best_ratio = -1, np.inf
                k = len(tour)
                for i in range(k):
                    v = tour[i]
                    if v == 0:
                        continue
                    prev_node = tour[i - 1]
                    next_node = tour[(i + 1) % k]
                    saved_travel = (dist[prev_node, v] + dist[v, next_node]
                                    - dist[prev_node, next_node])
                    saved = hover_times[v - 1] * eta_h + saved_travel * etat_m
                    rescored += 1
                    # Data lost per joule saved; prefer removing cheap data
                    # that frees much energy.  Guard: zero saving still has a
                    # defined (infinite) ratio and is never preferred over a
                    # real saving.
                    ratio = volumes[v - 1] / saved if saved > 1e-12 else np.inf
                    if ratio < best_ratio:
                        best_ratio, best_i = ratio, i
                if best_i < 0:
                    break  # only zero-saving nodes left; cannot reduce more
                tour.pop(best_i)
                removals += 1
                current = tour_energy(tour)

    order = np.array(tour, dtype=int)
    sojourns = np.array([0.0 if v == 0 else hover_times[v - 1] for v in tour])
    collected = np.zeros(n)
    kept = order[order > 0] - 1
    collected[kept] = volumes[kept]
    return CollectionTour(
        points=pts_all[order], sojourns=sojourns, collected=collected,
        network=network, energy=energy, method="benchmark",
        meta={
            "n_visited": int(len(order) - 1),
            "removals": removals,
            "initial_nodes": n,
            "engine": engine,
            "perf": {"engine": engine, "ratios_rescored": rescored},
        })


__all__ = ["plan_benchmark"]
