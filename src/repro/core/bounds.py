"""Upper bounds on the collectible data volume.

NP-hardness (Theorem 1) rules out computing the optimum, but cheap upper
bounds still bracket the planners' solution quality:

* **hover bound** — even if travel were free, the UAV can hover at most
  ``E / eta_h`` seconds; with every covered device uploading in parallel
  at ``B``, each hovering *site* can yield at most ``|C(s)| * B`` per
  second.  Greedily stacking the best-yielding sites bounds the total.
* **reach bound** — data on sensors the UAV cannot even fly to and back
  from (ignoring hovering entirely) can never be collected.
* **storage bound** — the total stored volume.

``collection_upper_bound`` returns the minimum of the three.  The test
suite asserts every planner's tour stays below it, and the experiment
tables report solution quality as a fraction of the bound.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.hovering import HoveringSites, build_hovering_sites
from repro.energy.model import EnergyModel
from repro.network.sensor_network import SensorNetwork
from repro.radio.link import RadioModel


@dataclass(frozen=True)
class UpperBoundReport:
    """The three bounds and their minimum (all MB)."""

    storage_bound: float
    reach_bound: float
    hover_bound: float

    @property
    def value(self) -> float:
        """The tightest of the three bounds."""
        return min(self.storage_bound, self.reach_bound, self.hover_bound)


def reach_bound(network: SensorNetwork, energy: EnergyModel,
                radio: RadioModel) -> float:
    """Data on sensors within out-and-back flying range of the depot.

    A sensor can only yield data if the UAV can fly to some point within
    ``R0`` of it and return to the depot on travel energy alone — a
    necessary condition for any feasible tour that collects it.
    """
    if network.n_nodes == 0:
        return 0.0
    d = np.linalg.norm(network.positions - network.depot[None, :], axis=1)
    # Closest approach needed: within R0 of the sensor.
    needed = 2.0 * np.maximum(d - radio.coverage_radius, 0.0)
    reachable = needed * energy.travel_cost_per_meter <= energy.capacity + 1e-9
    return float(network.volumes[reachable].sum())


def hover_bound(network: SensorNetwork, energy: EnergyModel,
                radio: RadioModel, *, sites: HoveringSites | None = None,
                delta: float = 10.0) -> float:
    """Best-case yield of the affordable hovering time.

    Relaxation: travel is free and the UAV may teleport between hovering
    sites, spending its entire battery hovering.  At any instant the yield
    rate is (number of covered, undrained devices) * B; the optimistic
    schedule drains the densest coverage sets first.  We bound this by
    greedily taking sites in decreasing award order (each site's award
    counted once — a device's data exists only once) until the affordable
    hover time runs out, pro-rating the last site.

    This is itself an optimistic bound on the relaxation (it charges each
    site only ``award / (B * |C|)`` seconds, the perfectly-parallel drain
    time), so it is a valid upper bound on any real tour.
    """
    if sites is None:
        sites = build_hovering_sites(network, radio, delta)
    budget_s = energy.max_hover_duration()
    if sites.n_sites == 0 or budget_s <= 0:
        return 0.0
    # Greedy set-cover-flavoured accumulation on residual volumes.
    rem = network.volumes.astype(float).copy()
    total = 0.0
    cov = sites.cov_matrix
    for _ in range(sites.n_sites):
        if budget_s <= 1e-12:
            break
        awards = cov @ rem
        j = int(np.argmax(awards))
        if awards[j] <= 1e-12:
            break
        covered = cov[j]
        n_cov = int(covered.sum())
        # Perfectly parallel drain: all covered devices upload at B at once.
        drain_time = rem[covered].max() / radio.bandwidth
        if drain_time <= budget_s:
            total += float(rem[covered].sum())
            rem[covered] = 0.0
            budget_s -= drain_time
        else:
            total += float(np.minimum(rem[covered],
                                      radio.bandwidth * budget_s).sum())
            budget_s = 0.0
    return total


def collection_upper_bound(network: SensorNetwork, energy: EnergyModel,
                           radio: RadioModel, *, delta: float = 10.0,
                           sites: HoveringSites | None = None) -> UpperBoundReport:
    """All three bounds; ``.value`` is the tightest."""
    return UpperBoundReport(
        storage_bound=network.total_volume,
        reach_bound=reach_bound(network, energy, radio),
        hover_bound=hover_bound(network, energy, radio,
                                sites=sites, delta=delta))


__all__ = ["UpperBoundReport", "collection_upper_bound",
           "reach_bound", "hover_bound"]
