"""Paper Algorithm 2 — DCM *with* hovering-coverage overlapping.

Greedy construction: starting from the depot-only tour, repeatedly add the
candidate hovering location with the largest data-per-energy ratio

    rho(s_j) = P'(s_j) / (t'(s_j) * eta_h + dTSP * eta_t)      (Eq. 13)

where ``P'`` counts only not-yet-collected sensors (Eq. 11), ``t'`` is the
max residual upload time among them (Eq. 12), and ``dTSP`` is the tour-length
increase of adding ``s_j``.  Stop when no candidate fits the battery.

This module is a thin *policy* layer: which candidate to take, under which
scoring rule.  All per-candidate state — residual awards/hover times with
dirty-set invalidation and the cheapest-insertion delta cache — lives in
:class:`repro.core.kernel.PlannerKernel`, which makes each greedy step
O(overlap) instead of O(m·n + m·|tour|).  ``engine="dense"`` selects the
legacy full-recompute path (bitwise-identical results; kept for
equivalence tests and ``benchmarks/bench_kernel.py``).

Incremental-TSP modes
---------------------
* ``tsp_mode="insertion"`` (default) — ``dTSP`` is the cheapest-insertion
  delta into the current tour, served from the kernel's incremental cache;
  the tour is maintained incrementally.
* ``tsp_mode="christofides"`` — recompute a Christofides tour for
  ``S ∪ {s_j}`` per candidate, exactly as the paper's pseudo-code states.
  O(|S|^3) per candidate; practical only on small instances.  The ablation
  bench compares the two.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.core.hovering import HoveringSites, build_hovering_sites
from repro.core.kernel import PlannerKernel, check_engine
from repro.core.reduce import (ReducedSites, attach_reduction_meta,
                               reduce_sites, resolve_reduction)
from repro.core.tour import CollectionTour
from repro.energy.model import EnergyModel
from repro.geometry.distance import cross_distances, pairwise_distances
from repro.network.sensor_network import SensorNetwork
from repro.obs.tracer import span
from repro.radio.link import RadioModel
from repro.tsp.christofides import christofides_tour
from repro.tsp.improve import two_opt
from repro.tsp.length import tour_length_matrix
from repro.utils.errors import InvalidParameterError

#: Denominator floor preventing division by zero when a candidate adds
#: neither hover time nor tour length (e.g. a site colocated with the depot).
_DENOM_EPS = 1e-12

#: Candidate-scoring policies (``scoring=`` parameter).  ``"ratio"`` is the
#: paper's Eq. 13; the others are ablation baselines quantifying how much
#: the energy-normalised ratio actually buys:
#:
#: * ``"award"``      — pick the largest residual award, ignore cost;
#: * ``"proximity"``  — pick the cheapest-to-insert candidate with any
#:   residual award (a nearest-neighbour construction);
#: * ``"hover_ratio"`` — Eq. 13 without the travel term (hover energy only).
SCORING_POLICIES = ("ratio", "award", "proximity", "hover_ratio")


def _score(policy: str, p_res, t_res, deltas, eta_h, etat_m, feasible):
    """Candidate scores under *policy*; -inf where infeasible."""
    if policy == "ratio":
        denom = np.maximum(t_res * eta_h + np.maximum(deltas, 0.0) * etat_m,
                           _DENOM_EPS)
        raw = p_res / denom
    elif policy == "award":
        raw = p_res
    elif policy == "proximity":
        raw = -np.maximum(deltas, 0.0)
    elif policy == "hover_ratio":
        raw = p_res / np.maximum(t_res * eta_h, _DENOM_EPS)
    else:
        raise InvalidParameterError(
            f"scoring must be one of {SCORING_POLICIES}, got {policy!r}")
    return np.where(feasible, raw, -np.inf)


def _insertion_deltas(site_points: np.ndarray,
                      tour_points: np.ndarray) -> tuple:
    """Vectorised cheapest-insertion delta of every site into the tour.

    Returns ``(deltas, positions)`` where ``positions[j]`` is the tour index
    *before which* site ``j`` would be inserted.  This is the full O(m·k)
    scan; the kernel maintains the same quantities incrementally and uses
    this formulation only for flushes (and as the oracle in tests).
    """
    k = len(tour_points)
    if k == 1:
        d = 2.0 * cross_distances(site_points, tour_points)[:, 0]
        return d, np.ones(len(site_points), dtype=int)
    d_site_tour = cross_distances(site_points, tour_points)      # (m, k)
    nxt = np.roll(np.arange(k), -1)
    edge_len = np.linalg.norm(tour_points[nxt] - tour_points, axis=1)  # (k,)
    # delta for inserting between tour_i and tour_{i+1}
    cand = d_site_tour + d_site_tour[:, nxt] - edge_len[None, :]
    best = np.argmin(cand, axis=1)
    deltas = cand[np.arange(len(site_points)), best]
    positions = (best + 1) % k
    positions[positions == 0] = k
    return deltas, positions


def plan_algorithm2(network: SensorNetwork, energy: EnergyModel,
                    radio: RadioModel, delta: float, *,
                    tsp_mode: str = "insertion",
                    polish: bool = True,
                    scoring: str = "ratio",
                    sites: Optional[HoveringSites] = None,
                    site_reduction=None,
                    max_iterations: Optional[int] = None,
                    engine: str = "kernel") -> CollectionTour:
    """Plan a full-collection tour with the greedy max-ratio heuristic.

    Parameters
    ----------
    network, energy, radio, delta:
        Problem inputs; ``delta`` is the grid edge length.
    tsp_mode:
        ``"insertion"`` (fast, default) or ``"christofides"`` (paper-literal).
    polish:
        After construction, 2-opt the tour and retry insertions with the
        freed budget (never reduces collected volume).
    scoring:
        Candidate-scoring policy (see :data:`SCORING_POLICIES`); the
        default ``"ratio"`` is the paper's Eq. 13.
    sites:
        Pre-built hovering sites (else built from the inputs).  A
        :class:`~repro.core.reduce.ReducedSites` is used as-is (the
        pre-pass is not idempotent).
    site_reduction:
        Candidate-site reduction pre-pass config — ``None``/``"off"``,
        ``"safe"`` (plan-preserving, bitwise-identical tours),
        ``"aggressive"``, or a :class:`~repro.core.reduce.SiteReduction`
        / its dict form.  Ignored when *sites* is already reduced.
    max_iterations:
        Safety bound on greedy iterations (default: number of candidates).
    engine:
        ``"kernel"`` — incremental sparse planner state (default);
        ``"dense"`` — legacy full-recompute loops (identical results).
    """
    # repro: hot-path  (the greedy loop must stay O(overlap) per step)
    if tsp_mode not in ("insertion", "christofides"):
        raise InvalidParameterError(
            f"tsp_mode must be 'insertion' or 'christofides', got {tsp_mode!r}")
    if scoring not in SCORING_POLICIES:
        raise InvalidParameterError(
            f"scoring must be one of {SCORING_POLICIES}, got {scoring!r}")
    check_engine(engine)
    if engine == "batch":
        if tsp_mode != "insertion":
            raise InvalidParameterError(
                "engine='batch' supports tsp_mode='insertion' only "
                "(the Christofides mode re-solves a TSP per candidate "
                "and has no stacked formulation)")
        from repro.core.batch import plan_algorithm2_batch
        return plan_algorithm2_batch(
            network, [energy], radio, delta, polish=polish,
            scoring=scoring, sites=sites, site_reduction=site_reduction,
            max_iterations=max_iterations)[0]
    reduction = resolve_reduction(site_reduction)
    if sites is None:
        sites = build_hovering_sites(network, radio, delta)
    if reduction.enabled and not isinstance(sites, ReducedSites):
        sites = reduce_sites(sites, reduction, energy=energy)

    kern = PlannerKernel(sites, energy, radio, engine=engine)
    pts_all = kern.points_all
    volumes = network.volumes
    eta_h = energy.hover_power
    etat_m = energy.travel_cost_per_meter
    capacity = energy.capacity

    m = sites.n_sites
    sojourn_of: Dict[int, float] = {0: 0.0}
    hover_total = 0.0
    tour_len = 0.0
    iterations = 0
    limit = max_iterations if max_iterations is not None else m + 1

    dist_all = None
    if tsp_mode == "christofides":
        # repro: allow[hot-path-purity] -- paper-literal mode, small m only
        dist_all = pairwise_distances(pts_all)

    while iterations < limit:
        # One greedy round: rescore, pick the max-ratio candidate, drain.
        with span("alg2.round"):
            iterations += 1
            p_res, t_res = kern.residual_scores()               # Eqs. 11-12

            eligible = (p_res > 0) & ~kern.in_tour[1:]
            if not eligible.any():
                break

            if tsp_mode == "insertion":
                deltas, _positions = kern.insertion_state()
            else:
                deltas = np.full(m, np.inf)
                cur_nodes = np.array(kern.tour, dtype=int)
                for j in np.flatnonzero(eligible):
                    # repro: allow[hot-path-purity] -- tour-node list for the christofides TSP mode, O(|tour|) not O(m*n)
                    cand_nodes = np.append(cur_nodes, j + 1)
                    cand_tour = christofides_tour(dist_all, start=0,
                                                  nodes=cand_nodes)
                    deltas[j] = tour_length_matrix(cand_tour,
                                                   dist_all) - tour_len

            new_hover = hover_total + t_res
            new_energy = (new_hover * eta_h
                          + (tour_len + np.maximum(deltas, 0.0)) * etat_m)
            feasible = eligible & (new_energy <= capacity + 1e-9)
            if not feasible.any():
                break

            rho = _score(scoring, p_res, t_res, deltas, eta_h, etat_m,
                         feasible)
            j = int(np.argmax(rho))

            node = j + 1
            if tsp_mode == "insertion":
                kern.insert(j)
                tour_len += float(deltas[j])
            else:
                # repro: allow[hot-path-purity] -- tour-node list for the christofides TSP mode, O(|tour|) per accepted node
                cur_nodes = np.append(np.array(kern.tour, dtype=int), node)
                new_tour = christofides_tour(dist_all, start=0,
                                             nodes=cur_nodes)
                kern.set_tour([int(v) for v in new_tour])
                tour_len = tour_length_matrix(new_tour, dist_all)
            sojourn_of[node] = float(t_res[j])
            hover_total += float(t_res[j])
            kern.drain_full(j)

    if polish and len(kern.tour) >= 4:
        with span("alg2.polish"):
            tour_len, hover_total = _polish_and_refill(
                kern, sojourn_of, hover_total, energy)

    sojourns = np.array([sojourn_of[v] for v in kern.tour])
    collected = np.where(kern.covered, volumes, 0.0)
    meta = {
        "n_candidates": m,
        "n_visited": len(kern.tour) - 1,
        "iterations": iterations,
        "tsp_mode": tsp_mode,
        "scoring": scoring,
        "polished": bool(polish),
        "delta": float(sites.delta),
        "engine": engine,
        "perf": kern.perf(),
    }
    attach_reduction_meta(meta, sites)
    return CollectionTour(
        points=pts_all[np.array(kern.tour, dtype=int)],
        sojourns=sojourns, collected=collected,
        network=network, energy=energy, method="algorithm2",
        meta=meta)


def _polish_and_refill(kern: PlannerKernel, sojourn_of: Dict[int, float],
                       hover_total: float, energy: EnergyModel) -> tuple:
    """2-opt the tour, then greedily insert more sites with the freed budget.

    Mutates the kernel (tour, residuals) and ``sojourn_of`` in place;
    returns the updated ``(tour_len, hover_total)``.  The wholesale reorder
    flushes the kernel's insertion cache — the one full O(m·|tour|) rescan
    a polished run pays.
    """
    # repro: hot-path  (post-polish refill re-enters the greedy loop)
    tour_arr = np.array(kern.tour, dtype=int)
    tour_pts = kern.points_all[tour_arr]
    # repro: allow[hot-path-purity] -- (|tour|, |tour|) only, not (m, n)
    local_dist = pairwise_distances(tour_pts)
    improved = two_opt(np.arange(len(tour_arr)), local_dist)
    start = int(np.flatnonzero(tour_arr[improved] == 0)[0])
    order = np.roll(improved, -start)
    kern.set_tour([int(tour_arr[i]) for i in order])
    tour_len = tour_length_matrix(np.arange(len(order)),
                                  local_dist[np.ix_(order, order)])

    eta_h = energy.hover_power
    etat_m = energy.travel_cost_per_meter
    capacity = energy.capacity
    while True:
        p_res, t_res = kern.residual_scores()
        eligible = (p_res > 0) & ~kern.in_tour[1:]
        if not eligible.any():
            break
        deltas, _positions = kern.insertion_state()
        new_energy = ((hover_total + t_res) * eta_h
                      + (tour_len + np.maximum(deltas, 0.0)) * etat_m)
        feasible = eligible & (new_energy <= capacity + 1e-9)
        if not feasible.any():
            break
        denom = np.maximum(t_res * eta_h + np.maximum(deltas, 0.0) * etat_m,
                           _DENOM_EPS)
        rho = np.where(feasible, p_res / denom, -np.inf)
        j = int(np.argmax(rho))
        node = j + 1
        kern.insert(j)
        tour_len += float(deltas[j])
        sojourn_of[node] = float(t_res[j])
        hover_total += float(t_res[j])
        kern.drain_full(j)
    return tour_len, hover_total


__all__ = ["plan_algorithm2", "SCORING_POLICIES"]
