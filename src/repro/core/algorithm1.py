"""Paper Algorithm 1 — DCM *without* hovering-coverage overlapping.

Reduces the data-collection maximisation problem to orienteering on the
auxiliary graph ``G_s`` (Eqs. 6–9): node awards are coverable data volumes,
edge costs are the energy weights ``w2``, and the budget is the UAV battery
capacity — a budget-feasible orienteering tour is exactly an
energy-feasible collection tour (Theorem 2).

Overlap handling
----------------
The paper *assumes* no two chosen hovering locations overlap.  On a real
δ-grid with ``delta <= R0`` adjacent squares always overlap, so this
implementation offers two modes:

* ``overlap="conflict"`` (default) — enforce the assumption: sites with
  intersecting coverage sets form pairwise conflict groups, so the solver
  never picks two overlapping sites and the award sum equals the true
  collected volume;
* ``overlap="ignore"`` — run the raw reduction exactly as written in the
  paper (awards may double-count); the returned
  :class:`~repro.core.tour.CollectionTour` still reports the *true* union
  volume, so the objective value is honest either way.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.auxgraph import AuxiliaryGraph, build_auxiliary_graph
from repro.core.hovering import HoveringSites, build_hovering_sites
from repro.core.reduce import (ReducedSites, attach_reduction_meta,
                               reduce_sites, resolve_reduction)
from repro.core.tour import CollectionTour
from repro.energy.model import EnergyModel
from repro.network.sensor_network import SensorNetwork
from repro.obs.tracer import span
from repro.orienteering.grasp import warm_tour_from_nodes
from repro.orienteering.problem import OrienteeringInstance, trusted_instance
from repro.orienteering.solver import solve_orienteering
from repro.radio.link import RadioModel
from repro.utils.errors import InvalidParameterError
from repro.utils.rng import SeedLike

#: Engines accepted by Algorithm 1's ``engine=`` parameter.
#: ``"scalar"`` — restart-by-restart GRASP over a fully-validated
#: instance (default); ``"fast"`` — the stacked construction engine of
#: :mod:`repro.orienteering.fast` over a trusted (validation-skipping)
#: instance.  Both produce bitwise-identical tours.
ENGINES = ("scalar", "fast")


def check_engine(engine: str) -> str:
    """Validate Algorithm 1's ``engine=`` argument."""
    if engine not in ENGINES:
        raise InvalidParameterError(
            f"engine must be one of {ENGINES}, got {engine!r}")
    return engine


def _conflict_neighbors_from_overlap(overlap: np.ndarray) -> List[np.ndarray]:
    """Per-node conflict lists (site ids shifted by +1; node 0 = depot)."""
    lists = [np.empty(0, dtype=int)]  # depot conflicts with nothing
    for row in overlap:
        lists.append(np.flatnonzero(row) + 1)
    return lists


def plan_algorithm1(network: SensorNetwork, energy: EnergyModel,
                    radio: RadioModel, delta: float, *,
                    overlap: str = "conflict",
                    solver: str = "grasp",
                    n_restarts: int = 8,
                    seed: SeedLike = None,
                    engine: str = "scalar",
                    sites: Optional[HoveringSites] = None,
                    site_reduction=None,
                    graph: Optional[AuxiliaryGraph] = None,
                    conflict_neighbors: Optional[List[np.ndarray]] = None,
                    warm_nodes=None
                    ) -> CollectionTour:
    """Plan a full-collection tour via the orienteering reduction.

    Parameters
    ----------
    network, energy, radio:
        Problem inputs (see the respective substrate modules).
    delta:
        Grid square edge length (metres); the paper requires
        ``delta <= R0`` here so every sensor is coverable from some centre.
    overlap:
        ``"conflict"`` or ``"ignore"`` — see the module docstring.
    solver:
        Orienteering backend (``"auto"``/``"exact"``/``"grasp"``/``"greedy"``).
    n_restarts, seed:
        GRASP parameters.
    engine:
        ``"scalar"`` (default) or ``"fast"`` — the stacked GRASP engine
        (:mod:`repro.orienteering.fast`), which also skips the O(n²)
        instance re-validation (the inputs are this module's own
        builders' outputs).  Both engines return bitwise-identical
        tours; the choice is surfaced under ``meta["perf"]["engine"]``.
    sites, graph, conflict_neighbors:
        Pre-built reduction inputs (else built from the problem inputs).
        Sweep campaigns memoize these per (instance, δ) via
        :class:`repro.experiments.artifacts.ArtifactCache`; a supplied
        *graph* must have been weighted with this call's energy rates
        (the capacity may differ — it only enters as the budget).
    site_reduction:
        Candidate-site reduction pre-pass (``None``/``"off"``, ``"safe"``,
        ``"aggressive"``, or a :class:`~repro.core.reduce.SiteReduction` /
        its dict form), applied before the auxiliary graph is built.
        GRASP restarts draw their RNG tape against the *original* site
        count and pick from index-sorted candidate lists, so the
        ``safe`` level (a pure renumbering of survivors) leaves every
        restart's choices — and hence the tour — invariant; only the
        ``aggressive`` stages, which change the candidate geometry
        itself, can change a solution.  When a pre-built
        *graph*/*conflict_neighbors* is supplied it must have been built
        over the same reduced sites.
    warm_nodes:
        Optional warm-start hint: candidate node indices in this call's
        (reduced) node index space — e.g. the finer grid's nearest sites
        to a coarser δ-grid's tour stops (the δ-continuation mode of
        :func:`repro.experiments.runner.run_sweep`).  A deterministic
        greedy construction restricted to these nodes
        (:func:`~repro.orienteering.grasp.warm_tour_from_nodes`) is
        polished *after* the GRASP restarts and kept only on strict
        improvement, so a non-improving warm start leaves the tour
        bitwise unchanged.

    Returns
    -------
    CollectionTour
        Energy-feasible by construction; validated in the test suite.
    """
    if overlap not in ("conflict", "ignore"):
        raise InvalidParameterError(
            f"overlap must be 'conflict' or 'ignore', got {overlap!r}")
    engine = check_engine(engine)
    r0 = radio.coverage_radius
    if delta > r0:
        raise InvalidParameterError(
            f"Algorithm 1 requires delta <= R0 ({r0:.1f} m), got {delta}")
    if graph is not None:
        if (graph.energy.hover_power != energy.hover_power
                or graph.energy.travel_cost_per_meter
                != energy.travel_cost_per_meter):
            raise InvalidParameterError(
                "pre-built graph was weighted with different energy rates")
        if sites is not None and graph.sites is not sites:
            raise InvalidParameterError(
                "pre-built graph does not match the supplied sites")

    reduction = resolve_reduction(site_reduction)
    with span("alg1.reduction"):
        if graph is not None and sites is None:
            sites = graph.sites
        if sites is None:
            sites = build_hovering_sites(network, radio, delta)
        if reduction.enabled and not isinstance(sites, ReducedSites):
            if graph is not None or conflict_neighbors is not None:
                raise InvalidParameterError(
                    "site_reduction with pre-built graph/conflict lists: "
                    "build them over the reduced sites (the ArtifactCache "
                    "does this) or drop the prebuilt artifacts")
            sites = reduce_sites(sites, reduction, energy=energy)
        if graph is None:
            graph = build_auxiliary_graph(sites, energy)

        neighbors = None
        if overlap == "conflict" and sites.n_sites > 0:
            neighbors = (conflict_neighbors if conflict_neighbors is not None
                         else _conflict_neighbors_from_overlap(
                             sites.overlap_matrix()))

    if engine == "fast":
        # The graph/conflict artifacts come from this module's own
        # builders (or the artifact cache replaying them), so the O(n²)
        # re-validation of OrienteeringInstance.__post_init__ is skipped.
        instance = trusted_instance(graph.costs, graph.awards,
                                    energy.capacity, depot=0,
                                    conflict_neighbor_lists=neighbors)
    else:
        instance = OrienteeringInstance(costs=graph.costs,
                                        awards=graph.awards,
                                        budget=energy.capacity, depot=0,
                                        conflict_neighbor_lists=neighbors)
    # The graph (cached across a sweep's cells) owns the transposed cost
    # matrix; attach it so per-cell instances never re-transpose.
    instance.attach_costs_t(graph.costs_t)
    # Reduction-aware seeding: size the GRASP RNG tape by the *original*
    # site count so restarts replay identically on reduced instances.
    tape_nodes = (sites.n_original + 1 if isinstance(sites, ReducedSites)
                  else None)
    warm_tour = (warm_tour_from_nodes(instance, warm_nodes)
                 if warm_nodes is not None else None)
    solution = solve_orienteering(instance, method=solver,
                                  n_restarts=n_restarts, seed=seed,
                                  engine=engine, tape_nodes=tape_nodes,
                                  warm_tour=warm_tour)

    visited_sites = solution.tour[solution.tour > 0] - 1  # back to site ids
    points = graph.points[solution.tour]
    sojourns = graph.hover_times[solution.tour]

    collected = np.zeros(network.n_nodes)
    if len(visited_sites):
        union = sites.cov_matrix[visited_sites].any(axis=0)
        collected[union] = network.volumes[union]

    meta = {
        "n_candidates": sites.n_sites,
        "n_visited": int(len(visited_sites)),
        "orienteering_method": solution.method,
        "orienteering_award": solution.award,
        "orienteering_cost": solution.cost,
        "overlap_mode": overlap,
        "delta": float(delta),
        "perf": {"engine": engine,
                 **({"grasp": solution.stats} if solution.stats else {})},
    }
    attach_reduction_meta(meta, sites)
    return CollectionTour(
        points=points, sojourns=sojourns, collected=collected,
        network=network, energy=energy, method="algorithm1",
        meta=meta)


__all__ = ["plan_algorithm1", "ENGINES", "check_engine"]
