"""Exact solver for the (full) data collection maximisation problem.

The paper proves DCM NP-hard and offers no optimal baseline, so the
heuristics' absolute quality is never measured.  This module closes that
gap on small instances with a Held–Karp-style dynamic program over
(visited-site set, last site).

The subtlety the DP must capture: with coverage overlap, the hover time a
site needs is **order-dependent** — a sensor uploads fully at the *first*
visited site covering it (its upload time is bounded by that site's
sojourn, Eq. 12), so a later overlapping site only waits for its *newly*
covered sensors.  The DP transition therefore charges site ``k`` the
hover time of the sensors in ``C(k)`` not covered by any earlier site:

    dp[mask | {k}, k] = min over j in mask of
        dp[mask, j] + travel(j, k) + eta_h * t_add(k, mask)

where ``t_add(k, mask) = max D_v / B over v in C(k) \\ C(mask)``.  The
optimum is the maximum union award over all masks whose cheapest closed
tour fits the budget.

Complexity O(2^m * m * (m + n)) — practical to ``m`` ≈ 14 candidate
sites.  The test suite uses it to pin Algorithms 1–2 within a measured
factor of optimal (Algorithm 3's *partial* collection may legitimately
exceed the full-collection optimum), and
``benchmarks/bench_optimality_gap.py`` reports the gaps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.hovering import HoveringSites, build_hovering_sites
from repro.core.tour import CollectionTour
from repro.energy.model import EnergyModel
from repro.geometry.distance import pairwise_distances
from repro.network.sensor_network import SensorNetwork
from repro.radio.link import RadioModel
from repro.utils.errors import InvalidParameterError

#: Hard cap on candidate sites for the exhaustive solver.
MAX_EXACT_SITES = 14


@dataclass(frozen=True)
class ExactDCMResult:
    """The optimal full-collection plan for a small instance.

    Attributes
    ----------
    tour:
        The optimal :class:`CollectionTour` (order-aware sojourns).
    optimal_volume:
        Its collected volume (MB) — the certified optimum for the
        discretised instance (hovering restricted to the δ-grid,
        full-collection semantics).
    states_evaluated:
        Number of DP states expanded (diagnostics).
    """

    tour: CollectionTour
    optimal_volume: float
    states_evaluated: int


def solve_dcm_exact(network: SensorNetwork, energy: EnergyModel,
                    radio: RadioModel, delta: float, *,
                    sites: Optional[HoveringSites] = None,
                    max_sites: int = MAX_EXACT_SITES) -> ExactDCMResult:
    """Certified-optimal DCM (with overlap) over the δ-grid candidates.

    Parameters
    ----------
    network, energy, radio, delta:
        Problem inputs, as for the heuristic planners.
    sites:
        Pre-built hovering sites (else built from the inputs).
    max_sites:
        Refuse instances with more candidate sites than this (the DP is
        exponential in the site count).

    Raises
    ------
    InvalidParameterError
        When the candidate-site count exceeds *max_sites*.
    """
    if sites is None:
        sites = build_hovering_sites(network, radio, delta)
    m = sites.n_sites
    if m > max_sites:
        raise InvalidParameterError(
            f"exact DCM limited to {max_sites} candidate sites, "
            f"instance has {m} (raise delta or shrink the network)")
    if network.n_nodes > 62:
        raise InvalidParameterError(
            "exact DCM uses int64 sensor bitmasks; limited to 62 sensors, "
            f"instance has {network.n_nodes}")

    pts_all = np.vstack([network.depot[None, :], sites.points])
    dist = pairwise_distances(pts_all)
    eta_h = energy.hover_power
    etat_m = energy.travel_cost_per_meter
    capacity = energy.capacity
    n = network.n_nodes
    volumes = network.volumes
    upload_times = volumes / radio.bandwidth

    # Sensor-coverage bitmask per site, and award per sensor-bitmask.
    site_bits = np.zeros(m, dtype=np.int64)
    for j in range(m):
        bits = 0
        for v in np.flatnonzero(sites.cov_matrix[j]):
            bits |= 1 << int(v)
        site_bits[j] = bits

    def t_add(k: int, covered_bits: int) -> float:
        """Hover time site k needs given already-covered sensors."""
        new = int(site_bits[k]) & ~covered_bits
        t = 0.0
        while new:
            low = new & -new
            v = low.bit_length() - 1
            if upload_times[v] > t:
                t = upload_times[v]
            new ^= low
        return t

    def award_of(bits: int) -> float:
        total = 0.0
        while bits:
            low = bits & -bits
            total += volumes[low.bit_length() - 1]
            bits ^= low
        return total

    full = 1 << m
    INF = np.inf
    dp = np.full((full, m), INF)
    parent = np.full((full, m), -1, dtype=int)
    # covered_bits[mask] = union of sensor bits of the sites in mask.
    covered_bits = np.zeros(full, dtype=np.int64)
    for mask in range(1, full):
        low = mask & -mask
        covered_bits[mask] = covered_bits[mask ^ low] \
            | site_bits[low.bit_length() - 1]

    travel0 = dist[0, 1:] * etat_m           # depot -> site
    travel = dist[1:, 1:] * etat_m           # site -> site

    for j in range(m):
        dp[1 << j, j] = travel0[j] + eta_h * t_add(j, 0)

    states = 0
    best_award, best_mask, best_last = 0.0, 0, -1
    for mask in range(1, full):
        row = dp[mask]
        live = np.flatnonzero(np.isfinite(row))
        if len(live) == 0:
            continue
        cb = int(covered_bits[mask])
        # Feasibility of closing the tour from any endpoint.
        closes = row[live] + travel0[live]
        feasible = closes <= capacity + 1e-9
        if feasible.any():
            award = award_of(cb)
            if award > best_award + 1e-12:
                best_award = award
                best_mask = mask
                best_last = int(live[feasible][int(np.argmin(closes[feasible]))])
        rest = ~mask & (full - 1)
        for j in live:
            states += 1
            base = row[j]
            if base > capacity + 1e-9:
                continue  # already over budget; extensions only add cost
            kk = rest
            while kk:
                low = kk & -kk
                k = low.bit_length() - 1
                cand = base + travel[j, k] + eta_h * t_add(k, cb)
                nm = mask | low
                if cand < dp[nm, k]:
                    dp[nm, k] = cand
                    parent[nm, k] = j
                kk ^= low

    # Reconstruct the optimal order.
    if best_last < 0:
        order = np.array([0])
    else:
        sites_order = []
        mask, j = best_mask, best_last
        while j != -1:
            sites_order.append(j)
            pj = parent[mask, j]
            mask ^= 1 << j
            j = pj
        sites_order.reverse()
        order = np.array([0, *[s + 1 for s in sites_order]])

    # Order-aware sojourns and per-sensor collection.
    sojourns = np.zeros(len(order))
    collected = np.zeros(n)
    cb = 0
    for pos, node in enumerate(order):
        if node == 0:
            continue
        k = node - 1
        sojourns[pos] = t_add(k, cb)
        new = int(site_bits[k]) & ~cb
        while new:
            low = new & -new
            v = low.bit_length() - 1
            collected[v] = volumes[v]
            new ^= low
        cb |= int(site_bits[k])

    tour = CollectionTour(points=pts_all[order], sojourns=sojourns,
                          collected=collected, network=network,
                          energy=energy, method="exact-dcm",
                          meta={"states_evaluated": states,
                                "n_candidates": m,
                                "delta": float(sites.delta)})
    return ExactDCMResult(tour=tour, optimal_volume=best_award,
                          states_evaluated=states)


def optimality_gap(heuristic_volume: float, optimal_volume: float) -> float:
    """Fraction of the optimum the heuristic achieved (1.0 = optimal).

    A zero optimum (nothing collectible) counts as gap 1.0 for any
    heuristic that also collects nothing.
    """
    if optimal_volume <= 1e-12:
        return 1.0 if heuristic_volume <= 1e-12 else float("inf")
    return heuristic_volume / optimal_volume


__all__ = ["ExactDCMResult", "solve_dcm_exact", "optimality_gap",
           "MAX_EXACT_SITES"]
