"""Incremental planner state engine shared by Algorithms 2/3 and the baseline.

The paper's greedy loops (Algorithms 2 and 3) repeatedly need three
quantities for *every* candidate hovering location:

* the residual award ``P'(s_j)`` (Eq. 11),
* the residual hover time ``t'(s_j)`` (Eq. 12),
* the cheapest-insertion tour delta ``dTSP(s_j)``.

The textbook formulation recomputes all three from scratch on every
iteration — ``cov @ rem`` plus an ``(m, n)`` masked row-max plus an
``(m, |tour|)`` insertion scan — which is O(m·n + m·|tour|) *per selection*
and O(m²·n·K) over a run.  At paper scale (|V| = 500, δ = 5 ⇒ m ≈ 40 000
candidates, DESIGN.md §S3) that is hours per run.

:class:`PlannerKernel` makes each selection O(overlap) instead:

* **Sparse coverage index** — a CSR site→sensor index and its sensor→site
  transpose (:class:`repro.geometry.coverage.SparseCoverage`), built once
  from ``HoveringSites.cov_matrix``.
* **Dirty-set residual invalidation** — when a selection drains sensors,
  only the sites covering those sensors (found through the transpose) are
  rescored, via segment ``reduceat`` reductions over the CSR rows; no
  ``(m, n)`` temporary is ever materialised.  Per-site ``t'`` maxima are
  maintained the same way.
* **Cached cheapest-insertion deltas** — each candidate remembers its best
  tour edge.  An insertion destroys exactly one edge and creates two, so
  only candidates whose recorded best edge was destroyed are rescanned
  (O(|tour|) each); everyone else is updated against the two new edges in
  O(1).  A 2-opt polish reorders the tour wholesale and triggers a full
  flush.

Every result is **bitwise-identical** to the dense formulation's on the
planners' seeded test instances (tie-breaking order preserved: full
rescans use the same first-minimum ``argmin`` semantics, and the O(1)
update breaks exact ties toward the lower edge index exactly like a fresh
``argmin`` would).  ``engine="dense"`` keeps the legacy full-recompute
path available behind the same interface for equivalence tests and the
``benchmarks/bench_kernel.py`` comparison.

The kernel also keeps lightweight perf counters (selections, sites
rescored, deltas recomputed, wall-clock per phase) in a
:class:`repro.obs.metrics.MetricsRegistry`; planners surface the snapshot
as ``CollectionTour.meta["perf"]`` so figure runners and benches report
the work actually done.  The rescore/partial/insertion phases also emit
``kernel.*`` spans on the active :mod:`repro.obs` tracer — free when
tracing is disabled, a flame chart when it is not.
"""

from __future__ import annotations

# repro: hot-path
# (The whole module is checked by the hot-path-purity rule: no dense
# (m, n) temporaries may be allocated here.  The legacy dense-engine
# methods opt out individually with '# repro: cold-path'.)

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.hovering import HoveringSites
from repro.geometry.coverage import SparseCoverage
from repro.geometry.distance import cross_distances
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import span
from repro.utils.errors import InvalidParameterError

#: Engines accepted by the planners' ``engine=`` parameter.
#: ``"kernel"`` — sparse incremental state (default); ``"dense"`` — legacy
#: full-recompute baseline; ``"batch"`` — the column-stacked engine of
#: :mod:`repro.core.batch` (Algorithms 2-3; elsewhere it behaves like
#: ``"kernel"``).  All three produce bitwise-identical tours.
ENGINES = ("kernel", "dense", "batch")


def check_engine(engine: str) -> str:
    """Validate an ``engine=`` argument."""
    if engine not in ENGINES:
        raise InvalidParameterError(
            f"engine must be one of {ENGINES}, got {engine!r}")
    return engine


def _segment_reduce(vals: np.ndarray, starts: np.ndarray,
                    lengths: np.ndarray, ufunc) -> np.ndarray:
    """Per-segment ``ufunc`` reduction with empty segments mapped to 0.0."""
    out = np.zeros(len(lengths))
    if len(vals) == 0 or len(lengths) == 0:
        return out
    safe = np.minimum(starts, len(vals) - 1)
    out[:] = ufunc.reduceat(vals, safe)
    out[lengths == 0] = 0.0
    return out


class PlannerKernel:
    """Shared incremental state for the greedy construction loops.

    Parameters
    ----------
    sites:
        The candidate hovering locations (coverage matrix, points, network).
    energy, radio:
        Problem models; the kernel only needs ``radio.bandwidth`` but keeps
        both for provenance.
    engine:
        ``"kernel"`` (sparse incremental, default) or ``"dense"`` (legacy
        full-recompute — same results, used as the equivalence baseline).
    volume_tol:
        Residual volumes below this many MB are snapped to zero after a
        partial drain (Algorithm 3's dust threshold; 0 disables).

    Notes
    -----
    The kernel owns the working tour (``tour`` — node ids into
    ``points_all``, depot = 0) and the residual volumes (``rem``); planners
    stay thin policy layers deciding *which* candidate to take, while all
    state bookkeeping funnels through :meth:`insert`, :meth:`set_tour`,
    :meth:`drain_full`, and :meth:`drain_partial`.
    """

    def __init__(self, sites: HoveringSites, energy, radio, *,
                 engine: str = "kernel", volume_tol: float = 0.0) -> None:
        self.engine = check_engine(engine)
        self.sites = sites
        self.energy = energy
        self.radio = radio
        self.volume_tol = float(volume_tol)
        self.m = sites.n_sites
        self.n = sites.network.n_nodes
        self.bandwidth = radio.bandwidth
        self.points_all = np.vstack([sites.network.depot[None, :],
                                     sites.points])
        # "batch" reaching a scalar PlannerKernel (e.g. through planners
        # that have no stacked formulation) behaves exactly like "kernel".
        self._sparse = self.engine in ("kernel", "batch")
        self.csr: Optional[SparseCoverage] = (
            SparseCoverage.from_matrix(sites.cov_matrix)
            if self._sparse else None)

        # --- residual state -------------------------------------------- #
        self.rem = sites.network.volumes.astype(float).copy()
        self.covered = np.zeros(self.n, dtype=bool)
        self._p_res = np.zeros(self.m)
        self._t_res = np.zeros(self.m)
        self._dirty_sensors = np.ones(self.n, dtype=bool)

        # --- partial-award table (Algorithm 3) ------------------------- #
        self._fractions: Optional[np.ndarray] = None
        self._tau: Optional[np.ndarray] = None
        self._p_partial: Optional[np.ndarray] = None
        self._partial_dirty = np.ones(self.m, dtype=bool)

        # --- tour + cheapest-insertion cache --------------------------- #
        self.tour: List[int] = [0]
        self.in_tour = np.zeros(self.m + 1, dtype=bool)
        self.in_tour[0] = True
        self._ins_deltas = np.zeros(self.m)
        self._ins_edges = np.zeros(self.m, dtype=np.int64)
        self._ins_stale = True

        # Work counters + per-phase timers, pre-registered so the
        # ``meta["perf"]`` snapshot always carries the full key set.
        self.metrics = MetricsRegistry()
        for name in ("insertions", "drains", "tour_flushes",
                     "sites_rescored", "deltas_recomputed"):
            self.metrics.counter(name)
        for name in ("rescore", "insertion", "partial"):
            self.metrics.timer(name)

    # ------------------------------------------------------------------ #
    # Residual awards P' and hover times t'  (Eqs. 11-12)
    # ------------------------------------------------------------------ #
    def residual_scores(self) -> Tuple[np.ndarray, np.ndarray]:
        """Current ``(P', t')`` for every candidate (cached; do not mutate).

        Dense engine: one ``cov @ rem`` matmul plus a masked row-max per
        call (the legacy per-iteration cost).  Kernel engine: cached arrays
        refreshed only for candidates overlapping sensors drained since the
        last call.
        """
        with self.metrics.time("rescore"), span("kernel.rescore"):
            if self._sparse:
                self._flush_residuals()
            else:
                self._p_res = self.sites.residual_awards(self.rem)
                self._t_res = self.sites.residual_hover_times(self.rem)
                self.metrics.counter("sites_rescored").inc(self.m)
        return self._p_res, self._t_res

    def _flush_residuals(self) -> None:
        """Rescore exactly the sites overlapping drained sensors."""
        if not self._dirty_sensors.any():
            return
        assert self.csr is not None
        dirty = self.csr.sites_covering(np.flatnonzero(self._dirty_sensors))
        self._dirty_sensors[:] = False
        if len(dirty) == 0:
            return
        idxs, starts, lengths = self.csr.gather(dirty)
        vals = self.rem[idxs]
        self._p_res[dirty] = _segment_reduce(vals, starts, lengths, np.add)
        self._t_res[dirty] = _segment_reduce(vals, starts, lengths,
                                             np.maximum) / self.bandwidth
        self._partial_dirty[dirty] = True
        self.metrics.counter("sites_rescored").inc(len(dirty))

    def partial_scores(self, fractions: np.ndarray
                       ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Algorithm 3's ``(t', tau, partial awards)`` over K partitions.

        ``tau[j, k] = t'(s_j) * fractions[k]`` and ``p_partial[j, k]`` is
        Eq. 4 evaluated on residual volumes.  Kernel engine: rows are
        recomputed only for candidates whose residuals changed.
        """
        fractions = np.asarray(fractions, dtype=float)
        if self._fractions is None or not np.array_equal(self._fractions,
                                                         fractions):
            self._fractions = fractions.copy()
            self._partial_dirty[:] = True
            # (m, K) caches, K small and allocated once per fractions change.
            # repro: allow[hot-path-purity] -- (m, K) cache, not (m, n)
            self._tau = np.zeros((self.m, len(fractions)))
            # repro: allow[hot-path-purity] -- (m, K) cache, not (m, n)
            self._p_partial = np.zeros((self.m, len(fractions)))
        if self._sparse:
            with self.metrics.time("rescore"), span("kernel.rescore"):
                self._flush_residuals()
            with self.metrics.time("partial"), span("kernel.partial"):
                self._flush_partial()
        else:
            with self.metrics.time("partial"), span("kernel.partial"):
                self._dense_partial()
        assert self._tau is not None and self._p_partial is not None
        return self._t_res, self._tau, self._p_partial

    def _dense_partial(self) -> None:
        """Legacy formulation: full ``(m, n)`` residual matrix per call."""
        # repro: cold-path  (the dense engine is the equivalence baseline)
        cov = self.sites.cov_matrix
        fractions = self._fractions
        assert fractions is not None
        R = np.where(cov, self.rem[None, :], 0.0)
        t_max = (R.max(axis=1) if self.n else np.zeros(self.m)) \
            / self.bandwidth
        self._t_res = t_max
        tau = t_max[:, None] * fractions[None, :]
        p_partial = np.empty((self.m, len(fractions)))
        for k in range(len(fractions)):
            p_partial[:, k] = np.minimum(
                R, (self.bandwidth * tau[:, k])[:, None]).sum(axis=1)
        self._tau = tau
        self._p_partial = p_partial
        self.metrics.counter("sites_rescored").inc(self.m)

    def _flush_partial(self) -> None:
        """Recompute the partial-award rows of dirty sites only."""
        if not self._partial_dirty.any():
            return
        assert (self.csr is not None and self._fractions is not None
                and self._tau is not None and self._p_partial is not None)
        dirty = np.flatnonzero(self._partial_dirty)
        self._partial_dirty[:] = False
        # repro: allow[hot-path-purity] -- (|dirty|, K) rows, not (m, n)
        tau_d = self._t_res[dirty][:, None] * self._fractions[None, :]
        self._tau[dirty] = tau_d
        idxs, starts, lengths = self.csr.gather(dirty)
        vals = self.rem[idxs]
        for k in range(len(self._fractions)):
            caps = np.repeat(self.bandwidth * tau_d[:, k], lengths)
            self._p_partial[dirty, k] = _segment_reduce(
                np.minimum(vals, caps), starts, lengths, np.add)

    # ------------------------------------------------------------------ #
    # Drains (selection side effects on residual volumes)
    # ------------------------------------------------------------------ #
    def drain_full(self, site: int) -> None:
        """Full collection at *site*: covered sensors drop to zero (DCM)."""
        idx = self._sensors_of(site)
        changed = idx[self.rem[idx] > 0.0]
        self.rem[idx] = 0.0
        self.covered[idx] = True
        self._dirty_sensors[changed] = True
        self.metrics.counter("drains").inc()

    def drain_partial(self, site: int, duration: float) -> None:
        """OFDMA drain at *site* for *duration* seconds (PDCM).

        Each covered sensor uploads ``min(rem, B * duration)`` on its own
        channel; residuals below ``volume_tol`` are snapped to zero
        everywhere, mirroring the legacy loop's dust cleanup.
        """
        idx = self._sensors_of(site)
        vals = self.rem[idx]
        uploaded = np.minimum(vals, self.bandwidth * duration)
        self.rem[idx] = vals - uploaded
        changed = np.zeros(self.n, dtype=bool)
        changed[idx[uploaded > 0.0]] = True
        if self.volume_tol > 0.0:
            tiny = (self.rem > 0.0) & (self.rem < self.volume_tol)
            self.rem[tiny] = 0.0
            changed |= tiny
        self.covered[idx] = True
        self._dirty_sensors |= changed
        self.metrics.counter("drains").inc()

    def _sensors_of(self, site: int) -> np.ndarray:
        if self.csr is not None:
            return self.csr.sensors_of(site)
        return np.flatnonzero(self.sites.cov_matrix[site])

    # ------------------------------------------------------------------ #
    # Cheapest-insertion delta cache
    # ------------------------------------------------------------------ #
    def insertion_state(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(deltas, positions)`` of every candidate vs the current tour.

        ``positions[j]`` is the tour index *before which* site ``j`` would
        be inserted.  Returns copies — safe for policy layers to clamp or
        mask.  Dense engine recomputes the full scan per call; kernel
        engine serves the incrementally-maintained cache.
        """
        with self.metrics.time("insertion"), span("kernel.insertion"):
            if self._ins_stale or not self._sparse:
                self._flush_insertion()
        return self._ins_deltas.copy(), (self._ins_edges + 1).astype(int)

    def _flush_insertion(self) -> None:
        """Full cheapest-insertion scan (legacy `_insertion_deltas`)."""
        pts = self.sites.points
        tour_pts = self.points_all[self.tour]
        k = len(self.tour)
        if k == 1:
            self._ins_deltas = 2.0 * cross_distances(pts, tour_pts)[:, 0]
            self._ins_edges = np.zeros(self.m, dtype=np.int64)
        else:
            d_site_tour = cross_distances(pts, tour_pts)
            nxt = np.roll(np.arange(k), -1)
            edge_len = np.linalg.norm(tour_pts[nxt] - tour_pts, axis=1)
            cand = d_site_tour + d_site_tour[:, nxt] - edge_len[None, :]
            best = np.argmin(cand, axis=1)
            self._ins_deltas = cand[np.arange(self.m), best]
            self._ins_edges = best.astype(np.int64)
        self._ins_stale = False
        self.metrics.counter("deltas_recomputed").inc(self.m)

    def insert(self, site: int) -> int:
        """Insert candidate *site* at its cached best position.

        Updates the tour and — on the kernel engine — repairs the delta
        cache in place: every candidate is checked against the two edges
        the insertion created (O(1), exact-tie broken toward the lower
        edge index like a fresh ``argmin``), and only candidates whose
        recorded best edge was destroyed are fully rescanned.

        Returns the insertion position (for the caller's bookkeeping).
        """
        if self._ins_stale:
            self._flush_insertion()
        node = site + 1
        k_old = len(self.tour)
        e = int(self._ins_edges[site])
        pos = e + 1
        self.metrics.counter("insertions").inc()
        if k_old == 1:
            self.tour.insert(1, node)
            self.in_tour[node] = True
            self._ins_stale = True
            return 1
        a = self.tour[e]
        b = self.tour[(e + 1) % k_old]
        self.tour.insert(pos, node)
        self.in_tour[node] = True
        if not self._sparse:
            self._ins_stale = True
            return pos

        with self.metrics.time("insertion"), span("kernel.insertion"):
            deltas, edges = self._ins_deltas, self._ins_edges
            dead = edges == e
            edges[edges > e] += 1
            # O(1) per candidate: compare against the two edges just created.
            pa, pn, pb = (self.points_all[a], self.points_all[node],
                          self.points_all[b])
            d3 = cross_distances(self.sites.points, np.array([pa, pn, pb]))
            lens = np.linalg.norm(np.array([pn - pa, pb - pn]), axis=1)
            for new_edge, cand in ((e, d3[:, 0] + d3[:, 1] - lens[0]),
                                   (e + 1, d3[:, 1] + d3[:, 2] - lens[1])):
                better = (cand < deltas) | ((cand == deltas)
                                            & (new_edge < edges))
                deltas[better] = cand[better]
                edges[better] = new_edge
            # Full rescan only where the recorded best edge was destroyed.
            dead_idx = np.flatnonzero(dead)
            if len(dead_idx):
                tour_pts = self.points_all[self.tour]
                k = len(self.tour)
                d_site_tour = cross_distances(self.sites.points[dead_idx],
                                              tour_pts)
                nxt = np.roll(np.arange(k), -1)
                edge_len = np.linalg.norm(tour_pts[nxt] - tour_pts, axis=1)
                cand = d_site_tour + d_site_tour[:, nxt] - edge_len[None, :]
                best = np.argmin(cand, axis=1)
                deltas[dead_idx] = cand[np.arange(len(dead_idx)), best]
                edges[dead_idx] = best
                self.metrics.counter("deltas_recomputed").inc(len(dead_idx))
        return pos

    def set_tour(self, order) -> None:
        """Replace the tour wholesale (e.g. after a 2-opt polish).

        Flushes the insertion cache — a reorder invalidates every cached
        best edge at once, which is why the polish pass is the one place
        the kernel pays a full O(m·|tour|) rescan.
        """
        self.tour = [int(v) for v in order]
        if 0 not in self.tour:
            raise InvalidParameterError("tour must contain the depot (0)")
        self.in_tour[:] = False
        self.in_tour[np.array(self.tour, dtype=int)] = True
        self._ins_stale = True
        self.metrics.counter("tour_flushes").inc()

    # ------------------------------------------------------------------ #
    # Diagnostics
    # ------------------------------------------------------------------ #
    @property
    def counters(self) -> Dict[str, int]:
        """Integer work-counter snapshot (compat view of :attr:`metrics`)."""
        return {k: int(v) for k, v in self.metrics.counter_values().items()}

    @property
    def timers(self) -> Dict[str, float]:
        """Per-phase wall-clock snapshot (compat view of :attr:`metrics`)."""
        return self.metrics.timer_seconds()

    def perf(self) -> Dict[str, object]:
        """Perf-counter snapshot for ``CollectionTour.meta["perf"]``."""
        snap: Dict[str, object] = {"engine": self.engine}
        snap.update(self.counters)
        snap["seconds"] = {k: round(v, 6) for k, v in self.timers.items()}
        return snap


class PruneCache:
    """Incremental removal-ratio state for the Christofides-prune baseline.

    The baseline repeatedly removes the tour node losing the least data
    per joule saved.  The legacy loop recomputed every node's splice
    saving with a Python-level pass per removal — O(k²) scalar work.  A
    removal only changes the splice savings of the removed node's two
    neighbours, so this cache recomputes exactly those and answers the
    next argmin over a flat array.

    Tie-breaking matches the legacy scan: first index attaining the
    minimum finite ratio; nodes with no real saving (``saved <= 1e-12``)
    are never selected.
    """

    def __init__(self, dist: np.ndarray, volumes: np.ndarray,
                 hover_times: np.ndarray, eta_h: float,
                 etat_m: float) -> None:
        self.dist = dist
        self.volumes = volumes
        self.hover_times = hover_times
        self.eta_h = eta_h
        self.etat_m = etat_m
        self.tour: List[int] = []
        self._ratios = np.empty(0)
        self.rescored = 0

    def set_tour(self, tour) -> None:
        """Initialise ratios for every position of *tour*."""
        self.tour = [int(v) for v in tour]
        k = len(self.tour)
        self._ratios = np.array([self._ratio_at(i) for i in range(k)]) \
            if k else np.empty(0)
        self.rescored += k

    def _ratio_at(self, i: int) -> float:
        """Data lost per joule saved by splicing out position *i*."""
        tour = self.tour
        v = tour[i]
        if v == 0:                       # the depot is never removable
            return np.inf
        prev_node = tour[i - 1]
        next_node = tour[(i + 1) % len(tour)]
        saved_travel = (self.dist[prev_node, v] + self.dist[v, next_node]
                        - self.dist[prev_node, next_node])
        saved = (self.hover_times[v - 1] * self.eta_h
                 + saved_travel * self.etat_m)
        return self.volumes[v - 1] / saved if saved > 1e-12 else np.inf

    def best(self) -> int:
        """Position of the cheapest removal, or -1 if none has real saving."""
        if len(self._ratios) == 0:
            return -1
        i = int(np.argmin(self._ratios))
        return i if np.isfinite(self._ratios[i]) else -1

    def remove(self, i: int) -> int:
        """Remove position *i*; rescore only its two splice neighbours."""
        node = self.tour.pop(i)
        self._ratios = np.delete(self._ratios, i)
        k = len(self.tour)
        if k > 1:
            for j in {(i - 1) % k, i % k}:
                self._ratios[j] = self._ratio_at(j)
                self.rescored += 1
        return node


__all__ = ["PlannerKernel", "PruneCache", "ENGINES", "check_engine"]
