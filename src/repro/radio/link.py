"""Uplink model between ground sensors and the hovering UAV.

:class:`RadioModel` captures the paper's assumptions: per-device constant
bandwidth ``B`` within range, hard coverage cutoff at ground radius
``R0 = sqrt(R**2 - H**2)``.  :class:`DistanceRateModel` is the optional
extension the paper mentions and dismisses (rate varying with slant
distance); it exists for sensitivity studies and defaults to reproducing
the constant model when its exponent is zero.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.geometry.coverage import projected_radius
from repro.utils.errors import InvalidParameterError
from repro.utils.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class RadioModel:
    """Constant-rate uplink model (paper default).

    Attributes
    ----------
    bandwidth:
        Per-device upload rate ``B`` in MB/s.
    transmission_range:
        Sensor transmission range ``R`` in metres.
    altitude:
        UAV hovering altitude ``H`` in metres (``0 <= H <= R``).
    """

    bandwidth: float
    transmission_range: float
    altitude: float

    def __post_init__(self) -> None:
        check_positive(self.bandwidth, "bandwidth")
        check_positive(self.transmission_range, "transmission_range")
        check_non_negative(self.altitude, "altitude")
        # Raises when H > R:
        projected_radius(self.transmission_range, self.altitude)

    @property
    def coverage_radius(self) -> float:
        """Ground-projected coverage radius ``R0``."""
        return projected_radius(self.transmission_range, self.altitude)

    def upload_time(self, volume: float) -> float:
        """Seconds for one device to upload *volume* MB at rate ``B``."""
        return check_non_negative(volume, "volume") / self.bandwidth

    def upload_times(self, volumes) -> np.ndarray:
        """Vectorised :meth:`upload_time` over an array of volumes."""
        v = np.asarray(volumes, dtype=float)
        if (v < 0).any() or not np.isfinite(v).all():
            raise InvalidParameterError("volumes must be finite and >= 0")
        return v / self.bandwidth

    def uploadable_volume(self, duration: float) -> float:
        """MB one device can upload in *duration* seconds."""
        return check_non_negative(duration, "duration") * self.bandwidth


@dataclass(frozen=True)
class DistanceRateModel:
    """Distance-dependent uplink rate (sensitivity-study extension).

    The paper assumes every in-range sensor uploads at the hardware
    bandwidth cap ``B`` and argues the distance-induced differences are
    negligible at low altitude.  The physics behind that claim is **cap
    saturation**: close links have SNR to spare, so the modem pegs at
    ``B``; only links beyond a *saturation distance* degrade.  This model
    makes the claim testable:

    ``rate(g) = B * min(1, (d_sat / slant) ** exponent)``

    with ``slant = sqrt(g**2 + H**2)`` the 3-D link distance and ``d_sat``
    the saturation distance (default: the transmission range ``R``, which
    reproduces the paper's constant-rate model exactly — every in-coverage
    slant is <= R).  Setting ``d_sat < R`` opens a degraded outer ring;
    raising the altitude pushes *every* slant up (``slant >= H``), which
    is why the assumption holds at low H and erodes as the UAV climbs —
    quantified in ``benchmarks/bench_rate_sensitivity.py``.

    Attributes
    ----------
    base:
        The underlying constant :class:`RadioModel`.
    exponent:
        Path-loss-style decay exponent (>= 0); 0 disables degradation.
    saturation_distance:
        Slant distance up to which the cap ``B`` is sustained (metres);
        ``None`` means the full transmission range.
    """

    base: RadioModel
    exponent: float = 0.0
    saturation_distance: Optional[float] = None

    def __post_init__(self) -> None:
        check_non_negative(self.exponent, "exponent")
        if self.saturation_distance is not None:
            check_positive(self.saturation_distance, "saturation_distance")
            if self.saturation_distance > self.base.transmission_range + 1e-9:
                raise InvalidParameterError(
                    "saturation_distance cannot exceed the transmission "
                    f"range ({self.base.transmission_range} m)")

    @property
    def coverage_radius(self) -> float:
        """Same hard cutoff radius as the base model."""
        return self.base.coverage_radius

    @property
    def effective_saturation(self) -> float:
        """The saturation distance in force (defaults to ``R``)."""
        if self.saturation_distance is None:
            return self.base.transmission_range
        return self.saturation_distance

    def rate_at(self, ground_distance) -> np.ndarray:
        """Effective rate (MB/s) at the given ground distance(s)."""
        g = np.asarray(ground_distance, dtype=float)
        if (g < 0).any():
            raise InvalidParameterError("ground_distance must be >= 0")
        slant = np.sqrt(g * g + self.base.altitude ** 2)
        d_sat = self.effective_saturation
        with np.errstate(divide="ignore"):
            factor = np.where(
                slant > 0,
                (d_sat / np.maximum(slant, 1e-12)) ** self.exponent,
                1.0)
        rate = self.base.bandwidth * np.minimum(factor, 1.0)
        # Out of coverage -> zero rate.
        rate = np.where(g <= self.coverage_radius + 1e-12, rate, 0.0)
        return rate

    def upload_time(self, volume: float, ground_distance: float) -> float:
        """Seconds to upload *volume* MB from *ground_distance* metres away."""
        check_non_negative(volume, "volume")
        rate = float(self.rate_at(np.asarray([ground_distance]))[0])
        if rate <= 0.0:
            return float("inf") if volume > 0 else 0.0
        return volume / rate


#: Paper §VII-A radio setting: B = 150 MB/s, R0 = 50 m. The paper specifies
#: R0 directly, so we model it as R = 50 m at altitude H = 0-equivalent
#: (the planners only ever consume ``coverage_radius``).
PAPER_RADIO_MODEL = RadioModel(bandwidth=150.0, transmission_range=50.0, altitude=0.0)

__all__ = ["RadioModel", "DistanceRateModel", "PAPER_RADIO_MODEL"]
