"""OFDMA channel book-keeping.

The paper's framework collects from all covered devices *simultaneously*
by assigning each device an orthogonal OFDMA sub-channel [Mozaffari et al.].
The planners take this for granted; the execution simulator uses
:class:`OFDMAScheduler` to make the assumption checkable — it assigns
channels at each hover and reports violations when the number of covered
devices exceeds the available channel count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.utils.errors import InvalidParameterError
from repro.utils.validation import check_integer


@dataclass(frozen=True)
class ChannelAssignment:
    """Channels assigned at one hover.

    Attributes
    ----------
    hover_index:
        Index of the hover within the mission.
    device_to_channel:
        Mapping sensor index -> channel number (0-based).
    dropped:
        Sensor indices that could not be assigned a channel (only non-empty
        when the scheduler is non-strict and capacity was exceeded).
    """

    hover_index: int
    device_to_channel: Dict[int, int]
    dropped: List[int] = field(default_factory=list)

    @property
    def n_assigned(self) -> int:
        """Number of devices that got a channel."""
        return len(self.device_to_channel)


class OFDMAScheduler:
    """Assigns orthogonal sub-channels to covered devices at each hover.

    Parameters
    ----------
    n_channels:
        Number of orthogonal sub-channels the UAV radio supports.  The
        paper effectively assumes this is unbounded; pass a finite value
        to stress the assumption.
    strict:
        When True, exceeding channel capacity raises; when False the excess
        devices are reported in :attr:`ChannelAssignment.dropped` (lowest
        sensor indices are served first, a deterministic tie-break).
    """

    def __init__(self, n_channels: int = 1024, *, strict: bool = True) -> None:
        self._n_channels = check_integer(n_channels, "n_channels", minimum=1)
        self._strict = strict
        self._assignments: List[ChannelAssignment] = []

    @property
    def n_channels(self) -> int:
        """Configured channel count."""
        return self._n_channels

    @property
    def assignments(self) -> List[ChannelAssignment]:
        """All assignments made so far (a copy)."""
        return list(self._assignments)

    @property
    def max_concurrency(self) -> int:
        """Largest number of simultaneously-served devices seen so far."""
        if not self._assignments:
            return 0
        return max(a.n_assigned for a in self._assignments)

    def assign(self, covered_devices: Sequence[int]) -> ChannelAssignment:
        """Assign channels for one hover over *covered_devices*.

        Raises
        ------
        InvalidParameterError
            In strict mode when more devices are covered than channels exist.
        """
        devices = sorted(int(d) for d in covered_devices)
        if len(set(devices)) != len(devices):
            raise InvalidParameterError("covered_devices contains duplicates")
        dropped: List[int] = []
        if len(devices) > self._n_channels:
            if self._strict:
                raise InvalidParameterError(
                    f"{len(devices)} devices covered but only "
                    f"{self._n_channels} OFDMA channels available")
            devices, dropped = devices[: self._n_channels], devices[self._n_channels:]
        assignment = ChannelAssignment(
            hover_index=len(self._assignments),
            device_to_channel={d: ch for ch, d in enumerate(devices)},
            dropped=dropped,
        )
        self._assignments.append(assignment)
        return assignment


__all__ = ["OFDMAScheduler", "ChannelAssignment"]
