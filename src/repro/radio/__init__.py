"""Radio / data-collection substrate.

Paper §III-B: every aggregate node uploads at bandwidth ``B`` (150 MB/s in
the evaluation) to the UAV, all covered nodes simultaneously on orthogonal
OFDMA channels.  The model deliberately keeps the rate distance-independent
(the paper argues the differences are negligible at low altitude), but an
optional distance-dependent extension is provided for sensitivity studies.

* :mod:`repro.radio.link` — :class:`RadioModel` (R, H, B, R0 law, upload
  times) and the distance-dependent :class:`DistanceRateModel` extension,
* :mod:`repro.radio.ofdma` — OFDMA channel book-keeping used by the
  execution simulator to check the "simultaneous collection" assumption.
"""

from repro.radio.link import RadioModel, DistanceRateModel, PAPER_RADIO_MODEL
from repro.radio.ofdma import OFDMAScheduler, ChannelAssignment

__all__ = [
    "RadioModel",
    "DistanceRateModel",
    "PAPER_RADIO_MODEL",
    "OFDMAScheduler",
    "ChannelAssignment",
]
