"""Ablation: orienteering backend inside Algorithm 1 (DESIGN.md S1/§7).

Quantifies the quality/runtime trade between the deterministic greedy
construction, GRASP at increasing restart counts, and (on a tiny slice)
the exact subset DP — the evidence behind substituting GRASP for the
Bansal et al. approximation.
"""

import pytest

from _common import FIXED_DELTA, energy_with, record_tour
from repro.core.algorithm1 import plan_algorithm1
from repro.experiments.config import reduced_settings
from repro.experiments.instances import make_instances

ABLATION_CAPACITY = 5e4
SMALL_CONFIG = reduced_settings().scaled(n_nodes=60, seed=11)


@pytest.fixture(scope="module")
def small_network():
    return make_instances(SMALL_CONFIG, n_instances=1)[0]


def test_ablation_greedy(benchmark, small_network, bench_radio):
    energy = energy_with(ABLATION_CAPACITY)
    tour = benchmark.pedantic(
        plan_algorithm1,
        args=(small_network, energy, bench_radio, FIXED_DELTA),
        kwargs={"solver": "greedy"},
        rounds=1, iterations=1)
    record_tour(benchmark, tour)


@pytest.mark.parametrize("restarts", [1, 2, 4, 8])
def test_ablation_grasp(benchmark, small_network, bench_radio, restarts):
    energy = energy_with(ABLATION_CAPACITY)
    tour = benchmark.pedantic(
        plan_algorithm1,
        args=(small_network, energy, bench_radio, FIXED_DELTA),
        kwargs={"solver": "grasp", "n_restarts": restarts, "seed": 0},
        rounds=1, iterations=1)
    record_tour(benchmark, tour)


def test_ablation_grasp_beats_greedy(small_network, bench_radio):
    """GRASP(8) must dominate raw greedy (it contains it as restart 0)."""
    energy = energy_with(ABLATION_CAPACITY)
    greedy = plan_algorithm1(small_network, energy, bench_radio, FIXED_DELTA,
                             solver="greedy")
    grasp = plan_algorithm1(small_network, energy, bench_radio, FIXED_DELTA,
                            solver="grasp", n_restarts=8, seed=0)
    assert grasp.collected_volume >= greedy.collected_volume - 1e-6
