"""Ablation: candidate-scoring policy inside Algorithm 2 (DESIGN.md §7).

The paper's Eq. 13 scores candidates by residual-data-per-marginal-joule.
This bench runs the three ablation policies against it on a shared
instance:

* ``award``       — largest residual award, cost-blind,
* ``proximity``   — cheapest insertion, award-blind,
* ``hover_ratio`` — Eq. 13 without the travel term.

The shape test asserts the paper's rule dominates (or matches) every
ablation, i.e. the energy normalisation is load-bearing.
"""

import pytest

from _common import FIXED_DELTA, energy_with, record_tour
from repro.core.algorithm2 import SCORING_POLICIES, plan_algorithm2

ABLATION_CAPACITY = 5e4


@pytest.mark.parametrize("scoring", SCORING_POLICIES)
def test_ablation_scoring(benchmark, bench_network, bench_radio, scoring):
    energy = energy_with(ABLATION_CAPACITY)
    tour = benchmark.pedantic(
        plan_algorithm2,
        args=(bench_network, energy, bench_radio, FIXED_DELTA),
        kwargs={"scoring": scoring},
        rounds=1, iterations=1)
    benchmark.extra_info["scoring"] = scoring
    record_tour(benchmark, tour)


def test_ablation_paper_rule_holds_up(bench_network, bench_radio):
    """Eq. 13 beats the award-blind policy clearly and stays within 10 %
    of the best policy at every budget.

    Measured finding (recorded in EXPERIMENTS.md): the full ratio wins at
    tight budgets; at looser budgets the cost-blind ablations occasionally
    edge it by a few percent (greedy heuristics carry no dominance
    guarantee), but it is never far behind, while ``proximity`` trails all
    award-aware policies by 25-35 %.
    """
    for capacity in (3e4, 5e4, 7e4):
        energy = energy_with(capacity)
        volumes = {}
        for scoring in SCORING_POLICIES:
            tour = plan_algorithm2(bench_network, energy, bench_radio,
                                   FIXED_DELTA, scoring=scoring)
            volumes[scoring] = tour.collected_volume
        assert volumes["ratio"] >= volumes["proximity"], volumes
        best = max(volumes.values())
        assert volumes["ratio"] >= 0.90 * best, volumes


def test_ablation_policies_all_feasible(bench_network, bench_radio):
    from repro.core.tour import validate_tour_feasibility
    energy = energy_with(ABLATION_CAPACITY)
    for scoring in SCORING_POLICIES:
        tour = plan_algorithm2(bench_network, energy, bench_radio,
                               FIXED_DELTA, scoring=scoring)
        assert validate_tour_feasibility(tour, radio=bench_radio).feasible
