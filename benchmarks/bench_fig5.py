"""Fig. 5 — DCM with overlap, battery-capacity sweep at fixed δ.

Panel (a): ``collected_gb`` extra_info per bench.
Panel (b): the bench timings.

Paper shapes this harness regenerates:

* collected volume grows with capacity for every algorithm (paper: +82 %
  for Algorithm 3, K = 4, from 3e5 J to 9e5 J — asserted as >= +40 % at
  the reduced scale);
* Algorithm 2/3 planning time grows with capacity; the benchmark's falls.
"""

import pytest

from _common import CAPACITY_SWEEP, FIXED_DELTA, K_VALUES, energy_with, record_tour
from repro.core.algorithm2 import plan_algorithm2
from repro.core.algorithm3 import plan_algorithm3
from repro.core.benchmark_alg import plan_benchmark


@pytest.mark.parametrize("capacity", CAPACITY_SWEEP)
def test_fig5_algorithm2(benchmark, bench_network, bench_radio, capacity):
    energy = energy_with(capacity)
    tour = benchmark.pedantic(
        plan_algorithm2,
        args=(bench_network, energy, bench_radio, FIXED_DELTA),
        rounds=1, iterations=1)
    record_tour(benchmark, tour)


@pytest.mark.parametrize("capacity", CAPACITY_SWEEP)
@pytest.mark.parametrize("k", K_VALUES)
def test_fig5_algorithm3(benchmark, bench_network, bench_radio, capacity, k):
    energy = energy_with(capacity)
    tour = benchmark.pedantic(
        plan_algorithm3,
        args=(bench_network, energy, bench_radio, FIXED_DELTA, k),
        rounds=1, iterations=1)
    record_tour(benchmark, tour)


@pytest.mark.parametrize("capacity", CAPACITY_SWEEP)
def test_fig5_benchmark(benchmark, bench_network, bench_radio, capacity):
    energy = energy_with(capacity)
    tour = benchmark.pedantic(
        plan_benchmark,
        args=(bench_network, energy, bench_radio),
        rounds=1, iterations=1)
    record_tour(benchmark, tour)


def test_fig5_shape_volume_grows_with_capacity(bench_network, bench_radio):
    """Monotone growth; paper reports +82 % over the 3x sweep (K = 4)."""
    volumes = []
    for capacity in CAPACITY_SWEEP:
        tour = plan_algorithm3(bench_network, energy_with(capacity),
                               bench_radio, FIXED_DELTA, 4)
        volumes.append(tour.collected_volume)
    assert all(b >= a - 1e-6 for a, b in zip(volumes, volumes[1:]))
    assert volumes[-1] >= 1.4 * volumes[0]


def test_fig5_shape_benchmark_grows_too(bench_network, bench_radio):
    volumes = [plan_benchmark(bench_network, energy_with(c),
                              bench_radio).collected_volume
               for c in CAPACITY_SWEEP]
    assert all(b >= a - 1e-6 for a, b in zip(volumes, volumes[1:]))
