"""Sensitivity of planned tours to distance-dependent uplink rates.

Paper §III-B assumes every covered sensor uploads at the full bandwidth
``B`` and argues the distance-induced rate differences "are negligible if
the UAV altitude H is relatively low".  This bench makes the claim
quantitative: plans assume constant ``B``, but execution runs under a
:class:`~repro.radio.link.DistanceRateModel` at increasing altitudes and
path-loss exponents, and the shortfall (collected under realistic rates /
collected claimed) is recorded.

The shape tests assert the paper's claim where it applies — low altitude
keeps the shortfall small — and that the shortfall grows monotonically
with altitude, which is the regime where the assumption breaks.
"""

import pytest

from _common import FIXED_DELTA, energy_with
from repro.core.algorithm2 import plan_algorithm2
from repro.radio.link import DistanceRateModel, RadioModel
from repro.sim.simulator import simulate_mission

CAPACITY = 5e4
#: Transmission range R = 60 m; sweeping altitude H changes both R0 and
#: the slant-distance rate profile (slant >= H always).
ALTITUDES = (5.0, 20.0, 40.0)
EXPONENT = 2.0
#: Links saturate the bandwidth cap up to this slant distance.
SATURATION = 35.0


def radio_at(h: float) -> RadioModel:
    return RadioModel(bandwidth=150.0, transmission_range=60.0, altitude=h)


def shortfall_at(network, h: float, d_sat: float = SATURATION) -> float:
    """1 - (collected under distance rates / claimed) for altitude *h*."""
    radio = radio_at(h)
    tour = plan_algorithm2(network, energy_with(CAPACITY), radio,
                           FIXED_DELTA)
    if tour.collected_volume <= 0:
        return 0.0
    rate_model = DistanceRateModel(base=radio, exponent=EXPONENT,
                                   saturation_distance=d_sat)
    trace = simulate_mission(tour, radio, rate_model=rate_model)
    return 1.0 - trace.collected_volume / tour.collected_volume


@pytest.mark.parametrize("altitude", ALTITUDES)
def test_rate_sensitivity(benchmark, bench_network, altitude):
    radio = radio_at(altitude)
    tour = plan_algorithm2(bench_network, energy_with(CAPACITY), radio,
                           FIXED_DELTA)
    rate_model = DistanceRateModel(base=radio, exponent=EXPONENT,
                                   saturation_distance=SATURATION)
    trace = benchmark.pedantic(
        simulate_mission, args=(tour, radio),
        kwargs={"rate_model": rate_model},
        rounds=2, iterations=1)
    benchmark.extra_info["altitude_m"] = altitude
    benchmark.extra_info["claimed_gb"] = round(tour.collected_volume / 1000, 3)
    benchmark.extra_info["realistic_gb"] = round(
        trace.collected_volume / 1000, 3)
    benchmark.extra_info["shortfall"] = round(
        1.0 - trace.collected_volume / max(tour.collected_volume, 1e-9), 4)


def test_paper_claim_needs_near_full_saturation(bench_network):
    """Measured boundary of the paper's 'negligible' claim.

    The constant-rate assumption is near-exact at low altitude *when the
    link saturates the cap over most of the coverage disc* (d_sat ≈ R):
    shortfall <= 5 %.  When saturation covers only ~60 % of the range
    (d_sat = 35 m of R = 60 m), the shortfall at the same low altitude is
    already >20 % — the assumption is a property of the link budget, not
    of altitude alone.
    """
    near_full = shortfall_at(bench_network, 5.0, d_sat=55.0)
    assert near_full <= 0.05, near_full
    partial = shortfall_at(bench_network, 5.0, d_sat=35.0)
    assert partial >= 0.15, partial


def test_shortfall_grows_with_altitude(bench_network):
    """The assumption degrades monotonically as the UAV climbs
    (slant >= H pushes every link toward/past the saturation edge)."""
    values = [shortfall_at(bench_network, h) for h in ALTITUDES]
    assert all(b >= a - 1e-6 for a, b in zip(values, values[1:])), values


def test_zero_exponent_no_shortfall(bench_network):
    """Sanity: exponent 0 reproduces the constant-rate plan exactly."""
    radio = radio_at(20.0)
    tour = plan_algorithm2(bench_network, energy_with(CAPACITY), radio,
                           FIXED_DELTA)
    rate_model = DistanceRateModel(base=radio, exponent=0.0)
    trace = simulate_mission(tour, radio, rate_model=rate_model)
    assert trace.collected_volume >= tour.collected_volume - 1e-6
