"""Ablation: incremental-TSP mode inside Algorithm 2 (DESIGN.md §7).

The paper's pseudo-code recomputes a Christofides tour for every candidate
in every iteration (O(|S|^3) per candidate); the library's default instead
uses the cheapest-insertion delta.  This bench quantifies the speed gap
and checks the quality gap stays small on a common instance.
"""

import pytest

from _common import energy_with, record_tour
from repro.core.algorithm2 import plan_algorithm2
from repro.experiments.config import reduced_settings
from repro.experiments.instances import make_instances

#: Smaller instance — christofides mode is O(candidates * |S|^3) per step.
ABLATION_CONFIG = reduced_settings().scaled(n_nodes=30, seed=7)
ABLATION_CAPACITY = 2.5e4
ABLATION_DELTA = 30.0


@pytest.fixture(scope="module")
def ablation_network():
    return make_instances(ABLATION_CONFIG, n_instances=1)[0]


@pytest.mark.parametrize("mode", ["insertion", "christofides"])
def test_ablation_tsp_mode(benchmark, ablation_network, bench_radio, mode):
    energy = energy_with(ABLATION_CAPACITY)
    tour = benchmark.pedantic(
        plan_algorithm2,
        args=(ablation_network, energy, bench_radio, ABLATION_DELTA),
        kwargs={"tsp_mode": mode},
        rounds=1, iterations=1)
    record_tour(benchmark, tour)


def test_ablation_quality_gap_small(ablation_network, bench_radio):
    """Insertion mode must stay within 10 % of the paper-literal mode."""
    energy = energy_with(ABLATION_CAPACITY)
    fast = plan_algorithm2(ablation_network, energy, bench_radio,
                           ABLATION_DELTA, tsp_mode="insertion")
    literal = plan_algorithm2(ablation_network, energy, bench_radio,
                              ABLATION_DELTA, tsp_mode="christofides")
    assert fast.collected_volume >= 0.9 * literal.collected_volume
