"""Fig. 3 — DCM without hovering-coverage overlap, battery sweep.

Panel (a): ``collected_gb`` in each bench's extra_info.
Panel (b): the bench timings themselves.

Paper shapes this harness regenerates:

* Algorithm 1 collects ~2x the benchmark at the smallest budget and the
  gap persists/widens with energy (asserted in the shape tests);
* Algorithm 1 planning time grows with the budget while the benchmark's
  *shrinks* (visible in the timing columns).
"""

import pytest

from _common import CAPACITY_SWEEP, FIXED_DELTA, energy_with, record_tour
from repro.core.algorithm1 import plan_algorithm1
from repro.core.benchmark_alg import plan_benchmark


@pytest.mark.parametrize("capacity", CAPACITY_SWEEP)
def test_fig3_algorithm1(benchmark, bench_network, bench_radio, capacity):
    energy = energy_with(capacity)
    tour = benchmark.pedantic(
        plan_algorithm1,
        args=(bench_network, energy, bench_radio, FIXED_DELTA),
        kwargs={"seed": 0, "n_restarts": 2},
        rounds=1, iterations=1)
    record_tour(benchmark, tour)


@pytest.mark.parametrize("capacity", CAPACITY_SWEEP)
def test_fig3_benchmark(benchmark, bench_network, bench_radio, capacity):
    energy = energy_with(capacity)
    tour = benchmark.pedantic(
        plan_benchmark,
        args=(bench_network, energy, bench_radio),
        rounds=1, iterations=1)
    record_tour(benchmark, tour)


def test_fig3_shape_algorithm1_dominates(bench_network, bench_radio):
    """Panel (a) headline: Algorithm 1 >= benchmark at every budget."""
    for capacity in CAPACITY_SWEEP:
        energy = energy_with(capacity)
        a1 = plan_algorithm1(bench_network, energy, bench_radio,
                             FIXED_DELTA, seed=0, n_restarts=2)
        bench = plan_benchmark(bench_network, energy, bench_radio)
        assert a1.collected_volume >= bench.collected_volume - 1e-6


def test_fig3_shape_2x_at_tight_budget(bench_network, bench_radio):
    """Paper: ~2x the benchmark at the smallest capacity (we assert 1.3x)."""
    energy = energy_with(CAPACITY_SWEEP[0])
    a1 = plan_algorithm1(bench_network, energy, bench_radio, FIXED_DELTA,
                         seed=0, n_restarts=2)
    bench = plan_benchmark(bench_network, energy, bench_radio)
    assert a1.collected_volume >= 1.3 * bench.collected_volume
