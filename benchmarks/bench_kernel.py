"""Planner-kernel bench — incremental ``engine="kernel"`` vs legacy dense.

PR 1's tentpole replaces the planners' per-iteration O(m·n + m·|tour|)
recomputation with the incremental :class:`repro.core.kernel.PlannerKernel`
(CSR coverage + dirty-set residuals + cached insertion deltas).  This
bench pins the claim with timings on the *same seeded instances*:

* Algorithms 2/3 on the reduced campaign (|V| = 100, δ = 15 m), both
  engines — the speedup headline is Algorithm 3 at K = 4, whose dense
  formulation rebuilds a (m, n) residual matrix K+1 times per selection;
* Algorithm 2 at paper scale (|V| = 500, δ = 10 m ⇒ ~10 000 candidates),
  both engines, hovering sites pre-built so the measurement isolates the
  greedy loop the kernel optimises;
* the Christofides-prune baseline, both engines.

Shape tests assert the acceptance floors (kernel ≥ 5× dense for Alg. 3
K = 4 at reduced scale; ≥ 10× for Alg. 2 at δ = 10, |V| = 500) and that
both engines return bitwise-identical tours.  ``BENCH_PR1.json`` at the
repo root is this module's ``--benchmark-json`` output.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from _common import FIXED_DELTA, energy_with, record_tour
from repro.core.algorithm2 import plan_algorithm2
from repro.core.algorithm3 import plan_algorithm3
from repro.core.benchmark_alg import plan_benchmark
from repro.core.hovering import build_hovering_sites
from repro.experiments.config import paper_settings
from repro.experiments.instances import make_instances

#: Battery for the reduced-scale engine comparison (binds at |V| = 100).
KERNEL_CAPACITY = 6e4

#: Paper-scale grid for the headline Alg. 2 measurement (§IV-A scale).
PAPER_DELTA = 10.0

ENGINES = ("kernel", "dense")


@pytest.fixture(scope="module")
def reduced_sites(bench_network, bench_radio):
    """Hovering sites at the reduced scale, built once for both engines."""
    return build_hovering_sites(bench_network, bench_radio, FIXED_DELTA)


@pytest.fixture(scope="module")
def paper_instance():
    """The paper-scale instance: |V| = 500 in 1000 m x 1000 m."""
    cfg = paper_settings()
    net = make_instances(cfg, n_instances=1)[0]
    return cfg, net


@pytest.fixture(scope="module")
def paper_sites(paper_instance):
    cfg, net = paper_instance
    return build_hovering_sites(net, cfg.radio_model(), PAPER_DELTA)


@pytest.mark.parametrize("engine", ENGINES)
def test_kernel_alg2_reduced(benchmark, bench_network, bench_radio,
                             reduced_sites, engine):
    energy = energy_with(KERNEL_CAPACITY)
    tour = benchmark.pedantic(
        plan_algorithm2,
        args=(bench_network, energy, bench_radio, FIXED_DELTA),
        kwargs={"sites": reduced_sites, "engine": engine},
        rounds=1, iterations=1)
    record_tour(benchmark, tour)


@pytest.mark.parametrize("engine", ENGINES)
def test_kernel_alg3_k4_reduced(benchmark, bench_network, bench_radio,
                                reduced_sites, engine):
    energy = energy_with(KERNEL_CAPACITY)
    tour = benchmark.pedantic(
        plan_algorithm3,
        args=(bench_network, energy, bench_radio, FIXED_DELTA, 4),
        kwargs={"sites": reduced_sites, "engine": engine},
        rounds=1, iterations=1)
    record_tour(benchmark, tour)


@pytest.mark.parametrize("engine", ENGINES)
def test_kernel_alg2_paper_scale(benchmark, paper_instance, paper_sites,
                                 engine):
    cfg, net = paper_instance
    tour = benchmark.pedantic(
        plan_algorithm2,
        args=(net, cfg.energy_model(), cfg.radio_model(), PAPER_DELTA),
        kwargs={"sites": paper_sites, "engine": engine},
        rounds=1, iterations=1)
    record_tour(benchmark, tour)


@pytest.mark.parametrize("engine", ENGINES)
def test_kernel_benchmark_prune(benchmark, bench_network, bench_radio,
                                engine):
    energy = energy_with(KERNEL_CAPACITY)
    tour = benchmark.pedantic(
        plan_benchmark,
        args=(bench_network, energy, bench_radio),
        kwargs={"engine": engine},
        rounds=1, iterations=1)
    record_tour(benchmark, tour)


# --------------------------------------------------------------------- #
# Shape tests: acceptance floors and bitwise identity
# --------------------------------------------------------------------- #
def _timed(fn, *args, **kwargs):
    t0 = time.perf_counter()
    out = fn(*args, **kwargs)
    return out, time.perf_counter() - t0


def test_shape_alg3_k4_speedup(bench_network, bench_radio, reduced_sites):
    """Kernel >= 5x dense for Alg. 3 (K = 4) at reduced scale."""
    energy = energy_with(KERNEL_CAPACITY)
    fast, t_fast = _timed(plan_algorithm3, bench_network, energy,
                          bench_radio, FIXED_DELTA, 4,
                          sites=reduced_sites, engine="kernel")
    slow, t_slow = _timed(plan_algorithm3, bench_network, energy,
                          bench_radio, FIXED_DELTA, 4,
                          sites=reduced_sites, engine="dense")
    np.testing.assert_array_equal(fast.points, slow.points)
    np.testing.assert_array_equal(fast.sojourns, slow.sojourns)
    np.testing.assert_array_equal(fast.collected, slow.collected)
    assert t_slow >= 5.0 * t_fast, \
        f"kernel {t_fast:.3f}s vs dense {t_slow:.3f}s (< 5x)"


def test_shape_alg2_paper_speedup(paper_instance, paper_sites):
    """Kernel >= 10x dense for Alg. 2 at delta = 10 m, |V| = 500."""
    cfg, net = paper_instance
    energy, radio = cfg.energy_model(), cfg.radio_model()
    fast, t_fast = _timed(plan_algorithm2, net, energy, radio, PAPER_DELTA,
                          sites=paper_sites, engine="kernel")
    slow, t_slow = _timed(plan_algorithm2, net, energy, radio, PAPER_DELTA,
                          sites=paper_sites, engine="dense")
    np.testing.assert_array_equal(fast.points, slow.points)
    np.testing.assert_array_equal(fast.sojourns, slow.sojourns)
    np.testing.assert_array_equal(fast.collected, slow.collected)
    assert t_slow >= 10.0 * t_fast, \
        f"kernel {t_fast:.3f}s vs dense {t_slow:.3f}s (< 10x)"


def test_shape_kernel_does_less_work(bench_network, bench_radio,
                                     reduced_sites):
    """The counters agree with the complexity claim: O(overlap) per step."""
    energy = energy_with(KERNEL_CAPACITY)
    fast = plan_algorithm3(bench_network, energy, bench_radio, FIXED_DELTA,
                           4, sites=reduced_sites, engine="kernel")
    slow = plan_algorithm3(bench_network, energy, bench_radio, FIXED_DELTA,
                           4, sites=reduced_sites, engine="dense")
    assert (fast.meta["perf"]["sites_rescored"]
            < 0.25 * slow.meta["perf"]["sites_rescored"])
