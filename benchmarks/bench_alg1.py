"""Algorithm 1 engine benchmark: vectorized GRASP speedup at paper scale.

Runs the paper-scale Fig. 3 capacity column (the Algorithm 1 series of
the capacity sweep, |V|=500 by default) once per orienteering engine —
``scalar`` (restart-by-restart GRASP over a fully validated instance)
and ``fast`` (the stacked construction engine of
:mod:`repro.orienteering.fast` over a trusted instance) — and records:

1. **equivalence** — the two engines' rows must be bitwise-identical
   minus wall-clock (same tours, same volumes, same instance counts);
   the per-row ``grasp.*`` restart counters must also agree,
2. **speedup** — end-to-end column wall-clock ratio ``scalar / fast``
   (best of ``--repeats``), gated at ``--min-speedup`` (default 3x, the
   PR acceptance floor),
3. **δ-continuation** — the paper-scale Fig. 4-style δ chain
   (``run_sweep(..., delta_continuation=True)``) against the cold fast
   sweep over the same δ grid: every chained cell's volume must be >=
   its cold value (strict-improvement warm starts, reduction off), and
   the chain's warm payloads must actually fire (``grasp.warm_starts``),
4. **ledger records** — one ``bench.case`` record per timed mode,
   self-checked round-trip compatible with ``repro-bench compare --gate``.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_alg1.py --out BENCH_PR10.json

The committed ``BENCH_PR10.json`` records the reference numbers; the
script self-checks every claim above and exits non-zero when one breaks.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from typing import Any, Dict, List, Tuple

from repro.experiments.config import paper_settings
from repro.experiments.instances import make_instances
from repro.experiments.runner import AlgoSpec, SweepResult, run_sweep
from repro.obs.bench import _rows_counters
from repro.obs.ledger import Ledger, ledger_active, record_event
from repro.obs.record import config_hash
from repro.obs.regress import Thresholds, compare

ENGINES = ("scalar", "fast")


def _bench_config(nodes: int, instances: int):
    return paper_settings().scaled(n_nodes=nodes, n_instances=instances)


def _alg1_spec(config, engine: str, n_restarts: int) -> AlgoSpec:
    return AlgoSpec("Algorithm 1", "algorithm1",
                    {"delta": config.delta, "solver": "grasp",
                     "n_restarts": n_restarts, "seed": 0,
                     "engine": engine})


def _capacity_column(config, nets, engine: str,
                     n_restarts: int) -> SweepResult:
    """The Fig. 3 capacity column: Algorithm 1 alone over the sweep."""
    spec = _alg1_spec(config, engine, n_restarts)
    return run_sweep(
        config, nets, [spec],
        param_name="capacity", param_values=list(config.capacity_sweep),
        make_energy=lambda cfg, value: cfg.energy_model(capacity=value),
        make_kwargs=lambda cfg, value, s: dict(s.kwargs),
        validate=True, cache=True)


def _delta_sweep(config, nets, deltas: List[float], n_restarts: int,
                 continuation: bool) -> SweepResult:
    spec = AlgoSpec("Algorithm 1", "algorithm1",
                    {"solver": "grasp", "n_restarts": n_restarts,
                     "seed": 0, "engine": "fast"})

    def make_kwargs(cfg, value, s):
        return {**s.kwargs, "delta": value}

    return run_sweep(
        config, nets, [spec],
        param_name="delta", param_values=deltas,
        make_energy=lambda cfg, value: cfg.energy_model(),
        make_kwargs=make_kwargs, validate=True, cache=True,
        delta_continuation=continuation)


def _timed(fn, repeats: int) -> Tuple[float, List[float], Any]:
    times, result = [], None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        times.append(time.perf_counter() - start)
    return min(times), [round(t, 4) for t in times], result


def _nontime_rows(result: SweepResult) -> List[Dict[str, Any]]:
    rows = []
    for row in result.rows:
        d = row.as_dict()
        del d["mean_time_s"], d["std_time_s"]
        rows.append(d)
    return rows


def _grasp_counters(result: SweepResult) -> List[Dict[str, float]]:
    """Per-row ``grasp.*`` perf counters (engine-independent work)."""
    out = []
    for row in result.rows:
        perf = row.perf or {}
        out.append({k: v for k, v in perf.items()
                    if k.startswith("grasp.")})
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", type=int, default=500,
                        help="sensor count |V| (default 500, paper scale)")
    parser.add_argument("--instances", type=int, default=1,
                        help="instances per data point (default 1)")
    parser.add_argument("--restarts", type=int, default=8,
                        help="GRASP restarts per cell (default 8)")
    parser.add_argument("--repeats", type=int, default=1,
                        help="timed runs per mode, best kept (default 1)")
    parser.add_argument("--min-speedup", type=float, default=3.0,
                        help="fast-engine capacity-column speedup floor "
                             "(default 3, the PR acceptance gate)")
    parser.add_argument("--deltas", type=float, nargs="+",
                        default=[10.0, 15.0, 20.0, 25.0, 30.0],
                        help="δ grid for the continuation section "
                             "(default 10..30; the paper's δ=5 point is "
                             "skipped — its grid dwarfs the others)")
    parser.add_argument("--out", type=str, default=None,
                        help="write the JSON report here (default: stdout)")
    args = parser.parse_args(argv)

    import tempfile
    from pathlib import Path
    config = _bench_config(args.nodes, args.instances)
    nets = make_instances(config)
    campaign = {
        "figure": "fig3-column", "n_nodes": args.nodes,
        "n_instances": args.instances, "delta": config.delta,
        "capacity_sweep": list(config.capacity_sweep),
        "n_restarts": args.restarts, "repeats": args.repeats,
        "continuation_deltas": list(args.deltas),
    }
    failures: List[str] = []

    runs: Dict[str, Dict[str, Any]] = {}
    for engine in ENGINES:
        print(f"running fig3 capacity column: engine={engine}...",
              file=sys.stderr)
        wall, wall_all, result = _timed(
            lambda: _capacity_column(config, nets, engine, args.restarts),
            args.repeats)
        runs[engine] = {"wall_s": wall, "wall_s_all": wall_all,
                        "result": result}
        print(f"  {wall:.2f} s", file=sys.stderr)

    identical = (_nontime_rows(runs["scalar"]["result"])
                 == _nontime_rows(runs["fast"]["result"]))
    if not identical:
        failures.append("fast rows differ from scalar rows")
    if _grasp_counters(runs["scalar"]["result"]) \
            != _grasp_counters(runs["fast"]["result"]):
        failures.append("fast grasp.* counters differ from scalar")
    speedup = runs["scalar"]["wall_s"] / runs["fast"]["wall_s"]
    if speedup < args.min_speedup:
        failures.append(f"fast speedup {speedup:.2f}x below the "
                        f"{args.min_speedup}x floor")

    print("running δ sweep: cold fast...", file=sys.stderr)
    cold_wall, cold_all, cold = _timed(
        lambda: _delta_sweep(config, nets, args.deltas, args.restarts,
                             continuation=False), args.repeats)
    print(f"  {cold_wall:.2f} s", file=sys.stderr)
    print("running δ sweep: fast + continuation...", file=sys.stderr)
    warm_wall, warm_all, warm = _timed(
        lambda: _delta_sweep(config, nets, args.deltas, args.restarts,
                             continuation=True), args.repeats)
    print(f"  {warm_wall:.2f} s", file=sys.stderr)

    warm_starts = sum((r.perf or {}).get("grasp.warm_starts", 0.0)
                      for r in warm.rows)
    if warm.meta.get("continuation_chains", 0) < 1:
        failures.append("continuation sweep chained no specs")
    if warm_starts < len(args.deltas) - 1:
        failures.append(f"only {warm_starts:.0f} warm starts fired over "
                        f"{len(args.deltas)} δ cells")
    regressed = [
        (rc.param_value, rc.mean_volume_gb, rw.mean_volume_gb)
        for rc, rw in zip(cold.rows, warm.rows)
        if rw.mean_volume_gb < rc.mean_volume_gb - 1e-12]
    if regressed:
        failures.append(f"continuation cells below cold-start volume: "
                        f"{regressed}")

    with tempfile.TemporaryDirectory() as tmp:
        ledger_path = Path(tmp) / "bench_alg1.jsonl"
        ledger = Ledger(ledger_path)
        with ledger_active(ledger):
            for engine in ENGINES:
                record_event(
                    "bench.case", label=f"alg1.fig3_column.{engine}",
                    config_hash=config_hash({**campaign,
                                             "engine": engine}),
                    engine=engine, wall_s=runs[engine]["wall_s"],
                    metrics={"counters":
                             _rows_counters(runs[engine]["result"].rows)},
                    extra={"suite": "bench_alg1"})
            for label, wall, result in (
                    ("alg1.delta_cold", cold_wall, cold),
                    ("alg1.delta_continuation", warm_wall, warm)):
                record_event(
                    "bench.case", label=label,
                    config_hash=config_hash({**campaign, "mode": label}),
                    engine="fast", wall_s=wall,
                    metrics={"counters": _rows_counters(result.rows)},
                    extra={"suite": "bench_alg1"})
        n_records = len(ledger)
        records = Ledger.read(ledger_path)
    roundtrip = compare(records, records,
                        Thresholds(time_ratio=1.5, min_time_s=1e-4))
    if not roundtrip.passed:
        failures.append("identical-ledger gate round-trip failed")

    for failure in failures:
        print(f"FATAL: {failure}", file=sys.stderr)

    report = {
        "benchmark": "bench_alg1",
        "campaign": campaign,
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
        },
        "floors": {"min_speedup": args.min_speedup},
        "capacity_column": {
            engine: {"wall_s": round(runs[engine]["wall_s"], 4),
                     "wall_s_all": runs[engine]["wall_s_all"]}
            for engine in ENGINES},
        "speedup_scalar_over_fast": round(speedup, 2),
        "rows_identical": identical,
        "continuation": {
            "cold_wall_s": round(cold_wall, 4),
            "warm_wall_s": round(warm_wall, 4),
            "warm_starts": warm_starts,
            "volumes_gb": {
                "cold": [round(r.mean_volume_gb, 4) for r in cold.rows],
                "warm": [round(r.mean_volume_gb, 4) for r in warm.rows],
            },
        },
        "ledger": {
            "records": n_records,
            "gate_roundtrip_passed": roundtrip.passed,
        },
        "self_check_passed": not failures,
    }
    text = json.dumps(report, indent=2)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.out}", file=sys.stderr)
    else:
        print(text)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
