"""Observability bench — tracing overhead on and off.

The repro.obs contract is that a *disabled* span site costs one global
load and a method call returning the shared ``NULL_SPAN`` — cheap enough
to leave in the planners' greedy loops permanently — and that an
*enabled* tracer adds bounded per-span bookkeeping without changing any
planner output.  This bench pins both:

* micro: a tight loop over a disabled span site vs the bare loop, and the
  same loop with a recording tracer installed (for the enabled cost);
* macro: ``plan_algorithm2`` untraced vs traced on the shared reduced
  instance, shape-tested to stay bitwise-identical and to keep the traced
  run within a small factor of the untraced one.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from _common import FIXED_DELTA, energy_with, record_tour
from repro.core.algorithm2 import plan_algorithm2
from repro.obs.tracer import NULL_SPAN, Tracer, activated, span

#: Battery for the planner-level comparisons (binds at |V| = 100).
OBS_CAPACITY = 6e4

#: Iterations of the micro span-site loop.
MICRO_ITERS = 50_000


def _spin_spans(n: int) -> int:
    """The instrumented hot-loop shape: one span site per iteration."""
    acc = 0
    for i in range(n):
        with span("bench.op"):
            acc += i
    return acc


def _spin_bare(n: int) -> int:
    acc = 0
    for i in range(n):
        acc += i
    return acc


def test_micro_disabled_span_site(benchmark):
    assert span("bench.op") is NULL_SPAN  # tracing must be off here
    total = benchmark.pedantic(_spin_spans, args=(MICRO_ITERS,),
                               rounds=3, iterations=1)
    assert total == _spin_bare(MICRO_ITERS)


def test_micro_bare_loop(benchmark):
    benchmark.pedantic(_spin_bare, args=(MICRO_ITERS,),
                       rounds=3, iterations=1)


def test_micro_enabled_span_site(benchmark):
    def traced() -> int:
        with activated(Tracer()):
            return _spin_spans(MICRO_ITERS)

    total = benchmark.pedantic(traced, rounds=3, iterations=1)
    assert total == _spin_bare(MICRO_ITERS)


@pytest.mark.parametrize("traced", [False, True], ids=["off", "on"])
def test_plan_alg2_tracing(benchmark, bench_network, bench_radio, traced):
    energy = energy_with(OBS_CAPACITY)
    kwargs = {"trace": Tracer()} if traced else {}

    def run():
        from repro.core.planner import plan_tour
        return plan_tour(bench_network, energy, bench_radio,
                         method="algorithm2", delta=FIXED_DELTA, **kwargs)

    tour = benchmark.pedantic(run, rounds=1, iterations=1)
    record_tour(benchmark, tour)


# --------------------------------------------------------------------- #
# Shape tests: identity and bounded overhead
# --------------------------------------------------------------------- #
def _timed(fn, *args, **kwargs):
    t0 = time.perf_counter()
    out = fn(*args, **kwargs)
    return out, time.perf_counter() - t0


def test_shape_traced_identical_and_bounded(bench_network, bench_radio):
    """Tracing never changes the tour; traced run stays within 2x."""
    energy = energy_with(OBS_CAPACITY)
    plain, t_plain = _timed(plan_algorithm2, bench_network, energy,
                            bench_radio, FIXED_DELTA)
    tracer = Tracer()
    with activated(tracer):
        traced, t_traced = _timed(plan_algorithm2, bench_network, energy,
                                  bench_radio, FIXED_DELTA)
    np.testing.assert_array_equal(plain.points, traced.points)
    np.testing.assert_array_equal(plain.sojourns, traced.sojourns)
    np.testing.assert_array_equal(plain.collected, traced.collected)
    assert len(tracer.records()) > 0
    # Generous bound: span bookkeeping is micro-scale next to the numerics.
    assert t_traced <= max(2.0 * t_plain, t_plain + 0.5), (
        f"traced plan took {t_traced:.3f}s vs {t_plain:.3f}s untraced")


def test_shape_disabled_overhead_small():
    """A disabled span site costs well under a microsecond."""
    assert span("bench.op") is NULL_SPAN
    _spin_spans(1000)  # warm up
    _, t_spans = _timed(_spin_spans, MICRO_ITERS)
    per_site_s = t_spans / MICRO_ITERS
    assert per_site_s < 5e-6, f"{per_site_s * 1e9:.0f} ns per disabled span"
