"""Sweep-executor benchmark: jobs=1 vs jobs=N, artifact cache on vs off.

Times the *same* miniature Fig. 3 campaign under three execution modes:

1. ``seq-nocache``   — jobs=1, geometry rebuilt every cell (paper-literal),
2. ``seq-cache``     — jobs=1, per-(instance, δ) artifact cache,
3. ``par-cache``     — jobs=N process pool, per-worker artifact cache,

self-checks that all three produce bitwise-identical deterministic rows
(:meth:`SweepRow.deterministic_dict`), and writes a JSON report with host
metadata.  Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_sweep.py --out BENCH_PR5.json

Speedup caveat: mode 3 only beats mode 2 when the host has spare cores
(``host.cpu_count`` is recorded in the report — on a single-core runner
the pool adds IPC overhead and *loses*); the cache win in mode 2 vs
mode 1 is CPU-count independent.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from typing import Any, Dict

from repro.experiments.artifacts import ArtifactCache
from repro.experiments.config import reduced_settings
from repro.experiments.fig3 import run_fig3


def _bench_config(nodes: int, instances: int, sweep_points: int):
    capacities = tuple(3e4 + 2e4 * i for i in range(sweep_points))
    return reduced_settings().scaled(
        n_nodes=nodes, n_instances=instances,
        capacity_sweep=capacities, delta=15.0, seed=20200518)


def _run_mode(config, *, jobs: int, cache: bool,
              repeats: int) -> Dict[str, Any]:
    times = []
    result = None
    metrics = None
    for _ in range(repeats):
        # Own the cache at jobs=1 so its MetricsRegistry (hit/miss
        # counters, artifact gauge) can be snapshotted; the process
        # pool's per-worker caches only report merged stats() via meta.
        owned = ArtifactCache() if cache and jobs == 1 else cache
        start = time.perf_counter()
        result = run_fig3(config, n_restarts=1, jobs=jobs, cache=owned)
        times.append(time.perf_counter() - start)
        if isinstance(owned, ArtifactCache):
            metrics = owned.metrics.snapshot()
    return {
        "jobs": jobs,
        "cache": cache,
        "wall_s": min(times),
        "wall_s_all": [round(t, 4) for t in times],
        "cache_stats": result.meta.get("cache"),
        "cache_metrics": metrics,
        "rows": [row.deterministic_dict() for row in result.rows],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", type=int, default=80,
                        help="sensor count |V| (default 80)")
    parser.add_argument("--instances", type=int, default=3,
                        help="instances per data point (default 3)")
    parser.add_argument("--sweep-points", type=int, default=4,
                        help="capacity values in the sweep (default 4)")
    parser.add_argument("--jobs", type=int, default=4,
                        help="worker count for the parallel mode (default 4)")
    parser.add_argument("--repeats", type=int, default=2,
                        help="timed repetitions per mode, best kept "
                             "(default 2)")
    parser.add_argument("--out", type=str, default=None,
                        help="write the JSON report here (default: stdout)")
    args = parser.parse_args(argv)

    config = _bench_config(args.nodes, args.instances, args.sweep_points)
    modes = {
        "seq-nocache": dict(jobs=1, cache=False),
        "seq-cache": dict(jobs=1, cache=True),
        "par-cache": dict(jobs=args.jobs, cache=True),
    }
    results: Dict[str, Dict[str, Any]] = {}
    for name, opts in modes.items():
        print(f"running {name} (jobs={opts['jobs']}, "
              f"cache={opts['cache']})...", file=sys.stderr)
        results[name] = _run_mode(config, repeats=args.repeats, **opts)
        print(f"  {results[name]['wall_s']:.2f} s", file=sys.stderr)

    # Determinism self-check: every mode must agree bitwise on the
    # deterministic row view; a mismatch means the executor is broken.
    baseline = results["seq-nocache"]["rows"]
    for name, mode in results.items():
        if mode["rows"] != baseline:
            print(f"FATAL: {name} rows differ from seq-nocache",
                  file=sys.stderr)
            return 1

    report = {
        "benchmark": "bench_sweep",
        "campaign": {
            "figure": "fig3",
            "n_nodes": args.nodes,
            "n_instances": args.instances,
            "capacity_sweep": list(config.capacity_sweep),
            "delta": config.delta,
            "cells": 2 * args.sweep_points,
            "repeats": args.repeats,
        },
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
        },
        "modes": {
            name: {k: v for k, v in mode.items() if k != "rows"}
            for name, mode in results.items()
        },
        "speedups": {
            "cache_at_jobs1": round(results["seq-nocache"]["wall_s"]
                                    / results["seq-cache"]["wall_s"], 3),
            f"jobs{args.jobs}_vs_jobs1": round(
                results["seq-cache"]["wall_s"]
                / results["par-cache"]["wall_s"], 3),
        },
        "deterministic_rows_identical": True,
    }
    text = json.dumps(report, indent=2)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.out}", file=sys.stderr)
    else:
        print(text)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
