"""Session fixtures for the benchmark harness (see _common.py for scale)."""

from __future__ import annotations

import pytest

from _common import BENCH_CONFIG
from repro.experiments.instances import make_instances


@pytest.fixture(scope="session")
def bench_network():
    """The shared benchmark instance (seeded, one per session)."""
    return make_instances(BENCH_CONFIG, n_instances=1)[0]


@pytest.fixture(scope="session")
def bench_radio():
    """Paper radio model: B = 150 MB/s, R0 = 50 m."""
    return BENCH_CONFIG.radio_model()
