"""Run-ledger benchmark: emission overhead and regression-gate demo.

Two claims of the observability PR are pinned here:

1. **Overhead** — running a Fig. 5 capacity sweep with the run ledger
   active (one ``planner.call`` record per instance plan plus one
   ``sweep.cell`` record per cell, streamed to a JSONL file) costs under
   a couple of percent of the sweep's wall-clock, and the deterministic
   row views stay bitwise-identical with the ledger on or off.
2. **Gate correctness** — ``repro-bench``-style compares do their job:
   an identical re-run of the smoke suite passes the gate, and a run
   with an injected per-case sleep (``REPRO_BENCH_INJECT_SLEEP_S``)
   fails it.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_ledger.py --out BENCH_PR8.json

The committed ``BENCH_PR8.json`` records the reference numbers; the
script self-checks both claims and exits non-zero when either breaks.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from typing import Any, Dict

from repro.experiments.config import reduced_settings
from repro.experiments.fig5 import run_fig5
from repro.obs.bench import ENV_INJECT_SLEEP, run_suite
from repro.obs.ledger import Ledger, ledger_active
from repro.obs.regress import Thresholds, compare


def _bench_config(nodes: int, instances: int):
    return reduced_settings().scaled(
        n_nodes=nodes, n_instances=instances, seed=20200518)


def _run_sweep(config, *, ledger, repeats: int):
    """Best-of-*repeats* wall time of one Fig. 5 sweep; rows of the last."""
    times = []
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        with ledger_active(ledger):
            result = run_fig5(config, jobs=1, cache=True)
        times.append(time.perf_counter() - start)
    return min(times), [row.deterministic_dict() for row in result.rows]


def _overhead(config, repeats: int, ledger_path) -> Dict[str, Any]:
    # One untimed warm-up sweep so the ledger-off mode is not charged
    # the process's cold numpy/code-path costs.
    print("warm-up sweep (untimed)...", file=sys.stderr)
    _run_sweep(config, ledger=None, repeats=1)
    print("running Fig. 5 sweep, ledger off...", file=sys.stderr)
    off_s, off_rows = _run_sweep(config, ledger=None, repeats=repeats)
    print(f"  {off_s:.2f} s", file=sys.stderr)
    print("running Fig. 5 sweep, ledger on (JSONL-backed)...",
          file=sys.stderr)
    ledger = None
    on_times = []
    on_rows = None
    for _ in range(repeats):
        if ledger_path.exists():
            ledger_path.unlink()           # ledgers append; time a fresh one
        ledger = Ledger(ledger_path)
        start = time.perf_counter()
        with ledger_active(ledger):
            result = run_fig5(config, jobs=1, cache=True)
        on_times.append(time.perf_counter() - start)
        on_rows = [row.deterministic_dict() for row in result.rows]
    on_s = min(on_times)
    print(f"  {on_s:.2f} s, {len(ledger)} record(s)", file=sys.stderr)
    return {
        "ledger_off_wall_s": round(off_s, 4),
        "ledger_on_wall_s": round(on_s, 4),
        "overhead_pct": round(100.0 * (on_s - off_s) / off_s, 2),
        "ledger_records": len(ledger),
        "rows_identical": on_rows == off_rows,
    }


def _gate_demo(tmp_dir) -> Dict[str, Any]:
    """Smoke-suite gate demo: identical re-run passes, slowdown fails."""
    thresholds = Thresholds(time_ratio=1.5, min_time_s=1e-4)
    print("gate demo: baseline smoke suite...", file=sys.stderr)
    base = run_suite("smoke", ledger=Ledger(tmp_dir / "base.jsonl"))
    print("gate demo: identical re-run...", file=sys.stderr)
    rerun = run_suite("smoke", ledger=Ledger(tmp_dir / "rerun.jsonl"))
    rerun_report = compare(base.records(), rerun.records(), thresholds)

    print("gate demo: re-run with 0.2s injected per-case sleep...",
          file=sys.stderr)
    os.environ[ENV_INJECT_SLEEP] = "0.2"
    try:
        slow = run_suite("smoke", ledger=Ledger(tmp_dir / "slow.jsonl"))
    finally:
        del os.environ[ENV_INJECT_SLEEP]
    slow_report = compare(base.records(), slow.records(), thresholds)
    return {
        "thresholds": thresholds.as_dict(),
        "identical_rerun_passed": rerun_report.passed,
        "injected_sleep_failed": not slow_report.passed,
        "injected_sleep_regressions": [
            {"case": d.key[1], "reasons": list(d.reasons)}
            for d in slow_report.regressions],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", type=int, default=120,
                        help="sensor count |V| of the Fig. 5 sweep "
                             "(default 120, the reduced paper scale)")
    parser.add_argument("--instances", type=int, default=3,
                        help="instances per data point (default 3)")
    parser.add_argument("--repeats", type=int, default=2,
                        help="timed sweeps per mode, best kept (default 2)")
    parser.add_argument("--out", type=str, default=None,
                        help="write the JSON report here (default: stdout)")
    args = parser.parse_args(argv)

    import tempfile
    from pathlib import Path
    config = _bench_config(args.nodes, args.instances)
    with tempfile.TemporaryDirectory() as tmp:
        tmp_dir = Path(tmp)
        overhead = _overhead(config, args.repeats, tmp_dir / "sweep.jsonl")
        gate = _gate_demo(tmp_dir)

    failures = []
    if not overhead["rows_identical"]:
        failures.append("deterministic rows differ with the ledger on")
    if not gate["identical_rerun_passed"]:
        failures.append("identical re-run failed the gate")
    if not gate["injected_sleep_failed"]:
        failures.append("injected slowdown passed the gate")
    for failure in failures:
        print(f"FATAL: {failure}", file=sys.stderr)

    report = {
        "benchmark": "bench_ledger",
        "campaign": {
            "figure": "fig5",
            "n_nodes": args.nodes,
            "n_instances": args.instances,
            "capacity_sweep": list(config.capacity_sweep),
            "k_values": list(config.k_values),
            "delta": config.delta,
            "repeats": args.repeats,
        },
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
        },
        "overhead": overhead,
        "gate_demo": gate,
        "self_check_passed": not failures,
    }
    text = json.dumps(report, indent=2)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.out}", file=sys.stderr)
    else:
        print(text)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
