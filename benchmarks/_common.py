"""Shared configuration and helpers for the benchmark harness.

Every paper figure gets one bench module.  The benches run at the
*reduced* scale documented in DESIGN.md (S3): |V| = 100 in the paper's
1000 m x 1000 m region, battery sweep rescaled so the budget binds across
the sweep.  Each bench times one planning call (the quantity in the
paper's Figs. 3(b)/4(b)/5(b)) and records the collected volume in
``benchmark.extra_info`` (the quantity in Figs. 3(a)/4(a)/5(a));
``--benchmark-json`` output therefore contains both panels of every figure.
"""

from __future__ import annotations

from repro.energy.model import EnergyModel
from repro.experiments.config import reduced_settings

#: Reduced-scale campaign shared by all figure benches.
BENCH_CONFIG = reduced_settings().scaled(n_nodes=100, n_instances=1,
                                         seed=20200518)

#: Battery sweep (J) for Figs. 3 and 5 at the reduced scale.
CAPACITY_SWEEP = (3e4, 5e4, 7e4, 9e4)

#: Grid-resolution sweep (m) for Fig. 4.
DELTA_SWEEP = (10.0, 15.0, 20.0, 25.0, 30.0)

#: Fixed grid for the capacity sweeps (paper: 10 m).
FIXED_DELTA = 15.0

#: Algorithm 3 partition counts plotted in Figs. 4-5.
K_VALUES = (2, 4)


def energy_with(capacity: float) -> EnergyModel:
    """Paper energy rates at a swept capacity."""
    return BENCH_CONFIG.energy_model(capacity=capacity)


def record_tour(benchmark, tour) -> None:
    """Attach the volume panel to the timing panel."""
    benchmark.extra_info["collected_gb"] = round(
        tour.collected_volume / 1000.0, 3)
    benchmark.extra_info["n_hovers"] = tour.n_hovers
    benchmark.extra_info["energy_used_j"] = round(tour.total_energy, 1)
    benchmark.extra_info["method"] = tour.method
    perf = tour.meta.get("perf")
    if perf:
        # Planner-kernel work counters (see docs/architecture.md): how many
        # sites were rescored / deltas recomputed, next to the wall time.
        benchmark.extra_info["engine"] = perf.get("engine")
        for key in ("sites_rescored", "deltas_recomputed",
                    "insertions", "drains", "ratios_rescored"):
            if key in perf:
                benchmark.extra_info[key] = perf[key]
