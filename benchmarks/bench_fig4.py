"""Fig. 4 — DCM with hovering-coverage overlap, grid-resolution (δ) sweep.

Panel (a): ``collected_gb`` extra_info per bench.
Panel (b): the bench timings.

Paper shapes this harness regenerates:

* Algorithm 3(K) >= Algorithm 2 >> benchmark at every δ (shape tests);
* collected volume falls as δ grows (finer grids find better hover spots);
* planning time falls with δ and rises with K.
"""

import pytest

from _common import DELTA_SWEEP, K_VALUES, energy_with, record_tour
from repro.core.algorithm2 import plan_algorithm2
from repro.core.algorithm3 import plan_algorithm3
from repro.core.benchmark_alg import plan_benchmark

#: Fixed battery for the δ sweep (budget binds at |V| = 100).
FIG4_CAPACITY = 6e4


@pytest.mark.parametrize("delta", DELTA_SWEEP)
def test_fig4_algorithm2(benchmark, bench_network, bench_radio, delta):
    energy = energy_with(FIG4_CAPACITY)
    tour = benchmark.pedantic(
        plan_algorithm2,
        args=(bench_network, energy, bench_radio, delta),
        rounds=1, iterations=1)
    record_tour(benchmark, tour)


@pytest.mark.parametrize("delta", DELTA_SWEEP)
@pytest.mark.parametrize("k", K_VALUES)
def test_fig4_algorithm3(benchmark, bench_network, bench_radio, delta, k):
    energy = energy_with(FIG4_CAPACITY)
    tour = benchmark.pedantic(
        plan_algorithm3,
        args=(bench_network, energy, bench_radio, delta, k),
        rounds=1, iterations=1)
    record_tour(benchmark, tour)


def test_fig4_benchmark(benchmark, bench_network, bench_radio):
    # The baseline ignores δ — one point, plotted flat in the paper.
    energy = energy_with(FIG4_CAPACITY)
    tour = benchmark.pedantic(
        plan_benchmark,
        args=(bench_network, energy, bench_radio),
        rounds=1, iterations=1)
    record_tour(benchmark, tour)


def test_fig4_shape_ordering(bench_network, bench_radio):
    """Alg. 3 >= ~Alg. 2 >> benchmark at the paper's headline δ."""
    energy = energy_with(FIG4_CAPACITY)
    delta = DELTA_SWEEP[0]
    a2 = plan_algorithm2(bench_network, energy, bench_radio, delta)
    a3 = plan_algorithm3(bench_network, energy, bench_radio, delta, 2)
    bench = plan_benchmark(bench_network, energy, bench_radio)
    # Paper: Alg.2 +79 % and Alg.3 +99 % over the benchmark at delta = 5 m.
    assert a2.collected_volume >= 1.3 * bench.collected_volume
    assert a3.collected_volume >= 1.3 * bench.collected_volume
    # Alg. 3 within noise of (usually above) Alg. 2.
    assert a3.collected_volume >= 0.97 * a2.collected_volume


def test_fig4_shape_volume_decreases_with_delta(bench_network, bench_radio):
    """Coarser grids collect no more data (paper: -13.9 % from 5 m to 30 m)."""
    energy = energy_with(FIG4_CAPACITY)
    fine = plan_algorithm2(bench_network, energy, bench_radio,
                           DELTA_SWEEP[0])
    coarse = plan_algorithm2(bench_network, energy, bench_radio,
                             DELTA_SWEEP[-1])
    assert fine.collected_volume >= coarse.collected_volume - 1e-6
