"""Site-reduction benchmark: candidate shrink and end-to-end sweep speedup.

Runs the *same* paper-scale dense-δ Fig. 5 capacity sweep at three
reduction levels — ``off``, ``safe``, ``aggressive`` — over both the
per-cell ``kernel`` engine and the stacked ``batch`` column engine, and
records for each mode:

1. **shrink** — the candidate-site reduction factor read back from the
   ``reduce.*`` work counters (PR 9 targets >= 5x for ``aggressive`` on
   a dense δ-grid),
2. **speedup** — end-to-end sweep wall-clock ratio against the same
   engine's ``off`` run (best of ``--repeats``),
3. **losslessness** — ``safe`` rows must be bitwise-identical to ``off``
   rows (minus wall-clock) on both engines, and the claims harness must
   pass R1 (safe: exact volume equality) and R2 (aggressive: bounded
   collected-data loss, ``--max-loss``),
4. **ledger records** — one ``bench.case`` record per (engine, level)
   streamed through the PR-8 run ledger, self-checked round-trip
   compatible with ``repro-bench compare --gate``.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_reduce.py --out BENCH_PR9.json

The committed ``BENCH_PR9.json`` records the reference numbers; the
script self-checks every claim above and exits non-zero when one breaks.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.experiments.claims import (check_reduction_claims,
                                      reduction_delta_table)
from repro.experiments.config import reduced_settings
from repro.experiments.fig5 import run_fig5
from repro.obs.bench import _rows_counters
from repro.obs.ledger import Ledger, ledger_active, record_event
from repro.obs.record import config_hash
from repro.obs.regress import Thresholds, compare

LEVELS = ("off", "safe", "aggressive")
ENGINES = ("kernel", "batch")


def _bench_config(nodes: int, instances: int, delta: float):
    return reduced_settings().scaled(
        n_nodes=nodes, n_instances=instances, delta=delta, seed=20200518)


def _nontime_rows(result) -> List[Dict[str, Any]]:
    """The rows' deterministic view: full aggregate minus wall-clock."""
    rows = []
    for row in result.rows:
        d = row.as_dict()
        del d["mean_time_s"], d["std_time_s"]
        rows.append(d)
    return rows


def _shrink_factor(result) -> Optional[float]:
    """sites_in / sites_out summed over the sweep's reduced rows."""
    sites_in = sites_out = 0.0
    for row in result.rows:
        perf = row.perf or {}
        sites_in += float(perf.get("reduce.sites_in", 0.0))
        sites_out += float(perf.get("reduce.sites_out", 0.0))
    if sites_out <= 0.0:
        return None
    return sites_in / sites_out


def _run_mode(config, engine: str, level: str,
              repeats: int) -> Dict[str, Any]:
    """Best-of-*repeats* wall time of one (engine, level) Fig. 5 sweep."""
    kwargs: Dict[str, Any] = {"jobs": 1, "cache": True,
                              "batch_columns": engine == "batch"}
    if level != "off":
        kwargs["site_reduction"] = level
    times = []
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = run_fig5(config, **kwargs)
        times.append(time.perf_counter() - start)
    return {"wall_s": min(times),
            "wall_s_all": [round(t, 4) for t in times],
            "result": result}


def _ledger_records(ledger_path, runs, campaign: Dict[str, Any]) -> int:
    """One ``bench.case`` ledger record per timed mode (gate-comparable)."""
    ledger = Ledger(ledger_path)
    with ledger_active(ledger):
        for (engine, level), mode in runs.items():
            record_event(
                "bench.case",
                label=f"reduce.fig5_{engine}.{level}",
                config_hash=config_hash({**campaign, "engine": engine,
                                         "site_reduction": level}),
                engine=engine,
                wall_s=mode["wall_s"],
                metrics={"counters": _rows_counters(mode["result"].rows)},
                extra={"suite": "bench_reduce"})
    return len(ledger)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", type=int, default=80,
                        help="sensor count |V| (default 80)")
    parser.add_argument("--instances", type=int, default=1,
                        help="instances per data point (default 1)")
    parser.add_argument("--delta", type=float, default=8.0,
                        help="grid pitch δ in metres (default 8, the "
                             "dense grid the pre-pass targets)")
    parser.add_argument("--repeats", type=int, default=2,
                        help="timed sweeps per mode, best kept (default 2)")
    parser.add_argument("--min-shrink", type=float, default=5.0,
                        help="aggressive shrink-factor floor (default 5)")
    parser.add_argument("--min-speedup", type=float, default=1.2,
                        help="aggressive end-to-end speedup floor per "
                             "engine (default 1.2)")
    parser.add_argument("--max-loss", type=float, default=0.1,
                        help="aggressive per-cell collected-volume loss "
                             "bound for claim R2 (default 0.1)")
    parser.add_argument("--out", type=str, default=None,
                        help="write the JSON report here (default: stdout)")
    args = parser.parse_args(argv)

    import tempfile
    from pathlib import Path
    config = _bench_config(args.nodes, args.instances, args.delta)
    campaign = {
        "figure": "fig5",
        "n_nodes": args.nodes,
        "n_instances": args.instances,
        "delta": args.delta,
        "capacity_sweep": list(config.capacity_sweep),
        "k_values": list(config.k_values),
        "repeats": args.repeats,
    }

    print("warm-up sweep (untimed)...", file=sys.stderr)
    run_fig5(config, jobs=1, cache=True)
    runs: Dict[Tuple[str, str], Dict[str, Any]] = {}
    for engine in ENGINES:
        for level in LEVELS:
            print(f"running fig5 sweep: engine={engine} level={level}...",
                  file=sys.stderr)
            runs[(engine, level)] = _run_mode(config, engine, level,
                                              args.repeats)
            print(f"  {runs[(engine, level)]['wall_s']:.2f} s",
                  file=sys.stderr)

    modes: Dict[str, Any] = {}
    failures: List[str] = []
    for engine in ENGINES:
        off = runs[(engine, "off")]
        per_level: Dict[str, Any] = {}
        for level in LEVELS:
            mode = runs[(engine, level)]
            entry: Dict[str, Any] = {
                "wall_s": round(mode["wall_s"], 4),
                "wall_s_all": mode["wall_s_all"],
            }
            if level != "off":
                shrink = _shrink_factor(mode["result"])
                speedup = off["wall_s"] / mode["wall_s"]
                entry["shrink_factor"] = (None if shrink is None
                                          else round(shrink, 2))
                entry["speedup_vs_off"] = round(speedup, 2)
                if level == "aggressive":
                    if shrink is None or shrink < args.min_shrink:
                        failures.append(
                            f"{engine}/aggressive shrink {shrink} below "
                            f"the {args.min_shrink}x floor")
                    if speedup < args.min_speedup:
                        failures.append(
                            f"{engine}/aggressive speedup {speedup:.2f}x "
                            f"below the {args.min_speedup}x floor")
            per_level[level] = entry
        lossless = (_nontime_rows(off["result"])
                    == _nontime_rows(runs[(engine, "safe")]["result"]))
        per_level["safe"]["rows_identical_to_off"] = lossless
        if not lossless:
            failures.append(f"{engine}/safe rows differ from off")
        modes[engine] = per_level

    base = runs[("kernel", "off")]["result"]
    r1 = check_reduction_claims(base, runs[("kernel", "safe")]["result"],
                                level="safe")[0]
    r2 = check_reduction_claims(base,
                                runs[("kernel", "aggressive")]["result"],
                                level="aggressive",
                                max_loss=args.max_loss)[0]
    for claim in (r1, r2):
        print(claim, file=sys.stderr)
        if not claim.passed:
            failures.append(f"claim {claim.claim_id} failed: {claim.detail}")

    with tempfile.TemporaryDirectory() as tmp:
        ledger_path = Path(tmp) / "bench_reduce.jsonl"
        n_records = _ledger_records(ledger_path, runs, campaign)
        records = Ledger.read(ledger_path)
    roundtrip = compare(records, records,
                        Thresholds(time_ratio=1.5, min_time_s=1e-4))
    if not roundtrip.passed:
        failures.append("identical-ledger gate round-trip failed")
    reduce_counters = [r for r in records
                       if any(k.startswith("kernel.reduce.")
                              for k in r.metrics.get("counters", {}))]
    if len(reduce_counters) != len(ENGINES) * 2:
        failures.append("reduced modes missing kernel.reduce.* counters "
                        "in their ledger records")

    for failure in failures:
        print(f"FATAL: {failure}", file=sys.stderr)

    report = {
        "benchmark": "bench_reduce",
        "campaign": campaign,
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
        },
        "floors": {
            "min_shrink": args.min_shrink,
            "min_speedup": args.min_speedup,
            "max_loss": args.max_loss,
        },
        "modes": modes,
        "claims": {
            "R1": {"passed": r1.passed, "detail": r1.detail},
            "R2": {"passed": r2.passed, "detail": r2.detail},
        },
        "delta_table": reduction_delta_table(
            base, runs[("kernel", "aggressive")]["result"]),
        "ledger": {
            "records": n_records,
            "gate_roundtrip_passed": roundtrip.passed,
        },
        "self_check_passed": not failures,
    }
    text = json.dumps(report, indent=2)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.out}", file=sys.stderr)
    else:
        print(text)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
