"""Batch-engine benchmark: one stacked column vs a per-variant loop.

Plans the *same* paper-scale Fig. 5 capacity column (one instance,
``--variants`` battery capacities, fixed δ) two ways:

1. ``kernel`` — one :func:`plan_algorithm2` call per capacity (the
   per-cell engine the sweeps used before PR 6),
2. ``batch``  — one :func:`plan_algorithm2_batch` call for the whole
   column (``BatchPlannerKernel``: stacked Eq. 11/12 state, union
   dirty-set rescoring, shared distance-row cache),

self-checks that every variant's tour is bitwise-identical between the
two engines, and writes a JSON report with host metadata, the batch
round counter, and the ``kernel.batch.*`` span totals recorded through
:mod:`repro.obs`.  Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_batch.py --out BENCH_PR6.json

The headline number is ``speedups.batch_vs_kernel`` (column wall-clock
ratio, best of ``--repeats``); PR 6 targets >= 3x at the defaults.
Hovering-site construction is shared and excluded from both timings —
the sweeps memoize it in the artifact cache, so only planning differs.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from collections import defaultdict
from typing import Any, Dict, List

import numpy as np

from repro.core import plan_algorithm2
from repro.core.batch import plan_algorithm2_batch
from repro.core.hovering import build_hovering_sites
from repro.experiments.config import ExperimentConfig
from repro.experiments.instances import make_instances
from repro.obs.tracer import Tracer, activated


def _tour_fingerprint(tour) -> Dict[str, Any]:
    """The deterministic view of one tour (no wall-clock, no counters).

    Engine-internal perf counters are excluded: the two engines count
    work differently (the kernel rescores per cell, the batch engine
    per union dirty set) — the bitwise guarantee covers the tour.
    """
    return {
        "points": tour.points.tolist(),
        "sojourns": tour.sojourns.tolist(),
        "collected": tour.collected.tolist(),
        "n_visited": tour.meta["n_visited"],
        "iterations": tour.meta["iterations"],
    }


def _run_kernel(net, energies, radio, delta, sites, *,
                scoring: str, repeats: int) -> Dict[str, Any]:
    times: List[float] = []
    tours = None
    for _ in range(repeats):
        start = time.perf_counter()
        tours = [plan_algorithm2(net, energy, radio, delta,
                                 scoring=scoring, sites=sites,
                                 engine="kernel")
                 for energy in energies]
        times.append(time.perf_counter() - start)
    return {"wall_s": min(times),
            "wall_s_all": [round(t, 4) for t in times],
            "tours": tours}


def _run_batch(net, energies, radio, delta, sites, *,
               scoring: str, repeats: int) -> Dict[str, Any]:
    times: List[float] = []
    tours = None
    for _ in range(repeats):
        start = time.perf_counter()
        tours = plan_algorithm2_batch(net, energies, radio, delta,
                                      scoring=scoring, sites=sites)
        times.append(time.perf_counter() - start)
    # One extra *untimed* traced run for the span breakdown, so the
    # timed repeats above pay no tracer overhead (the kernel loop is
    # untraced, keeping the comparison symmetric).
    tracer = Tracer()
    with activated(tracer):
        plan_algorithm2_batch(net, energies, radio, delta,
                              scoring=scoring, sites=sites)
    return {"wall_s": min(times),
            "wall_s_all": [round(t, 4) for t in times],
            "spans": _span_totals(tracer.records()),
            "tours": tours}


def _span_totals(records: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Aggregate the batch engine's span trace into the report shape."""
    count: Dict[str, int] = defaultdict(int)
    total: Dict[str, float] = defaultdict(float)
    for rec in records:
        count[rec["name"]] += 1
        total[rec["name"]] += rec["dur_s"]
    names = sorted(n for n in count
                   if n.startswith(("batch.", "kernel.batch.")))
    return {name: {"count": count[name],
                   "total_s": round(total[name], 4)}
            for name in names}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", type=int, default=None,
                        help="sensor count |V| (default: paper scale)")
    parser.add_argument("--variants", type=int, default=16,
                        help="capacities in the column (default 16)")
    parser.add_argument("--cap-lo", type=float, default=2e5,
                        help="smallest capacity in J (default 2e5)")
    parser.add_argument("--cap-hi", type=float, default=9.5e5,
                        help="largest capacity in J (default 9.5e5)")
    parser.add_argument("--delta", type=float, default=10.0,
                        help="hovering-grid edge length (default 10 m, "
                             "the paper's Fig. 5 setting)")
    parser.add_argument("--scoring", choices=["ratio", "award"],
                        default="ratio")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timed repetitions per engine, best kept "
                             "(default 3)")
    parser.add_argument("--out", type=str, default=None,
                        help="write the JSON report here (default: stdout)")
    args = parser.parse_args(argv)

    config = ExperimentConfig()
    if args.nodes is not None:
        config = config.scaled(n_nodes=args.nodes)
    net = make_instances(config, 1)[0]
    radio = config.radio_model()
    energies = [config.energy_model(capacity=c)
                for c in np.linspace(args.cap_lo, args.cap_hi,
                                     args.variants)]
    sites = build_hovering_sites(net, radio, args.delta)
    print(f"column: |V|={config.n_nodes}, m={len(sites.points)} sites, "
          f"B={args.variants} capacities, delta={args.delta}",
          file=sys.stderr)

    print(f"running kernel ({args.variants} plan calls)...",
          file=sys.stderr)
    kernel = _run_kernel(net, energies, radio, args.delta, sites,
                         scoring=args.scoring, repeats=args.repeats)
    print(f"  {kernel['wall_s']:.2f} s", file=sys.stderr)
    print("running batch (1 stacked call)...", file=sys.stderr)
    batch = _run_batch(net, energies, radio, args.delta, sites,
                       scoring=args.scoring, repeats=args.repeats)
    print(f"  {batch['wall_s']:.2f} s", file=sys.stderr)

    # Determinism self-check: the batch column must be bitwise-identical
    # to the per-variant kernel loop on every deterministic field.
    identical = all(
        _tour_fingerprint(kb) == _tour_fingerprint(bb)
        for kb, bb in zip(kernel["tours"], batch["tours"]))
    if not identical:
        print("FATAL: batch tours differ from kernel tours",
              file=sys.stderr)
        return 1

    round_span = batch["spans"].get("batch.round", {})
    report = {
        "benchmark": "bench_batch",
        "column": {
            "figure": "fig5",
            "n_nodes": config.n_nodes,
            "n_sites": len(sites.points),
            "delta": args.delta,
            "scoring": args.scoring,
            "capacities": [round(float(c), 1) for c in
                           np.linspace(args.cap_lo, args.cap_hi,
                                       args.variants)],
            "iterations_per_variant": [
                t.meta["iterations"] for t in batch["tours"]],
            "repeats": args.repeats,
        },
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpu_count": os.cpu_count(),
        },
        "engines": {
            "kernel": {k: v for k, v in kernel.items() if k != "tours"},
            "batch": {k: v for k, v in batch.items() if k != "tours"},
        },
        "batch_rounds": round_span.get("count", 0),
        "speedups": {
            "batch_vs_kernel": round(kernel["wall_s"] / batch["wall_s"],
                                     3),
        },
        "deterministic_tours_identical": True,
    }
    text = json.dumps(report, indent=2)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.out}", file=sys.stderr)
    else:
        print(text)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
