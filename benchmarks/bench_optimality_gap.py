"""Optimality-gap bench: heuristics vs the certified optimum.

The paper never measures its heuristics against the optimum (DCM is
NP-hard); the order-aware exact DP (`repro.core.exact_dcm`) makes that
possible on small instances.  This bench times the exact solver and
records, per instance, the optimality fraction of Algorithm 2 and the
GRASP-backed Algorithm 1 — the quality evidence behind DESIGN.md's
substitution S1.
"""

import numpy as np
import pytest

from repro.core.algorithm1 import plan_algorithm1
from repro.core.algorithm2 import plan_algorithm2
from repro.core.exact_dcm import optimality_gap, solve_dcm_exact
from repro.energy.model import EnergyModel
from repro.geometry.region import Region
from repro.network.generator import NetworkGenerator
from repro.radio.link import RadioModel

EXACT_DELTA = 100.0
SEEDS = (0, 1, 2, 3, 4)


def make_instance(seed):
    gen = NetworkGenerator(Region.square(300.0), volume_range=(50.0, 500.0))
    return gen.uniform(7, seed=seed)


RADIO = RadioModel(bandwidth=150.0, transmission_range=100.0, altitude=0.0)
ENERGY = EnergyModel(capacity=8e3, hover_power=150.0,
                     travel_power=100.0, speed=10.0)


@pytest.mark.parametrize("seed", SEEDS)
def test_bench_exact_dcm(benchmark, seed):
    net = make_instance(seed)
    res = benchmark.pedantic(
        solve_dcm_exact, args=(net, ENERGY, RADIO, EXACT_DELTA),
        rounds=1, iterations=1)
    a2 = plan_algorithm2(net, ENERGY, RADIO, EXACT_DELTA)
    a1 = plan_algorithm1(net, ENERGY, RADIO, EXACT_DELTA,
                         overlap="ignore", seed=0, n_restarts=4)
    benchmark.extra_info["optimal_gb"] = round(res.optimal_volume / 1000, 3)
    benchmark.extra_info["alg2_gap"] = round(
        optimality_gap(a2.collected_volume, res.optimal_volume), 3)
    benchmark.extra_info["alg1_gap"] = round(
        optimality_gap(a1.collected_volume, res.optimal_volume), 3)


def test_mean_gaps_acceptable():
    """Aggregate quality floor across the seed set (measured ~0.95+)."""
    gaps2, gaps1 = [], []
    for seed in SEEDS:
        net = make_instance(seed)
        res = solve_dcm_exact(net, ENERGY, RADIO, EXACT_DELTA)
        a2 = plan_algorithm2(net, ENERGY, RADIO, EXACT_DELTA)
        a1 = plan_algorithm1(net, ENERGY, RADIO, EXACT_DELTA,
                             overlap="ignore", seed=0, n_restarts=4)
        gaps2.append(optimality_gap(a2.collected_volume, res.optimal_volume))
        gaps1.append(optimality_gap(a1.collected_volume, res.optimal_volume))
    assert np.mean(gaps2) >= 0.85, gaps2
    assert np.mean(gaps1) >= 0.85, gaps1
