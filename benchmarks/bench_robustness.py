"""Robustness bench (beyond the paper): plans under execution disturbance.

Executes each planner's tour through the contingency simulator
(:mod:`repro.sim.perturb`) under headwind / cold-battery / interference /
sensor-dropout perturbations.  Timings measure the contingency executor;
``extra_info`` records the surviving data fraction.  The shape tests
assert the controller's safety contract (the UAV always returns home) and
a minimum data-retention floor under a moderate headwind.
"""

import pytest

from _common import FIXED_DELTA, energy_with
from repro.core.algorithm2 import plan_algorithm2
from repro.core.algorithm3 import plan_algorithm3
from repro.sim.perturb import Perturbation, simulate_with_contingency

ROBUST_CAPACITY = 5e4

PERTURBATIONS = {
    "nominal": Perturbation.nominal(),
    "headwind20": Perturbation(speed_factor=0.8),
    "coldbattery30": Perturbation(hover_power_factor=1.3),
    "interference50": Perturbation(bandwidth_factor=0.5),
    "dropout10": Perturbation(sensor_dropout=0.1, seed=5),
}


@pytest.fixture(scope="module")
def planned_tour(bench_network, bench_radio):
    return plan_algorithm2(bench_network, energy_with(ROBUST_CAPACITY),
                           bench_radio, FIXED_DELTA)


@pytest.mark.parametrize("name", sorted(PERTURBATIONS))
def test_robustness_execution(benchmark, planned_tour, bench_radio, name):
    perturbation = PERTURBATIONS[name]
    result = benchmark.pedantic(
        simulate_with_contingency,
        args=(planned_tour, bench_radio, perturbation),
        rounds=2, iterations=1)
    benchmark.extra_info["perturbation"] = name
    benchmark.extra_info["collected_gb"] = round(
        result.collected_volume / 1000.0, 3)
    benchmark.extra_info["fraction_of_plan"] = round(
        result.collected_volume / max(planned_tour.collected_volume, 1e-9), 3)
    benchmark.extra_info["aborted"] = result.aborted
    assert result.returned_safely


def test_robustness_never_strands(planned_tour, bench_radio):
    """Safety contract across the whole disturbance grid."""
    for speed in (0.5, 0.7, 0.9):
        for hover in (1.0, 1.4, 1.8):
            res = simulate_with_contingency(
                planned_tour, bench_radio,
                Perturbation(speed_factor=speed, hover_power_factor=hover))
            assert res.returned_safely


def test_robustness_headwind_retention(planned_tour, bench_radio):
    """A 20 % headwind keeps >= 60 % of the nominal data (EXPERIMENTS.md)."""
    res = simulate_with_contingency(planned_tour, bench_radio,
                                    Perturbation(speed_factor=0.8))
    assert res.collected_volume >= 0.6 * planned_tour.collected_volume


def test_robustness_alg3_comparable(bench_network, bench_radio):
    """Partial-collection plans degrade no worse than full-collection ones."""
    energy = energy_with(ROBUST_CAPACITY)
    a2 = plan_algorithm2(bench_network, energy, bench_radio, FIXED_DELTA)
    a3 = plan_algorithm3(bench_network, energy, bench_radio, FIXED_DELTA, 2)
    wind = Perturbation(speed_factor=0.8)
    r2 = simulate_with_contingency(a2, bench_radio, wind)
    r3 = simulate_with_contingency(a3, bench_radio, wind)
    assert r3.returned_safely and r2.returned_safely
    assert r3.collected_volume >= 0.5 * r2.collected_volume
