"""Micro-benchmarks for the substrate hot paths.

Not tied to a paper figure; these guard the kernels the planners spend
their time in (coverage queries, TSP construction, auxiliary-graph
assembly) against performance regressions, and quantify the KD-tree vs
brute-force design choice flagged in DESIGN.md §7.
"""

import numpy as np
import pytest

from repro.core.auxgraph import build_auxiliary_graph
from repro.core.hovering import build_hovering_sites
from repro.energy.model import PAPER_ENERGY_MODEL
from repro.geometry.coverage import coverage_matrix, coverage_sets_bruteforce
from repro.geometry.distance import pairwise_distances
from repro.geometry.grid import GridPartition
from repro.tsp.christofides import christofides_tour
from repro.tsp.construct import cheapest_insertion_tour, nearest_neighbor_tour
from repro.tsp.improve import two_opt


@pytest.fixture(scope="module")
def points():
    rng = np.random.default_rng(0)
    return rng.uniform(0, 1000, (200, 2))


@pytest.fixture(scope="module")
def dist(points):
    return pairwise_distances(points)


def test_bench_pairwise_distances(benchmark, points):
    benchmark(pairwise_distances, points)


def test_bench_coverage_kdtree(benchmark, bench_network):
    grid = GridPartition(bench_network.region, 10.0)
    centers = grid.centers()
    benchmark(coverage_matrix, centers, bench_network.positions, 50.0)


def test_bench_coverage_bruteforce(benchmark, bench_network):
    # The O(n*m) reference the KD-tree path is measured against.
    grid = GridPartition(bench_network.region, 10.0)
    centers = grid.centers()
    benchmark(coverage_sets_bruteforce, centers,
              bench_network.positions, 50.0)


def test_bench_hovering_sites(benchmark, bench_network, bench_radio):
    benchmark(build_hovering_sites, bench_network, bench_radio, 15.0)


def test_bench_auxiliary_graph(benchmark, bench_network, bench_radio):
    sites = build_hovering_sites(bench_network, bench_radio, 20.0)
    benchmark(build_auxiliary_graph, sites, PAPER_ENERGY_MODEL)


def test_bench_christofides_200(benchmark, dist):
    benchmark.pedantic(christofides_tour, args=(dist,),
                       rounds=2, iterations=1)


def test_bench_nearest_neighbor_200(benchmark, dist):
    benchmark(nearest_neighbor_tour, dist)


def test_bench_cheapest_insertion_60(benchmark, dist):
    benchmark.pedantic(cheapest_insertion_tour, args=(dist,),
                       kwargs={"nodes": list(range(60)), "start": 0},
                       rounds=2, iterations=1)


def test_bench_two_opt_200(benchmark, dist):
    start = nearest_neighbor_tour(dist)
    benchmark.pedantic(two_opt, args=(start, dist), rounds=2, iterations=1)
