#!/usr/bin/env python3
"""Fleet operations: scaling out with multiple UAVs (extension).

The paper plans for one UAV; its related-work section points at the
multi-UAV fleet as the natural scale-out.  This example uses the
`plan_fleet` extension: partition the sensors into per-UAV sectors
(angular sweep or k-means), run the paper's Algorithm 2 inside each
sector, and compare fleet sizes on

* total collected data,
* makespan (slowest UAV's mission time — the metric a fleet cares about),
* solution quality relative to the analytical upper bound.

Run:  python examples/fleet_operations.py
"""

from repro import (
    EnergyModel,
    PAPER_RADIO_MODEL,
    collection_upper_bound,
    paper_default_network,
    plan_fleet,
    validate_tour_feasibility,
)


def main() -> None:
    net = paper_default_network(n=160, seed=33)
    radio = PAPER_RADIO_MODEL
    # Each UAV carries the same (tight) battery.
    energy = EnergyModel(capacity=3e4, hover_power=150.0,
                         travel_power=100.0, speed=10.0)
    print(f"instance: {net.n_nodes} nodes, "
          f"{net.total_volume / 1000:.1f} GB stored; "
          f"{energy.capacity:.0f} J per UAV\n")

    print(f"{'fleet':>6}{'partition':>11}{'collected':>12}{'share':>8}"
          f"{'makespan':>11}{'bound frac':>12}")
    for n_uavs in (1, 2, 3, 4):
        for partition in ("sectors", "kmeans"):
            plan = plan_fleet(net, energy, radio, n_uavs=n_uavs,
                              method="algorithm2", partition=partition,
                              delta=25.0, seed=0)
            for tour in plan.tours:
                assert validate_tour_feasibility(tour, radio=radio).feasible
            # Upper bound for the whole fleet: one relaxation per UAV budget
            # is loose; the storage bound still anchors large fleets.
            fleet_energy = energy.with_capacity(energy.capacity * n_uavs)
            bound = collection_upper_bound(net, fleet_energy, radio,
                                           delta=25.0).value
            print(f"{n_uavs:>6}{partition:>11}"
                  f"{plan.collected_volume / 1000:>9.2f} GB"
                  f"{plan.collected_volume / net.total_volume:>8.1%}"
                  f"{plan.makespan / 60:>9.1f} min"
                  f"{plan.collected_volume / bound:>12.1%}")
        print()


if __name__ == "__main__":
    main()
