#!/usr/bin/env python3
"""Periodic monitoring: is one UAV enough to keep up?

Paper §III-A: aggregate nodes are drained *periodically*.  Between tours,
sensors keep generating data; the deployment question is whether the UAV
sustains the load (backlog stabilises) or falls behind (backlog grows,
buffers overflow, data is lost).

This example sweeps the collection period for a fixed instance and
reports, per period, the steady-state verdict, the final backlog, and the
data lost to a finite 2 GB per-sensor buffer — then shows how a second
UAV (multi-UAV extension, doubled effective capacity modelled as doubled
battery) rescues an unsustainable period.

Run:  python examples/periodic_monitoring.py
"""

from repro import EnergyModel, PAPER_RADIO_MODEL, paper_default_network
from repro.core.periodic import run_periodic_collection


def main() -> None:
    net = paper_default_network(n=80, seed=17)
    radio = PAPER_RADIO_MODEL
    energy = EnergyModel(capacity=5e4, hover_power=150.0,
                         travel_power=100.0, speed=10.0)
    print(f"instance: {net.n_nodes} nodes generating "
          f"{net.total_volume / 1000:.1f} GB per period equivalent; "
          f"battery {energy.capacity:.0f} J per tour\n")

    # Fixed generation rates (each sensor refills its nominal volume once
    # per hour), so a longer collection period really means more data
    # piling up between tours.
    rates = net.volumes / 3600.0
    print(f"{'period':>8}{'gen/round':>11}{'sustainable':>13}"
          f"{'final backlog':>15}{'lost':>10}")
    for period in (600.0, 1800.0, 3600.0):
        report = run_periodic_collection(
            net, energy, radio, rates=rates, period=period, n_rounds=8,
            buffer_limit=2000.0, delta=25.0, start_empty=True)
        verdict = "yes" if report.is_sustainable() else "NO"
        print(f"{period:>7.0f}s"
              f"{report.rounds[0].generated / 1000:>8.2f} GB{verdict:>13}"
              f"{report.final_backlog.sum() / 1000:>12.2f} GB"
              f"{report.total_lost / 1000:>7.2f} GB")

    # Rescue an unsustainable deployment with a second battery's worth of
    # capacity per period (two UAVs sharing the load).
    print("\nwith doubled per-period capacity (two UAVs):")
    report = run_periodic_collection(
        net, energy.with_capacity(2 * energy.capacity), radio,
        rates=rates, period=3600.0, n_rounds=8, buffer_limit=2000.0,
        delta=25.0, start_empty=True)
    print(f"period 3600 s -> sustainable={report.is_sustainable()}, "
          f"final backlog {report.final_backlog.sum() / 1000:.2f} GB, "
          f"lost {report.total_lost / 1000:.2f} GB")


if __name__ == "__main__":
    main()
