#!/usr/bin/env python3
"""Disaster response: partial collection under a severely tight battery.

After a flood, sensor clusters in three hard-hit districts hold large
volumes of structural-health data; relays are down (the paper's core
premise) and the UAV's battery covers only a fraction of a full sweep.
This is exactly where the paper's *partial* data collection (Algorithm 3)
earns its keep: draining the first minutes of every cluster beats fully
draining one.

The battery is auto-calibrated to 30 % of what a full sweep would need, so
the budget always binds.  The example sweeps K (the sojourn-partition
count) and shows

* collected volume vs K, including the K = 1 (= Algorithm 2) base case,
* how many sensors were touched vs fully drained — the partial-collection
  signature,
* the planning-time cost of finer partitions (paper Fig. 4(b)).

Run:  python examples/disaster_response.py
"""

import numpy as np

from repro import (
    EnergyModel,
    PAPER_RADIO_MODEL,
    Region,
    NetworkGenerator,
    plan_tour,
)
from repro.sim import cross_validate
from repro.utils.timing import Timer


def main() -> None:
    # Three flooded districts far apart, 60 sensors, heavy loads (1-4 GB).
    gen = NetworkGenerator(Region.square(1600.0),
                           volume_range=(1000.0, 4000.0),
                           depot=(800.0, 800.0))
    net = gen.clustered(60, n_clusters=3, spread=60.0, seed=13,
                        name="flood-districts")
    radio = PAPER_RADIO_MODEL

    # Calibrate: how much energy would a full sweep need?  Plan once with
    # an effectively unlimited battery, then grant the UAV 30 % of that.
    roomy = EnergyModel(capacity=1e9, hover_power=150.0,
                        travel_power=100.0, speed=10.0)
    full = plan_tour(net, roomy, radio, method="algorithm2", delta=30.0)
    energy = EnergyModel(capacity=0.3 * full.total_energy, hover_power=150.0,
                         travel_power=100.0, speed=10.0)
    print(f"scenario: {net.n_nodes} sensors in 3 districts, "
          f"{net.total_volume / 1000:.1f} GB total; full sweep needs "
          f"{full.total_energy / 1000:.0f} kJ, battery holds "
          f"{energy.capacity / 1000:.0f} kJ (30%)\n")

    print(f"{'K':>3}{'collected':>12}{'share':>8}{'touched':>9}"
          f"{'fully drained':>15}{'plan time':>11}")
    best_partial = 0.0
    for k in (1, 2, 4, 8):
        with Timer() as t:
            tour = plan_tour(net, energy, radio, method="algorithm3",
                             delta=30.0, K=k)
        cross_validate(tour, radio)
        touched = int((tour.collected > 1e-6).sum())
        drained = int(np.sum(np.abs(tour.collected - net.volumes) < 1e-6))
        best_partial = max(best_partial, tour.collected_volume)
        print(f"{k:>3}{tour.collected_volume / 1000:>9.2f} GB"
              f"{tour.collected_volume / net.total_volume:>8.1%}"
              f"{touched:>9}{drained:>15}{t.elapsed:>10.2f}s")

    # Contrast with the full-collection baseline: it must fully drain
    # whatever it visits, stranding energy on the biggest sensors.
    bench = plan_tour(net, energy, radio, method="benchmark")
    cross_validate(bench, radio)
    gain = 100.0 * (best_partial / max(bench.collected_volume, 1e-9) - 1.0)
    print(f"\nbenchmark (full drain per visit): "
          f"{bench.collected_volume / 1000:.2f} GB "
          f"({bench.collected_volume / net.total_volume:.1%}) — "
          f"partial collection recovers {gain:.0f}% more data")


if __name__ == "__main__":
    main()
