#!/usr/bin/env python3
"""Mission export + robustness screening: from plan to flyable artifact.

The last mile of the paper's pipeline for a real operator:

1. plan a tour (Algorithm 3, partial collection),
2. screen it against execution disturbances — headwind, cold battery,
   radio interference, sensor dropout — with the return-home contingency
   controller, at two battery-reserve policies,
3. export the accepted plan as a ground-station ``.plan`` JSON and a
   waypoint CSV (written next to this script's working directory).

Run:  python examples/mission_export_robustness.py
"""

import pathlib

from repro import EnergyModel, PAPER_RADIO_MODEL, plan_tour
from repro.core.export import tour_to_csv, tour_to_plan_json, tour_to_waypoints
from repro.network.scenarios import make_scenario
from repro.sim.perturb import Perturbation, evaluate_robustness


def main() -> None:
    # A hotspot scenario: one dense district plus outliers.
    net = make_scenario("hotspot", n=70, seed=4)
    radio = PAPER_RADIO_MODEL
    energy = EnergyModel(capacity=4e4, hover_power=150.0,
                         travel_power=100.0, speed=10.0)
    tour = plan_tour(net, energy, radio, method="algorithm3",
                     delta=25.0, K=4)
    print(f"plan: {tour.n_hovers} hovers, "
          f"{tour.collected_volume / 1000:.2f} GB of "
          f"{net.total_volume / 1000:.2f} GB, "
          f"{tour.total_energy:.0f}/{energy.capacity:.0f} J\n")

    # 2. Robustness screen.
    perturbations = [
        Perturbation.nominal(),
        Perturbation(speed_factor=0.8),
        Perturbation(hover_power_factor=1.3),
        Perturbation(bandwidth_factor=0.5),
        Perturbation(sensor_dropout=0.1, seed=7),
    ]
    labels = ["nominal", "20% headwind", "cold battery +30%",
              "interference -50%", "10% sensor dropout"]
    for reserve in (0.0, 0.1):
        print(f"--- contingency screen (reserve {reserve:.0%}) ---")
        print(f"{'disturbance':<22}{'collected':>11}{'of plan':>9}"
              f"{'aborted':>9}{'home':>6}")
        for row in evaluate_robustness(tour, radio, perturbations,
                                       labels=labels,
                                       reserve_fraction=reserve):
            print(f"{row.label:<22}{row.collected_volume / 1000:>8.2f} GB"
                  f"{row.fraction_of_plan:>9.1%}"
                  f"{'yes' if row.aborted else 'no':>9}"
                  f"{'ok' if row.returned_safely else 'NO':>6}")
        print()

    # 3. Export the accepted plan.
    out = pathlib.Path("mission_out")
    out.mkdir(exist_ok=True)
    (out / "mission.plan").write_text(tour_to_plan_json(tour, altitude=30.0))
    (out / "waypoints.csv").write_text(tour_to_csv(tour, altitude=30.0))
    wps = tour_to_waypoints(tour, altitude=30.0)
    print(f"exported {len(wps)} waypoints -> {out / 'mission.plan'} and "
          f"{out / 'waypoints.csv'}")
    print(f"mission duration {wps[-1].eta_s / 60:.1f} min, "
          f"final energy {wps[-1].energy_j:.0f} J")


if __name__ == "__main__":
    main()
