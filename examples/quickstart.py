#!/usr/bin/env python3
"""Quickstart: plan, validate, and fly one UAV data-collection tour.

Generates the paper's default scenario at a laptop-friendly size, plans a
tour with Algorithm 2 (greedy max-ratio with coverage overlap), checks it
against the independent validator, then executes it in the mission
simulator and prints the timeline summary.

Run:  python examples/quickstart.py
"""

from repro import (
    PAPER_ENERGY_MODEL,
    PAPER_RADIO_MODEL,
    cross_validate,
    paper_default_network,
    plan_tour,
    simulate_mission,
    validate_tour_feasibility,
)


def main() -> None:
    # 1. A sensor network: 100 aggregate nodes, 1000 m x 1000 m, each
    #    storing 100-1000 MB (paper §VII-A), depot at the region centre.
    net = paper_default_network(n=100, seed=42)
    print(f"network: {net.n_nodes} nodes, {net.total_volume / 1000:.1f} GB stored")

    # 2. The UAV: 3e5 J battery, 10 m/s, hovering 150 J/s, travel 100 J/s.
    energy = PAPER_ENERGY_MODEL.with_capacity(1.2e5)  # make the budget bind
    radio = PAPER_RADIO_MODEL                          # B = 150 MB/s, R0 = 50 m

    # 3. Plan with Algorithm 2 on a 20 m hovering grid.
    tour = plan_tour(net, energy, radio, method="algorithm2", delta=20.0)
    print(f"planned: {tour.n_hovers} hovers, "
          f"{tour.collected_volume / 1000:.1f} GB, "
          f"{tour.total_energy:.0f} / {energy.capacity:.0f} J")

    # 4. Independent feasibility check (geometry + energy, no planner state).
    report = validate_tour_feasibility(tour, radio=radio)
    print(f"validator: feasible={report.feasible}, "
          f"battery utilisation {report.energy_utilisation:.1%}")

    # 5. Execute the mission and compare against the plan.
    sim = cross_validate(tour, radio)
    print(f"simulator: ok={sim.ok}, "
          f"collected {sim.simulated_volume / 1000:.1f} GB "
          f"(claimed {sim.claimed_volume / 1000:.1f} GB)")
    trace = simulate_mission(tour, radio)
    print("timeline:", trace.summary())


if __name__ == "__main__":
    main()
