#!/usr/bin/env python3
"""Battery/grid trade-off study: the hover-vs-travel energy split.

The paper's central trade-off (§I): every joule spent travelling is a
joule not spent hovering.  This example sweeps the battery capacity and
reports, for Algorithm 2, how the planner splits energy between the two
activities and how the marginal GB-per-kJ falls as the easy data runs out
— the diminishing-returns curve behind the paper's Fig. 5(a).

It also sweeps the grid resolution δ at a fixed budget, quantifying the
paper's Fig. 4(a) observation that finer grids collect more (better
hovering spots exist) at higher planning cost.

Run:  python examples/battery_tradeoff_study.py
"""

from repro import EnergyModel, PAPER_RADIO_MODEL, paper_default_network, plan_tour
from repro.utils.timing import Timer


def battery_sweep(net, radio) -> None:
    print("=== battery sweep (delta = 20 m) ===")
    print(f"{'capacity':>10}{'collected':>12}{'hover':>9}{'travel':>9}"
          f"{'marginal':>14}")
    prev_volume, prev_cap = 0.0, 0.0
    for cap in (2e4, 4e4, 6e4, 8e4, 1.0e5, 1.2e5):
        energy = EnergyModel(capacity=cap, hover_power=150.0,
                             travel_power=100.0, speed=10.0)
        tour = plan_tour(net, energy, radio, method="algorithm2", delta=20.0)
        marginal = ((tour.collected_volume - prev_volume)
                    / ((cap - prev_cap) / 1000.0))
        print(f"{cap:>10.0f}{tour.collected_volume / 1000:>9.2f} GB"
              f"{tour.hover_energy / cap:>9.1%}{tour.travel_energy / cap:>9.1%}"
              f"{marginal:>10.1f} MB/kJ")
        prev_volume, prev_cap = tour.collected_volume, cap


def delta_sweep(net, radio) -> None:
    print("\n=== grid-resolution sweep (capacity = 6e4 J) ===")
    energy = EnergyModel(capacity=6e4, hover_power=150.0,
                         travel_power=100.0, speed=10.0)
    print(f"{'delta':>7}{'candidates':>12}{'collected':>12}{'plan time':>11}")
    for delta in (10.0, 15.0, 20.0, 30.0, 40.0, 50.0):
        with Timer() as t:
            tour = plan_tour(net, energy, radio, method="algorithm2",
                             delta=delta)
        print(f"{delta:>6.0f}m{tour.meta['n_candidates']:>12}"
              f"{tour.collected_volume / 1000:>9.2f} GB{t.elapsed:>10.2f}s")


def main() -> None:
    net = paper_default_network(n=150, seed=21)
    radio = PAPER_RADIO_MODEL
    print(f"instance: {net.n_nodes} nodes, "
          f"{net.total_volume / 1000:.1f} GB stored\n")
    battery_sweep(net, radio)
    delta_sweep(net, radio)


if __name__ == "__main__":
    main()
