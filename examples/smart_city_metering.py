#!/usr/bin/env python3
"""Smart-city metering: two-tier network + planner comparison.

The paper's §I motivation: utility meters (ordinary IoT devices) forward
their readings to nearby aggregate collectors; a UAV periodically sweeps
the city to drain the collectors.  This example

1. builds the two tiers explicitly — 600 meters on a street lattice
   forwarding to 48 aggregate collectors (conservation is checked),
2. plans the sweep with all four planners under a binding battery,
3. prints the comparison table the paper's Fig. 3/4 analysis is about.

Run:  python examples/smart_city_metering.py
"""

import numpy as np

from repro import EnergyModel, PAPER_RADIO_MODEL, Region, plan_tour
from repro.network.forwarding import build_two_tier_network
from repro.sim import cross_validate
from repro.utils.timing import Timer


def build_city(seed: int = 7):
    """600 meters on a jittered lattice; 48 collectors on a coarser one."""
    rng = np.random.default_rng(seed)
    region = Region.square(1000.0)

    # Meters: 30 x 20 street lattice with jitter, 5-50 MB of readings each.
    mx, my = np.meshgrid(np.linspace(20, 980, 30), np.linspace(25, 975, 20))
    meters = np.column_stack([mx.ravel(), my.ravel()])
    meters += rng.normal(0, 6.0, meters.shape)
    meter_volumes = rng.uniform(5.0, 50.0, len(meters))

    # Collectors: 8 x 6 lattice; 20-100 MB of their own monitoring data.
    cx, cy = np.meshgrid(np.linspace(60, 940, 8), np.linspace(80, 920, 6))
    collectors = np.column_stack([cx.ravel(), cy.ravel()])
    own_volumes = rng.uniform(20.0, 100.0, len(collectors))

    net, devices = build_two_tier_network(
        aggregate_positions=collectors, own_volumes=own_volumes,
        device_positions=meters, device_volumes=meter_volumes,
        comm_range=120.0, depot=region.center, region=region,
        name="smart-city")
    unreached = sum(1 for d in devices if d.assigned_aggregate is None)
    forwarded = sum(d.data_volume for d in devices
                    if d.assigned_aggregate is not None)
    print(f"city: {len(meters)} meters -> {len(collectors)} collectors, "
          f"{forwarded:.0f} MB forwarded, {unreached} meters unreachable")
    assert abs(net.total_volume - (own_volumes.sum() + forwarded)) < 1e-6
    return net


def main() -> None:
    net = build_city()
    energy = EnergyModel(capacity=4.5e4, hover_power=150.0,
                         travel_power=100.0, speed=10.0)
    radio = PAPER_RADIO_MODEL

    cases = [
        ("Algorithm 1 (orienteering)", "algorithm1",
         {"delta": 25.0, "seed": 0, "n_restarts": 3}),
        ("Algorithm 2 (greedy ratio)", "algorithm2", {"delta": 25.0}),
        ("Algorithm 3 (partial, K=4)", "algorithm3", {"delta": 25.0, "K": 4}),
        ("Benchmark (TSP + prune)", "benchmark", {}),
    ]
    print(f"\nUAV battery {energy.capacity:.0f} J; "
          f"{net.total_volume / 1000:.2f} GB stored city-wide\n")
    print(f"{'planner':<30}{'collected':>12}{'share':>8}"
          f"{'hovers':>8}{'time':>9}")
    for name, method, kwargs in cases:
        with Timer() as t:
            tour = plan_tour(net, energy, radio, method=method, **kwargs)
        cross_validate(tour, radio)  # raises if the plan is not executable
        share = tour.collected_volume / net.total_volume
        print(f"{name:<30}{tour.collected_volume / 1000:>9.2f} GB"
              f"{share:>8.1%}{tour.n_hovers:>8}{t.elapsed:>8.2f}s")


if __name__ == "__main__":
    main()
