"""Unit tests for repro.obs.metrics: counters, gauges, histograms, timers."""

from __future__ import annotations

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("work")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_increment_rejected(self):
        c = Counter("work")
        with pytest.raises(ValueError, match="cannot decrease"):
            c.inc(-1.0)
        assert c.value == 0.0


class TestGauge:
    def test_last_write_wins(self):
        g = Gauge("depth")
        g.set(3)
        g.set(1.5)
        assert g.value == 1.5


class TestHistogram:
    def test_observe_buckets_and_overflow(self):
        h = Histogram("lat", bounds=(1.0, 10.0, 100.0))
        for v in (0.5, 1.0, 5.0, 50.0, 1000.0):
            h.observe(v)
        # bisect_left puts a value equal to a bound into that bound's bucket.
        assert h.counts == [2, 1, 1, 1]
        assert h.count == 5
        assert h.total == pytest.approx(1056.5)
        assert h.mean == pytest.approx(1056.5 / 5)

    def test_quantile_bucket_resolution(self):
        h = Histogram("lat", bounds=(1.0, 10.0, 100.0))
        for _ in range(90):
            h.observe(0.5)
        for _ in range(10):
            h.observe(50.0)
        assert h.quantile(0.5) == 1.0
        assert h.quantile(0.95) == 100.0
        assert h.quantile(1.0) == 100.0

    def test_quantile_empty_and_bounds_checks(self):
        h = Histogram("lat")
        assert h.quantile(0.99) == 0.0
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram("bad", bounds=())
        with pytest.raises(ValueError):
            Histogram("bad", bounds=(1.0, 1.0))

    def test_as_dict_schema(self):
        h = Histogram("lat", bounds=(1.0, 2.0))
        h.observe(1.5)
        assert h.as_dict() == {"bounds": [1.0, 2.0], "counts": [0, 1, 0],
                               "sum": 1.5, "count": 1}

    def test_default_buckets_cover_planner_scales(self):
        assert DEFAULT_BUCKETS[0] <= 1e-5 and DEFAULT_BUCKETS[-1] >= 60.0


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instrument(self):
        m = MetricsRegistry()
        assert m.counter("a") is m.counter("a")
        assert m.gauge("g") is m.gauge("g")
        assert m.histogram("h") is m.histogram("h")
        assert m.timer("t") is m.timer("t")

    def test_timer_and_counter_namespaces_disjoint(self):
        m = MetricsRegistry()
        m.counter("rescore").inc(5)
        with m.time("rescore"):
            pass
        assert m.counter_values()["rescore"] == 5.0
        assert m.timer_seconds()["rescore"] < 1.0

    def test_time_accumulates_across_blocks(self):
        m = MetricsRegistry()
        with m.time("phase"):
            pass
        first = m.timer_seconds()["phase"]
        with m.time("phase"):
            sum(range(1000))
        assert m.timer_seconds()["phase"] > first

    def test_counter_values_preserves_registration_order(self):
        m = MetricsRegistry()
        for name in ("b", "a", "c"):
            m.counter(name)
        assert list(m.counter_values()) == ["b", "a", "c"]

    def test_snapshot_schema(self):
        m = MetricsRegistry()
        m.counter("work").inc(2)
        m.gauge("depth").set(7)
        m.histogram("lat", bounds=(1.0,)).observe(0.5)
        with m.time("phase"):
            pass
        snap = m.snapshot()
        assert snap["counters"] == {"work": 2.0}
        assert snap["gauges"] == {"depth": 7.0}
        assert snap["timers_s"]["phase"] >= 0.0
        assert snap["histograms"]["lat"]["count"] == 1


class TestMerge:
    """Registry merging: the transport that makes worker metrics
    jobs-independent (counters add, order never matters)."""

    @staticmethod
    def _worker(ops, seconds):
        m = MetricsRegistry()
        m.counter("kernel.insertions").inc(ops)
        m.timer("kernel.rescore").value += seconds
        m.gauge("cache.artifacts").set(ops)
        m.histogram("lat", bounds=(1.0, 10.0)).observe(ops)
        return m

    def test_counters_and_timers_add(self):
        parent = self._worker(2, 0.5).merge(self._worker(3, 0.25))
        assert parent.counter_values()["kernel.insertions"] == 5.0
        assert parent.timer_seconds()["kernel.rescore"] == 0.75

    def test_gauges_add_as_partitions(self):
        parent = self._worker(2, 0.0).merge(self._worker(3, 0.0))
        assert parent.snapshot()["gauges"]["cache.artifacts"] == 5.0

    def test_histograms_add_bucketwise(self):
        parent = self._worker(0.5, 0.0).merge(self._worker(50.0, 0.0))
        hist = parent.snapshot()["histograms"]["lat"]
        assert hist["counts"] == [1, 0, 1]
        assert hist["count"] == 2
        assert hist["sum"] == pytest.approx(50.5)

    def test_histogram_bounds_mismatch_rejected(self):
        a = MetricsRegistry()
        a.histogram("lat", bounds=(1.0, 10.0)).observe(0.5)
        b = MetricsRegistry()
        b.histogram("lat", bounds=(1.0, 99.0)).observe(0.5)
        with pytest.raises(ValueError, match="bounds mismatch"):
            a.merge(b)

    def test_merge_snapshot_equals_merge(self):
        direct = self._worker(2, 0.5).merge(self._worker(3, 0.25))
        import json
        shipped = json.loads(json.dumps(self._worker(3, 0.25).snapshot()))
        via_snapshot = self._worker(2, 0.5).merge_snapshot(shipped)
        assert direct.snapshot() == via_snapshot.snapshot()

    def test_merge_is_commutative(self):
        ab = self._worker(2, 0.5).merge(self._worker(3, 0.25))
        ba = self._worker(3, 0.25).merge(self._worker(2, 0.5))
        assert ab.snapshot() == ba.snapshot()

    def test_merge_into_empty_registry(self):
        parent = MetricsRegistry()
        parent.merge(self._worker(4, 0.1))
        assert parent.counter_values()["kernel.insertions"] == 4.0

    def test_merge_returns_self(self):
        parent = MetricsRegistry()
        assert parent.merge(MetricsRegistry()) is parent


class TestAmbientRegistry:
    """The active-instance pattern (mirrors the tracer's)."""

    def test_off_by_default(self):
        from repro.obs.metrics import get_metrics
        assert get_metrics() is None

    def test_scope_installs_and_restores(self):
        from repro.obs.metrics import get_metrics, metrics_scope
        reg = MetricsRegistry()
        with metrics_scope(reg) as active:
            assert active is reg
            assert get_metrics() is reg
        assert get_metrics() is None

    def test_scope_none_keeps_current(self):
        from repro.obs.metrics import get_metrics, metrics_scope
        outer = MetricsRegistry()
        with metrics_scope(outer):
            with metrics_scope(None) as active:
                assert active is outer
                assert get_metrics() is outer
            assert get_metrics() is outer


class TestKernelBackCompat:
    """The kernel's meta["perf"] contract must survive the registry swap."""

    def test_kernel_perf_shape(self, small_net, energy, radio):
        from repro.core.algorithm2 import plan_algorithm2

        tour = plan_algorithm2(small_net, energy, radio, delta=40.0)
        perf = tour.meta["perf"]
        assert perf["engine"] == "kernel"
        for key in ("insertions", "drains", "tour_flushes",
                    "sites_rescored", "deltas_recomputed"):
            assert isinstance(perf[key], int), key
        assert set(perf["seconds"]) == {"rescore", "insertion", "partial"}

    def test_kernel_counters_and_timers_properties(self, small_net, energy,
                                                   radio):
        from repro.core.hovering import build_hovering_sites
        from repro.core.kernel import PlannerKernel

        sites = build_hovering_sites(small_net, radio, 40.0)
        kern = PlannerKernel(sites, energy, radio)
        kern.residual_scores()
        assert kern.counters["sites_rescored"] > 0
        assert set(kern.timers) == {"rescore", "insertion", "partial"}
        assert kern.timers["rescore"] > 0.0
