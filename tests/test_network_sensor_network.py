"""Unit tests for repro.network.sensor_network."""

import numpy as np
import pytest

from repro.geometry.region import Region
from repro.network.sensor_network import SensorNetwork
from repro.utils.errors import InvalidParameterError


def make_net(n=4):
    pos = np.arange(2 * n, dtype=float).reshape(n, 2)
    vol = np.arange(1, n + 1, dtype=float) * 10.0
    return SensorNetwork(positions=pos, volumes=vol, depot=[0.0, 0.0])


class TestConstruction:
    def test_basic_properties(self):
        net = make_net(4)
        assert net.n_nodes == 4
        assert net.total_volume == 100.0

    def test_implied_region_contains_everything(self):
        net = make_net(5)
        assert net.region.contains(net.positions).all()
        assert net.region.contains(net.depot[None, :])[0]

    def test_explicit_region_kept(self):
        r = Region.square(500)
        net = SensorNetwork(positions=[[10, 10]], volumes=[5.0],
                            depot=[0, 0], region=r)
        assert net.region is r

    def test_rejects_volume_length_mismatch(self):
        with pytest.raises(InvalidParameterError):
            SensorNetwork(positions=[[0, 0], [1, 1]], volumes=[1.0],
                          depot=[0, 0])

    def test_rejects_negative_volume(self):
        with pytest.raises(InvalidParameterError):
            SensorNetwork(positions=[[0, 0]], volumes=[-1.0], depot=[0, 0])

    def test_rejects_nan_depot(self):
        with pytest.raises(InvalidParameterError):
            SensorNetwork(positions=[[0, 0]], volumes=[1.0],
                          depot=[float("nan"), 0])

    def test_empty_network_allowed(self):
        net = SensorNetwork(positions=np.empty((0, 2)), volumes=[],
                            depot=[5.0, 5.0])
        assert net.n_nodes == 0 and net.total_volume == 0.0


class TestNodeAccess:
    def test_node_view(self):
        net = make_net(3)
        node = net.node(1)
        assert node.node_id == 1
        assert node.data_volume == 20.0
        np.testing.assert_array_equal(node.position, net.positions[1])

    def test_node_out_of_range(self):
        with pytest.raises(InvalidParameterError):
            make_net(3).node(3)

    def test_node_negative_index_rejected(self):
        with pytest.raises(InvalidParameterError):
            make_net(3).node(-1)


class TestSubsetAndCopy:
    def test_subset_selects(self):
        net = make_net(5)
        sub = net.subset([0, 2, 4])
        assert sub.n_nodes == 3
        np.testing.assert_array_equal(sub.volumes, [10.0, 30.0, 50.0])

    def test_subset_out_of_range(self):
        with pytest.raises(InvalidParameterError):
            make_net(3).subset([0, 5])

    def test_subset_independent_copy(self):
        net = make_net(3)
        sub = net.subset([0])
        sub.volumes[0] = 999.0
        assert net.volumes[0] == 10.0

    def test_with_volumes(self):
        net = make_net(3)
        new = net.with_volumes([1.0, 2.0, 3.0])
        assert new.total_volume == 6.0
        assert net.total_volume == 60.0  # original untouched

    def test_with_volumes_validates(self):
        with pytest.raises(InvalidParameterError):
            make_net(3).with_volumes([1.0, -2.0, 3.0])
