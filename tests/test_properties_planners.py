"""Property-based tests over the planners themselves.

For arbitrary (small) random instances, every planner must produce a tour
that (a) passes the first-principles validator, (b) survives independent
execution, (c) stays under the analytical upper bound, and (d) responds
monotonically to battery capacity.  These are the system-level invariants
the unit tests check pointwise; hypothesis hunts the corners.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.algorithm2 import plan_algorithm2
from repro.core.algorithm3 import plan_algorithm3
from repro.core.benchmark_alg import plan_benchmark
from repro.core.bounds import collection_upper_bound
from repro.core.tour import validate_tour_feasibility
from repro.energy.model import EnergyModel
from repro.geometry.region import Region
from repro.network.sensor_network import SensorNetwork
from repro.radio.link import RadioModel
from repro.sim.validate import cross_validate

RADIO = RadioModel(bandwidth=150.0, transmission_range=60.0, altitude=0.0)

network_strategy = st.builds(
    lambda seed, n: _make_net(seed, n),
    seed=st.integers(0, 10_000),
    n=st.integers(2, 12))


def _make_net(seed: int, n: int) -> SensorNetwork:
    rng = np.random.default_rng(seed)
    region = Region.square(400.0)
    return SensorNetwork(
        positions=region.sample_uniform(n, rng),
        volumes=rng.uniform(10.0, 800.0, n),
        depot=region.center, region=region)


capacity_strategy = st.floats(min_value=500.0, max_value=1e5,
                              allow_nan=False, allow_infinity=False)

PLANNERS = [
    ("algorithm2", lambda net, e: plan_algorithm2(net, e, RADIO, 40.0)),
    ("algorithm3", lambda net, e: plan_algorithm3(net, e, RADIO, 40.0, 3)),
    ("benchmark", lambda net, e: plan_benchmark(net, e, RADIO)),
]


class TestPlannerInvariants:
    @pytest.mark.parametrize("name,planner", PLANNERS,
                             ids=[p[0] for p in PLANNERS])
    @given(net=network_strategy, capacity=capacity_strategy)
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_feasible_and_executable(self, name, planner, net, capacity):
        energy = EnergyModel(capacity=capacity, hover_power=150.0,
                             travel_power=100.0, speed=10.0)
        tour = planner(net, energy)
        assert validate_tour_feasibility(tour, radio=RADIO).feasible
        assert cross_validate(tour, RADIO).ok

    @pytest.mark.parametrize("name,planner", PLANNERS,
                             ids=[p[0] for p in PLANNERS])
    @given(net=network_strategy, capacity=capacity_strategy)
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_below_upper_bound(self, name, planner, net, capacity):
        energy = EnergyModel(capacity=capacity, hover_power=150.0,
                             travel_power=100.0, speed=10.0)
        tour = planner(net, energy)
        bound = collection_upper_bound(net, energy, RADIO, delta=40.0)
        assert tour.collected_volume <= bound.value + 1e-6

    @given(net=network_strategy,
           cap_lo=st.floats(min_value=1e3, max_value=3e4),
           factor=st.floats(min_value=1.2, max_value=5.0))
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_algorithm2_monotone_in_capacity(self, net, cap_lo, factor):
        lo = EnergyModel(capacity=cap_lo, hover_power=150.0,
                         travel_power=100.0, speed=10.0)
        hi = EnergyModel(capacity=cap_lo * factor, hover_power=150.0,
                         travel_power=100.0, speed=10.0)
        v_lo = plan_algorithm2(net, lo, RADIO, 40.0).collected_volume
        v_hi = plan_algorithm2(net, hi, RADIO, 40.0).collected_volume
        assert v_hi >= v_lo - 1e-6

    @given(net=network_strategy, capacity=capacity_strategy,
           k=st.integers(1, 5))
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_algorithm3_full_or_partial_sensors_consistent(self, net,
                                                           capacity, k):
        energy = EnergyModel(capacity=capacity, hover_power=150.0,
                             travel_power=100.0, speed=10.0)
        tour = plan_algorithm3(net, energy, RADIO, 40.0, k)
        # Collected never exceeds stored, per sensor.
        assert (tour.collected <= net.volumes + 1e-9).all()
        # Hover time is enough to explain the per-sensor uploads.
        assert tour.collected_volume <= \
            RADIO.bandwidth * tour.hover_time * net.n_nodes + 1e-6
