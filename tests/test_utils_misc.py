"""Unit tests for repro.utils.errors and repro.utils.timing."""

import time

import pytest

from repro.utils.errors import InfeasibleTourError, InvalidParameterError, ReproError
from repro.utils.timing import Timer


class TestErrorHierarchy:
    def test_invalid_parameter_is_repro_error(self):
        assert issubclass(InvalidParameterError, ReproError)

    def test_invalid_parameter_is_value_error(self):
        # Generic callers using the stdlib convention still catch it.
        assert issubclass(InvalidParameterError, ValueError)

    def test_infeasible_tour_is_repro_error(self):
        assert issubclass(InfeasibleTourError, ReproError)

    def test_infeasible_tour_carries_energy_context(self):
        err = InfeasibleTourError("over budget", required=120.0, available=100.0)
        assert err.required == 120.0
        assert err.available == 100.0

    def test_infeasible_tour_defaults_none(self):
        err = InfeasibleTourError("msg")
        assert err.required is None and err.available is None

    def test_catching_base_class(self):
        with pytest.raises(ReproError):
            raise InvalidParameterError("bad")


class TestTimer:
    def test_elapsed_non_negative(self):
        with Timer() as t:
            pass
        assert t.elapsed >= 0.0

    def test_elapsed_frozen_after_exit(self):
        with Timer() as t:
            time.sleep(0.01)
        first = t.elapsed
        time.sleep(0.01)
        assert t.elapsed == first

    def test_running_flag(self):
        t = Timer()
        with t:
            assert t.running
        assert not t.running

    def test_unstarted_timer_raises(self):
        with pytest.raises(RuntimeError):
            Timer().elapsed

    def test_measures_sleep_roughly(self):
        with Timer() as t:
            time.sleep(0.02)
        assert 0.015 <= t.elapsed < 1.0

    def test_reusable(self):
        t = Timer()
        with t:
            pass
        first = t.elapsed
        with t:
            time.sleep(0.01)
        assert t.elapsed >= 0.0 and t.elapsed != first

    def test_nested_reentry_raises(self):
        # Re-entering a running timer would restart the clock and corrupt
        # the outer measurement — it must fail loudly instead.
        t = Timer()
        with t:
            with pytest.raises(RuntimeError, match="already running"):
                with t:
                    pass
            # The outer measurement survives the rejected re-entry.
            assert t.running
        assert t.elapsed >= 0.0
