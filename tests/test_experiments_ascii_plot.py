"""Unit tests for repro.experiments.ascii_plot."""

import pytest

from repro.experiments.ascii_plot import MARKERS, render_series, render_sweep
from repro.experiments.config import reduced_settings
from repro.experiments.runner import SweepResult, SweepRow
from repro.utils.errors import InvalidParameterError


def make_result():
    cfg = reduced_settings()
    rows = []
    for i, v in enumerate((1e4, 2e4, 3e4)):
        rows.append(SweepRow("capacity", v, "Algorithm 2",
                             mean_volume_gb=10.0 + i, std_volume_gb=0.1,
                             mean_time_s=0.5 * (i + 1), std_time_s=0.01,
                             n_instances=3))
        rows.append(SweepRow("capacity", v, "Benchmark",
                             mean_volume_gb=5.0 + i, std_volume_gb=0.1,
                             mean_time_s=0.2, std_time_s=0.01,
                             n_instances=3))
    return SweepResult(config=cfg, rows=rows)


class TestRenderSeries:
    def test_contains_markers_and_legend(self):
        out = render_series([1, 2, 3], {"A": [1, 2, 3], "B": [3, 2, 1]})
        assert MARKERS[0] in out and MARKERS[1] in out
        assert "A" in out and "B" in out

    def test_axis_bounds_printed(self):
        out = render_series([0, 10], {"A": [2.0, 8.0]})
        assert "8.00" in out and "2.00" in out

    def test_length_mismatch_rejected(self):
        with pytest.raises(InvalidParameterError):
            render_series([1, 2], {"A": [1.0]})

    def test_empty_series_rejected(self):
        with pytest.raises(InvalidParameterError):
            render_series([1, 2], {})

    def test_constant_series_renders(self):
        out = render_series([1, 2, 3], {"A": [5.0, 5.0, 5.0]})
        assert MARKERS[0] in out

    def test_dimensions_respected(self):
        out = render_series([1, 2], {"A": [1.0, 2.0]}, width=30, height=8)
        chart_lines = [ln for ln in out.splitlines() if "|" in ln]
        assert len(chart_lines) == 8
        assert all(len(ln) <= 12 + 30 for ln in chart_lines)


class TestRenderSweep:
    def test_volume_panel(self):
        out = render_sweep(make_result(), panel="volume")
        assert "collected data volume (GB)" in out
        assert "Algorithm 2" in out and "Benchmark" in out
        assert "capacity" in out

    def test_time_panel(self):
        out = render_sweep(make_result(), panel="time")
        assert "planning time (s)" in out

    def test_unknown_panel_rejected(self):
        with pytest.raises(InvalidParameterError):
            render_sweep(make_result(), panel="cost")

    def test_empty_result_rejected(self):
        empty = SweepResult(config=reduced_settings(), rows=[])
        with pytest.raises(InvalidParameterError):
            render_sweep(empty)
