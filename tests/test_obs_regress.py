"""Tests for the regression observatory: aggregate, compare, gate.

The load-bearing contracts pinned here:

* the shared nearest-rank quantile (one definition for histograms, the
  trace report, and ledger aggregation) and its edge cases;
* :func:`aggregate` is **order-insensitive**, so a compare verdict can
  never depend on worker-shard merge order (property-tested);
* the gate fails on slowdowns/counter growth past the thresholds, never
  on improvements, and never on new/removed cases.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs.metrics import nearest_rank, quantile_sorted
from repro.obs.record import RunRecord
from repro.obs.regress import CompareReport, Thresholds, aggregate, compare


def rec(label="case", wall_s=1.0, counters=None, mem=None,
        event="bench.case", config_hash="cfg0"):
    return RunRecord(event=event, label=label, config_hash=config_hash,
                     wall_s=wall_s,
                     metrics={"counters": counters} if counters else {},
                     mem_peak_bytes=mem)


class TestNearestRank:
    def test_empty_is_rank_zero(self):
        assert nearest_rank(0, 0.5) == 0
        assert quantile_sorted([], 0.5) == 0.0

    def test_single_sample_every_quantile(self):
        for q in (0.0, 0.5, 1.0):
            assert nearest_rank(1, q) == 1
            assert quantile_sorted([7.5], q) == 7.5

    def test_q_zero_is_first_sample(self):
        assert nearest_rank(10, 0.0) == 1
        assert quantile_sorted([1.0, 2.0, 3.0], 0.0) == 1.0

    def test_q_one_is_last_sample(self):
        assert nearest_rank(10, 1.0) == 10
        assert quantile_sorted([1.0, 2.0, 3.0], 1.0) == 3.0

    def test_median_of_even_count(self):
        # nearest-rank: ceil(0.5 * 4) = 2nd sample.
        assert quantile_sorted([1.0, 2.0, 3.0, 4.0], 0.5) == 2.0

    def test_p95_of_hundred(self):
        samples = [float(i) for i in range(1, 101)]
        assert quantile_sorted(samples, 0.95) == 95.0

    @pytest.mark.parametrize("q", [-0.1, 1.5])
    def test_out_of_range_rejected(self, q):
        with pytest.raises(ValueError):
            nearest_rank(5, q)


class TestAggregate:
    def test_groups_by_event_label_hash(self):
        stats = aggregate([
            rec(label="a"), rec(label="a"), rec(label="b"),
            rec(label="a", config_hash="other")])
        assert {key: s.n for key, s in stats.items()} == {
            ("bench.case", "a", "cfg0"): 2,
            ("bench.case", "b", "cfg0"): 1,
            ("bench.case", "a", "other"): 1}

    def test_wall_quantiles_nearest_rank(self):
        stats = aggregate([rec(wall_s=w) for w in (3.0, 1.0, 2.0)])
        s = stats[("bench.case", "case", "cfg0")]
        assert s.wall_p50_s == 2.0
        assert s.wall_p95_s == 3.0

    def test_counters_and_memory_take_maxima(self):
        stats = aggregate([
            rec(counters={"kernel.insertions": 5.0}, mem=100),
            rec(counters={"kernel.insertions": 9.0, "kernel.drains": 1.0},
                mem=50)])
        s = stats[("bench.case", "case", "cfg0")]
        assert s.counters == {"kernel.insertions": 9.0, "kernel.drains": 1.0}
        assert s.mem_peak_bytes == 100

    def test_memory_none_when_never_measured(self):
        s = aggregate([rec()])[("bench.case", "case", "cfg0")]
        assert s.mem_peak_bytes is None

    def test_order_insensitive(self):
        records = [rec(label=l, wall_s=w, counters={"c": w})
                   for l in ("a", "b") for w in (0.5, 1.5, 2.5)]
        shuffled = list(records)
        random.Random(7).shuffle(shuffled)
        assert aggregate(records) == aggregate(shuffled)

    def test_key_property_and_as_dict(self):
        s = aggregate([rec()])[("bench.case", "case", "cfg0")]
        assert s.key == ("bench.case", "case", "cfg0")
        assert s.as_dict()["wall_p50_s"] == 1.0


class TestCompareGate:
    def test_identical_ledgers_pass(self):
        records = [rec(wall_s=1.0, counters={"c": 5.0}, mem=100)]
        report = compare(records, records)
        assert report.passed
        assert [d.status for d in report.deltas] == ["ok"]

    def test_time_regression_fails(self):
        report = compare([rec(wall_s=1.0)], [rec(wall_s=3.0)])
        assert not report.passed
        assert "wall p50" in report.regressions[0].reasons[0]

    def test_time_improvement_passes(self):
        assert compare([rec(wall_s=3.0)], [rec(wall_s=1.0)]).passed

    def test_sub_threshold_slowdown_passes(self):
        assert compare([rec(wall_s=1.0)], [rec(wall_s=1.9)]).passed

    def test_fast_cases_ignore_time(self):
        # 1e-4 -> 1e-2 is 100x but below min_time_s: timer noise, not signal.
        assert compare([rec(wall_s=1e-4)], [rec(wall_s=1e-2)]).passed

    def test_counter_regression_fails(self):
        report = compare([rec(counters={"kernel.insertions": 100.0})],
                         [rec(counters={"kernel.insertions": 120.0})])
        assert not report.passed
        assert "counter kernel.insertions" in report.regressions[0].reasons[0]

    def test_counter_improvement_passes(self):
        assert compare([rec(counters={"c": 120.0})],
                       [rec(counters={"c": 100.0})]).passed

    def test_zero_baseline_counter_never_gates(self):
        assert compare([rec(counters={"c": 0.0})],
                       [rec(counters={"c": 50.0})]).passed

    def test_memory_regression_fails(self):
        report = compare([rec(mem=1000)], [rec(mem=5000)])
        assert not report.passed
        assert "mem peak" in report.regressions[0].reasons[0]

    def test_memory_unmeasured_side_never_gates(self):
        assert compare([rec(mem=1000)], [rec()]).passed
        assert compare([rec()], [rec(mem=10**9)]).passed

    def test_new_and_removed_are_informational(self):
        report = compare([rec(label="old_only")], [rec(label="new_only")])
        assert report.passed
        assert {d.status for d in report.deltas} == {"new", "removed"}

    def test_changed_config_hash_reports_new_plus_removed(self):
        report = compare([rec(config_hash="aaaa")], [rec(config_hash="bbbb")])
        assert report.passed
        assert sorted(d.status for d in report.deltas) == ["new", "removed"]

    def test_custom_thresholds(self):
        tight = Thresholds(time_ratio=1.1)
        assert not compare([rec(wall_s=1.0)], [rec(wall_s=1.2)], tight).passed
        loose = Thresholds(time_ratio=10.0)
        assert compare([rec(wall_s=1.0)], [rec(wall_s=3.0)], loose).passed

    def test_multiple_reasons_accumulate(self):
        old = [rec(wall_s=1.0, counters={"c": 10.0}, mem=100)]
        new = [rec(wall_s=5.0, counters={"c": 20.0}, mem=1000)]
        reasons = compare(old, new).regressions[0].reasons
        assert len(reasons) == 3


class TestCompareReport:
    def test_render_pass_verdict(self):
        out = compare([rec()], [rec()]).render()
        assert "gate: PASS" in out
        assert "[       ok] bench.case case" in out

    def test_render_fail_verdict_regressions_first(self):
        old = [rec(label="bad", wall_s=1.0), rec(label="fine", wall_s=1.0)]
        new = [rec(label="bad", wall_s=9.0), rec(label="fine", wall_s=1.0)]
        out = compare(old, new).render()
        assert "gate: FAIL (1 regression(s))" in out
        assert out.index("bad") < out.index("fine")

    def test_as_dict_schema(self):
        data = compare([rec()], [rec()]).as_dict()
        assert data["passed"] is True
        assert data["regressions"] == 0
        assert data["thresholds"]["time_ratio"] == 2.0
        assert data["cases"][0]["status"] == "ok"

    def test_empty_ledgers_pass(self):
        report = compare([], [])
        assert report.passed
        assert report.deltas == ()


# --------------------------------------------------------------------- #
# Property: ledger merge order never changes compare verdicts.
# --------------------------------------------------------------------- #

sample_records = st.lists(
    st.builds(
        rec,
        label=st.sampled_from(["a", "b", "c"]),
        wall_s=st.floats(min_value=1e-4, max_value=10.0, allow_nan=False),
        counters=st.dictionaries(
            st.sampled_from(["kernel.x", "kernel.y"]),
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
            max_size=2),
        mem=st.none() | st.integers(1, 10**9)),
    min_size=1, max_size=12)


def _verdict(report: CompareReport):
    return (report.passed,
            {d.key: (d.status, d.reasons) for d in report.deltas})


class TestMergeOrderProperties:
    @given(records=sample_records, seed=st.integers(0, 2**16))
    @settings(max_examples=60, deadline=None)
    def test_aggregate_shuffle_invariant(self, records, seed):
        shuffled = list(records)
        random.Random(seed).shuffle(shuffled)
        assert aggregate(shuffled) == aggregate(records)

    @given(old=sample_records, new=sample_records,
           seed=st.integers(0, 2**16))
    @settings(max_examples=60, deadline=None)
    def test_compare_verdict_shuffle_invariant(self, old, new, seed):
        rng = random.Random(seed)
        old_shuffled, new_shuffled = list(old), list(new)
        rng.shuffle(old_shuffled)
        rng.shuffle(new_shuffled)
        assert _verdict(compare(old_shuffled, new_shuffled)) == \
            _verdict(compare(old, new))
