"""Unit tests for repro.core.tour (CollectionTour + validator)."""

import numpy as np
import pytest

from repro.core.tour import CollectionTour, validate_tour_feasibility
from repro.utils.errors import InfeasibleTourError, InvalidParameterError


@pytest.fixture
def simple_tour(small_net, energy):
    """Depot -> hover over sensor 0 -> back, collecting sensor 0 fully."""
    collected = np.zeros(small_net.n_nodes)
    collected[0] = small_net.volumes[0]
    sojourn = small_net.volumes[0] / 150.0  # bandwidth of the radio fixture
    points = np.vstack([small_net.depot, small_net.positions[0]])
    return CollectionTour(points=points,
                          sojourns=np.array([0.0, sojourn]),
                          collected=collected,
                          network=small_net, energy=energy, method="manual")


class TestDerivedQuantities:
    def test_travel_distance_out_and_back(self, simple_tour, small_net):
        d = np.linalg.norm(small_net.positions[0] - small_net.depot)
        assert simple_tour.travel_distance == pytest.approx(2 * d)

    def test_time_decomposition(self, simple_tour):
        assert simple_tour.mission_time == pytest.approx(
            simple_tour.hover_time + simple_tour.travel_time)

    def test_energy_decomposition(self, simple_tour):
        assert simple_tour.total_energy == pytest.approx(
            simple_tour.hover_energy + simple_tour.travel_energy)

    def test_collected_volume(self, simple_tour, small_net):
        assert simple_tour.collected_volume == pytest.approx(
            small_net.volumes[0])

    def test_n_hovers_counts_positive_sojourns(self, simple_tour):
        assert simple_tour.n_hovers == 1

    def test_energy_slack(self, simple_tour, energy):
        assert simple_tour.energy_slack == pytest.approx(
            energy.capacity - simple_tour.total_energy)


class TestConstructionValidation:
    def test_rejects_empty_points(self, small_net, energy):
        with pytest.raises(InvalidParameterError):
            CollectionTour(points=np.empty((0, 2)), sojourns=np.empty(0),
                           collected=np.zeros(small_net.n_nodes),
                           network=small_net, energy=energy)

    def test_rejects_sojourn_mismatch(self, small_net, energy):
        with pytest.raises(InvalidParameterError):
            CollectionTour(points=small_net.depot[None, :],
                           sojourns=np.array([0.0, 1.0]),
                           collected=np.zeros(small_net.n_nodes),
                           network=small_net, energy=energy)

    def test_rejects_negative_sojourn(self, small_net, energy):
        with pytest.raises(InvalidParameterError):
            CollectionTour(points=small_net.depot[None, :],
                           sojourns=np.array([-1.0]),
                           collected=np.zeros(small_net.n_nodes),
                           network=small_net, energy=energy)

    def test_rejects_collected_shape(self, small_net, energy):
        with pytest.raises(InvalidParameterError):
            CollectionTour(points=small_net.depot[None, :],
                           sojourns=np.array([0.0]),
                           collected=np.zeros(3),
                           network=small_net, energy=energy)

    def test_depot_only_tour_ok(self, small_net, energy):
        t = CollectionTour(points=small_net.depot[None, :],
                           sojourns=np.array([0.0]),
                           collected=np.zeros(small_net.n_nodes),
                           network=small_net, energy=energy)
        assert t.total_energy == 0.0
        assert t.collected_volume == 0.0


class TestValidator:
    def test_valid_tour_passes(self, simple_tour, radio):
        report = validate_tour_feasibility(simple_tour, radio=radio)
        assert report.feasible
        assert not report.violations

    def test_energy_utilisation(self, simple_tour, radio):
        report = validate_tour_feasibility(simple_tour, radio=radio)
        assert 0 < report.energy_utilisation < 1

    def test_detects_energy_overdraw(self, simple_tour, small_net):
        from repro.energy.model import EnergyModel
        tiny = EnergyModel(capacity=1.0, hover_power=150.0,
                           travel_power=100.0, speed=10.0)
        bad = CollectionTour(points=simple_tour.points,
                             sojourns=simple_tour.sojourns,
                             collected=simple_tour.collected,
                             network=small_net, energy=tiny)
        with pytest.raises(InfeasibleTourError):
            validate_tour_feasibility(bad)

    def test_detects_over_collection(self, simple_tour, small_net, energy, radio):
        over = simple_tour.collected.copy()
        over[0] = small_net.volumes[0] + 5.0
        with pytest.raises(InvalidParameterError):
            # Over-collection beyond stored volume is caught at construction.
            CollectionTour(points=simple_tour.points,
                           sojourns=simple_tour.sojourns,
                           collected=-over,  # also negative -> invalid
                           network=small_net, energy=energy)
        bad = CollectionTour(points=simple_tour.points,
                             sojourns=simple_tour.sojourns,
                             collected=over,
                             network=small_net, energy=energy)
        with pytest.raises(InfeasibleTourError, match="over-collected"):
            validate_tour_feasibility(bad, radio=radio)

    def test_detects_uncovered_collection(self, small_net, energy, radio):
        # Claim collection from a sensor while hovering nowhere near it.
        far_sensor = int(np.argmax(
            np.linalg.norm(small_net.positions - small_net.depot, axis=1)))
        collected = np.zeros(small_net.n_nodes)
        collected[far_sensor] = small_net.volumes[far_sensor]
        bad = CollectionTour(points=small_net.depot[None, :],
                             sojourns=np.array([10.0]),
                             collected=collected,
                             network=small_net, energy=energy)
        with pytest.raises(InfeasibleTourError):
            validate_tour_feasibility(bad, radio=radio)

    def test_detects_insufficient_sojourn(self, simple_tour, small_net,
                                          energy, radio):
        # Halve the sojourn but keep the full-collection claim.
        bad = CollectionTour(points=simple_tour.points,
                             sojourns=simple_tour.sojourns / 2,
                             collected=simple_tour.collected,
                             network=small_net, energy=energy)
        with pytest.raises(InfeasibleTourError):
            validate_tour_feasibility(bad, radio=radio)

    def test_detects_wrong_depot(self, simple_tour, small_net, energy, radio):
        shifted = simple_tour.points.copy()
        shifted[0] += 10.0
        bad = CollectionTour(points=shifted, sojourns=simple_tour.sojourns,
                             collected=simple_tour.collected,
                             network=small_net, energy=energy)
        with pytest.raises(InfeasibleTourError, match="depot"):
            validate_tour_feasibility(bad, radio=radio)

    def test_non_strict_returns_report(self, simple_tour, small_net, radio):
        from repro.energy.model import EnergyModel
        tiny = EnergyModel(capacity=1.0, hover_power=150.0,
                           travel_power=100.0, speed=10.0)
        bad = CollectionTour(points=simple_tour.points,
                             sojourns=simple_tour.sojourns,
                             collected=simple_tour.collected,
                             network=small_net, energy=tiny)
        report = validate_tour_feasibility(bad, radio=radio, strict=False)
        assert not report.feasible
        assert report.violations

    def test_without_radio_skips_coverage_check(self, small_net, energy):
        # The uncovered-collection tour passes checks 1-3 (energy ok,
        # depot ok, conservation ok) when no radio model is supplied.
        collected = np.zeros(small_net.n_nodes)
        collected[0] = small_net.volumes[0]
        t = CollectionTour(points=small_net.depot[None, :],
                           sojourns=np.array([1.0]),
                           collected=collected,
                           network=small_net, energy=energy)
        report = validate_tour_feasibility(t)
        assert report.feasible
